"""Unit tests for the OOM killer."""

import pytest

from repro.errors import MemoryError_
from repro.mm.mm_struct import MmStruct
from repro.mm.oom import OomKiller


def test_kill_marks_victim_dead():
    killer = OomKiller()
    victim = MmStruct("p")
    event = killer.kill(victim, "partition overflow", requested_pages=100)
    assert not victim.alive
    assert killer.kill_count == 1
    assert event.requested_pages == 100


def test_on_kill_callback_invoked():
    seen = []
    killer = OomKiller(on_kill=seen.append)
    killer.kill(MmStruct("p"), "x", 1)
    assert len(seen) == 1
    assert seen[0].reason == "x"


def test_select_victim_prefers_largest_rss():
    killer = OomKiller()
    small, large = MmStruct("small"), MmStruct("large")
    small.record_file_mapping(1, 10)
    large.record_file_mapping(1, 100)
    assert killer.select_victim([small, large]) is large


def test_select_victim_skips_dead():
    killer = OomKiller()
    dead, alive = MmStruct("dead"), MmStruct("alive")
    dead.record_file_mapping(1, 1000)
    dead.alive = False
    assert killer.select_victim([dead, alive]) is alive


def test_select_victim_no_candidates_raises():
    killer = OomKiller()
    with pytest.raises(MemoryError_):
        killer.select_victim([])


def test_select_victim_tie_broken_by_pid():
    killer = OomKiller()
    first, second = MmStruct("a"), MmStruct("b")
    chosen = killer.select_victim([first, second])
    assert chosen is first  # equal RSS → lower pid wins
