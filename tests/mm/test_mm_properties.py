"""Property-based tests for memory-manager invariants.

A random interleaving of allocations, frees, process exits, block
onlining, offlining and migrations must always leave the manager in a
consistent state: per-zone free counters match per-block state, owner
mirrors agree with per-block occupancy, and no page is ever lost or
double-counted.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryError_, OfflineFailed, OutOfMemory
from repro.mm.block import BlockState
from repro.mm.manager import GuestMemoryManager
from repro.mm.mm_struct import MmStruct
from repro.units import GIB, MIB, PAGES_PER_BLOCK


def total_user_pages(manager, processes):
    return sum(mm.total_pages for mm in processes)


operations = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(0, 7), st.integers(1, 20000)),
        st.tuples(st.just("free"), st.integers(0, 7), st.integers(1, 20000)),
        st.tuples(st.just("exit"), st.integers(0, 7), st.just(0)),
        st.tuples(st.just("online"), st.integers(0, 7), st.just(0)),
        st.tuples(st.just("offline"), st.integers(0, 7), st.just(0)),
        st.tuples(st.just("migrate"), st.integers(0, 7), st.just(0)),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(ops=operations)
def test_random_operation_interleavings_stay_consistent(ops):
    manager = GuestMemoryManager(512 * MIB, 1 * GIB)
    processes = [MmStruct(f"p{i}") for i in range(8)]
    hotplug_indices = list(manager.hotplug_block_indices())

    for op, arg, amount in ops:
        if op == "alloc":
            mm = processes[arg]
            try:
                manager.alloc_pages(mm, amount)
            except OutOfMemory:
                pass
        elif op == "free":
            mm = processes[arg]
            if mm.total_pages:
                manager.free_pages(mm, min(amount, mm.total_pages))
        elif op == "exit":
            manager.free_all(processes[arg])
        elif op == "online":
            index = hotplug_indices[arg]
            if manager.blocks[index].state is BlockState.ABSENT:
                try:
                    manager.online_block(index, manager.zone_movable)
                except OutOfMemory:
                    pass
        elif op == "offline":
            index = hotplug_indices[arg]
            block = manager.blocks[index]
            if block.state is BlockState.ONLINE:
                try:
                    manager.offline_and_remove(block)
                except OfflineFailed:
                    pass
        elif op == "migrate":
            index = hotplug_indices[arg]
            block = manager.blocks[index]
            if block.state is BlockState.ONLINE:
                try:
                    manager.migrate_block_out(block)
                except OfflineFailed:
                    pass
        # The invariant must hold after EVERY operation, not just at the end.
        manager.check_consistency()


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 30000), min_size=1, max_size=10),
    free_order=st.permutations(list(range(10))),
)
def test_allocation_free_conservation(sizes, free_order):
    """Pages allocated equal pages freed, in any free order."""
    manager = GuestMemoryManager(1 * GIB, 0)
    free_before = manager.free_pages_total
    processes = []
    allocated = 0
    for i, size in enumerate(sizes):
        mm = MmStruct(f"p{i}")
        try:
            manager.alloc_pages(mm, size)
            allocated += size
        except OutOfMemory:
            pass
        processes.append(mm)
    assert manager.free_pages_total == free_before - allocated
    for index in free_order:
        if index < len(processes):
            manager.free_all(processes[index])
    assert manager.free_pages_total == free_before
    manager.check_consistency()


@settings(max_examples=30, deadline=None)
@given(
    occupancies=st.lists(st.integers(0, PAGES_PER_BLOCK // 2), min_size=2, max_size=6)
)
def test_migration_conserves_every_owner(occupancies):
    """Migrating a block out never changes any owner's page total."""
    manager = GuestMemoryManager(512 * MIB, 1 * GIB)
    for index in list(manager.hotplug_block_indices())[: len(occupancies) + 2]:
        manager.online_block(index, manager.zone_movable)
    processes = []
    for i, pages in enumerate(occupancies):
        mm = MmStruct(f"p{i}")
        if pages:
            manager.alloc_pages(mm, pages)
        processes.append(mm)
    totals = [mm.total_pages for mm in processes]
    block = manager.zone_movable.blocks[0]
    try:
        manager.migrate_block_out(block)
    except OfflineFailed:
        return
    assert [mm.total_pages for mm in processes] == totals
    assert block.is_empty
    manager.check_consistency()


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_isolated_blocks_never_receive_allocations(data):
    manager = GuestMemoryManager(512 * MIB, 512 * MIB)
    for index in manager.hotplug_block_indices():
        manager.online_block(index, manager.zone_movable)
    blocks = manager.zone_movable.blocks
    to_isolate = data.draw(
        st.lists(
            st.sampled_from(blocks), unique=True, max_size=len(blocks) - 1
        )
    )
    for block in to_isolate:
        manager.isolate_block(block)
    mm = MmStruct("p")
    pages = data.draw(st.integers(1, manager.zone_movable.free_pages))
    manager.alloc_pages(mm, pages, zones=[manager.zone_movable])
    assert all(not block.isolated for block in mm.block_pages)
    manager.check_consistency()
