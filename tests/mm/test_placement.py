"""Unit tests for placement policies."""

import random

import pytest

from repro.mm.block import BlockState, MemoryBlock
from repro.mm.placement import (
    RandomPlacement,
    ScatterPlacement,
    SequentialPlacement,
    make_placement,
)
from repro.units import PAGES_PER_BLOCK


def make_blocks(count, free=PAGES_PER_BLOCK):
    blocks = []
    for i in range(count):
        block = MemoryBlock(i)
        block.state = BlockState.ONLINE
        block.free_pages = free
        blocks.append(block)
    return blocks


class TestSequential:
    def test_fills_lowest_block_first(self):
        blocks = make_blocks(3)
        plan = SequentialPlacement().plan(blocks, PAGES_PER_BLOCK + 10)
        assert plan == {blocks[0]: PAGES_PER_BLOCK, blocks[1]: 10}

    def test_exact_fit(self):
        blocks = make_blocks(2)
        plan = SequentialPlacement().plan(blocks, PAGES_PER_BLOCK)
        assert plan == {blocks[0]: PAGES_PER_BLOCK}

    def test_insufficient_returns_none(self):
        blocks = make_blocks(1)
        assert SequentialPlacement().plan(blocks, PAGES_PER_BLOCK + 1) is None

    def test_skips_full_blocks(self):
        blocks = make_blocks(2)
        blocks[0].free_pages = 0
        plan = SequentialPlacement().plan(blocks, 10)
        assert plan == {blocks[1]: 10}

    def test_respects_exclude(self):
        blocks = make_blocks(2)
        plan = SequentialPlacement().plan(blocks, 10, exclude={blocks[0]})
        assert plan == {blocks[1]: 10}

    def test_skips_isolated_blocks(self):
        blocks = make_blocks(2)
        blocks[0].isolated = True
        plan = SequentialPlacement().plan(blocks, 10)
        assert plan == {blocks[1]: 10}


class TestScatter:
    def test_spreads_over_all_blocks(self):
        blocks = make_blocks(4)
        plan = ScatterPlacement(chunk_pages=256).plan(blocks, 4 * 256)
        assert len(plan) == 4
        assert all(count == 256 for count in plan.values())

    def test_cursor_rotates_between_allocations(self):
        blocks = make_blocks(4)
        policy = ScatterPlacement(chunk_pages=256)
        first = policy.plan(blocks, 256)
        second = policy.plan(blocks, 256)
        assert list(first) != list(second)

    def test_total_matches_request(self):
        blocks = make_blocks(5)
        plan = ScatterPlacement().plan(blocks, 12345)
        assert sum(plan.values()) == 12345

    def test_never_exceeds_block_free(self):
        blocks = make_blocks(3, free=100)
        plan = ScatterPlacement(chunk_pages=256).plan(blocks, 300)
        assert all(plan[b] <= 100 for b in plan)

    def test_insufficient_returns_none(self):
        blocks = make_blocks(2, free=10)
        assert ScatterPlacement().plan(blocks, 21) is None

    def test_no_usable_blocks_returns_none(self):
        blocks = make_blocks(2, free=0)
        assert ScatterPlacement().plan(blocks, 1) is None

    def test_interleaving_two_owners(self):
        """Two successive allocations both touch most blocks — the
        behaviour that penalizes vanilla unplug (Figure 2)."""
        blocks = make_blocks(8)
        policy = ScatterPlacement(chunk_pages=256)
        plan_a = policy.plan(blocks, 8 * 1024)
        for block, pages in plan_a.items():
            block.free_pages -= pages
        plan_b = policy.plan(blocks, 8 * 1024)
        shared = set(plan_a) & set(plan_b)
        assert len(shared) >= 4

    def test_invalid_chunk_rejected(self):
        with pytest.raises(ValueError):
            ScatterPlacement(chunk_pages=0)


class TestRandom:
    def test_deterministic_for_seeded_rng(self):
        blocks_a = make_blocks(4)
        blocks_b = make_blocks(4)
        plan_a = RandomPlacement(rng=random.Random(7)).plan(blocks_a, 5000)
        plan_b = RandomPlacement(rng=random.Random(7)).plan(blocks_b, 5000)
        assert {b.index: v for b, v in plan_a.items()} == {
            b.index: v for b, v in plan_b.items()
        }

    def test_total_matches_request(self):
        blocks = make_blocks(4)
        plan = RandomPlacement(rng=random.Random(1)).plan(blocks, 7777)
        assert sum(plan.values()) == 7777

    def test_insufficient_returns_none(self):
        blocks = make_blocks(1, free=5)
        assert RandomPlacement(rng=random.Random(1)).plan(blocks, 6) is None


class TestFactory:
    @pytest.mark.parametrize("name", ["scatter", "sequential", "random"])
    def test_known_names(self, name):
        assert make_placement(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_placement("bogus")
