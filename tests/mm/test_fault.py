"""Unit tests for the fault handler (lazy allocation + HotMem hooks)."""

import pytest

from repro.core.config import HotMemBootParams
from repro.core.manager import HotMemManager
from repro.errors import OutOfMemory
from repro.mm.fault import FaultHandler
from repro.mm.manager import GuestMemoryManager
from repro.mm.mm_struct import MmStruct
from repro.mm.pagecache import CachedFile, PageCache
from repro.sim.costs import CostModel, ZeroingMode
from repro.sim.engine import Simulator
from repro.units import GIB, MIB, PAGES_PER_BLOCK


@pytest.fixture
def manager():
    return GuestMemoryManager(1 * GIB, 1 * GIB)


@pytest.fixture
def handler(manager, costs):
    return FaultHandler(manager, costs)


class TestAnonFaults:
    def test_faults_allocate_lazily(self, manager, handler):
        mm = MmStruct("p")
        charge = handler.fault_anon(mm, 100)
        assert charge.anon_pages == 100
        assert mm.anon_pages == 100

    def test_zero_pages_is_noop(self, handler):
        mm = MmStruct("p")
        charge = handler.fault_anon(mm, 0)
        assert charge.total_pages == 0
        assert charge.cost_ns == 0

    def test_cost_includes_zeroing_under_init_on_alloc(self, manager):
        costs = CostModel(zeroing_mode=ZeroingMode.INIT_ON_ALLOC)
        handler = FaultHandler(manager, costs)
        charge = handler.fault_anon(MmStruct("p"), 100)
        assert charge.cost_ns == 100 * (costs.anon_fault_ns + costs.page_zero_ns)

    def test_cost_excludes_zeroing_under_init_on_free(self, manager):
        costs = CostModel(zeroing_mode=ZeroingMode.INIT_ON_FREE)
        handler = FaultHandler(manager, costs)
        charge = handler.fault_anon(MmStruct("p"), 100)
        assert charge.cost_ns == 100 * costs.anon_fault_ns

    def test_global_exhaustion_triggers_oom_and_raises(self, manager, handler):
        mm = MmStruct("p")
        with pytest.raises(OutOfMemory):
            handler.fault_anon(mm, manager.free_pages_total + 1)
        assert handler.oom_killer.kill_count == 1
        assert handler.oom_killer.events[0].victim is mm
        assert not mm.alive


class TestHotMemAnonFaults:
    @pytest.fixture
    def hotmem_setup(self):
        manager = GuestMemoryManager(1 * GIB, 2 * GIB)
        params = HotMemBootParams(
            partition_bytes=384 * MIB, concurrency=2, shared_bytes=128 * MIB
        )
        hotmem = HotMemManager(Simulator(), manager, params)
        handler = FaultHandler(manager, CostModel())
        # Populate partition 0 by hand.
        indices = list(manager.hotplug_block_indices())
        for i in indices[:3]:
            manager.online_block(i, hotmem.partitions[0].zone)
        return manager, hotmem, handler

    def test_hotmem_faults_confined_to_partition(self, hotmem_setup):
        manager, hotmem, handler = hotmem_setup
        mm = MmStruct("fn")
        hotmem.try_attach(mm)
        handler.fault_anon(mm, 2 * PAGES_PER_BLOCK)
        partition_zone = hotmem.partitions[0].zone
        assert all(b.zone is partition_zone for b in mm.block_pages)

    def test_partition_overflow_kills_process(self, hotmem_setup):
        manager, hotmem, handler = hotmem_setup
        mm = MmStruct("fn")
        hotmem.try_attach(mm)
        with pytest.raises(OutOfMemory):
            handler.fault_anon(mm, 3 * PAGES_PER_BLOCK + 1)
        assert handler.oom_killer.kill_count == 1
        assert "overflow" in handler.oom_killer.events[0].reason

    def test_overflow_never_spills_into_generic_zones(self, hotmem_setup):
        manager, hotmem, handler = hotmem_setup
        mm = MmStruct("fn")
        hotmem.try_attach(mm)
        normal_free = manager.zone_normal.free_pages
        with pytest.raises(OutOfMemory):
            handler.fault_anon(mm, 4 * PAGES_PER_BLOCK)
        assert manager.zone_normal.free_pages == normal_free


class TestFileFaults:
    def test_first_touch_misses_then_hits(self, manager, costs):
        cache = PageCache()
        handler = FaultHandler(manager, costs, page_cache=cache)
        file = cache.register(CachedFile("libfoo", 1000))
        mm_a, mm_b = MmStruct("a"), MmStruct("b")
        first = handler.fault_file(mm_a, file, 1000)
        second = handler.fault_file(mm_b, file, 1000)
        assert first.file_miss_pages == 1000
        assert second.file_hit_pages == 1000
        assert second.file_miss_pages == 0

    def test_hit_is_cheaper_than_miss(self, manager, costs):
        cache = PageCache()
        handler = FaultHandler(manager, costs, page_cache=cache)
        file = cache.register(CachedFile("lib", 500))
        miss = handler.fault_file(MmStruct("a"), file, 500)
        hit = handler.fault_file(MmStruct("b"), file, 500)
        assert hit.cost_ns < miss.cost_ns

    def test_cache_pages_owned_by_cache_not_process(self, manager, costs):
        cache = PageCache()
        handler = FaultHandler(manager, costs, page_cache=cache)
        file = cache.register(CachedFile("lib", 200))
        mm = MmStruct("a")
        handler.fault_file(mm, file, 200)
        assert mm.anon_pages == 0
        assert mm.mapped_file_pages == 200
        assert cache.total_pages == 200

    def test_shared_zone_override(self, costs):
        manager = GuestMemoryManager(1 * GIB, 1 * GIB)
        from repro.mm.zone import Zone, ZoneType

        shared = Zone("HotMemShared", ZoneType.HOTMEM)
        manager.register_zone(shared)
        index = manager.boot_blocks
        manager.online_block(index, shared)
        cache = PageCache()
        handler = FaultHandler(
            manager, costs, page_cache=cache, shared_file_zones=[shared]
        )
        file = cache.register(CachedFile("lib", 100))
        handler.fault_file(MmStruct("a"), file, 100)
        assert shared.occupied_pages == 100


class TestTeardown:
    def test_release_frees_everything(self, manager, handler):
        mm = MmStruct("p")
        handler.fault_anon(mm, 500)
        charge = handler.release_address_space(mm)
        assert charge.anon_pages == 500
        assert mm.total_pages == 0
        assert not mm.alive

    def test_release_keeps_shared_cache_pages(self, manager, costs):
        cache = PageCache()
        handler = FaultHandler(manager, costs, page_cache=cache)
        file = cache.register(CachedFile("lib", 300))
        mm = MmStruct("p")
        handler.fault_file(mm, file, 300)
        handler.release_address_space(mm)
        assert cache.total_pages == 300
        assert file.cached_pages == 300
        assert mm.mapped_file_pages == 0

    def test_release_cost_includes_zeroing_under_init_on_free(self, manager):
        costs = CostModel(zeroing_mode=ZeroingMode.INIT_ON_FREE)
        handler = FaultHandler(manager, costs)
        mm = MmStruct("p")
        handler.fault_anon(mm, 100)
        charge = handler.release_address_space(mm)
        assert charge.cost_ns == 100 * (costs.page_free_ns + costs.page_zero_ns)
