"""Unit tests for page owners and mm_structs."""

import pytest

from repro.errors import MemoryError_
from repro.mm.block import BlockState, MemoryBlock
from repro.mm.mm_struct import MmStruct
from repro.mm.owner import KernelOwner, PageOwner
from repro.units import PAGES_PER_BLOCK


def block(index=0):
    b = MemoryBlock(index)
    b.state = BlockState.ONLINE
    b.free_pages = PAGES_PER_BLOCK
    return b


class TestMirror:
    def test_mirror_tracks_blocks(self):
        owner = PageOwner("p")
        b = block()
        owner._mirror_charge(b, 10)
        assert owner.block_pages == {b: 10}
        assert owner.total_pages == 10

    def test_mirror_uncharge_removes_empty_entries(self):
        owner = PageOwner("p")
        b = block()
        owner._mirror_charge(b, 10)
        owner._mirror_uncharge(b, 10)
        assert owner.block_pages == {}

    def test_mirror_overuncharge_rejected(self):
        owner = PageOwner("p")
        b = block()
        owner._mirror_charge(b, 5)
        with pytest.raises(MemoryError_):
            owner._mirror_uncharge(b, 6)

    def test_kernel_owner_is_unmovable(self):
        assert not KernelOwner().movable
        assert PageOwner("u").movable


class TestMmStruct:
    def test_unique_pids(self):
        assert MmStruct("a").pid != MmStruct("a").pid

    def test_rss_combines_anon_and_file(self):
        mm = MmStruct("p")
        b = block()
        mm._mirror_charge(b, 100)
        mm.record_file_mapping(7, 50)
        assert mm.anon_pages == 100
        assert mm.mapped_file_pages == 50
        assert mm.rss_pages == 150

    def test_file_mappings_accumulate_per_file(self):
        mm = MmStruct("p")
        mm.record_file_mapping(1, 10)
        mm.record_file_mapping(1, 5)
        mm.record_file_mapping(2, 3)
        assert mm.file_mapped_pages == {1: 15, 2: 3}

    def test_starts_without_partition(self):
        assert MmStruct("p").hotmem_partition is None
        assert MmStruct("p").alive
