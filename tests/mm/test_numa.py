"""Tests for multi-node (NUMA) guest memory management.

The paper's future-work extension: boot memory and the hotplug region
split across guest NUMA nodes, per-node zones, node-local allocation
with cross-node fallback, and node-local hot(un)plug.
"""

import pytest

from repro.errors import ConfigError, OutOfMemory
from repro.mm.manager import MEMMAP_PAGES_PER_BLOCK, GuestMemoryManager
from repro.mm.mm_struct import MmStruct
from repro.mm.zone import ZoneType
from repro.units import GIB, MIB, PAGES_PER_BLOCK


@pytest.fixture
def manager():
    return GuestMemoryManager(1 * GIB, 2 * GIB, numa_nodes=2)


class TestTopology:
    def test_per_node_zones_created(self, manager):
        assert len(manager.normal_zones) == 2
        assert len(manager.movable_zones) == 2
        assert manager.zones["Normal@node0"] is manager.normal_zones[0]
        assert manager.zones["Movable@node1"] is manager.movable_zones[1]

    def test_single_node_keeps_plain_zone_names(self):
        single = GuestMemoryManager(512 * MIB, 0)
        assert "Normal" in single.zones
        assert single.zone_normal is single.normal_zones[0]

    def test_boot_blocks_split_across_nodes(self, manager):
        assert len(manager.normal_zones[0].blocks) == 4
        assert len(manager.normal_zones[1].blocks) == 4

    def test_node_of_block_layout(self, manager):
        assert manager.node_of_block(0) == 0
        assert manager.node_of_block(3) == 0
        assert manager.node_of_block(4) == 1
        # Hotplug region: first half node 0, second half node 1.
        first_hotplug = manager.boot_blocks
        assert manager.node_of_block(first_hotplug) == 0
        assert manager.node_of_block(first_hotplug + 8) == 1

    def test_uneven_split_rejected(self):
        with pytest.raises(ConfigError):
            GuestMemoryManager(384 * MIB, 0, numa_nodes=2)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigError):
            GuestMemoryManager(1 * GIB, 0, numa_nodes=0)

    def test_kernel_footprint_split_node_locally(self, manager):
        for zone in manager.normal_zones:
            kernel_pages = sum(
                pages
                for block in zone.blocks
                for owner, pages in block.owner_pages.items()
                if owner is manager.kernel
            )
            assert kernel_pages > 0


class TestZonelist:
    def test_preferred_node_first(self, manager):
        zones = manager.zonelist(True, node=1)
        assert zones[0] is manager.movable_zones[1]
        assert manager.movable_zones[0] in zones
        assert zones.index(manager.normal_zones[1]) < zones.index(
            manager.normal_zones[0]
        )

    def test_movable_zones_precede_normals(self, manager):
        zones = manager.zonelist(True, node=0)
        first_normal = next(
            i for i, z in enumerate(zones) if z.ztype is ZoneType.NORMAL
        )
        assert all(z.ztype is ZoneType.MOVABLE for z in zones[:first_normal])

    def test_unmovable_zonelist_normals_only(self, manager):
        zones = manager.zonelist(False, node=0)
        assert all(z.ztype is ZoneType.NORMAL for z in zones)
        assert zones[0] is manager.normal_zones[0]

    def test_invalid_node_rejected(self, manager):
        with pytest.raises(ConfigError):
            manager.zonelist(True, node=5)


class TestNodeLocalAllocation:
    def test_allocation_prefers_local_node(self, manager):
        for index in manager.hotplug_block_indices():
            manager.online_block(
                index, manager.movable_zones[manager.node_of_block(index)]
            )
        mm = MmStruct("local")
        manager.alloc_pages(mm, 1000, zones=manager.zonelist(True, node=1))
        for block in mm.block_pages:
            assert manager.node_of_block(block.index) == 1

    def test_allocation_spills_to_remote_node(self, manager):
        for index in manager.hotplug_block_indices():
            manager.online_block(
                index, manager.movable_zones[manager.node_of_block(index)]
            )
        hog = MmStruct("hog")
        local_free = manager.movable_zones[0].free_pages
        manager.alloc_pages(hog, local_free, zones=[manager.movable_zones[0]])
        mm = MmStruct("spill")
        manager.alloc_pages(mm, 1000, zones=manager.zonelist(True, node=0))
        nodes_touched = {manager.node_of_block(b.index) for b in mm.block_pages}
        assert nodes_touched <= {0, 1}
        assert 1 in nodes_touched  # spilled
        manager.check_consistency()

    def test_memmap_charged_node_locally(self, manager):
        node1_kernel_before = sum(
            manager.normal_zones[1].blocks[0].owner_pages.get(manager.kernel, 0)
            for _ in [0]
        )
        index = next(
            i
            for i in manager.hotplug_block_indices()
            if manager.node_of_block(i) == 1
        )
        kernel_node1 = lambda: sum(  # noqa: E731
            block.owner_pages.get(manager.kernel, 0)
            for block in manager.normal_zones[1].blocks
        )
        before = kernel_node1()
        manager.online_block(index, manager.movable_zones[1])
        assert kernel_node1() == before + MEMMAP_PAGES_PER_BLOCK


class TestNodeLocalReclaim:
    def test_per_node_offline(self, manager):
        indices = [
            next(
                i
                for i in manager.hotplug_block_indices()
                if manager.node_of_block(i) == node
            )
            for node in (0, 1)
        ]
        for node, index in enumerate(indices):
            manager.online_block(index, manager.movable_zones[node])
        block0 = manager.blocks[indices[0]]
        manager.offline_and_remove(block0, migrate=False)
        assert manager.movable_zones[0].blocks == []
        assert len(manager.movable_zones[1].blocks) == 1
        manager.check_consistency()

    def test_migration_within_and_across_nodes(self, manager):
        for index in manager.hotplug_block_indices():
            manager.online_block(
                index, manager.movable_zones[manager.node_of_block(index)]
            )
        mm = MmStruct("p")
        manager.alloc_pages(
            mm, 2 * PAGES_PER_BLOCK, zones=[manager.movable_zones[0]]
        )
        block = manager.movable_zones[0].blocks[0]
        outcome = manager.migrate_block_out(
            block, target_zones=manager.zonelist(True, node=0)
        )
        assert outcome.migrated_pages > 0
        assert block.is_empty
        manager.check_consistency()
