"""Unit tests for the page cache."""

import pytest

from repro.errors import MemoryError_
from repro.mm.pagecache import CachedFile, PageCache


class TestCachedFile:
    def test_starts_uncached(self):
        file = CachedFile("lib", 100)
        assert file.cached_pages == 0
        assert file.uncached_pages == 100

    def test_negative_size_rejected(self):
        with pytest.raises(MemoryError_):
            CachedFile("lib", -1)

    def test_unique_file_ids(self):
        assert CachedFile("a", 1).file_id != CachedFile("b", 1).file_id


class TestPlanMapping:
    def test_unregistered_file_rejected(self):
        cache = PageCache()
        with pytest.raises(MemoryError_):
            cache.plan_mapping(CachedFile("lib", 10), 5)

    def test_cold_file_all_misses(self):
        cache = PageCache()
        file = cache.register(CachedFile("lib", 100))
        outcome = cache.plan_mapping(file, 60)
        assert outcome.miss_pages == 60
        assert outcome.hit_pages == 0

    def test_warm_prefix_hits(self):
        cache = PageCache()
        file = cache.register(CachedFile("lib", 100))
        cache.commit_misses(file, 40)
        outcome = cache.plan_mapping(file, 60)
        assert outcome.hit_pages == 40
        assert outcome.miss_pages == 20

    def test_request_clamped_to_file_size(self):
        cache = PageCache()
        file = cache.register(CachedFile("lib", 50))
        outcome = cache.plan_mapping(file, 500)
        assert outcome.total_pages == 50

    def test_fully_cached_file_all_hits(self):
        cache = PageCache()
        file = cache.register(CachedFile("lib", 30))
        cache.commit_misses(file, 30)
        outcome = cache.plan_mapping(file, 30)
        assert outcome.hit_pages == 30


class TestCommit:
    def test_commit_grows_cached_portion(self):
        cache = PageCache()
        file = cache.register(CachedFile("lib", 100))
        cache.commit_misses(file, 70)
        assert file.cached_pages == 70

    def test_commit_beyond_file_size_rejected(self):
        cache = PageCache()
        file = cache.register(CachedFile("lib", 100))
        with pytest.raises(MemoryError_):
            cache.commit_misses(file, 101)

    def test_cached_pages_total_across_files(self):
        cache = PageCache()
        a = cache.register(CachedFile("a", 10))
        b = cache.register(CachedFile("b", 20))
        cache.commit_misses(a, 10)
        cache.commit_misses(b, 5)
        assert cache.cached_pages_total == 15
