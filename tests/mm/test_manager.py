"""Unit tests for the guest memory manager."""

import pytest

from repro.errors import ConfigError, HotplugError, MemoryError_, OfflineFailed, OutOfMemory
from repro.mm.block import BlockState
from repro.mm.manager import MEMMAP_PAGES_PER_BLOCK, GuestMemoryManager
from repro.mm.mm_struct import MmStruct
from repro.mm.zone import Zone, ZoneType
from repro.units import GIB, MEMORY_BLOCK_SIZE, MIB, PAGES_PER_BLOCK


@pytest.fixture
def manager():
    return GuestMemoryManager(
        boot_memory_bytes=1 * GIB, hotplug_region_bytes=2 * GIB
    )


def online_all(manager, zone=None):
    zone = zone or manager.zone_movable
    for index in manager.hotplug_block_indices():
        manager.online_block(index, zone)


class TestBoot:
    def test_boot_blocks_online_in_normal(self, manager):
        assert len(manager.zone_normal.blocks) == 8
        assert all(
            b.state is BlockState.ONLINE for b in manager.zone_normal.blocks
        )

    def test_hotplug_blocks_start_absent(self, manager):
        for index in manager.hotplug_block_indices():
            assert manager.blocks[index].state is BlockState.ABSENT

    def test_kernel_boot_footprint_charged(self, manager):
        expected = 8 * MEMMAP_PAGES_PER_BLOCK + 8192
        assert manager.kernel.total_pages == expected

    def test_misaligned_boot_memory_rejected(self):
        with pytest.raises(ConfigError):
            GuestMemoryManager(100 * MIB, 0)

    def test_misaligned_region_rejected(self):
        with pytest.raises(ConfigError):
            GuestMemoryManager(GIB, 100 * MIB)

    def test_memmap_constant_matches_64b_struct_page(self):
        assert MEMMAP_PAGES_PER_BLOCK == PAGES_PER_BLOCK * 64 // 4096


class TestZonelist:
    def test_movable_prefers_movable_zone(self, manager):
        assert manager.zonelist(True) == [
            manager.zone_movable,
            manager.zone_normal,
        ]

    def test_unmovable_restricted_to_normal(self, manager):
        assert manager.zonelist(False) == [manager.zone_normal]

    def test_hotmem_zones_never_in_zonelist(self, manager):
        zone = Zone("HotMem#0", ZoneType.HOTMEM)
        manager.register_zone(zone)
        assert zone not in manager.zonelist(True)
        assert zone not in manager.zonelist(False)

    def test_duplicate_zone_rejected(self, manager):
        with pytest.raises(ConfigError):
            manager.register_zone(Zone("Normal", ZoneType.NORMAL))


class TestAllocation:
    def test_movable_allocation_falls_back_to_normal(self, manager):
        # ZONE_MOVABLE is empty at boot; movable allocations must land in
        # boot memory (the fallback of Section 2.2).
        mm = MmStruct("a")
        manager.alloc_pages(mm, 100)
        assert all(b.zone is manager.zone_normal for b in mm.block_pages)

    def test_allocation_splits_across_zones(self, manager):
        online_all(manager)
        mm = MmStruct("a")
        movable_free = manager.zone_movable.free_pages
        manager.alloc_pages(mm, movable_free + 100)
        in_movable = sum(
            pages
            for block, pages in mm.block_pages.items()
            if block.zone is manager.zone_movable
        )
        assert in_movable == movable_free

    def test_exhaustion_raises_without_mutation(self, manager):
        mm = MmStruct("a")
        free_before = manager.free_pages_total
        with pytest.raises(OutOfMemory):
            manager.alloc_pages(mm, free_before + 1)
        assert manager.free_pages_total == free_before
        assert mm.total_pages == 0

    def test_free_pages_partial(self, manager):
        online_all(manager)
        mm = MmStruct("a")
        manager.alloc_pages(mm, 1000)
        manager.free_pages(mm, 400)
        assert mm.total_pages == 600

    def test_free_more_than_owned_rejected(self, manager):
        mm = MmStruct("a")
        manager.alloc_pages(mm, 10)
        with pytest.raises(MemoryError_):
            manager.free_pages(mm, 11)

    def test_free_all_returns_count(self, manager):
        mm = MmStruct("a")
        manager.alloc_pages(mm, 123)
        assert manager.free_all(mm) == 123
        assert mm.total_pages == 0

    def test_free_all_empty_owner_is_noop(self, manager):
        assert manager.free_all(MmStruct("a")) == 0


class TestHotplug:
    def test_online_block_joins_zone(self, manager):
        index = manager.boot_blocks
        block = manager.online_block(index, manager.zone_movable)
        assert block.state is BlockState.ONLINE
        assert block.zone is manager.zone_movable
        assert manager.plugged_bytes == MEMORY_BLOCK_SIZE

    def test_online_charges_memmap(self, manager):
        kernel_before = manager.kernel.total_pages
        manager.online_block(manager.boot_blocks, manager.zone_movable)
        assert manager.kernel.total_pages == kernel_before + MEMMAP_PAGES_PER_BLOCK

    def test_online_boot_block_rejected(self, manager):
        with pytest.raises(HotplugError):
            manager.online_block(0, manager.zone_movable)

    def test_online_twice_rejected(self, manager):
        manager.online_block(manager.boot_blocks, manager.zone_movable)
        with pytest.raises(HotplugError):
            manager.online_block(manager.boot_blocks, manager.zone_movable)

    def test_offline_empty_block(self, manager):
        block = manager.online_block(manager.boot_blocks, manager.zone_movable)
        kernel_before = manager.kernel.total_pages
        outcome = manager.offline_and_remove(block, migrate=False)
        assert outcome.migrated_pages == 0
        assert block.state is BlockState.ABSENT
        assert manager.kernel.total_pages == kernel_before - MEMMAP_PAGES_PER_BLOCK

    def test_offline_occupied_without_migrate_rejected(self, manager):
        online_all(manager)
        mm = MmStruct("a")
        manager.alloc_pages(mm, manager.zone_movable.free_pages)
        block = manager.zone_movable.blocks[0]
        with pytest.raises(OfflineFailed):
            manager.offline_and_remove(block, migrate=False)

    def test_offline_absent_block_rejected(self, manager):
        block = manager.blocks[manager.boot_blocks]
        with pytest.raises(OfflineFailed):
            manager.offline_and_remove(block)

    def test_online_bytes_tracks_plug_state(self, manager):
        base = manager.online_bytes
        block = manager.online_block(manager.boot_blocks, manager.zone_movable)
        assert manager.online_bytes == base + MEMORY_BLOCK_SIZE
        manager.offline_and_remove(block, migrate=False)
        assert manager.online_bytes == base


class TestMigration:
    def test_migration_empties_block_and_preserves_totals(self, manager):
        online_all(manager)
        mm = MmStruct("a")
        manager.alloc_pages(mm, 3 * PAGES_PER_BLOCK)
        total_before = mm.total_pages
        block = manager.zone_movable.blocks[0]
        occupied = block.occupied_pages
        outcome = manager.migrate_block_out(block)
        assert outcome.migrated_pages == occupied
        assert block.is_empty
        assert mm.total_pages == total_before
        manager.check_consistency()

    def test_migration_with_unmovable_pages_fails(self, manager):
        block = manager.zone_normal.blocks[0]
        assert block.has_unmovable  # kernel boot footprint
        with pytest.raises(OfflineFailed):
            manager.migrate_block_out(block)

    def test_migration_without_headroom_fails(self, manager):
        # Fill everything so no free pages remain to migrate into.
        online_all(manager)
        mm = MmStruct("a")
        manager.alloc_pages(mm, manager.free_pages_total)
        block = manager.zone_movable.blocks[0]
        with pytest.raises(OfflineFailed):
            manager.migrate_block_out(block)
        manager.check_consistency()

    def test_migration_of_empty_block_is_trivial(self, manager):
        block = manager.online_block(manager.boot_blocks, manager.zone_movable)
        outcome = manager.migrate_block_out(block)
        assert outcome.migrated_pages == 0
        assert outcome.target_blocks == 0

    def test_migration_preserves_multiple_owners(self, manager):
        online_all(manager)
        mm_a, mm_b = MmStruct("a"), MmStruct("b")
        manager.alloc_pages(mm_a, 2 * PAGES_PER_BLOCK)
        manager.alloc_pages(mm_b, 2 * PAGES_PER_BLOCK)
        block = manager.zone_movable.blocks[0]
        sizes = (mm_a.total_pages, mm_b.total_pages)
        manager.migrate_block_out(block)
        assert (mm_a.total_pages, mm_b.total_pages) == sizes
        manager.check_consistency()


class TestIsolationPath:
    def test_isolate_then_offline(self, manager):
        block = manager.online_block(manager.boot_blocks, manager.zone_movable)
        manager.isolate_block(block)
        manager.offline_and_remove(block, migrate=False)
        assert block.state is BlockState.ABSENT
        manager.check_consistency()

    def test_isolate_unzoned_block_rejected(self, manager):
        with pytest.raises(OfflineFailed):
            manager.isolate_block(manager.blocks[manager.boot_blocks])

    def test_unisolate_roundtrip(self, manager):
        block = manager.online_block(manager.boot_blocks, manager.zone_movable)
        free_before = manager.zone_movable.free_pages
        manager.isolate_block(block)
        manager.unisolate_block(block)
        assert manager.zone_movable.free_pages == free_before
        manager.check_consistency()
