"""Unit tests for zones."""

import pytest

from repro.errors import MemoryError_, OutOfMemory
from repro.mm.block import BlockState, MemoryBlock
from repro.mm.owner import KernelOwner, PageOwner
from repro.mm.placement import SequentialPlacement
from repro.mm.zone import Zone, ZoneType
from repro.units import PAGES_PER_BLOCK


def online_block(index):
    block = MemoryBlock(index)
    block.state = BlockState.ONLINE
    block.free_pages = PAGES_PER_BLOCK
    return block


@pytest.fixture
def zone():
    z = Zone("Movable", ZoneType.MOVABLE, SequentialPlacement())
    for i in range(3):
        z.add_block(online_block(i))
    return z


@pytest.fixture
def owner():
    return PageOwner("proc")


class TestMembership:
    def test_add_block_updates_counters(self, zone):
        assert zone.free_pages == 3 * PAGES_PER_BLOCK
        assert zone.total_pages == 3 * PAGES_PER_BLOCK

    def test_add_block_twice_rejected(self, zone):
        with pytest.raises(MemoryError_):
            zone.add_block(zone.blocks[0])

    def test_add_offline_block_rejected(self, zone):
        block = MemoryBlock(9)
        with pytest.raises(MemoryError_):
            zone.add_block(block)

    def test_blocks_kept_sorted_by_index(self):
        z = Zone("Z", ZoneType.MOVABLE)
        z.add_block(online_block(5))
        z.add_block(online_block(2))
        assert [b.index for b in z.blocks] == [2, 5]

    def test_detach_requires_empty(self, zone, owner):
        zone.allocate(owner, 10)
        with pytest.raises(MemoryError_):
            zone.detach_block(zone.blocks[0])

    def test_detach_updates_counter(self, zone):
        block = zone.blocks[0]
        zone.detach_block(block)
        assert zone.free_pages == 2 * PAGES_PER_BLOCK
        assert block.zone is None

    def test_detach_foreign_block_rejected(self, zone):
        with pytest.raises(MemoryError_):
            zone.detach_block(online_block(99))


class TestAllocate:
    def test_allocation_charges_and_mirrors(self, zone, owner):
        plan = zone.allocate(owner, 100)
        assert sum(plan.values()) == 100
        assert owner.total_pages == 100
        assert zone.free_pages == 3 * PAGES_PER_BLOCK - 100

    def test_allocation_beyond_free_raises(self, zone, owner):
        with pytest.raises(OutOfMemory):
            zone.allocate(owner, 3 * PAGES_PER_BLOCK + 1)

    def test_failed_allocation_leaves_state(self, zone, owner):
        try:
            zone.allocate(owner, 10**9)
        except OutOfMemory:
            pass
        assert zone.free_pages == 3 * PAGES_PER_BLOCK
        assert owner.total_pages == 0

    def test_unmovable_owner_rejected_in_movable_zone(self, zone):
        with pytest.raises(MemoryError_):
            zone.allocate(KernelOwner(), 1)

    def test_unmovable_owner_allowed_in_normal_zone(self):
        z = Zone("Normal", ZoneType.NORMAL)
        z.add_block(online_block(0))
        z.allocate(KernelOwner(), 10)
        assert z.occupied_pages == 10

    def test_hotmem_zone_is_movable_only(self):
        z = Zone("HotMem#0", ZoneType.HOTMEM)
        z.add_block(online_block(0))
        with pytest.raises(MemoryError_):
            z.allocate(KernelOwner(), 1)

    def test_invalid_page_count_rejected(self, zone, owner):
        with pytest.raises(MemoryError_):
            zone.allocate(owner, 0)


class TestRelease:
    def test_release_restores_counters(self, zone, owner):
        plan = zone.allocate(owner, 50)
        block, pages = next(iter(plan.items()))
        zone.release(owner, block, pages)
        assert zone.free_pages == 3 * PAGES_PER_BLOCK
        assert owner.total_pages == 0

    def test_release_foreign_block_rejected(self, zone, owner):
        with pytest.raises(MemoryError_):
            zone.release(owner, online_block(42), 1)


class TestIsolation:
    def test_isolation_hides_free_pages(self, zone):
        block = zone.blocks[0]
        zone.isolate_block(block)
        assert zone.free_pages == 2 * PAGES_PER_BLOCK
        assert block.isolated

    def test_unisolate_restores(self, zone):
        block = zone.blocks[0]
        zone.isolate_block(block)
        zone.unisolate_block(block)
        assert zone.free_pages == 3 * PAGES_PER_BLOCK
        assert not block.isolated

    def test_double_isolation_rejected(self, zone):
        zone.isolate_block(zone.blocks[0])
        with pytest.raises(MemoryError_):
            zone.isolate_block(zone.blocks[0])

    def test_unisolate_non_isolated_rejected(self, zone):
        with pytest.raises(MemoryError_):
            zone.unisolate_block(zone.blocks[0])

    def test_release_into_isolated_block_stays_hidden(self, zone, owner):
        zone.allocate(owner, 10)  # sequential → block 0
        block = zone.blocks[0]
        zone.isolate_block(block)
        free_before = zone.free_pages
        zone.release(owner, block, 10)
        assert zone.free_pages == free_before
        assert block.free_pages == PAGES_PER_BLOCK

    def test_allocation_skips_isolated_block(self, zone, owner):
        zone.isolate_block(zone.blocks[0])
        plan = zone.allocate(owner, 10)
        assert zone.blocks[0] not in plan

    def test_detach_isolated_block(self, zone):
        block = zone.blocks[0]
        zone.isolate_block(block)
        zone.detach_block(block)
        assert zone.free_pages == 2 * PAGES_PER_BLOCK
        assert not block.isolated

    def test_free_pages_excluding_handles_isolated(self, zone):
        block = zone.blocks[0]
        zone.isolate_block(block)
        assert zone.free_pages_excluding({block}) == 2 * PAGES_PER_BLOCK
