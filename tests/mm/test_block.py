"""Unit tests for memory blocks."""

import pytest

from repro.errors import MemoryError_
from repro.mm.block import BlockState, MemoryBlock
from repro.mm.owner import KernelOwner, PageOwner
from repro.units import PAGES_PER_BLOCK


@pytest.fixture
def online_block():
    block = MemoryBlock(3)
    block.state = BlockState.ONLINE
    block.free_pages = PAGES_PER_BLOCK
    return block


@pytest.fixture
def owner():
    return PageOwner("proc-a")


class TestLifecycle:
    def test_starts_absent_and_empty(self):
        block = MemoryBlock(0)
        assert block.state is BlockState.ABSENT
        assert block.free_pages == 0
        assert not block.owner_pages

    def test_charge_requires_online(self, owner):
        block = MemoryBlock(0)
        with pytest.raises(MemoryError_):
            block.charge(owner, 1)

    def test_charge_rejected_when_isolated(self, online_block, owner):
        online_block.isolated = True
        with pytest.raises(MemoryError_):
            online_block.charge(owner, 1)


class TestAccounting:
    def test_charge_moves_pages_to_owner(self, online_block, owner):
        online_block.charge(owner, 100)
        assert online_block.free_pages == PAGES_PER_BLOCK - 100
        assert online_block.owner_pages[owner] == 100
        assert online_block.occupied_pages == 100

    def test_charge_accumulates_per_owner(self, online_block, owner):
        online_block.charge(owner, 50)
        online_block.charge(owner, 25)
        assert online_block.owner_pages[owner] == 75

    def test_overcharge_rejected(self, online_block, owner):
        with pytest.raises(MemoryError_):
            online_block.charge(owner, PAGES_PER_BLOCK + 1)

    def test_zero_charge_rejected(self, online_block, owner):
        with pytest.raises(MemoryError_):
            online_block.charge(owner, 0)

    def test_uncharge_returns_pages(self, online_block, owner):
        online_block.charge(owner, 100)
        online_block.uncharge(owner, 40)
        assert online_block.free_pages == PAGES_PER_BLOCK - 60
        assert online_block.owner_pages[owner] == 60

    def test_uncharge_all_removes_owner_entry(self, online_block, owner):
        online_block.charge(owner, 10)
        online_block.uncharge(owner, 10)
        assert owner not in online_block.owner_pages
        assert online_block.is_empty

    def test_uncharge_more_than_held_rejected(self, online_block, owner):
        online_block.charge(owner, 10)
        with pytest.raises(MemoryError_):
            online_block.uncharge(owner, 11)

    def test_uncharge_unknown_owner_rejected(self, online_block, owner):
        with pytest.raises(MemoryError_):
            online_block.uncharge(owner, 1)


class TestMovability:
    def test_kernel_pages_make_block_unmovable(self, online_block):
        online_block.charge(KernelOwner(), 10)
        assert online_block.has_unmovable

    def test_user_pages_keep_block_movable(self, online_block, owner):
        online_block.charge(owner, 10)
        assert not online_block.has_unmovable
        assert online_block.movable_occupied_pages == 10

    def test_mixed_occupancy_counts_only_movable(self, online_block, owner):
        online_block.charge(KernelOwner(), 10)
        online_block.charge(owner, 20)
        assert online_block.movable_occupied_pages == 20
        assert online_block.occupied_pages == 30
