"""Trace routing across a fleet: locality, balancing, saturation."""

import pytest

from repro.cluster.provision import VmSpec
from repro.cluster.routing import TraceRouter, get_routing_policy
from repro.errors import ClusterError, ConfigError
from repro.faas.agent import FunctionDeployment
from repro.faas.policy import DeploymentMode, KeepAlivePolicy
from repro.units import SEC
from repro.workloads.functions import get_function
from repro.workloads.traces import InvocationTrace


def deploy_vm(fleet, name, function="html", max_instances=2):
    spec = get_function(function)
    handle = fleet.provision(
        VmSpec.for_function(
            name,
            DeploymentMode.VANILLA,
            spec.memory_limit_bytes,
            concurrency=max_instances,
        )
    )
    handle.deploy(
        [FunctionDeployment(spec, max_instances=max_instances)],
        KeepAlivePolicy(keep_alive_ns=30 * SEC, recycle_interval_ns=10 * SEC),
    )
    return handle


def spaced_trace(function, count, gap_ns=SEC):
    return InvocationTrace(function, [i * gap_ns for i in range(count)])


class TestSticky:
    def test_all_invocations_stay_on_the_bound_vm(self, sim, fleet):
        router = TraceRouter(sim, policy="sticky")
        a = deploy_vm(fleet, "vm-a")
        b = deploy_vm(fleet, "vm-b")
        router.register(a)
        router.register(b)
        router.drive(spaced_trace("html", 6))
        router.run(until_ns=30 * SEC)
        assert len(router.records_on("vm-a")) == 6
        assert router.records_on("vm-b") == []
        assert router.policy.bound_vm("html") == "vm-a"

    def test_saturated_binding_rejects_rather_than_spills(self, sim, fleet):
        router = TraceRouter(sim, policy="sticky", max_queue_per_vm=0)
        router.register(deploy_vm(fleet, "vm-a", max_instances=1))
        router.register(deploy_vm(fleet, "vm-b", max_instances=1))
        # Four simultaneous arrivals against a 1-deep bound VM.
        router.drive(InvocationTrace("html", [0, 0, 0, 0]))
        router.run(until_ns=30 * SEC)
        assert router.records_on("vm-b") == []
        assert router.rejection_count > 0


class TestLeastLoaded:
    def test_simultaneous_arrivals_spread_across_vms(self, sim, fleet):
        router = TraceRouter(sim, policy="least-loaded")
        router.register(deploy_vm(fleet, "vm-a"))
        router.register(deploy_vm(fleet, "vm-b"))
        router.drive(InvocationTrace("html", [0, 0, 0, 0]))
        router.run(until_ns=30 * SEC)
        assert len(router.records_on("vm-a")) == 2
        assert len(router.records_on("vm-b")) == 2


class TestMemoryHeadroom:
    def test_routes_to_most_headroom(self, sim, fleet):
        router = TraceRouter(sim, policy="memory-headroom")
        router.register(deploy_vm(fleet, "vm-a", max_instances=1))
        router.register(deploy_vm(fleet, "vm-b", max_instances=4))
        router.drive(InvocationTrace("html", [0]))
        router.run(until_ns=30 * SEC)
        # Both idle: the larger region has more headroom.
        assert len(router.records_on("vm-b")) == 1


class TestSaturation:
    def test_rejections_are_values_not_exceptions(self, sim, fleet):
        router = TraceRouter(sim, policy="least-loaded", max_queue_per_vm=0)
        router.register(deploy_vm(fleet, "vm-a", max_instances=1))
        router.drive(InvocationTrace("html", [0] * 5))
        router.run(until_ns=30 * SEC)  # must not raise across joins
        assert router.rejection_count == 4
        rejected = [r for r in router.records if not r.ok]
        assert len(rejected) == 4
        assert all(r.error == "rejected" for r in rejected)
        assert all(
            rej.reason == "saturated" for rej in router.rejections
        )
        assert len(router.successful_records()) == 1

    def test_unknown_function_rejected_as_no_deployment(self, sim, fleet):
        router = TraceRouter(sim)
        router.register(deploy_vm(fleet, "vm-a"))
        router.drive(InvocationTrace("bert", [0]))
        router.run(until_ns=5 * SEC)
        assert router.rejections[0].reason == "no-deployment"

    def test_in_flight_drains_to_zero(self, sim, fleet):
        router = TraceRouter(sim, policy="least-loaded")
        router.register(deploy_vm(fleet, "vm-a"))
        router.drive(spaced_trace("html", 4))
        router.run(until_ns=60 * SEC)
        assert all(slot.in_flight == 0 for slot in router.slots)


class TestRegistration:
    def test_unknown_policy_rejected(self, sim):
        with pytest.raises(ConfigError):
            TraceRouter(sim, policy="random")

    def test_register_accepts_handle_or_agent(self, sim, fleet):
        router = TraceRouter(sim)
        handle = deploy_vm(fleet, "vm-a")
        router.register(handle.agent)
        with pytest.raises(ClusterError):
            router.register(handle)  # same VM twice
