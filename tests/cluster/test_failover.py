"""Fleet failure recovery: breakers, watchdog, failover, evacuation."""

import pytest

from repro.cluster.failover import (
    BreakerPolicy,
    CircuitBreaker,
    FailoverCoordinator,
    FailoverPolicy,
    Watchdog,
)
from repro.cluster.provision import Fleet, VmSpec
from repro.cluster.routing import TraceRouter
from repro.errors import ConfigError
from repro.faas.agent import FunctionDeployment
from repro.faas.policy import DeploymentMode, KeepAlivePolicy
from repro.faults.domains import domain_plan
from repro.faults.injector import FaultInjector, FaultPlan, FaultSpec
from repro.faults.policy import RetryBudget
from repro.faults.sites import HOST_CRASH, VM_OOM_KILL
from repro.units import MS, SEC
from repro.workloads.functions import get_function
from repro.workloads.traces import InvocationTrace


def deploy_vm(fleet, name, function="html", max_instances=2):
    spec = get_function(function)
    handle = fleet.provision(
        VmSpec.for_function(
            name,
            DeploymentMode.VANILLA,
            spec.memory_limit_bytes,
            concurrency=max_instances,
        )
    )
    handle.deploy(
        [FunctionDeployment(spec, max_instances=max_instances)],
        KeepAlivePolicy(keep_alive_ns=30 * SEC, recycle_interval_ns=1 * SEC),
    )
    return handle


class TestBreakerPolicy:
    def test_rejects_non_positive_knobs(self):
        with pytest.raises(ConfigError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ConfigError):
            BreakerPolicy(reset_timeout_ns=0)
        with pytest.raises(ConfigError):
            BreakerPolicy(half_open_probes=0)


class TestCircuitBreaker:
    def make(self, threshold=3, reset_ns=500 * MS, probes=1):
        return CircuitBreaker(
            "vm-a",
            BreakerPolicy(
                failure_threshold=threshold,
                reset_timeout_ns=reset_ns,
                half_open_probes=probes,
            ),
        )

    def test_trips_open_at_the_failure_threshold(self):
        breaker = self.make(threshold=3)
        assert breaker.record_failure(now=1) is None
        assert breaker.record_failure(now=2) is None
        transition = breaker.record_failure(now=3)
        assert transition is not None
        assert (transition.from_state, transition.to_state) == ("closed", "open")
        assert transition.consecutive_failures == 3
        assert breaker.state == "open"
        assert not breaker.allows()

    def test_success_resets_the_consecutive_count(self):
        breaker = self.make(threshold=2)
        assert breaker.record_failure(now=1) is None
        assert breaker.record_success(now=2) is None
        assert breaker.record_failure(now=3) is None  # count restarted
        assert breaker.state == "closed"

    def test_poll_moves_open_to_half_open_after_the_reset_timeout(self):
        breaker = self.make(threshold=1, reset_ns=100)
        assert breaker.record_failure(now=0) is not None
        assert breaker.poll(now=50) is None  # still dwelling
        transition = breaker.poll(now=100)
        assert transition is not None
        assert (transition.from_state, transition.to_state) == (
            "open",
            "half-open",
        )
        assert breaker.allows()

    def test_half_open_probe_success_closes(self):
        breaker = self.make(threshold=1, reset_ns=100)
        breaker.record_failure(now=0)
        breaker.poll(now=100)
        breaker.on_dispatch()
        transition = breaker.record_success(now=150)
        assert transition is not None
        assert transition.to_state == "closed"
        assert breaker.allows()

    def test_half_open_probe_failure_reopens(self):
        breaker = self.make(threshold=1, reset_ns=100)
        breaker.record_failure(now=0)
        breaker.poll(now=100)
        breaker.on_dispatch()
        transition = breaker.record_failure(now=150)
        assert transition is not None
        assert transition.to_state == "open"
        # The new dwell restarts from the reopen time.
        assert breaker.poll(now=200) is None
        assert breaker.poll(now=250) is not None

    def test_half_open_admits_a_bounded_number_of_probes(self):
        breaker = self.make(threshold=1, reset_ns=100, probes=2)
        breaker.record_failure(now=0)
        breaker.poll(now=100)
        assert breaker.allows()
        breaker.on_dispatch()
        assert breaker.allows()
        breaker.on_dispatch()
        assert not breaker.allows()  # both probes in flight


class TestFailoverPolicy:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigError):
            FailoverPolicy(evacuation_coldstart_ns=0)
        with pytest.raises(ConfigError):
            FailoverPolicy(spike_fraction=1.5)


class TestDeadlineShedding:
    def test_queued_past_deadline_sheds_as_structured_rejection(
        self, sim, fleet
    ):
        router = TraceRouter(
            sim,
            policy="least-loaded",
            max_queue_per_vm=4,
            budget=RetryBudget(deadline_ns=1 * MS),
        )
        router.register(deploy_vm(fleet, "vm-a", max_instances=1))
        # Two simultaneous arrivals against one instance: the second
        # queues past its 1 ms deadline while the first is served.
        router.drive(InvocationTrace("html", [0, 0]))
        router.run(until_ns=30 * SEC)
        deadline = [r for r in router.rejections if r.reason == "deadline"]
        assert len(deadline) == 1
        shed = [r for r in router.records if r.error == "deadline"]
        assert len(shed) == 1 and not shed[0].ok
        assert len(router.successful_records()) == 1

    def test_no_deadline_means_the_queue_waits(self, sim, fleet):
        router = TraceRouter(sim, policy="least-loaded", max_queue_per_vm=4)
        router.register(deploy_vm(fleet, "vm-a", max_instances=1))
        router.drive(InvocationTrace("html", [0, 0]))
        router.run(until_ns=30 * SEC)
        assert router.rejection_count == 0
        assert len(router.successful_records()) == 2


class TestFailOver:
    def test_in_flight_work_reroutes_to_a_sibling(self, sim, fleet):
        router = TraceRouter(
            sim,
            policy="sticky",
            max_queue_per_vm=4,
            budget=RetryBudget(max_failovers=1),
        )
        router.register(deploy_vm(fleet, "vm-a"))
        router.register(deploy_vm(fleet, "vm-b"))
        router.drive(InvocationTrace("html", [0]))
        outcomes = []

        def crash():
            router.retire("vm-a")
            outcomes.extend(router.fail_over("vm-a", "vm-lost"))

        sim.schedule(1 * MS, crash)
        router.run(until_ns=30 * SEC)
        assert len(outcomes) == 1
        assert outcomes[0].rerouted and outcomes[0].reason == "vm-lost"
        assert len(router.records_on("vm-b")) == 1
        assert router.records_on("vm-b")[0].ok
        assert all(slot.in_flight == 0 for slot in router.slots)

    def test_exhausted_budget_becomes_a_structured_rejection(self, sim, fleet):
        router = TraceRouter(sim, policy="sticky", max_queue_per_vm=4)
        router.register(deploy_vm(fleet, "vm-a"))
        router.register(deploy_vm(fleet, "vm-b"))
        router.drive(InvocationTrace("html", [0]))
        outcomes = []

        def crash():
            router.retire("vm-a")
            outcomes.extend(router.fail_over("vm-a", "vm-lost"))

        sim.schedule(1 * MS, crash)
        router.run(until_ns=30 * SEC)  # NO_FAILOVER: fail in place
        assert len(outcomes) == 1
        assert not outcomes[0].rerouted
        assert router.rejections[0].reason == "vm-lost"
        assert router.records_on("vm-b") == []

    def test_sticky_rebinds_to_a_survivor_after_retirement(self, sim, fleet):
        router = TraceRouter(
            sim,
            policy="sticky",
            max_queue_per_vm=4,
            budget=RetryBudget(max_failovers=1),
        )
        router.register(deploy_vm(fleet, "vm-a"))
        router.register(deploy_vm(fleet, "vm-b"))
        router.drive(InvocationTrace("html", [0]))
        sim.schedule(1 * MS, router.retire, "vm-a")
        router.drive(InvocationTrace("html", [2 * SEC]))
        router.run(until_ns=30 * SEC)
        assert router.policy.bound_vm("html") == "vm-b"
        assert len(router.records_on("vm-b")) >= 1


class TestWatchdog:
    def test_detects_a_wedged_recycler_by_heartbeat_staleness(self, sim, fleet):
        handle = deploy_vm(fleet, "vm-a")
        agent = handle.agent
        agent.start_recycler(until_ns=60 * SEC)
        wedged = []

        def on_wedge(vm_name, victim):
            wedged.append(vm_name)
            victim.force_recycle()

        watchdog = Watchdog(
            sim,
            agents_fn=fleet.agents,
            on_wedge=on_wedge,
            interval_ns=1 * SEC,
            timeout_ns=3 * SEC,
            until_ns=30 * SEC,
        )
        watchdog.start()
        sim.schedule(5 * SEC, agent.wedge)
        sim.run(until=30 * SEC)
        assert wedged == ["vm-a"]
        assert watchdog.detections == 1
        assert not agent.wedged
        # Heartbeats resumed after the force-recycle.
        assert agent.last_heartbeat_ns is not None
        assert agent.last_heartbeat_ns > 8 * SEC

    def test_healthy_recycler_is_never_flagged(self, sim, fleet):
        handle = deploy_vm(fleet, "vm-a")
        handle.agent.start_recycler(until_ns=30 * SEC)
        watchdog = Watchdog(
            sim,
            agents_fn=fleet.agents,
            on_wedge=lambda name, agent: pytest.fail(f"flagged {name}"),
            interval_ns=1 * SEC,
            timeout_ns=3 * SEC,
            until_ns=30 * SEC,
        )
        watchdog.start()
        sim.run(until=30 * SEC)
        assert watchdog.detections == 0

    def test_rejects_non_positive_cadence(self, sim, fleet):
        with pytest.raises(ConfigError):
            Watchdog(
                sim,
                agents_fn=fleet.agents,
                on_wedge=lambda name, agent: None,
                interval_ns=0,
                timeout_ns=1,
                until_ns=1,
            )


def build_cluster(sim, hosts=3, vms_per_host=2):
    """A multi-host fleet with routed, deployed VMs spread per node."""
    fleet = Fleet(sim, hosts=hosts, placement="numa-spread")
    router = TraceRouter(
        sim,
        policy="least-loaded",
        max_queue_per_vm=8,
        budget=RetryBudget(max_failovers=2, deadline_ns=2 * SEC),
        breakers=BreakerPolicy(),
    )
    for i in range(hosts * vms_per_host):
        handle = deploy_vm(fleet, f"vm-{i}")
        router.register(handle)
    return fleet, router


class TestHostCrashEndToEnd:
    def test_crashed_host_evacuates_and_the_ledger_reconciles(self, sim):
        fleet, router = build_cluster(sim)
        plan = FaultPlan(
            (FaultSpec(HOST_CRASH, probability=1.0, max_fires=1),)
        )
        injector = FaultInjector(plan, seed=0)
        coordinator = FailoverCoordinator(fleet, router, injector)
        coordinator.start(tick_ns=5 * SEC, until_ns=20 * SEC, seed=0)
        for i in range(6):
            router.drive(
                InvocationTrace("html", [j * SEC + i * 100 * MS for j in range(20)])
            )
        router.run(until_ns=60 * SEC)
        sim.run()  # drain: every remaining process is finitely bounded
        coordinator.finalize()

        assert len(fleet.down_hosts) == 1
        assert injector.unresolved() == []
        assert injector.count(HOST_CRASH) == 1
        assert fleet.ledger_drift_bytes() == 0
        assert len(coordinator.evacuations) == 1
        evacuation = coordinator.evacuations[0]
        assert evacuation.ok
        assert len(evacuation.evacuated) == 2
        assert all("~e" in name for name in evacuation.evacuated)
        # Replacements were re-registered with the router and the fleet
        # is back at full strength on the survivors.
        alive = [h for h in fleet.handles if h.vm._alive]
        assert len(alive) == 6
        crashed = next(iter(fleet.down_hosts))
        assert all(h.host_index != crashed for h in alive)
        for name in evacuation.evacuated:
            assert router.is_registered(name)
            assert not router.slot(name).retired
        # Nothing leaked an exception across a join: every arrival ends
        # as exactly one structured record (rejections included).
        assert all(slot.in_flight == 0 for slot in router.slots)
        assert len(router.records) == 6 * 20
        for handle in alive:
            handle.vm.check_consistency()

    def test_same_seed_crashes_the_same_host_at_the_same_tick(self, sim):
        def storm():
            local_sim = type(sim)()
            fleet, router = build_cluster(local_sim)
            injector = FaultInjector(
                FaultPlan(
                    (FaultSpec(HOST_CRASH, probability=1.0, max_fires=1),)
                ),
                seed=7,
            )
            coordinator = FailoverCoordinator(fleet, router, injector)
            coordinator.start(tick_ns=5 * SEC, until_ns=20 * SEC, seed=7)
            router.drive(
                InvocationTrace("html", [j * SEC for j in range(15)])
            )
            router.run(until_ns=60 * SEC)
            local_sim.run()
            coordinator.finalize()
            fault = injector.injected[0]
            return (
                sorted(fleet.down_hosts),
                fault.time_ns,
                tuple(coordinator.evacuations[0].evacuated),
            )

        assert storm() == storm()


class TestOomKill:
    def test_oom_killed_vm_is_reprovisioned_and_rerouted(self, sim):
        fleet, router = build_cluster(sim)
        plan = FaultPlan(
            (FaultSpec(VM_OOM_KILL, probability=1.0, max_fires=1),)
        )
        injector = FaultInjector(plan, seed=0)
        coordinator = FailoverCoordinator(fleet, router, injector)
        coordinator.start(tick_ns=5 * SEC, until_ns=20 * SEC, seed=0)
        router.drive(InvocationTrace("html", [j * SEC for j in range(15)]))
        router.run(until_ns=60 * SEC)
        sim.run()
        coordinator.finalize()

        assert injector.unresolved() == []
        assert fleet.ledger_drift_bytes() == 0
        # One VM died, one generation-suffixed replacement took over.
        dead = [h for h in fleet.handles if not h.vm._alive]
        assert len(dead) == 1
        replacements = [h for h in fleet.handles if "~e" in h.name]
        assert len(replacements) == 1 and replacements[0].vm._alive
        assert router.is_registered(replacements[0].name)
        assert coordinator.recovery.count("reprovisioned") == 1

    def test_domain_plan_storm_resolves_every_fault(self, sim):
        fleet, router = build_cluster(sim)
        injector = FaultInjector(domain_plan(0.5), seed=3)
        coordinator = FailoverCoordinator(fleet, router, injector)
        coordinator.start(tick_ns=2 * SEC, until_ns=20 * SEC, seed=3)
        for agent in fleet.agents():
            agent.start_recycler(until_ns=30 * SEC)
        router.drive(InvocationTrace("html", [j * SEC for j in range(20)]))
        router.run(until_ns=60 * SEC)
        sim.run()
        coordinator.finalize()
        assert injector.count() > 0
        assert injector.unresolved() == []
        assert fleet.ledger_drift_bytes() == 0
