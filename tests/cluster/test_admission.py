"""Density arbitration: commitment math, the ledger, and watermarks."""

import pytest

from repro.cluster.admission import (
    ArbitrationPolicy,
    DEFAULT_ARBITRATION,
    DensityArbiter,
)
from repro.cluster.provision import Fleet, VmSpec
from repro.errors import AdmissionRejected, ConfigError
from repro.faas.policy import DeploymentMode
from repro.sim import Simulator
from repro.units import GIB, MIB


def make_arbiter(policy=DEFAULT_ARBITRATION, hosts=1, memory=8 * GIB):
    fleet = Fleet(
        Simulator(),
        hosts=hosts,
        nodes_per_host=1,
        memory_per_node=memory,
        arbitration=policy,
    )
    return DensityArbiter(fleet.hosts, policy)


class TestCommitment:
    BOOT = 512 * MIB
    REGION = 2 * GIB
    SHARED = 256 * MIB

    def commit(self, mode):
        return make_arbiter().commitment(
            mode, self.BOOT, self.REGION, self.SHARED
        )

    def test_overprovisioned_pays_full_footprint(self):
        assert self.commit(DeploymentMode.OVERPROVISIONED) == (
            self.BOOT + self.REGION
        )

    def test_vanilla_discounts_a_quarter_of_the_elastic_region(self):
        elastic = self.REGION - self.SHARED
        assert self.commit(DeploymentMode.VANILLA) == (
            self.BOOT + self.REGION - int(0.25 * elastic)
        )

    def test_hotmem_discounts_three_quarters(self):
        elastic = self.REGION - self.SHARED
        assert self.commit(DeploymentMode.HOTMEM) == (
            self.BOOT + self.REGION - int(0.75 * elastic)
        )

    def test_mode_ordering(self):
        assert (
            self.commit(DeploymentMode.HOTMEM)
            < self.commit(DeploymentMode.VANILLA)
            < self.commit(DeploymentMode.OVERPROVISIONED)
        )


class TestLedger:
    def test_charge_and_release_roundtrip(self):
        arbiter = make_arbiter()
        arbiter.charge(0, 0, GIB)
        assert arbiter.committed_bytes(0, 0) == GIB
        arbiter.release(0, 0, GIB)
        assert arbiter.committed_bytes(0, 0) == 0

    def test_charge_beyond_limit_rejected(self):
        arbiter = make_arbiter()
        with pytest.raises(ConfigError):
            arbiter.charge(0, 0, 9 * GIB)

    def test_release_underflow_rejected(self):
        arbiter = make_arbiter()
        with pytest.raises(ConfigError):
            arbiter.release(0, 0, GIB)

    def test_limit_scales_with_fraction(self):
        arbiter = make_arbiter(ArbitrationPolicy(limit_fraction=0.5))
        assert arbiter.limit_bytes(0, 0) == 4 * GIB


class TestPolicyValidation:
    def test_fraction_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            ArbitrationPolicy(limit_fraction=1.5)
        with pytest.raises(ConfigError):
            ArbitrationPolicy(hotmem_credit=-0.1)


class TestWatermark:
    def test_pressure_flips_on_real_usage(self, fleet):
        node = fleet.hosts[0].node(0)
        arbiter = DensityArbiter(
            fleet.hosts, ArbitrationPolicy(pressure_watermark=0.5)
        )
        assert not arbiter.over_watermark(0, 0)
        node.charge(node.memory_bytes // 2 + MIB)
        assert arbiter.over_watermark(0, 0)
        node.discharge(node.memory_bytes // 2 + MIB)


class TestStructuredRejection:
    def test_saturated_vs_oversized(self):
        fleet = Fleet(
            Simulator(), hosts=1, nodes_per_host=1, memory_per_node=2 * GIB
        )
        oversized = fleet.admit(VmSpec("huge", region_bytes=4 * GIB))
        assert not oversized.admitted and oversized.reason == "oversized"

        fleet.provision(
            VmSpec("first", region_bytes=GIB, boot_memory_bytes=512 * MIB)
        )
        saturated = fleet.admit(
            VmSpec("second", region_bytes=GIB, boot_memory_bytes=512 * MIB)
        )
        assert not saturated.admitted and saturated.reason == "saturated"

    def test_provision_raises_with_result_attached(self):
        fleet = Fleet(
            Simulator(), hosts=1, nodes_per_host=1, memory_per_node=2 * GIB
        )
        with pytest.raises(AdmissionRejected) as excinfo:
            fleet.provision(VmSpec("huge", region_bytes=4 * GIB))
        assert excinfo.value.result.reason == "oversized"


class TestFailureDomains:
    def test_mark_host_down_excludes_its_nodes_from_candidates(self):
        arbiter = make_arbiter(hosts=3)
        arbiter.mark_host_down(1)
        assert arbiter.host_is_down(1)
        assert not arbiter.host_is_down(0)
        assert all(c.host_index != 1 for c in arbiter.candidates())
        assert {c.host_index for c in arbiter.candidates()} == {0, 2}

    def test_mark_host_down_is_idempotent_and_bounds_checked(self):
        arbiter = make_arbiter(hosts=2)
        arbiter.mark_host_down(0)
        arbiter.mark_host_down(0)
        assert arbiter.host_is_down(0)
        with pytest.raises(ConfigError):
            arbiter.mark_host_down(5)

    def test_charging_a_down_host_is_refused(self):
        arbiter = make_arbiter(hosts=2)
        arbiter.mark_host_down(0)
        with pytest.raises(ConfigError):
            arbiter.charge(0, 0, 1 * GIB)
        arbiter.charge(1, 0, 1 * GIB)  # survivors still admit

    def test_drift_report_is_empty_when_the_ledger_is_exact(self):
        arbiter = make_arbiter()
        arbiter.charge(0, 0, 1 * GIB)
        assert arbiter.drift_report([(0, 0, 1 * GIB)]) == {}

    def test_drift_report_spots_stale_charges(self):
        arbiter = make_arbiter()
        arbiter.charge(0, 0, 1 * GIB)
        arbiter.charge(0, 0, 2 * GIB)
        # One of the two VMs died without releasing: 2 GiB stale.
        assert arbiter.drift_report([(0, 0, 1 * GIB)]) == {(0, 0): 2 * GIB}

    def test_reconcile_rebuilds_the_ledger_and_reports_repaired_bytes(self):
        arbiter = make_arbiter(hosts=2)
        arbiter.charge(0, 0, 1 * GIB)
        arbiter.charge(1, 0, 2 * GIB)
        # Host 0 crashed: its VM is gone but its charge is on the books.
        survivors = [(1, 0, 2 * GIB)]
        repaired = arbiter.reconcile(survivors)
        assert repaired == 1 * GIB
        assert arbiter.drift_report(survivors) == {}
        assert arbiter.reconcile(survivors) == 0  # now exact

    def test_reconcile_restores_resident_counts(self):
        arbiter = make_arbiter()
        arbiter.charge(0, 0, 1 * GIB)
        arbiter.charge(0, 0, 1 * GIB)
        arbiter.reconcile([(0, 0, 1 * GIB)])
        # Exactly one resident survives; releasing it empties the node.
        arbiter.release(0, 0, 1 * GIB)
        with pytest.raises(ConfigError):
            arbiter.release(0, 0, 1 * GIB)


class TestPressureShed:
    def test_unknown_shed_mode_rejected(self):
        with pytest.raises(ConfigError):
            ArbitrationPolicy(pressure_shed="most")

    def test_overage_is_usage_above_the_watermark(self, fleet):
        node = fleet.hosts[0].node(0)
        arbiter = DensityArbiter(
            fleet.hosts, ArbitrationPolicy(pressure_watermark=0.5)
        )
        assert arbiter.overage_bytes(0, 0) == 0
        node.charge(node.memory_bytes // 2 + 64 * MIB)
        assert arbiter.overage_bytes(0, 0) == 64 * MIB
        node.discharge(node.memory_bytes // 2 + 64 * MIB)

    def test_bounded_shed_passes_the_overage_budget(self):
        """Under ``bounded`` the pressure loop hands each resident agent
        the node's overage; under ``all`` it passes no budget and every
        evictable container dies."""
        from repro.faas.agent import Agent

        captured = {}
        original = Agent.request_reclaim

        def spy(self, need_bytes=None):
            captured.setdefault(self.vm.name, []).append(need_bytes)
            return original(self, need_bytes=need_bytes)

        for shed in ("all", "bounded"):
            captured.clear()
            sim = Simulator()
            fleet = Fleet(
                sim,
                hosts=1,
                nodes_per_host=1,
                memory_per_node=4 * GIB,
                arbitration=ArbitrationPolicy(
                    pressure_watermark=0.05, pressure_shed=shed
                ),
            )
            handle = fleet.provision(
                VmSpec("pressured", region_bytes=GIB)
            )
            from repro.faas.agent import FunctionDeployment
            from repro.faas.policy import KeepAlivePolicy
            from repro.units import SEC
            from repro.workloads.functions import get_function

            handle.deploy(
                [FunctionDeployment(get_function("html"), max_instances=1)],
                KeepAlivePolicy(keep_alive_ns=60 * SEC),
            )
            Agent.request_reclaim = spy
            try:
                fleet.start_pressure_monitor(period_ns=SEC, until_ns=2 * SEC)
                sim.run(until=3 * SEC)
            finally:
                Agent.request_reclaim = original
            budgets = captured["pressured"]
            assert budgets, f"no pressure pass under {shed!r}"
            if shed == "all":
                assert all(b is None for b in budgets)
            else:
                assert all(b is not None and b > 0 for b in budgets)
