"""Placement policies: selection rules and the no-overcommit property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.placement import (
    BestFitPlacement,
    FirstFitPlacement,
    NodeCandidate,
    NumaSpreadPlacement,
    PLACEMENT_POLICIES,
    get_placement_policy,
)
from repro.cluster.provision import Fleet, VmSpec
from repro.errors import ConfigError
from repro.sim import Simulator
from repro.units import GIB, MEMORY_BLOCK_SIZE, MIB


def candidate(host, node, limit_gib, committed_gib, residents=0):
    return NodeCandidate(
        host_index=host,
        node_id=node,
        limit_bytes=int(limit_gib * GIB),
        committed_bytes=int(committed_gib * GIB),
        resident_vms=residents,
    )


CANDIDATES = [
    candidate(0, 0, 8, 6, residents=3),  # 2 GiB headroom
    candidate(0, 1, 8, 7, residents=1),  # 1 GiB headroom
    candidate(1, 0, 8, 2, residents=2),  # 6 GiB headroom
]


class TestSelection:
    def test_first_fit_takes_first_with_room(self):
        choice = FirstFitPlacement().select(GIB, CANDIDATES)
        assert (choice.host_index, choice.node_id) == (0, 0)

    def test_best_fit_takes_tightest_fit(self):
        choice = BestFitPlacement().select(GIB, CANDIDATES)
        assert (choice.host_index, choice.node_id) == (0, 1)

    def test_numa_spread_takes_least_occupied(self):
        choice = NumaSpreadPlacement().select(GIB, CANDIDATES)
        assert (choice.host_index, choice.node_id) == (0, 1)

    @pytest.mark.parametrize("name", sorted(PLACEMENT_POLICIES))
    def test_none_when_nothing_fits(self, name):
        assert get_placement_policy(name).select(7 * GIB, CANDIDATES) is None

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            get_placement_policy("round-robin")


class TestNoOvercommit:
    """Property: whatever the policy and request stream, the arbiter's
    per-node committed bytes never exceed the arbitration limit."""

    @settings(max_examples=25, deadline=None)
    @given(
        policy=st.sampled_from(sorted(PLACEMENT_POLICIES)),
        region_blocks=st.lists(st.integers(1, 24), min_size=1, max_size=8),
    )
    def test_admissions_never_exceed_limit(self, policy, region_blocks):
        fleet = Fleet(
            Simulator(),
            hosts=2,
            nodes_per_host=1,
            memory_per_node=4 * GIB,
            placement=policy,
        )
        for index, blocks in enumerate(region_blocks):
            fleet.try_provision(
                VmSpec(
                    f"vm-{index}",
                    region_bytes=blocks * MEMORY_BLOCK_SIZE,
                    boot_memory_bytes=256 * MIB,
                )
            )
            for host_index, node, _ in fleet.node_views():
                committed = fleet.arbiter.committed_bytes(
                    host_index, node.node_id
                )
                assert committed <= fleet.arbiter.limit_bytes(
                    host_index, node.node_id
                )
