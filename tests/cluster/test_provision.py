"""Fleet provisioning: the one path that builds hosts and VMs."""

import pytest

from repro.cluster.provision import Fleet, VmSpec, provision_vm
from repro.errors import ClusterError, ConfigError
from repro.faas.agent import FunctionDeployment
from repro.faas.policy import DeploymentMode, KeepAlivePolicy
from repro.sim import Simulator
from repro.units import GIB, MIB, SEC
from repro.workloads.functions import get_function


class TestProvisioning:
    def test_vm_lands_where_admission_said(self, fleet):
        handle = fleet.provision(VmSpec("vm", region_bytes=GIB))
        assert (handle.host_index, handle.node_id) == (
            handle.admission.host_index,
            handle.admission.node_id,
        )
        assert handle.vm.config.node_id == handle.node_id

    def test_committed_charged_then_released_on_shutdown(self, fleet):
        handle = fleet.provision(VmSpec("vm", region_bytes=GIB))
        charged = fleet.arbiter.committed_bytes(
            handle.host_index, handle.node_id
        )
        assert charged == handle.admission.committed_bytes > 0
        handle.shutdown()
        assert (
            fleet.arbiter.committed_bytes(handle.host_index, handle.node_id)
            == 0
        )
        assert handle.vm.backed_bytes == 0

    def test_duplicate_name_rejected(self, fleet):
        fleet.provision(VmSpec("vm", region_bytes=GIB))
        with pytest.raises(ClusterError):
            fleet.provision(VmSpec("vm", region_bytes=GIB))

    def test_overprovisioned_fully_plugged_at_boot(self, fleet):
        handle = fleet.provision(
            VmSpec(
                "op", mode=DeploymentMode.OVERPROVISIONED, region_bytes=GIB
            )
        )
        assert handle.vm.device.plugged_bytes == GIB

    def test_hotmem_spec_requires_geometry(self):
        with pytest.raises(ConfigError):
            VmSpec("bad", mode=DeploymentMode.HOTMEM, region_bytes=GIB)

    def test_fleet_context_wired_for_sanitizer(self, fleet):
        handle = fleet.provision(VmSpec("vm", region_bytes=GIB))
        assert handle.vm.manager._fleet_context is fleet

    def test_node_views_track_residents(self, fleet):
        handle = fleet.provision(VmSpec("vm", region_bytes=GIB))
        views = {
            (host_index, node.node_id): vms
            for host_index, node, vms in fleet.node_views()
        }
        assert handle.vm in views[(handle.host_index, handle.node_id)]
        handle.shutdown()
        views = {
            (host_index, node.node_id): vms
            for host_index, node, vms in fleet.node_views()
        }
        assert handle.vm not in views[(handle.host_index, handle.node_id)]

    def test_provision_vm_helper(self):
        handle = provision_vm(
            Simulator(), VmSpec("solo", region_bytes=GIB)
        )
        assert handle.vm.config.name == "solo"


class TestDeploy:
    def test_deploy_builds_agent_once(self, fleet):
        spec = get_function("html")
        handle = fleet.provision(
            VmSpec.for_function(
                "vm", DeploymentMode.VANILLA, spec.memory_limit_bytes,
                concurrency=2,
            )
        )
        policy = KeepAlivePolicy(
            keep_alive_ns=10 * SEC, recycle_interval_ns=5 * SEC
        )
        agent = handle.deploy(
            [FunctionDeployment(spec, max_instances=2)], policy
        )
        assert fleet.agents() == [agent]
        with pytest.raises(ClusterError):
            handle.deploy([FunctionDeployment(spec, max_instances=2)], policy)


class TestPressureMonitor:
    def test_pressure_fires_reclaim_above_watermark(self):
        from repro.cluster.admission import ArbitrationPolicy

        sim = Simulator()
        fleet = Fleet(
            sim,
            hosts=1,
            nodes_per_host=1,
            memory_per_node=2 * GIB,
            arbitration=ArbitrationPolicy(pressure_watermark=0.1),
        )
        spec = get_function("html")
        handle = fleet.provision(
            VmSpec.for_function(
                "vm",
                DeploymentMode.HOTMEM,
                spec.memory_limit_bytes,
                concurrency=2,
                boot_memory_bytes=256 * MIB,
            )
        )
        handle.deploy(
            [FunctionDeployment(spec, max_instances=2)],
            KeepAlivePolicy(
                keep_alive_ns=1 * SEC, recycle_interval_ns=1 * SEC
            ),
        )
        fleet.start_pressure_monitor(period_ns=1 * SEC, until_ns=5 * SEC)
        sim.run(until=5 * SEC)
        # Boot memory alone exceeds the 10% watermark, so every period
        # recorded a pressure event and nudged the agent's recycler.
        assert fleet.pressure_events
        assert handle.agent.pressure_reclaims > 0
