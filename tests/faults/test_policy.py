"""Unit tests for retry/backoff and resilience policies."""

import pytest

from repro.errors import ConfigError
from repro.faults import (
    NO_RESILIENCE,
    NO_RETRY,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.units import MS


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(
            max_retries=5, base_backoff_ns=1 * MS, backoff_multiplier=2.0
        )
        assert policy.backoff_ns(1) == 1 * MS
        assert policy.backoff_ns(2) == 2 * MS
        assert policy.backoff_ns(3) == 4 * MS

    def test_backoff_caps_at_max(self):
        policy = RetryPolicy(
            max_retries=20, base_backoff_ns=1 * MS, max_backoff_ns=8 * MS
        )
        assert policy.backoff_ns(10) == 8 * MS

    def test_attempt_must_be_positive(self):
        with pytest.raises(ConfigError):
            NO_RETRY.backoff_ns(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"base_backoff_ns": 0},
            {"backoff_multiplier": 0.5},
            {"block_timeout_ns": 0},
            {"quarantine_after": -2},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)

    def test_inert_default(self):
        assert NO_RETRY.max_retries == 0
        assert NO_RETRY.quarantine_after == 0


class TestResiliencePolicy:
    def test_deferred_backoff_doubles(self):
        policy = ResiliencePolicy(deferred_attempts=3, deferred_backoff_ns=50 * MS)
        assert policy.deferred_backoff_for(1) == 50 * MS
        assert policy.deferred_backoff_for(2) == 100 * MS
        assert policy.deferred_backoff_for(3) == 200 * MS

    def test_deferred_attempt_must_be_positive(self):
        with pytest.raises(ConfigError):
            NO_RESILIENCE.deferred_backoff_for(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"plug_retries": -1},
            {"plug_backoff_ns": 0},
            {"degrade_after": -1},
            {"deferred_attempts": -1},
            {"deferred_backoff_ns": 0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ResiliencePolicy(**kwargs)

    def test_inert_default_carries_inert_retry(self):
        assert NO_RESILIENCE.retry == NO_RETRY
        assert NO_RESILIENCE.plug_retries == 0
        assert NO_RESILIENCE.degrade_after == 0
        assert NO_RESILIENCE.deferred_attempts == 0
