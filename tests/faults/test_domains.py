"""Fleet failure domains: the plan builder and the tick scheduler."""

import pytest

from repro.errors import ConfigError
from repro.faults.domains import (
    DEFAULT_DOMAIN_CAPS,
    DomainScheduler,
    domain_plan,
)
from repro.faults.injector import FaultInjector
from repro.faults.sites import (
    AGENT_WEDGE,
    ALL_SITES,
    DATAPATH_SITES,
    DOMAIN_SITES,
    HOST_CRASH,
    HOST_PRESSURE_SPIKE,
    ROUTER_LINK_DOWN,
    VM_OOM_KILL,
)
from repro.units import SEC


class RecordingTarget:
    """A DomainTarget that only records what the scheduler dispatches."""

    def __init__(self, injector, hosts=3, vms=("vm-a", "vm-b", "vm-c")):
        self.injector = injector
        self.hosts = list(range(hosts))
        self.vms = list(vms)
        #: (site, victim, time_ns) in dispatch order.
        self.dispatched = []

    def live_hosts(self):
        return list(self.hosts)

    def live_vms(self):
        return list(self.vms)

    def _note(self, site, victim, fault):
        self.dispatched.append((site, victim, fault.time_ns))
        self.injector.resolve(fault, "absorbed")

    def crash_host(self, host_index, fault):
        self._note(HOST_CRASH, host_index, fault)

    def pressure_spike(self, host_index, fault):
        self._note(HOST_PRESSURE_SPIKE, host_index, fault)

    def oom_kill(self, vm_name, fault):
        self._note(VM_OOM_KILL, vm_name, fault)

    def wedge_agent(self, vm_name, fault):
        self._note(AGENT_WEDGE, vm_name, fault)

    def link_down(self, vm_name, fault):
        self._note(ROUTER_LINK_DOWN, vm_name, fault)


def run_storm(sim, probability=1.0, seed=0, hosts=3, vms=("vm-a", "vm-b")):
    injector = FaultInjector(domain_plan(probability), seed=seed)
    target = RecordingTarget(injector, hosts=hosts, vms=vms)
    scheduler = DomainScheduler(
        sim, injector, target, tick_ns=2 * SEC, until_ns=20 * SEC, seed=seed
    )
    scheduler.start()
    sim.run()
    return injector, target, scheduler


class TestSiteTaxonomy:
    def test_domain_and_datapath_sites_are_disjoint(self):
        assert not set(DOMAIN_SITES) & set(DATAPATH_SITES)

    def test_all_sites_is_the_union(self):
        assert set(ALL_SITES) == set(DOMAIN_SITES) | set(DATAPATH_SITES)

    def test_every_domain_site_has_a_default_cap(self):
        assert set(DEFAULT_DOMAIN_CAPS) == set(DOMAIN_SITES)


class TestDomainPlan:
    def test_applies_the_default_caps(self):
        plan = domain_plan(0.5)
        assert {spec.site for spec in plan.specs} == set(DOMAIN_SITES)
        for spec in plan.specs:
            assert spec.probability == 0.5
            assert spec.max_fires == DEFAULT_DOMAIN_CAPS[spec.site]

    def test_caps_override_and_uncap(self):
        plan = domain_plan(0.1, caps={HOST_CRASH: 5, VM_OOM_KILL: None})
        by_site = {spec.site: spec for spec in plan.specs}
        assert by_site[HOST_CRASH].max_fires == 5
        assert by_site[VM_OOM_KILL].max_fires is None
        assert (
            by_site[AGENT_WEDGE].max_fires == DEFAULT_DOMAIN_CAPS[AGENT_WEDGE]
        )

    def test_site_subset(self):
        plan = domain_plan(1.0, sites=(HOST_CRASH,))
        assert [spec.site for spec in plan.specs] == [HOST_CRASH]


class TestDomainScheduler:
    def test_rejects_bad_cadence(self, sim):
        injector = FaultInjector(domain_plan(1.0))
        target = RecordingTarget(injector)
        with pytest.raises(ConfigError):
            DomainScheduler(
                sim, injector, target, tick_ns=0, until_ns=10, seed=0
            )
        with pytest.raises(ConfigError):
            DomainScheduler(
                sim, injector, target, tick_ns=1, until_ns=-1, seed=0
            )

    def test_fires_respect_the_per_site_caps(self, sim):
        injector, target, _ = run_storm(sim, probability=1.0)
        for site in DOMAIN_SITES:
            assert injector.count(site) == DEFAULT_DOMAIN_CAPS[site]
        assert injector.unresolved() == []

    def test_every_dispatch_names_a_live_victim(self, sim):
        injector, target, _ = run_storm(sim, probability=1.0)
        for site, victim, _time in target.dispatched:
            if site in (HOST_CRASH, HOST_PRESSURE_SPIKE):
                assert victim in target.hosts
            else:
                assert victim in target.vms

    def test_same_seed_reproduces_the_same_storm(self):
        from repro.sim.engine import Simulator

        def one():
            sim = Simulator()
            _, target, _ = run_storm(sim, probability=0.7, seed=11)
            return target.dispatched

        assert one() == one()

    def test_different_seeds_differ(self):
        from repro.sim.engine import Simulator

        def one(seed):
            sim = Simulator()
            _, target, _ = run_storm(sim, probability=0.7, seed=seed)
            return target.dispatched

        assert one(1) != one(2)

    def test_empty_population_absorbs_the_fault(self, sim):
        injector = FaultInjector(domain_plan(1.0))
        target = RecordingTarget(injector, hosts=0, vms=())
        scheduler = DomainScheduler(
            sim, injector, target, tick_ns=2 * SEC, until_ns=10 * SEC, seed=0
        )
        scheduler.start()
        sim.run()
        assert target.dispatched == []
        assert scheduler.absorbed == injector.count() > 0
        assert injector.unresolved() == []

    def test_stop_ends_the_storm_early(self, sim):
        injector = FaultInjector(domain_plan(1.0))
        target = RecordingTarget(injector)
        scheduler = DomainScheduler(
            sim, injector, target, tick_ns=2 * SEC, until_ns=60 * SEC, seed=0
        )
        scheduler.start()
        sim.schedule(3 * SEC, scheduler.stop)
        sim.run()
        # Only the first tick (t=2s) got to fire.
        assert all(t <= 2 * SEC for _, _, t in target.dispatched)

    def test_disabled_plan_never_fires(self, sim):
        injector = FaultInjector(domain_plan(0.0))
        target = RecordingTarget(injector)
        DomainScheduler(
            sim, injector, target, tick_ns=2 * SEC, until_ns=10 * SEC, seed=0
        ).start()
        sim.run()
        assert injector.count() == 0
        assert target.dispatched == []
