"""Span causality under faults.

The driver threads each block's span into every fault it fires and every
recovery event it records, so a quarantined block's whole failure story
— fault, retries, quarantine — lives in the trace of the unplug request
that triggered it, and a traced run leaves nothing open and perturbs
nothing (the legacy event logs stay byte-identical).
"""

from repro.cluster.provision import Fleet, VmSpec
from repro.faults import (
    DRIVER_MIGRATE_FAIL,
    DRIVER_OFFLINE_UNMOVABLE,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.obs import traced
from repro.obs.session import context_for
from repro.sim import Simulator
from repro.units import GIB, MEMORY_BLOCK_SIZE


def build_vm(specs, retry):
    """A fleet VM with a fault plan, on its own simulator.

    The fleet must be constructed while the tracing session is
    installed: contexts bind at provision time.
    """
    sim = Simulator()
    fleet = Fleet(sim)
    vm = fleet.provision(
        VmSpec(
            "fault-vm",
            region_bytes=1 * GIB,
            faults=FaultPlan(tuple(specs)),
            retry=retry,
        )
    ).vm
    return sim, vm


def run_request(sim, process):
    sim.run()
    return process.value


def spans_named(tracer, name):
    return [s for s in tracer.spans() if s.name == name]


class TestQuarantineCausality:
    def drive_to_quarantine(self):
        sim, vm = build_vm(
            [FaultSpec(DRIVER_OFFLINE_UNMOVABLE, 1.0)],
            retry=RetryPolicy(max_retries=0, quarantine_after=2),
        )
        tracer = context_for(sim).tracer
        run_request(sim, vm.request_plug(2 * MEMORY_BLOCK_SIZE))
        run_request(sim, vm.request_unplug(1 * MEMORY_BLOCK_SIZE))
        run_request(sim, vm.request_unplug(1 * MEMORY_BLOCK_SIZE))
        assert len(vm.manager.quarantined_blocks) == 1
        return vm, tracer

    def test_quarantine_spans_share_the_unplug_trace(self):
        with traced():
            vm, tracer = self.drive_to_quarantine()
            unplugs = spans_named(tracer, "device.unplug")
            assert len(unplugs) == 2
            quarantine = next(
                s
                for s in spans_named(tracer, "recovery")
                if s.attrs.get("path") == "quarantined"
            )
            # The quarantine decision is causally chained to the unplug
            # request whose failure crossed the threshold (the second).
            assert quarantine.trace_id == unplugs[1].trace_id
            assert quarantine.trace_id != unplugs[0].trace_id
            faults = [
                s
                for s in spans_named(tracer, "fault")
                if s.attrs.get("site") == DRIVER_OFFLINE_UNMOVABLE
            ]
            assert len(faults) == 2
            # Each fired fault belongs to the trace of its own request.
            assert [f.trace_id for f in faults] == [
                u.trace_id for u in unplugs
            ]
            block_spans = spans_named(tracer, "driver.unplug.block")
            assert block_spans
            assert {b.trace_id for b in block_spans} == {
                u.trace_id for u in unplugs
            }

    def test_nothing_left_open_after_faulted_run(self):
        with traced() as session:
            vm, tracer = self.drive_to_quarantine()
            del vm
            assert tracer.open_spans() == 0
            # finalize() has nothing to cut: every span closed on path.
            assert session.finalize() == 0
            assert session.open_spans() == 0


class TestRetryCausality:
    def test_retried_block_spans_share_the_unplug_trace(self):
        with traced():
            sim, vm = build_vm(
                [FaultSpec(DRIVER_MIGRATE_FAIL, 1.0, max_fires=1)],
                retry=RetryPolicy(max_retries=2),
            )
            tracer = context_for(sim).tracer
            run_request(sim, vm.request_plug(2 * MEMORY_BLOCK_SIZE))
            result = run_request(
                sim, vm.request_unplug(1 * MEMORY_BLOCK_SIZE)
            )
            assert result.fully_unplugged
            (unplug,) = spans_named(tracer, "device.unplug")
            retried = next(
                s
                for s in spans_named(tracer, "recovery")
                if s.attrs.get("path") == "retried"
            )
            assert retried.trace_id == unplug.trace_id
            assert retried.attrs["attempts"] == 2
            (fault,) = spans_named(tracer, "fault")
            assert fault.trace_id == unplug.trace_id
            assert fault.attrs["resolution"] == "retried"


class TestConsumerEquivalence:
    SPECS = (
        FaultSpec(DRIVER_OFFLINE_UNMOVABLE, 1.0),
    )

    def drive(self, vm, sim):
        run_request(sim, vm.request_plug(2 * MEMORY_BLOCK_SIZE))
        run_request(sim, vm.request_unplug(1 * MEMORY_BLOCK_SIZE))
        run_request(sim, vm.request_unplug(1 * MEMORY_BLOCK_SIZE))

    def test_traced_run_leaves_legacy_logs_byte_identical(self):
        retry = RetryPolicy(max_retries=0, quarantine_after=2)
        with traced():
            sim, traced_vm = build_vm(self.SPECS, retry)
            self.drive(traced_vm, sim)
        sim, plain_vm = build_vm(self.SPECS, retry)
        self.drive(plain_vm, sim)
        assert traced_vm.recovery_log.events == plain_vm.recovery_log.events
        assert traced_vm.recovery_log.events
        assert traced_vm.tracer.events == plain_vm.tracer.events
        assert traced_vm.tracer.events
