"""Unit tests for the deterministic fault-injection plane."""

import pytest

from repro.errors import ConfigError
from repro.faults import (
    AGENT_SPAWN_FAIL,
    ALL_SITES,
    DEVICE_PLUG_NACK,
    DRIVER_MIGRATE_FAIL,
    NO_FAULTS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)


def plan_for(site, probability=1.0, **kw):
    return FaultPlan((FaultSpec(site, probability=probability, **kw),))


class TestSpecValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault site"):
            FaultSpec("device.plug.frobnicate", probability=0.5)

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ConfigError, match="probability"):
            FaultSpec(DEVICE_PLUG_NACK, probability=1.5)

    def test_negative_max_fires_rejected(self):
        with pytest.raises(ConfigError, match="max_fires"):
            FaultSpec(DEVICE_PLUG_NACK, probability=0.5, max_fires=-1)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigError, match="delay_ns"):
            FaultSpec(DEVICE_PLUG_NACK, probability=0.5, delay_ns=-1)

    def test_duplicate_site_in_plan_rejected(self):
        spec = FaultSpec(DEVICE_PLUG_NACK, probability=0.5)
        with pytest.raises(ConfigError, match="duplicate"):
            FaultPlan((spec, spec))

    def test_uniform_covers_every_site(self):
        plan = FaultPlan.uniform(0.1)
        assert {s.site for s in plan.specs} == set(ALL_SITES)
        assert plan.spec_for(DEVICE_PLUG_NACK).probability == 0.1
        assert plan.spec_for("device.plug.nack") is plan.spec_for(
            DEVICE_PLUG_NACK
        )


class TestDeterminism:
    def test_same_seed_same_fire_pattern(self):
        plan = FaultPlan.uniform(0.3)
        a = FaultInjector(plan, seed=7)
        b = FaultInjector(plan, seed=7)
        pattern_a = [a.fire(site) is not None for site in ALL_SITES * 20]
        pattern_b = [b.fire(site) is not None for site in ALL_SITES * 20]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)

    def test_per_site_streams_are_independent(self):
        # Enabling a second site must not shift the first site's draws.
        solo = FaultInjector(plan_for(DRIVER_MIGRATE_FAIL, 0.4), seed=3)
        both = FaultInjector(
            FaultPlan(
                (
                    FaultSpec(DRIVER_MIGRATE_FAIL, probability=0.4),
                    FaultSpec(DEVICE_PLUG_NACK, probability=0.4),
                )
            ),
            seed=3,
        )
        for _ in range(50):
            assert (solo.fire(DRIVER_MIGRATE_FAIL) is None) == (
                both.fire(DRIVER_MIGRATE_FAIL) is None
            )
            both.fire(DEVICE_PLUG_NACK)

    def test_different_seeds_diverge(self):
        plan = FaultPlan.uniform(0.5)
        a = FaultInjector(plan, seed=1)
        b = FaultInjector(plan, seed=2)
        pattern_a = [a.fire(site) is not None for site in ALL_SITES * 10]
        pattern_b = [b.fire(site) is not None for site in ALL_SITES * 10]
        assert pattern_a != pattern_b


class TestFiring:
    def test_disabled_site_never_fires(self):
        injector = FaultInjector(plan_for(DEVICE_PLUG_NACK, 1.0), seed=0)
        for _ in range(10):
            assert injector.fire(DRIVER_MIGRATE_FAIL) is None
        assert injector.count(DRIVER_MIGRATE_FAIL) == 0

    def test_zero_probability_site_is_disabled(self):
        injector = FaultInjector(plan_for(DEVICE_PLUG_NACK, 0.0), seed=0)
        assert not injector.enabled
        assert injector.fire(DEVICE_PLUG_NACK) is None

    def test_max_fires_caps_injection(self):
        injector = FaultInjector(
            plan_for(AGENT_SPAWN_FAIL, 1.0, max_fires=2), seed=0
        )
        fired = [injector.fire(AGENT_SPAWN_FAIL) for _ in range(5)]
        assert [f is not None for f in fired] == [True, True, False, False, False]
        assert injector.count(AGENT_SPAWN_FAIL) == 2

    def test_fault_carries_context_and_sequence(self):
        injector = FaultInjector(plan_for(DEVICE_PLUG_NACK, 1.0), seed=0)
        first = injector.fire(DEVICE_PLUG_NACK, requested_blocks=4)
        second = injector.fire(DEVICE_PLUG_NACK, requested_blocks=8)
        assert first.sequence == 0 and second.sequence == 1
        assert first.context == {"requested_blocks": 4}

    def test_delay_ns_zero_when_disabled(self):
        injector = FaultInjector(
            plan_for(DEVICE_PLUG_NACK, 1.0, delay_ns=123), seed=0
        )
        assert injector.delay_ns(DEVICE_PLUG_NACK) == 123
        assert injector.delay_ns(DRIVER_MIGRATE_FAIL) == 0


class TestResolutionAccounting:
    def test_unresolved_until_resolved(self):
        injector = FaultInjector(plan_for(DEVICE_PLUG_NACK, 1.0), seed=0)
        fault = injector.fire(DEVICE_PLUG_NACK)
        assert injector.unresolved() == [fault]
        injector.resolve(fault, "retried", attempts=2)
        assert injector.unresolved() == []
        assert fault.resolution == "retried" and fault.attempts == 2

    def test_counts_by_resolution(self):
        injector = FaultInjector(plan_for(DEVICE_PLUG_NACK, 1.0), seed=0)
        a = injector.fire(DEVICE_PLUG_NACK)
        injector.fire(DEVICE_PLUG_NACK)
        injector.resolve(a, "retried")
        assert injector.counts_by_resolution() == {
            "retried": 1,
            "unresolved": 1,
        }


class TestNoFaults:
    def test_no_faults_is_inert(self):
        assert not NO_FAULTS.enabled
        for site in ALL_SITES:
            assert NO_FAULTS.fire(site) is None
        assert NO_FAULTS.count() == 0
        assert NO_FAULTS.unresolved() == []

    def test_bind_sim_is_noop_on_disabled_injector(self, sim):
        NO_FAULTS.bind_sim(sim)
        assert NO_FAULTS.sim is None

    def test_bind_sim_keeps_first_binding(self, sim):
        from repro.sim.engine import Simulator

        injector = FaultInjector(plan_for(DEVICE_PLUG_NACK, 1.0), seed=0)
        injector.bind_sim(sim)
        injector.bind_sim(Simulator())
        assert injector.sim is sim
