"""Device- and driver-level fault recovery on a live VM.

Covers the host/device sites (NACK, partial plug, stalled response) and
the guest driver's retry/backoff/quarantine machinery, including the
MemSanitizer invariants over every recovery path.
"""

import pytest

from repro.faults import (
    DEVICE_PLUG_NACK,
    DEVICE_PLUG_PARTIAL,
    DEVICE_RESPONSE_DELAY,
    DRIVER_BLOCK_TIMEOUT,
    DRIVER_MIGRATE_FAIL,
    DRIVER_OFFLINE_UNMOVABLE,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.cluster.provision import Fleet, VmSpec
from repro.sim import Simulator
from repro.units import GIB, MEMORY_BLOCK_SIZE, MS


def make_vm(sim, fleet, specs, retry=None, region=1 * GIB):
    del sim  # the fleet owns the simulator
    plan = FaultPlan(tuple(specs))
    return fleet.provision(
        VmSpec("fault-vm", region_bytes=region, faults=plan, retry=retry)
    ).vm


def run_plug(sim, vm, n_blocks):
    process = vm.request_plug(n_blocks * MEMORY_BLOCK_SIZE)
    sim.run()
    return process.value


def run_unplug(sim, vm, n_blocks):
    process = vm.request_unplug(n_blocks * MEMORY_BLOCK_SIZE)
    sim.run()
    return process.value


class TestDeviceSites:
    def test_nack_refuses_whole_request_without_charging(self, sim, fleet):
        vm = make_vm(
            sim, fleet, [FaultSpec(DEVICE_PLUG_NACK, 1.0, max_fires=1)]
        )
        result = run_plug(sim, vm, 2)
        assert result.error == "nack"
        assert result.plugged_bytes == 0
        assert result.fault is not None
        assert vm.device.plugged_bytes == 0
        assert vm.faults.unresolved() == [result.fault]
        # The caller decides the path; mimic the agent's retry.
        vm.faults.resolve(result.fault, "retried")
        retry = run_plug(sim, vm, 2)
        assert retry.error == "" and retry.fully_plugged
        assert vm.device.plugged_bytes == 2 * MEMORY_BLOCK_SIZE
        vm.check_consistency()

    def test_partial_plug_grants_half(self, sim, fleet):
        vm = make_vm(
            sim, fleet, [FaultSpec(DEVICE_PLUG_PARTIAL, 1.0, max_fires=1)]
        )
        result = run_plug(sim, vm, 4)
        assert result.error == "partial"
        assert result.plugged_bytes == 2 * MEMORY_BLOCK_SIZE
        assert not result.fully_plugged
        assert vm.device.plugged_bytes == 2 * MEMORY_BLOCK_SIZE
        vm.faults.resolve(result.fault, "retried")
        vm.check_consistency()

    def test_partial_never_starves_single_block_requests(self, sim, fleet):
        vm = make_vm(sim, fleet, [FaultSpec(DEVICE_PLUG_PARTIAL, 1.0)])
        result = run_plug(sim, vm, 1)
        # A 1-block request cannot be halved; the site never fires on it.
        assert result.error == "" and result.fully_plugged

    def test_response_delay_absorbed_and_logged(self, sim, fleet):
        delay = 3 * MS
        vm = make_vm(
            sim,
            fleet,
            [FaultSpec(DEVICE_RESPONSE_DELAY, 1.0, max_fires=1, delay_ns=delay)],
        )
        baseline_vm = Fleet(Simulator()).provision(
            VmSpec("base", region_bytes=1 * GIB)
        ).vm
        result = run_plug(sim, vm, 1)
        assert result.error == ""
        # The stall is self-absorbed: resolved by the device, no caller
        # involvement needed.
        assert vm.faults.unresolved() == []
        events = vm.recovery_log.by_path()
        assert events == {"absorbed": 1}
        assert vm.recovery_log.events[0].latency_ns == delay
        del baseline_vm


class TestDriverRetry:
    def test_migrate_failure_retried_to_success(self, sim, fleet):
        vm = make_vm(
            sim,
            fleet,
            [FaultSpec(DRIVER_MIGRATE_FAIL, 1.0, max_fires=1)],
            retry=RetryPolicy(max_retries=2),
        )
        run_plug(sim, vm, 2)
        before = sim.now
        result = run_unplug(sim, vm, 1)
        assert result.fully_unplugged
        assert vm.device.plugged_bytes == 1 * MEMORY_BLOCK_SIZE
        # The retry waited out one backoff interval.
        assert sim.now - before >= vm.retry_policy.backoff_ns(1)
        assert vm.faults.unresolved() == []
        assert vm.recovery_log.by_path() == {"retried": 1}
        assert vm.recovery_log.events[0].attempts == 2
        vm.check_consistency()

    def test_timeout_site_costs_block_timeout(self, sim, fleet):
        timeout = 7 * MS
        vm = make_vm(
            sim,
            fleet,
            [FaultSpec(DRIVER_BLOCK_TIMEOUT, 1.0, max_fires=1)],
            retry=RetryPolicy(max_retries=1, block_timeout_ns=timeout),
        )
        run_plug(sim, vm, 1)
        before = sim.now
        result = run_unplug(sim, vm, 1)
        assert result.fully_unplugged
        assert sim.now - before >= timeout
        assert vm.faults.unresolved() == []

    def test_exhausted_retries_fall_back_to_partial_unplug(self, sim, fleet):
        vm = make_vm(
            sim,
            fleet,
            [FaultSpec(DRIVER_OFFLINE_UNMOVABLE, 1.0)],
            retry=RetryPolicy(max_retries=1),
        )
        run_plug(sim, vm, 2)
        result = run_unplug(sim, vm, 1)
        assert result.unplugged_bytes == 0
        assert vm.device.plugged_bytes == 2 * MEMORY_BLOCK_SIZE
        assert vm.faults.unresolved() == []
        assert vm.recovery_log.by_path() == {"partial-unplug": 1}
        vm.check_consistency()

    def test_no_retry_policy_fails_fast(self, sim, fleet):
        vm = make_vm(sim, fleet, [FaultSpec(DRIVER_MIGRATE_FAIL, 1.0, max_fires=1)])
        run_plug(sim, vm, 2)
        result = run_unplug(sim, vm, 2)
        # One block lost to the fault, the other unplugged; the inert
        # NO_RETRY policy gave up after a single attempt (stock
        # virtio-mem partial-unplug semantics).
        assert result.unplugged_bytes == 1 * MEMORY_BLOCK_SIZE
        assert vm.recovery_log.by_path() == {"partial-unplug": 1}
        assert vm.recovery_log.events[0].attempts == 1
        assert vm.faults.unresolved() == []


class TestQuarantine:
    def make_failing_vm(self, sim, fleet, quarantine_after=2):
        return make_vm(
            sim,
            fleet,
            [FaultSpec(DRIVER_OFFLINE_UNMOVABLE, 1.0)],
            retry=RetryPolicy(max_retries=0, quarantine_after=quarantine_after),
        )

    def test_block_quarantined_after_repeated_failures(self, sim, fleet):
        vm = self.make_failing_vm(sim, fleet)
        run_plug(sim, vm, 2)
        first = run_unplug(sim, vm, 1)
        assert first.unplugged_bytes == 0
        assert vm.manager.quarantined_blocks == []
        second = run_unplug(sim, vm, 1)
        assert second.unplugged_bytes == 0
        quarantined = vm.manager.quarantined_blocks
        assert len(quarantined) == 1
        assert vm.manager.is_quarantined(quarantined[0])
        assert quarantined[0].isolated
        assert vm.recovery_log.by_path() == {
            "partial-unplug": 1,
            "quarantined": 1,
        }
        assert vm.faults.unresolved() == []
        # The invariant registry accepts the quarantine state.
        vm.check_consistency()

    def test_quarantined_block_leaves_unplug_candidacy(self, sim, fleet):
        vm = self.make_failing_vm(sim, fleet)
        run_plug(sim, vm, 2)
        run_unplug(sim, vm, 1)
        run_unplug(sim, vm, 1)  # quarantines the victim
        bad = vm.manager.quarantined_blocks[0]
        # Subsequent failures target the *other* block (the quarantined
        # one is withdrawn from service).
        third = run_unplug(sim, vm, 1)
        assert third.unplugged_bytes == 0
        assert all(
            e.block_index != bad.index
            for e in vm.recovery_log.events[2:]
        )

    def test_release_quarantine_restores_service(self, sim, fleet):
        vm = self.make_failing_vm(sim, fleet)
        run_plug(sim, vm, 2)
        run_unplug(sim, vm, 1)
        run_unplug(sim, vm, 1)
        block = vm.manager.quarantined_blocks[0]
        vm.manager.release_quarantine(block)
        assert vm.manager.quarantined_blocks == []
        assert not block.isolated
        vm.check_consistency()

    def test_offline_of_quarantined_block_refused(self, sim, fleet):
        from repro.errors import OfflineFailed

        vm = self.make_failing_vm(sim, fleet)
        run_plug(sim, vm, 2)
        run_unplug(sim, vm, 1)
        run_unplug(sim, vm, 1)
        block = vm.manager.quarantined_blocks[0]
        with pytest.raises(OfflineFailed) as excinfo:
            vm.manager.offline_and_remove(block)
        assert excinfo.value.context["block_index"] == block.index
