"""Unit tests for the recovery-path log and its latency accounting."""

from repro.faults.recovery import (
    DEGRADED_PATHS,
    RECOVERED_PATHS,
    RecoveryEvent,
    RecoveryLog,
)
from repro.units import MS


def test_path_sets_are_disjoint_and_nonempty():
    assert RECOVERED_PATHS and DEGRADED_PATHS
    assert not RECOVERED_PATHS & DEGRADED_PATHS


def test_event_latency_and_classification():
    event = RecoveryEvent(
        site="driver.unplug.migrate",
        path="retried",
        detect_ns=2 * MS,
        resolve_ns=5 * MS,
        attempts=3,
        block_index=7,
    )
    assert event.latency_ns == 3 * MS
    assert event.latency_ms == 3.0
    assert event.recovered
    degraded = RecoveryEvent(
        site="agent.plug", path="static-fallback", detect_ns=0, resolve_ns=0
    )
    assert not degraded.recovered


def test_log_counts_and_percentile():
    log = RecoveryLog()
    assert log.count() == 0
    assert log.latency_p99_ms() == 0.0
    for i, path in enumerate(["retried", "retried", "quarantined"]):
        log.record(
            site="driver.unplug.migrate",
            path=path,
            detect_ns=0,
            resolve_ns=(i + 1) * MS,
            block_index=i,
        )
    assert log.count() == 3
    assert log.count("retried") == 2
    assert log.recovered_count() == 2
    assert log.degraded_count() == 1
    assert log.by_path() == {"retried": 2, "quarantined": 1}
    assert log.latencies_ms() == [1.0, 2.0, 3.0]
    assert log.latency_p99_ms() >= 2.0
