"""Unit tests for the recovery-path log and its latency accounting."""

from repro.faults.recovery import (
    DEGRADED_PATHS,
    RECOVERED_PATHS,
    RecoveryEvent,
    RecoveryLog,
)
from repro.units import MS


def test_path_sets_are_disjoint_and_nonempty():
    assert RECOVERED_PATHS and DEGRADED_PATHS
    assert not RECOVERED_PATHS & DEGRADED_PATHS


def test_event_latency_and_classification():
    event = RecoveryEvent(
        site="driver.unplug.migrate",
        path="retried",
        detect_ns=2 * MS,
        resolve_ns=5 * MS,
        attempts=3,
        block_index=7,
    )
    assert event.latency_ns == 3 * MS
    assert event.latency_ms == 3.0
    assert event.recovered
    degraded = RecoveryEvent(
        site="agent.plug", path="static-fallback", detect_ns=0, resolve_ns=0
    )
    assert not degraded.recovered


def test_log_counts_and_percentile():
    log = RecoveryLog()
    assert log.count() == 0
    assert log.latency_p99_ms() == 0.0
    for i, path in enumerate(["retried", "retried", "quarantined"]):
        log.record(
            site="driver.unplug.migrate",
            path=path,
            detect_ns=0,
            resolve_ns=(i + 1) * MS,
            block_index=i,
        )
    assert log.count() == 3
    assert log.count("retried") == 2
    assert log.recovered_count() == 2
    assert log.degraded_count() == 1
    assert log.by_path() == {"retried": 2, "quarantined": 1}
    assert log.latencies_ms() == [1.0, 2.0, 3.0]
    assert log.latency_p99_ms() >= 2.0


def test_failed_over_paths_are_their_own_category():
    from repro.faults.recovery import FAILED_OVER_PATHS

    assert FAILED_OVER_PATHS
    assert not FAILED_OVER_PATHS & RECOVERED_PATHS
    assert not FAILED_OVER_PATHS & DEGRADED_PATHS
    moved = RecoveryEvent(
        site="host.crash", path="evacuated", detect_ns=0, resolve_ns=MS
    )
    assert moved.failed_over and not moved.recovered


def test_failed_over_count_is_separate_from_recovered_and_degraded():
    log = RecoveryLog()
    log.record(site="host.crash", path="evacuated", detect_ns=0, resolve_ns=MS)
    log.record(
        site="router.failover", path="failed-over", detect_ns=0, resolve_ns=0
    )
    log.record(site="agent.wedge", path="force-recycled", detect_ns=0, resolve_ns=0)
    log.record(site="router.queue", path="deadline", detect_ns=0, resolve_ns=0)
    assert log.failed_over_count() == 2
    assert log.recovered_count() == 1
    assert log.degraded_count() == 1


def test_mttr_per_site_and_overall():
    log = RecoveryLog()
    log.record(site="host.crash", path="evacuated", detect_ns=0, resolve_ns=2 * MS)
    log.record(site="host.crash", path="evacuated", detect_ns=0, resolve_ns=4 * MS)
    log.record(
        site="router.link.down", path="healed", detect_ns=MS, resolve_ns=2 * MS
    )
    assert log.mttr_ms("host.crash") == 3.0
    assert log.mttr_ms("router.link.down") == 1.0
    assert log.mttr_ms() == (2.0 + 4.0 + 1.0) / 3
    assert log.mttr_ms("vm.oom.kill") == 0.0
    assert log.mttr_by_site() == {
        "host.crash": 3.0,
        "router.link.down": 1.0,
    }


def test_summary_rolls_up_per_site():
    log = RecoveryLog()
    log.record(site="host.crash", path="evacuated", detect_ns=0, resolve_ns=2 * MS)
    log.record(
        site="host.crash",
        path="evacuation-rejected",
        detect_ns=0,
        resolve_ns=4 * MS,
    )
    log.record(
        site="agent.wedge", path="force-recycled", detect_ns=0, resolve_ns=MS
    )
    summary = log.summary()
    assert list(summary) == ["agent.wedge", "host.crash"]  # sorted
    crash = summary["host.crash"]
    assert crash["events"] == 2
    assert crash["failed_over"] == 1
    assert crash["degraded"] == 1
    assert crash["recovered"] == 0
    assert crash["mttr_ms"] == 3.0
    wedge = summary["agent.wedge"]
    assert wedge["recovered"] == 1 and wedge["mttr_ms"] == 1.0


def test_empty_log_summaries_are_empty():
    log = RecoveryLog()
    assert log.mttr_ms() == 0.0
    assert log.mttr_by_site() == {}
    assert log.summary() == {}
