"""Trace hygiene over whole experiments.

Every experiment run under ``--trace`` must end with zero open spans:
spans that close on their normal path do so before the run ends, and
spans abandoned by a duration-budget run cut are force-closed (tagged
``cut="run-end"``) by session finalization.  The exported report must
then attribute every unplug exactly.
"""

from repro.experiments import (
    FunctionLoad,
    MicrobenchRig,
    MicrobenchSetup,
    ServerlessScenario,
    run_scenario,
)
from repro.obs import build_report, export_session, read_trace, traced
from repro.units import MIB

SCENARIO = ServerlessScenario(
    mode="hotmem",
    loads=(FunctionLoad.for_function("html", base_rps=4.0),),
    duration_s=20,
    keep_alive_s=5,
    recycle_interval_s=2,
    drain_s=5,
)


class TestOpenSpansAfterExperiments:
    def test_microbench_closes_every_span_on_path(self):
        with traced() as session:
            rig = MicrobenchRig(
                MicrobenchSetup(
                    mode="hotmem",
                    total_bytes=768 * MIB,
                    partition_bytes=384 * MIB,
                )
            )
            rig.run_single_reclaim(384 * MIB)
            assert session.finalize() == 0
            assert session.open_spans() == 0

    def test_serverless_run_cut_is_finalized_to_zero(self):
        with traced() as session:
            run = run_scenario(SCENARIO)
            assert run.records
            session.finalize()
            assert session.open_spans() == 0
            cut = [
                span
                for context in session.contexts
                for span in context.tracer.spans()
                if span.attrs.get("cut") == "run-end"
            ]
            # Anything the budget cut is tagged, closed, and accounted.
            for span in cut:
                assert span.closed

    def test_report_over_a_serverless_run_is_exact(self, tmp_path):
        with traced() as session:
            run_scenario(SCENARIO)
            session.finalize()
        path = tmp_path / "trace.jsonl"
        export_session(session, str(path))
        report = build_report(read_trace(str(path)))
        assert report.open_spans == 0
        assert report.total_unplugs > 0
        assert report.exact_matches == report.total_unplugs
        assert [m.mode for m in report.modes] == ["hotmem"]
