"""Structural tests for the per-function CFG builder."""

import ast
from pathlib import Path

from repro.analysis.cfg import build_all, build_cfg, iter_functions
from repro.analysis.lint import iter_py_files

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def cfg_of(source: str, name: str = "f"):
    tree = ast.parse(source)
    graphs = build_all(tree)
    return graphs[name]


def node_by_line(graph, line):
    matches = [n for n in graph.nodes if n.stmt is not None and n.line == line]
    assert matches, f"no CFG node at line {line}"
    return matches[0]


class TestWholeRepo:
    def test_cfgs_build_for_every_function_in_src(self):
        """Acceptance: the builder handles every function in the tree."""
        functions = 0
        for path in iter_py_files([REPO_ROOT / "src" / "repro"]):
            tree = ast.parse(path.read_text(encoding="utf-8"), str(path))
            for info in iter_functions(tree):
                graph = build_cfg(info.node, info.qualname)
                functions += 1
                indices = {node.index for node in graph.nodes}
                for node in graph.nodes:
                    assert set(node.succs) <= indices
                    assert set(node.preds) <= indices
                # Entry reaches somewhere; sinks never continue.
                assert graph.nodes[graph.entry].succs
                assert graph.nodes[graph.exit].succs == []
                assert graph.nodes[graph.raise_exit].succs == []
        assert functions > 300  # the tree is large; a stub scan is a bug


class TestStructure:
    def test_straight_line_reaches_exit(self):
        graph = cfg_of("def f():\n    a = 1\n    b = 2\n")
        a = node_by_line(graph, 2)
        b = node_by_line(graph, 3)
        assert graph.entry in a.preds
        assert b.index in a.succs
        assert graph.exit in b.succs  # implicit return

    def test_if_else_branches_join(self):
        graph = cfg_of(
            "def f(c):\n"
            "    if c:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    b = 3\n"
        )
        head = node_by_line(graph, 2)
        then = node_by_line(graph, 3)
        other = node_by_line(graph, 5)
        join = node_by_line(graph, 6)
        assert {then.index, other.index} <= set(head.succs)
        assert join.index in then.succs
        assert join.index in other.succs

    def test_if_without_else_falls_through(self):
        graph = cfg_of("def f(c):\n    if c:\n        a = 1\n    b = 2\n")
        head = node_by_line(graph, 2)
        after = node_by_line(graph, 4)
        assert after.index in head.succs  # the false edge

    def test_loop_back_edge_and_exit(self):
        graph = cfg_of("def f(n):\n    while n:\n        n -= 1\n    return n\n")
        head = node_by_line(graph, 2)
        body = node_by_line(graph, 3)
        ret = node_by_line(graph, 4)
        assert body.index in head.succs
        assert head.index in body.succs  # back edge
        assert ret.index in head.succs  # loop exit
        assert graph.exit in ret.succs

    def test_break_exits_loop_continue_returns_to_head(self):
        graph = cfg_of(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        if x:\n"
            "            break\n"
            "        continue\n"
            "    return 0\n"
        )
        head = node_by_line(graph, 2)
        brk = node_by_line(graph, 4)
        cont = node_by_line(graph, 5)
        ret = node_by_line(graph, 6)
        assert ret.index in brk.succs  # break jumps past the loop
        assert head.index in cont.succs  # continue re-enters the head
        assert head.index not in brk.succs

    def test_try_body_edges_into_handler(self):
        graph = cfg_of(
            "def f():\n"
            "    try:\n"
            "        a = risky()\n"
            "    except ValueError:\n"
            "        a = 0\n"
            "    return a\n"
        )
        body = node_by_line(graph, 3)
        handler_head = next(
            n for n in graph.nodes if isinstance(n.stmt, ast.ExceptHandler)
        )
        recover = node_by_line(graph, 5)
        ret = node_by_line(graph, 6)
        assert handler_head.index in body.succs  # any stmt may raise
        assert recover.index in handler_head.succs
        assert ret.index in body.succs
        assert ret.index in recover.succs

    def test_return_routes_through_finally(self):
        graph = cfg_of(
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    finally:\n"
            "        cleanup()\n"
        )
        ret = node_by_line(graph, 3)
        # The return must pass through a clone of the finally body
        # before reaching the exit — never jump straight out.
        assert graph.exit not in ret.succs
        finals = [
            n
            for n in graph.nodes
            if n.stmt is not None and n.line == 5 and n.index in ret.succs
        ]
        assert finals
        assert any(graph.exit in graph.nodes[f.index].succs for f in finals)

    def test_raise_without_handler_reaches_raise_exit(self):
        graph = cfg_of("def f():\n    raise ValueError(1)\n")
        rse = node_by_line(graph, 2)
        assert graph.raise_exit in rse.succs
        assert graph.exit not in rse.succs


class TestYieldPoints:
    def test_yield_statements_are_marked(self):
        graph = cfg_of(
            "def f(core):\n"
            "    a = 1\n"
            "    yield core.submit(10)\n"
            "    b = yield from helper()\n"
            "    return b\n"
        )
        assert node_by_line(graph, 3).is_yield
        assert node_by_line(graph, 4).is_yield
        assert not node_by_line(graph, 2).is_yield
        assert set(graph.yield_nodes) == {
            node_by_line(graph, 3).index,
            node_by_line(graph, 4).index,
        }
        assert graph.is_coroutine

    def test_await_counts_as_yield_point(self):
        graph = cfg_of(
            "async def f(dev):\n    await dev.flush()\n    return 0\n"
        )
        assert node_by_line(graph, 2).is_yield
        assert graph.is_coroutine

    def test_nested_function_yield_does_not_leak_out(self):
        graph = cfg_of(
            "def f():\n"
            "    def inner():\n"
            "        yield 1\n"
            "    return inner\n"
        )
        assert graph.yield_nodes == []
        assert not graph.is_coroutine

    def test_compound_heads_only_own_their_test_expression(self):
        # The yield lives in the while *body*, not its head: the head
        # node must not be a yield point.
        graph = cfg_of(
            "def f(n):\n"
            "    while n:\n"
            "        yield n\n"
            "    return 0\n"
        )
        assert not node_by_line(graph, 2).is_yield
        assert node_by_line(graph, 3).is_yield
