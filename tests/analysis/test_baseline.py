"""Baseline fingerprints: content-addressed, line-number-free."""

import pytest

from repro.analysis.baseline import (
    BASELINE_VERSION,
    fingerprint_errors,
    load_baseline,
    render_baseline,
    split_baselined,
)
from repro.analysis.rules import LintError


def err(line, rule="no-wallclock", path="src/repro/x.py"):
    return LintError(path, line, 0, rule, "msg")


class TestFingerprints:
    def test_stable_under_insertion_above(self):
        # The same offending line, shifted down two lines by unrelated
        # edits, keeps its fingerprint.
        before = {"src/repro/x.py": ["import time", "t = time.time()"]}
        after = {
            "src/repro/x.py": [
                "import time",
                "",
                "x = 1",
                "t = time.time()",
            ]
        }
        (old,) = fingerprint_errors([err(2)], before)
        (new,) = fingerprint_errors([err(4)], after)
        assert old == new

    def test_changes_when_the_offending_line_changes(self):
        lines_a = {"src/repro/x.py": ["t = time.time()"]}
        lines_b = {"src/repro/x.py": ["t = time.monotonic()"]}
        (a,) = fingerprint_errors([err(1)], lines_a)
        (b,) = fingerprint_errors([err(1)], lines_b)
        assert a != b

    def test_differs_by_rule_and_path(self):
        lines = {
            "src/repro/x.py": ["t = time.time()"],
            "src/repro/y.py": ["t = time.time()"],
        }
        (by_rule_a,) = fingerprint_errors([err(1)], lines)
        (by_rule_b,) = fingerprint_errors([err(1, rule="no-print-in-src")], lines)
        (by_path,) = fingerprint_errors([err(1, path="src/repro/y.py")], lines)
        assert len({by_rule_a, by_rule_b, by_path}) == 3

    def test_identical_lines_get_occurrence_suffixes(self):
        lines = {"src/repro/x.py": ["t = time.time()", "t = time.time()"]}
        first, second = fingerprint_errors([err(1), err(2)], lines)
        assert second == f"{first}#1"

    def test_whitespace_only_edits_do_not_invalidate(self):
        lines_a = {"src/repro/x.py": ["t = time.time()"]}
        lines_b = {"src/repro/x.py": ["        t = time.time()"]}
        (a,) = fingerprint_errors([err(1)], lines_a)
        (b,) = fingerprint_errors([err(1)], lines_b)
        assert a == b


class TestBaselineFile:
    LINES = {"src/repro/x.py": ["t = time.time()", "print(1)"]}

    def test_render_load_round_trip(self, tmp_path):
        errors = [err(1), err(2, rule="no-print-in-src")]
        text = render_baseline(errors, self.LINES)
        path = tmp_path / "baseline.json"
        path.write_text(text, encoding="utf-8")
        accepted = load_baseline(path)
        prints = fingerprint_errors(errors, self.LINES)
        assert accepted == {
            (e.rule, e.path, fp) for e, fp in zip(errors, prints)
        }

    def test_render_is_byte_deterministic_and_sorted(self):
        errors = [err(2, rule="no-print-in-src"), err(1)]
        text = render_baseline(errors, self.LINES)
        assert text == render_baseline(list(reversed(errors)), self.LINES)
        assert text.endswith("\n")

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": []}', encoding="utf-8")
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)

    def test_split_partitions_new_and_grandfathered(self):
        old = err(1)
        new = err(2, rule="no-print-in-src")
        prints = fingerprint_errors([old], self.LINES)
        accepted = {(old.rule, old.path, prints[0])}
        fresh, grandfathered = split_baselined(
            [old, new], accepted, self.LINES
        )
        assert fresh == [new]
        assert grandfathered == [old]

    def test_current_version_is_one(self):
        assert BASELINE_VERSION == 1
