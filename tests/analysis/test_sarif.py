"""SARIF 2.1.0 output: schema-required fields and determinism."""

import json

from repro.analysis.baseline import fingerprint_errors
from repro.analysis.rules import LintError
from repro.analysis.sarif import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    render_sarif,
    sarif_log,
)

ERRORS = [
    LintError(
        "src/repro/x.py",
        3,
        4,
        "stale-guard-across-yield",
        "guard went stale",
    ),
    LintError("src/repro/x.py", 9, 0, "span-hygiene", "span leaked"),
    LintError("src/repro/y.py", 2, 8, "span-hygiene", "span leaked too"),
]

LINES = {
    "src/repro/x.py": ["l1", "l2", "the guard line", "", "", "", "", "", "x"],
    "src/repro/y.py": ["a", "the span line"],
}


class TestSchemaRequiredFields:
    def test_log_skeleton(self):
        log = sarif_log(ERRORS, LINES)
        assert log["$schema"] == SARIF_SCHEMA_URI
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert isinstance(log["runs"], list) and len(log["runs"]) == 1
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert "informationUri" in driver

    def test_rules_are_sorted_and_indexed(self):
        log = sarif_log(ERRORS, LINES)
        run = log["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        ids = [rule["id"] for rule in rules]
        assert ids == sorted(ids)
        assert set(ids) == {"stale-guard-across-yield", "span-hygiene"}
        for rule in rules:
            assert rule["shortDescription"]["text"]
        for result in run["results"]:
            assert ids[result["ruleIndex"]] == result["ruleId"]

    def test_results_carry_message_and_location(self):
        log = sarif_log(ERRORS, LINES)
        results = log["runs"][0]["results"]
        assert len(results) == len(ERRORS)
        first = results[0]
        assert first["level"] == "error"
        assert first["message"]["text"] == "guard went stale"
        location = first["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/x.py"
        region = location["region"]
        assert region["startLine"] == 3
        assert region["startColumn"] == 5  # 0-based col 4, SARIF is 1-based

    def test_fingerprints_match_the_baseline_machinery(self):
        log = sarif_log(ERRORS, LINES)
        prints = fingerprint_errors(ERRORS, LINES)
        got = [
            result["partialFingerprints"]["reproLint/v1"]
            for result in log["runs"][0]["results"]
        ]
        assert got == prints

    def test_fingerprints_omitted_without_sources(self):
        log = sarif_log(ERRORS)
        for result in log["runs"][0]["results"]:
            assert "partialFingerprints" not in result

    def test_synthetic_rules_still_get_descriptors(self):
        errors = [LintError("x.py", 1, 0, "syntax-error", "cannot parse")]
        rules = sarif_log(errors)["runs"][0]["tool"]["driver"]["rules"]
        assert rules[0]["id"] == "syntax-error"
        assert rules[0]["shortDescription"]["text"]


class TestRendering:
    def test_render_is_byte_deterministic(self):
        assert render_sarif(ERRORS, LINES) == render_sarif(ERRORS, LINES)

    def test_render_round_trips_through_json(self):
        text = render_sarif(ERRORS, LINES)
        assert text.endswith("\n")
        assert json.loads(text) == sarif_log(ERRORS, LINES)

    def test_empty_findings_are_a_valid_log(self):
        log = sarif_log([], {})
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"] == []
        assert log["runs"][0]["tool"]["driver"]["rules"] == []
