"""Unit tests for the AST lint rules, suppression syntax, output modes,
and the tools/lint.py command-line gate."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.lint import (
    RULES,
    LintError,
    lint_file,
    lint_paths,
    lint_source,
    module_name_for,
    render_json,
    render_text,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def findings(source, module, rule=None):
    errors = lint_source(source, path="snippet.py", module=module)
    if rule is None:
        return errors
    return [e for e in errors if e.rule == rule]


class TestNoDirectRandom:
    def test_random_call_in_sim_scope_flagged(self):
        src = "import random\nx = random.random()\n"
        errors = findings(src, "repro.sim.workload", "no-direct-random")
        assert len(errors) == 1
        assert errors[0].line == 2
        assert "make_rng" in errors[0].message

    def test_from_random_import_flagged(self):
        src = "from random import choice\n"
        assert findings(src, "repro.experiments.foo", "no-direct-random")

    def test_import_random_for_typing_allowed(self):
        src = "import random\n\ndef f(rng: random.Random) -> None:\n    pass\n"
        assert not findings(src, "repro.mm.placement", "no-direct-random")

    def test_rng_entrypoint_exempt(self):
        src = "import random\nrng = random.Random(42)\n"
        assert not findings(src, "repro.sim.rng", "no-direct-random")

    def test_out_of_scope_module_unflagged(self):
        src = "import random\nx = random.random()\n"
        assert not findings(src, "repro.metrics.report", "no-direct-random")


class TestNoWallclock:
    @pytest.mark.parametrize(
        "call",
        ["time.time()", "time.monotonic()", "time.perf_counter_ns()"],
    )
    def test_time_module_calls_flagged(self, call):
        src = f"import time\nt = {call}\n"
        assert findings(src, "repro.sim.engine2", "no-wallclock")

    def test_datetime_now_flagged_via_tail_match(self):
        src = "import datetime\nt = datetime.datetime.now()\n"
        assert findings(src, "repro.workloads.azure2", "no-wallclock")

    def test_engine_clock_unflagged(self):
        src = "def f(sim):\n    return sim.now\n"
        assert not findings(src, "repro.sim.engine2", "no-wallclock")

    def test_out_of_scope_module_unflagged(self):
        src = "import time\nt = time.time()\n"
        assert not findings(src, "repro.host.machine2", "no-wallclock")


class TestNoFloatPageEq:
    def test_float_eq_on_pages_flagged(self):
        src = "def f(free_pages):\n    return free_pages == 1.0\n"
        errors = findings(src, "repro.mm.foo", "no-float-page-eq")
        assert len(errors) == 1

    def test_float_neq_on_bytes_attr_flagged(self):
        src = "def f(vm):\n    return vm.plugged_bytes != 0.5\n"
        assert findings(src, "repro.vmm.foo", "no-float-page-eq")

    def test_int_eq_on_pages_unflagged(self):
        src = "def f(free_pages):\n    return free_pages == 1\n"
        assert not findings(src, "repro.mm.foo", "no-float-page-eq")

    def test_float_eq_on_non_quantity_unflagged(self):
        src = "def f(ratio):\n    return ratio == 1.0\n"
        assert not findings(src, "repro.mm.foo", "no-float-page-eq")

    def test_ordering_comparison_unflagged(self):
        src = "def f(latency_ms):\n    return latency_ms > 1.5\n"
        assert not findings(src, "repro.metrics.foo", "no-float-page-eq")


class TestMmEncapsulation:
    def test_attribute_write_outside_mm_flagged(self):
        src = "def f(zone):\n    zone.free_pages = 0\n"
        errors = findings(src, "repro.experiments.foo", "mm-encapsulation")
        assert len(errors) == 1
        assert ".free_pages" in errors[0].message

    def test_augassign_flagged(self):
        src = "def f(block):\n    block.free_pages += 7\n"
        assert findings(src, "repro.virtio.foo", "mm-encapsulation")

    def test_subscript_write_flagged(self):
        src = "def f(block, owner):\n    block.owner_pages[owner] = 3\n"
        assert findings(src, "repro.core.foo", "mm-encapsulation")

    def test_del_subscript_flagged(self):
        src = "def f(block, owner):\n    del block.owner_pages[owner]\n"
        assert findings(src, "repro.core.foo", "mm-encapsulation")

    def test_container_mutator_flagged(self):
        src = "def f(zone, block):\n    zone.blocks.append(block)\n"
        assert findings(src, "repro.baselines.foo", "mm-encapsulation")

    def test_owning_module_exempt(self):
        src = "def f(zone):\n    zone._free_pages -= 5\n"
        assert not findings(src, "repro.mm.zone", "mm-encapsulation")

    def test_unguarded_attribute_unflagged(self):
        src = "def f(container):\n    container.state = 'warm'\n"
        assert not findings(src, "repro.faas.container2", "mm-encapsulation")

    def test_manager_api_call_unflagged(self):
        src = "def f(manager, mm):\n    manager.free_all(mm)\n"
        assert not findings(src, "repro.faas.runtime2", "mm-encapsulation")


class TestModuleAllRequired:
    def test_missing_all_flagged(self):
        src = "def f():\n    pass\n"
        errors = findings(src, "repro.newpkg.helper", "module-all-required")
        assert len(errors) == 1
        assert errors[0].line == 1

    def test_declared_all_unflagged(self):
        src = "__all__ = ['f']\n\ndef f():\n    pass\n"
        assert not findings(src, "repro.newpkg.helper", "module-all-required")

    def test_empty_module_unflagged(self):
        assert not findings("", "repro.newpkg", "module-all-required")

    def test_non_repro_module_unflagged(self):
        src = "def f():\n    pass\n"
        assert not findings(src, "tools.lint", "module-all-required")


class TestNoBareExcept:
    def test_bare_except_flagged(self):
        src = "try:\n    f()\nexcept:\n    pass\n"
        errors = findings(src, "repro.faas.foo", "no-bare-except")
        assert len(errors) == 1
        assert errors[0].line == 3

    def test_typed_except_unflagged(self):
        src = "try:\n    f()\nexcept ValueError:\n    pass\n"
        assert not findings(src, "repro.faas.foo", "no-bare-except")

    def test_broad_but_named_exception_unflagged(self):
        # The rule targets bare handlers that swallow fault signals the
        # recovery machinery needs, not `except Exception` per se.
        src = "try:\n    f()\nexcept Exception as e:\n    raise e\n"
        assert not findings(src, "repro.virtio.foo", "no-bare-except")

    def test_out_of_scope_module_unflagged(self):
        src = "try:\n    f()\nexcept:\n    pass\n"
        assert not findings(src, "tools.lint", "no-bare-except")

    def test_allow_comment_silences(self):
        src = (
            "try:\n"
            "    f()\n"
            "except:  # lint: allow[no-bare-except] last-ditch cleanup\n"
            "    pass\n"
        )
        assert not findings(src, "repro.faas.foo", "no-bare-except")


class TestNoModeBranching:
    def test_identity_comparison_flagged(self):
        src = "def f(mode):\n    return mode is DeploymentMode.HOTMEM\n"
        errors = findings(src, "repro.faas.agent", "no-mode-branching")
        assert len(errors) == 1
        assert errors[0].line == 2
        assert "DeploymentBackend hook" in errors[0].message

    def test_equality_and_negations_flagged(self):
        src = (
            "def f(mode):\n"
            "    a = mode == DeploymentMode.VANILLA\n"
            "    b = mode != DeploymentMode.HOTMEM\n"
            "    c = mode is not DeploymentMode.OVERPROVISIONED\n"
            "    return a or b or c\n"
        )
        errors = findings(src, "repro.cluster.admission", "no-mode-branching")
        assert [e.line for e in errors] == [2, 3, 4]

    def test_membership_in_tuple_flagged(self):
        src = (
            "def f(mode):\n"
            "    return mode in (DeploymentMode.HOTMEM, DeploymentMode.VANILLA)\n"
        )
        assert findings(src, "repro.experiments.density", "no-mode-branching")

    def test_qualified_access_flagged(self):
        src = (
            "import repro.modes\n"
            "def f(mode):\n"
            "    return mode is repro.modes.DeploymentMode.HOTMEM\n"
        )
        assert findings(src, "repro.faas.policy", "no-mode-branching")

    def test_attribute_access_without_comparison_unflagged(self):
        # Reading members (iteration tuples, defaults) is fine; only
        # branching on identity/equality/membership re-scatters the
        # special-casing the registry centralises.
        src = (
            "MODES = (DeploymentMode.VANILLA, DeploymentMode.HOTMEM)\n"
            "def f(spec):\n"
            "    spec.mode = DeploymentMode.HOTMEM\n"
        )
        assert not findings(src, "repro.experiments.fig8", "no-mode-branching")

    def test_modes_package_exempt(self):
        src = "def f(mode):\n    return mode is DeploymentMode.HOTMEM\n"
        assert not findings(src, "repro.modes.compat", "no-mode-branching")
        assert not findings(src, "repro.modes", "no-mode-branching")

    def test_out_of_scope_module_unflagged(self):
        src = "def f(mode):\n    return mode is DeploymentMode.HOTMEM\n"
        assert not findings(src, "tools.lint", "no-mode-branching")

    def test_allow_comment_silences(self):
        src = (
            "def f(mode):\n"
            "    return mode is DeploymentMode.HOTMEM"
            "  # lint: allow[no-mode-branching] compat shim\n"
        )
        assert not findings(src, "repro.faas.agent", "no-mode-branching")


class TestNoPrintInSrc:
    def test_print_in_library_module_flagged(self):
        src = "def f():\n    print('debug')\n"
        errors = findings(src, "repro.virtio.device", "no-print-in-src")
        assert len(errors) == 1
        assert errors[0].line == 2
        assert "repro.obs" in errors[0].message

    def test_print_in_experiments_allowed(self):
        src = "def report():\n    print('fig5 done')\n"
        assert not findings(
            src, "repro.experiments.fig5_unplug_latency", "no-print-in-src"
        )
        assert not findings(src, "repro.experiments", "no-print-in-src")

    def test_out_of_package_module_unflagged(self):
        src = "print('cli output')\n"
        assert not findings(src, "tools.lint", "no-print-in-src")

    def test_shadowed_print_method_unflagged(self):
        # Only the builtin: a method or local named print is not stdout.
        src = "def f(report):\n    report.print()\n"
        assert not findings(src, "repro.metrics.report", "no-print-in-src")

    def test_allow_comment_silences(self):
        src = (
            "def f():\n"
            "    print('x')  # lint: allow[no-print-in-src] debug hook\n"
        )
        assert not findings(src, "repro.mm.manager", "no-print-in-src")


class TestNoAdhocSweep:
    def test_scenario_loop_in_experiment_flagged(self):
        src = (
            "def run(config):\n"
            "    for mode in ('vanilla', 'hotmem'):\n"
            "        result = run_scenario(make(mode))\n"
        )
        errors = findings(
            src, "repro.experiments.fig8_reclaim_throughput", "no-adhoc-sweep"
        )
        assert len(errors) == 1
        assert errors[0].line == 3
        assert "run_sweep" in errors[0].message

    def test_rig_construction_in_while_flagged(self):
        src = (
            "def probe():\n"
            "    while budget:\n"
            "        rig = MicrobenchRig(setup)\n"
        )
        assert findings(
            src, "repro.experiments.density", "no-adhoc-sweep"
        )

    def test_dotted_entrypoint_flagged(self):
        src = (
            "def run():\n"
            "    for n in counts:\n"
            "        out = rig.run_single_reclaim(n)\n"
        )
        assert findings(src, "repro.experiments.fig5", "no-adhoc-sweep")

    def test_run_sweep_iteration_unflagged(self):
        src = (
            "def run(config):\n"
            "    for cell_result in run_sweep(grid(config), _cell, config):\n"
            "        collect(cell_result.payload)\n"
        )
        assert not findings(
            src, "repro.experiments.chaos", "no-adhoc-sweep"
        )

    def test_loop_without_scenario_calls_unflagged(self):
        src = (
            "def reduce(samples):\n"
            "    for size in sizes:\n"
            "        totals[size] = sum(samples[size])\n"
        )
        assert not findings(
            src, "repro.experiments.fig6_usage_sweep", "no-adhoc-sweep"
        )

    def test_scenario_engine_modules_exempt(self):
        src = (
            "def drive():\n"
            "    for load in loads:\n"
            "        run_scenario(load)\n"
        )
        assert not findings(
            src, "repro.experiments.serverless", "no-adhoc-sweep"
        )
        assert not findings(
            src, "repro.experiments.microbench", "no-adhoc-sweep"
        )
        assert not findings(src, "repro.sim.engine", "no-adhoc-sweep")

    def test_allow_comment_silences(self):
        src = (
            "def run():\n"
            "    for seed in seeds:\n"
            "        sim = Simulator()"
            "  # lint: allow[no-adhoc-sweep] calibration probe\n"
        )
        assert not findings(
            src, "repro.experiments.calibrate", "no-adhoc-sweep"
        )


class TestSuppression:
    def test_allow_comment_silences_rule_on_line(self):
        src = "import time\nt = time.time()  # lint: allow[no-wallclock] display\n"
        assert not findings(src, "repro.sim.foo", "no-wallclock")

    def test_allow_only_covers_named_rule(self):
        src = (
            "import random\n"
            "x = random.random()  # lint: allow[no-wallclock]\n"
        )
        assert findings(src, "repro.sim.foo", "no-direct-random")

    def test_comma_separated_rules(self):
        src = (
            "import time, random\n"
            "t = time.time() + random.random()"
            "  # lint: allow[no-wallclock, no-direct-random]\n"
        )
        errors = findings(src, "repro.sim.foo")
        assert not [e for e in errors if e.line == 2]


class TestDriversAndOutput:
    def test_syntax_error_reported_as_finding(self):
        errors = findings("def f(:\n", "repro.sim.broken")
        assert [e.rule for e in errors] == ["syntax-error"]

    def test_module_name_for_src_layout(self):
        assert (
            module_name_for(Path("src/repro/mm/zone.py")) == "repro.mm.zone"
        )
        assert module_name_for(Path("src/repro/mm/__init__.py")) == "repro.mm"

    def test_lint_file_and_paths_on_tree(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "__all__ = []\nimport random\nx = random.random()\n",
            encoding="utf-8",
        )
        (tmp_path / "src" / "repro" / "sim" / "good.py").write_text(
            "__all__ = []\n", encoding="utf-8"
        )
        errors = lint_paths([tmp_path / "src"])
        assert len(errors) == 1
        assert errors[0].rule == "no-direct-random"
        assert errors[0].line == 3
        assert lint_file(bad) == errors

    def test_render_text_format(self):
        error = LintError("a.py", 3, 7, "no-wallclock", "msg")
        assert render_text([error]) == "a.py:3:7: [no-wallclock] msg"

    def test_render_json_roundtrip(self):
        error = LintError("a.py", 3, 7, "no-wallclock", "msg")
        decoded = json.loads(render_json([error]))
        assert decoded == [
            {
                "path": "a.py",
                "line": 3,
                "col": 7,
                "rule": "no-wallclock",
                "message": "msg",
            }
        ]

    def test_repo_source_tree_is_clean(self):
        assert lint_paths([REPO_ROOT / "src"]) == []

    def test_every_rule_documented(self):
        # The original syntactic rules stay enforced alongside the
        # CFG/dataflow families from repro.analysis.flow.
        assert set(RULES) == {
            "no-direct-random",
            "no-wallclock",
            "no-float-page-eq",
            "mm-encapsulation",
            "module-all-required",
            "no-bare-except",
            "no-mode-branching",
            "no-print-in-src",
            "no-adhoc-sweep",
            "no-direct-evict",
            "stale-guard-across-yield",
            "unchecked-result",
            "span-hygiene",
            "no-sim-sleep-side-effect",
            "no-unbounded-retry",
            "no-unbounded-series",
        }
        assert all(RULES.values())

    def test_rule_kinds_partition_the_registry(self):
        from repro.analysis.rules import DEFAULT_REGISTRY

        ast_rules = {r.name for r in DEFAULT_REGISTRY.by_kind("ast")}
        flow_rules = {r.name for r in DEFAULT_REGISTRY.by_kind("flow")}
        assert flow_rules == {
            "stale-guard-across-yield",
            "unchecked-result",
            "span-hygiene",
        }
        assert "no-sim-sleep-side-effect" in ast_rules
        assert len(ast_rules) + len(flow_rules) == len(DEFAULT_REGISTRY)

    def test_json_output_byte_identical_across_runs(self, tmp_path):
        # The CI gate requires deterministic ordering: two runs over the
        # same tree render byte-identical JSON.
        bad = tmp_path / "src" / "repro" / "sim" / "multi.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import random, time\n"
            "a = random.random()\n"
            "b = time.time()\n",
            encoding="utf-8",
        )
        first = render_json(lint_paths([tmp_path / "src"]))
        second = render_json(lint_paths([tmp_path / "src"]))
        assert first == second
        rules = [e["rule"] for e in json.loads(first)]
        assert rules == [
            "module-all-required",
            "no-direct-random",
            "no-wallclock",
        ]


class TestCli:
    def run_cli(self, *args, cwd=REPO_ROOT):
        return subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "lint.py"), *args],
            capture_output=True,
            text=True,
            cwd=cwd,
        )

    def test_exit_zero_on_repo_src(self):
        result = self.run_cli("src")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "lint clean" in result.stdout

    def test_exit_nonzero_with_location_on_violation(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "experiments" / "oops.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "__all__ = []\nimport time\nstarted = time.time()\n",
            encoding="utf-8",
        )
        result = self.run_cli(str(bad))
        assert result.returncode == 1
        assert f"{bad}:3:10: [no-wallclock]" in result.stdout

    def test_json_mode(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "sim" / "oops.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nrandom.seed(1)\n", encoding="utf-8")
        result = self.run_cli("--json", str(bad))
        assert result.returncode == 1
        decoded = json.loads(result.stdout)
        assert {e["rule"] for e in decoded} == {
            "no-direct-random",
            "module-all-required",
        }

    def test_list_rules(self):
        result = self.run_cli("--list-rules")
        assert result.returncode == 0
        for rule in RULES:
            assert rule in result.stdout

    def test_missing_path_is_usage_error(self):
        result = self.run_cli("no/such/dir")
        assert result.returncode == 2
        assert "no such path" in result.stderr


class TestNoUnboundedSeries:
    def test_timeseries_construction_in_scope_flagged(self):
        src = "def f():\n    return TimeSeries('used-h0')\n"
        for module in ("repro.cluster.provision", "repro.metrics.collector"):
            errors = findings(src, module, "no-unbounded-series")
            assert len(errors) == 1
            assert "RollupSeries" in errors[0].message

    def test_dotted_timeseries_construction_flagged(self):
        src = (
            "import repro.metrics.collector as collector\n"
            "def f():\n"
            "    return collector.TimeSeries('t')\n"
        )
        assert findings(
            src, "repro.cluster.routing", "no-unbounded-series"
        )

    def test_series_record_in_simulator_loop_flagged(self):
        src = (
            "def loop(self):\n"
            "    while True:\n"
            "        self.series.record(self.sim.now, probe())\n"
            "        yield Timeout(self.period_ns)\n"
        )
        errors = findings(
            src, "repro.metrics.sampler2", "no-unbounded-series"
        )
        assert len(errors) == 1
        assert ".record()" in errors[0].message

    def test_subscripted_series_record_in_loop_flagged(self):
        src = (
            "def loop(self):\n"
            "    while True:\n"
            "        for key in self.used:\n"
            "            self.used[key].record(self.sim.now, 1.0)\n"
            "        yield Timeout(self.period_ns)\n"
        )
        assert findings(
            src, "repro.metrics.collector2", "no-unbounded-series"
        )

    def test_event_append_in_simulator_loop_flagged(self):
        src = (
            "def pressure_loop(self):\n"
            "    while True:\n"
            "        self.pressure_events.append((self.sim.now, 1))\n"
            "        yield Timeout(self.period_ns)\n"
        )
        errors = findings(
            src, "repro.cluster.provision2", "no-unbounded-series"
        )
        assert len(errors) == 1
        assert ".append()" in errors[0].message

    def test_record_outside_a_generator_unflagged(self):
        # Non-coroutine code does not tick on the simulated clock, so a
        # loop there is bounded by its own inputs.
        src = (
            "def replay(self, samples):\n"
            "    for time_ns, value in samples:\n"
            "        self.series.record(time_ns, value)\n"
        )
        assert not findings(
            src, "repro.metrics.replay", "no-unbounded-series"
        )

    def test_rollup_series_construction_unflagged(self):
        src = "def f():\n    return RollupSeries('used-h0', kind='used')\n"
        assert not findings(
            src, "repro.metrics.collector2", "no-unbounded-series"
        )

    def test_plain_list_append_in_loop_unflagged(self):
        # Router records are the experiment's primary output, not
        # telemetry; only telemetry-named receivers are flagged.
        src = (
            "def loop(self):\n"
            "    while True:\n"
            "        self.records.append(make_record())\n"
            "        yield Timeout(1)\n"
        )
        assert not findings(
            src, "repro.cluster.routing2", "no-unbounded-series"
        )

    def test_out_of_scope_module_unflagged(self):
        src = "def f():\n    return TimeSeries('t')\n"
        assert not findings(src, "repro.faas.agent", "no-unbounded-series")
        assert not findings(src, "tools.lint", "no-unbounded-series")

    def test_allow_comment_silences(self):
        src = (
            "def f():\n"
            "    return TimeSeries('t')"
            "  # lint: allow[no-unbounded-series] exact-mode rig\n"
        )
        assert not findings(
            src, "repro.metrics.collector2", "no-unbounded-series"
        )

    def test_committed_tree_carries_only_annotated_uses(self):
        # The baseline stays empty: every in-repo exact-mode path is
        # explicitly annotated, so the rule reports nothing.
        errors = [
            e
            for e in lint_paths([REPO_ROOT / "src"])
            if e.rule == "no-unbounded-series"
        ]
        assert errors == []


class TestNoDirectEvict:
    def test_idle_pool_assignment_flagged(self):
        src = "def f(state):\n    state.idle = []\n"
        errors = findings(src, "repro.cluster.provision", "no-direct-evict")
        assert len(errors) == 1
        assert "recycle_pass" in errors[0].message

    def test_idle_pool_mutator_flagged(self):
        src = "def f(state, c):\n    state.idle.append(c)\n"
        assert findings(src, "repro.experiments.foo", "no-direct-evict")

    def test_idle_subscript_delete_flagged(self):
        src = "def f(state):\n    del state.idle[0]\n"
        assert findings(src, "repro.cluster.routing", "no-direct-evict")

    def test_teardown_call_flagged(self):
        src = "def f(container):\n    container.teardown()\n"
        assert findings(src, "repro.metrics.collector", "no-direct-evict")

    def test_destroy_after_oom_flagged(self):
        src = "def f(c):\n    c.destroy_after_oom()\n"
        assert findings(src, "repro.cluster.failover", "no-direct-evict")

    def test_owning_modules_exempt(self):
        src = "def f(state, c):\n    state.idle.remove(c)\n    c.teardown()\n"
        for module in (
            "repro.faas.agent",
            "repro.faas.lifecycle",
            "repro.faas.container",
        ):
            assert not findings(src, module, "no-direct-evict")

    def test_non_repro_module_unflagged(self):
        src = "def f(c):\n    c.teardown()\n"
        assert not findings(src, "tests.faas.test_container", "no-direct-evict")

    def test_allow_escape(self):
        src = (
            "def f(c):\n"
            "    c.teardown()  # lint: allow[no-direct-evict] test helper\n"
        )
        assert not findings(src, "repro.faults.injector", "no-direct-evict")

    def test_unrelated_idle_read_unflagged(self):
        src = "def f(state):\n    return len(state.idle)\n"
        assert not findings(src, "repro.cluster.provision", "no-direct-evict")
