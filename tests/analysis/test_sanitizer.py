"""Unit tests for the runtime sanitizer: checkpoint wiring, simulator
probes, and the global --sanitize installation machinery."""

import pytest

from repro.analysis import sanitizer as san
from repro.analysis.invariants import InvariantViolation
from repro.analysis.sanitizer import MemSanitizer, SanitizerConfig
from repro.mm.manager import GuestMemoryManager
from repro.mm.mm_struct import MmStruct
from repro.sim import Simulator
from repro.units import GIB


@pytest.fixture
def no_global_sanitizer():
    """Suspend any ambient global installation (e.g. `pytest --sanitize`)
    so install/uninstall tests start from a clean slate, restoring the
    prior policy afterwards."""
    prior = san.uninstall()
    yield
    san.uninstall()  # drop whatever the test left installed
    if prior is not None:
        san.install(prior)


@pytest.fixture
def manager(no_global_sanitizer):
    """A bare manager: built with no global install active, so the tests
    fully control which sanitizers are attached."""
    return GuestMemoryManager(
        boot_memory_bytes=1 * GIB, hotplug_region_bytes=2 * GIB
    )


class TestCheckpointWiring:
    def test_attach_is_idempotent(self, manager):
        sanitizer = MemSanitizer(manager).attach()
        assert sanitizer.attach() is sanitizer
        wrapped = list(sanitizer._wrapped)
        sanitizer.attach()
        assert sanitizer._wrapped == wrapped

    def test_periodic_checkpoint_every_mutation(self, manager):
        sanitizer = MemSanitizer(
            manager, config=SanitizerConfig(every_n_events=1)
        ).attach()
        mm = MmStruct("tick")
        manager.alloc_pages(mm, 10)
        manager.free_pages(mm, 5)
        assert sanitizer.checks_run == 2

    def test_periodic_interval_respected(self, manager):
        sanitizer = MemSanitizer(
            manager, config=SanitizerConfig(every_n_events=3)
        ).attach()
        mm = MmStruct("interval")
        for _ in range(7):
            manager.alloc_pages(mm, 1)
        assert sanitizer.checks_run == 2  # after the 3rd and 6th mutation

    def test_zero_interval_disables_periodic(self, manager):
        sanitizer = MemSanitizer(
            manager, config=SanitizerConfig(every_n_events=0)
        ).attach()
        mm = MmStruct("quiet")
        manager.alloc_pages(mm, 10)
        assert sanitizer.checks_run == 0

    def test_hotplug_checkpoints_fire(self, manager):
        sanitizer = MemSanitizer(
            manager, config=SanitizerConfig(every_n_events=0)
        ).attach()
        index = next(iter(manager.hotplug_block_indices()))
        block = manager.online_block(index, manager.zone_movable)
        assert sanitizer.checks_run == 1
        manager.offline_and_remove(block)
        assert sanitizer.checks_run == 2

    def test_teardown_checkpoint_passes_owner(self, manager):
        sanitizer = MemSanitizer(
            manager, config=SanitizerConfig(every_n_events=0)
        ).attach()
        mm = MmStruct("exiting")
        manager.alloc_pages(mm, 100)
        manager.free_all(mm)
        assert sanitizer.checks_run == 1  # clean teardown sweeps and passes

    def test_corruption_caught_at_the_mutating_call(self, manager):
        MemSanitizer(manager, config=SanitizerConfig(every_n_events=1)).attach()
        mm = MmStruct("victim")
        manager.alloc_pages(mm, 100)
        next(iter(mm.block_pages)).free_pages += 7
        with pytest.raises(InvariantViolation) as excinfo:
            manager.alloc_pages(mm, 1)
        assert "page-conservation" in excinfo.value.rules

    def test_rule_restriction_applies(self, manager):
        MemSanitizer(
            manager,
            config=SanitizerConfig(
                every_n_events=1, rules=frozenset({"zone-free-counter"})
            ),
        ).attach()
        mm = MmStruct("scoped")
        manager.alloc_pages(mm, 100)
        mm.block_pages[next(iter(mm.block_pages))] += 3  # mirror-only damage
        manager.alloc_pages(mm, 1)  # restricted sweep stays silent
        manager.zone_normal._free_pages -= 5
        with pytest.raises(InvariantViolation):
            manager.alloc_pages(mm, 1)

    def test_detach_restores_bare_manager(self, manager):
        sanitizer = MemSanitizer(
            manager, config=SanitizerConfig(every_n_events=1)
        ).attach()
        assert manager.alloc_pages.__wrapped__ is not None
        sanitizer.detach()
        assert "alloc_pages" not in vars(manager)
        assert not hasattr(manager, "_sanitizer")
        mm = MmStruct("after")
        manager.alloc_pages(mm, 10)
        assert sanitizer.checks_run == 0

    @pytest.mark.parametrize("detach_order", ["inner-first", "outer-first"])
    def test_stacked_sanitizers_detach_in_any_order(self, manager, detach_order):
        # A manual sanitizer stacked over a global one (the --sanitize
        # case) must splice out cleanly whichever detaches first.
        outer_counts = SanitizerConfig(every_n_events=1)
        first = MemSanitizer(manager, config=outer_counts).attach()
        second = MemSanitizer(manager, config=outer_counts).attach()
        mm = MmStruct("stacked")
        manager.alloc_pages(mm, 10)
        assert first.checks_run == 1 and second.checks_run == 1
        order = [second, first] if detach_order == "inner-first" else [first, second]
        order[0].detach()
        manager.alloc_pages(mm, 10)
        assert order[1].checks_run == 2  # survivor still checkpoints
        assert order[0].checks_run == 1
        order[1].detach()
        assert "alloc_pages" not in vars(manager)
        manager.alloc_pages(mm, 10)
        assert first.checks_run + second.checks_run == 3

    def test_manual_check_reports_owner_leak(self, manager):
        sanitizer = MemSanitizer(manager)
        mm = MmStruct("leak")
        manager.alloc_pages(mm, 100)
        with pytest.raises(InvariantViolation) as excinfo:
            sanitizer.check("teardown", owner=mm)
        assert "teardown-no-leak" in excinfo.value.rules


class TestSimBinding:
    def test_probe_sweeps_every_n_sim_events(self, manager):
        sim = Simulator()
        sanitizer = MemSanitizer(
            manager, config=SanitizerConfig(every_n_events=0)
        ).attach()
        sanitizer.bind_sim(sim, every_n_sim_events=2)
        for delay in range(4):
            sim.schedule(delay, lambda: None)
        sim.run()
        assert sanitizer.checks_run == 2

    def test_double_bind_rejected(self, manager):
        sim = Simulator()
        sanitizer = MemSanitizer(manager).attach()
        sanitizer.bind_sim(sim, every_n_sim_events=1)
        with pytest.raises(RuntimeError):
            sanitizer.bind_sim(sim, every_n_sim_events=1)

    def test_detach_removes_probe(self, manager):
        sim = Simulator()
        sanitizer = MemSanitizer(manager).attach()
        sanitizer.bind_sim(sim, every_n_sim_events=1)
        sanitizer.detach()
        sim.schedule(1, lambda: None)
        sim.run()
        assert sanitizer.checks_run == 0


class TestGlobalInstall:
    def test_install_attaches_to_new_managers(self, no_global_sanitizer):
        state = san.install(SanitizerConfig(every_n_events=1))
        manager = GuestMemoryManager(1 * GIB, 1 * GIB)
        assert len(state.sanitizers) == 1
        assert state.sanitizers[0].manager is manager
        assert state.sanitizers[0].checks_run >= 1  # the boot sweep
        assert san.installed_sanitizers() == state.sanitizers

    def test_installed_sanitizer_catches_corruption(self, no_global_sanitizer):
        san.install(SanitizerConfig(every_n_events=1))
        manager = GuestMemoryManager(1 * GIB, 1 * GIB)
        mm = MmStruct("global-victim")
        manager.alloc_pages(mm, 100)
        manager.zone_normal._free_pages += 9
        with pytest.raises(InvariantViolation):
            manager.alloc_pages(mm, 1)

    def test_nested_install_rejected(self, no_global_sanitizer):
        san.install()
        with pytest.raises(RuntimeError):
            san.install()

    def test_uninstall_returns_config_and_detaches(self, no_global_sanitizer):
        config = SanitizerConfig(every_n_events=7)
        san.install(config)
        manager = GuestMemoryManager(1 * GIB, 1 * GIB)
        assert san.uninstall() == config
        assert not san.is_installed()
        assert san.uninstall() is None
        assert "alloc_pages" not in vars(manager)  # instrumentation gone
        # Managers built after uninstall are bare.
        bare = GuestMemoryManager(1 * GIB, 1 * GIB)
        assert not hasattr(bare, "_sanitizer")

    def test_sanitized_context_manager(self, no_global_sanitizer):
        with san.sanitized(SanitizerConfig(every_n_events=1)) as state:
            assert san.is_installed()
            GuestMemoryManager(1 * GIB, 1 * GIB)
            assert state.sanitizers
        assert not san.is_installed()

    def test_config_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE_EVERY", raising=False)
        assert SanitizerConfig.from_env() == SanitizerConfig()
        monkeypatch.setenv("REPRO_SANITIZE_EVERY", "13")
        assert SanitizerConfig.from_env().every_n_events == 13
