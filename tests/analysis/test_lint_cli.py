"""End-to-end tests of the ``tools/lint.py`` gate.

These run the real CLI in a subprocess: seeded violations in each flow
rule family must turn the exit code red, SARIF must come out valid,
the baseline must grandfather without un-gating new findings, and
``--changed`` must honour the git merge-base.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
LINT = REPO_ROOT / "tools" / "lint.py"

#: One violation per flow rule family (plus a clean method as control).
SEEDED = '''\
__all__ = []


class Seeded:
    def racy_plug(self, count):
        free_slots = self.free_dimms()
        if count > len(free_slots):
            raise ValueError("full")
        yield self.core.submit(10, "dimm")
        self.manager.online_block(free_slots[0], zone_movable=True)
        return None

    def forget(self, nbytes):
        result = yield from self.datapath.request_unplug(nbytes)
        return None

    def leaky(self, tracer, cond):
        span = tracer.span("op")
        if cond:
            return None
        span.close()
        return None

    def fine(self):
        return 0
'''

CLEAN = '''\
__all__ = []


def fine():
    return 0
'''


def run_lint(*args, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, str(LINT), *args],
        capture_output=True,
        text=True,
        cwd=cwd,
    )


def seed_tree(tmp_path):
    package = tmp_path / "repro"
    package.mkdir()
    (package / "seeded.py").write_text(SEEDED, encoding="utf-8")
    return package


class TestGate:
    def test_seeded_violations_in_all_three_families_fail(self, tmp_path):
        package = seed_tree(tmp_path)
        proc = run_lint(str(package), "--no-baseline", "--json")
        assert proc.returncode == 1
        rules = {finding["rule"] for finding in json.loads(proc.stdout)}
        assert {
            "stale-guard-across-yield",
            "unchecked-result",
            "span-hygiene",
        } <= rules

    def test_repo_as_shipped_is_clean(self):
        proc = run_lint("src")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "lint clean" in proc.stdout

    def test_bad_path_exits_two(self):
        proc = run_lint("no/such/tree")
        assert proc.returncode == 2

    def test_list_rules_names_both_kinds(self):
        proc = run_lint("--list-rules")
        assert proc.returncode == 0
        assert "stale-guard-across-yield" in proc.stdout
        assert "[flow]" in proc.stdout
        assert "[ast" in proc.stdout


class TestSarifOutput:
    def test_sarif_file_is_written_and_valid(self, tmp_path):
        package = seed_tree(tmp_path)
        out = tmp_path / "lint.sarif"
        proc = run_lint(str(package), "--no-baseline", "--sarif", str(out))
        assert proc.returncode == 1  # the gate still gates
        log = json.loads(out.read_text(encoding="utf-8"))
        assert log["version"] == "2.1.0"
        results = log["runs"][0]["results"]
        assert results
        for result in results:
            assert result["partialFingerprints"]["reproLint/v1"]

    def test_sarif_to_stdout(self, tmp_path):
        package = seed_tree(tmp_path)
        proc = run_lint(str(package), "--no-baseline", "--sarif", "-")
        log = json.loads(proc.stdout)
        assert log["version"] == "2.1.0"


class TestBaselineWorkflow:
    def test_update_then_rerun_grandfathers(self, tmp_path):
        package = seed_tree(tmp_path)
        baseline = tmp_path / "baseline.json"

        proc = run_lint(
            str(package), "--update-baseline", "--baseline", str(baseline)
        )
        assert proc.returncode == 0
        assert baseline.is_file()

        proc = run_lint(str(package), "--baseline", str(baseline))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "grandfathered" in proc.stderr

    def test_new_violation_still_gates(self, tmp_path):
        package = seed_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        run_lint(str(package), "--update-baseline", "--baseline", str(baseline))

        (package / "fresh.py").write_text(
            CLEAN + "\n\nspan = tracer.span  # placeholder\n",
            encoding="utf-8",
        )
        (package / "fresh.py").write_text(
            SEEDED.replace("class Seeded", "class Fresh"), encoding="utf-8"
        )
        proc = run_lint(str(package), "--baseline", str(baseline))
        assert proc.returncode == 1
        assert "seeded.py" not in proc.stdout  # old findings stay silent
        assert "fresh.py" in proc.stdout

    def test_update_baseline_is_byte_deterministic(self, tmp_path):
        package = seed_tree(tmp_path)
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        run_lint(str(package), "--update-baseline", "--baseline", str(first))
        run_lint(str(package), "--update-baseline", "--baseline", str(second))
        assert first.read_bytes() == second.read_bytes()


class TestChangedMode:
    def make_repo(self, tmp_path):
        """A scratch clone: the CLI script resolves its repo root from
        its own location, so --changed is exercised against a copied
        ``tools/lint.py`` inside a fresh git history."""
        (tmp_path / "tools").mkdir()
        shutil.copy(LINT, tmp_path / "tools" / "lint.py")
        package = tmp_path / "repro"
        package.mkdir()
        (package / "base.py").write_text(CLEAN, encoding="utf-8")

        def git(*args):
            proc = subprocess.run(
                ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
                capture_output=True,
                text=True,
                cwd=tmp_path,
            )
            assert proc.returncode == 0, proc.stderr
            return proc

        git("init", "-q", "-b", "main")
        git("add", "-A")
        git("commit", "-q", "-m", "base")
        return package, git

    def run_scratch_lint(self, tmp_path, *args):
        import os

        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        return subprocess.run(
            [sys.executable, str(tmp_path / "tools" / "lint.py"), *args],
            capture_output=True,
            text=True,
            cwd=tmp_path,
            env=env,
        )

    def test_changed_lints_only_files_off_the_merge_base(self, tmp_path):
        package, git = self.make_repo(tmp_path)
        git("checkout", "-q", "-b", "feature")
        (package / "new.py").write_text(SEEDED, encoding="utf-8")
        git("add", "-A")
        git("commit", "-q", "-m", "seed a violation")

        proc = self.run_scratch_lint(
            tmp_path, "--changed", "repro", "--no-baseline"
        )
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "new.py" in proc.stdout
        assert "base.py" not in proc.stdout

    def test_changed_with_no_diff_passes(self, tmp_path):
        self.make_repo(tmp_path)
        proc = self.run_scratch_lint(
            tmp_path, "--changed", "repro", "--no-baseline"
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "no python files differ" in proc.stdout
