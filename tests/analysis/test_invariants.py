"""Unit tests for the invariant registry: every rule must catch a seeded
violation and stay silent on conforming state."""

import pytest

from repro.analysis.invariants import (
    INVARIANTS,
    CheckContext,
    Failure,
    InvariantViolation,
    check_now,
    describe_block,
    run_invariants,
)
from repro.core import HotMemBootParams
from repro.core.manager import HotMemManager
from repro.mm.block import BlockState, MemoryBlock
from repro.mm.manager import GuestMemoryManager
from repro.mm.mm_struct import MmStruct
from repro.mm.owner import PageOwner
from repro.sim import Simulator
from repro.units import GIB, MIB


@pytest.fixture
def manager():
    return GuestMemoryManager(
        boot_memory_bytes=1 * GIB, hotplug_region_bytes=2 * GIB
    )


@pytest.fixture
def hotmem(manager):
    """A HotMem layer with two 256 MiB partitions plus a 128 MiB shared
    partition, all fully populated from the hotplug region."""
    params = HotMemBootParams.for_function(
        256 * MIB, concurrency=2, shared_bytes=128 * MIB
    )
    hm = HotMemManager(Simulator(), manager, params)
    indices = iter(manager.hotplug_block_indices())
    for partition in hm.partitions + [hm.shared_partition]:
        for _ in range(partition.size_blocks):
            manager.online_block(next(indices), partition.zone)
    return hm


def violation(manager, **kwargs):
    """Run a sweep expecting failure; returns the InvariantViolation."""
    with pytest.raises(InvariantViolation) as excinfo:
        check_now(manager, **kwargs)
    return excinfo.value


class TestRegistry:
    def test_at_least_seven_rules_registered(self):
        assert len(INVARIANTS) >= 7

    def test_expected_rule_names(self):
        expected = {
            "page-conservation",
            "zone-free-counter",
            "block-state-legality",
            "zone-movability",
            "owner-mirror-sync",
            "hotmem-exclusivity",
            "footprint-confinement",
            "partition-refcount",
            "teardown-no-leak",
        }
        assert expected <= set(INVARIANTS)

    def test_every_rule_has_a_description(self):
        for rule in INVARIANTS.values():
            assert rule.description
            assert rule.name

    def test_unknown_rule_selection_rejected(self, manager):
        with pytest.raises(ValueError, match="no-such-rule"):
            run_invariants(CheckContext(manager), rules=["no-such-rule"])

    def test_rule_subset_runs_only_selected(self, manager):
        mm = MmStruct("subset")
        manager.alloc_pages(mm, 100)
        block = next(iter(mm.block_pages))
        block.owner_pages[mm] += 3  # owner-mirror-sync violation only
        failures = run_invariants(
            CheckContext(manager), rules=["block-state-legality"]
        )
        assert failures == []


class TestReport:
    def test_report_names_rule_and_block(self, manager):
        manager.zone_normal.blocks[0].free_pages += 7
        error = violation(manager, event="unit-test")
        assert "unit-test" in str(error)
        assert "block 0" in str(error)
        for rule in error.rules:
            assert f"[{rule}]" in error.report()

    def test_report_elides_beyond_block_limit(self):
        blocks = tuple(MemoryBlock(i) for i in range(12))
        error = InvariantViolation(
            [Failure("page-conservation", "synthetic", blocks)]
        )
        assert "... and 4 more block(s)" in error.report()

    def test_describe_block_covers_owners(self, manager):
        mm = MmStruct("descr")
        manager.alloc_pages(mm, 64)
        block = next(iter(mm.block_pages))
        line = describe_block(block)
        assert mm.owner_id in line
        assert "state=online" in line

    def test_violation_is_a_memory_error(self, manager):
        from repro.errors import MemoryError_

        manager.zone_normal.blocks[0].free_pages += 1
        with pytest.raises(MemoryError_):
            check_now(manager)


class TestPageConservation:
    def test_clean_manager_passes(self, manager):
        check_now(manager)

    def test_inflated_block_free_count_caught(self, manager):
        manager.zone_normal.blocks[0].free_pages += 7
        error = violation(manager)
        assert "page-conservation" in error.rules

    def test_absent_block_with_pages_caught(self, manager):
        absent = manager.blocks[manager.boot_blocks]
        assert absent.state is BlockState.ABSENT
        absent.free_pages = 5
        error = violation(manager)
        assert "page-conservation" in error.rules

    def test_global_ledger_mismatch_caught(self, manager):
        # Per-block accounting consistent, but a phantom owner entry on a
        # block inflates the allocated total against the online capacity.
        block = manager.zone_normal.blocks[0]
        phantom = PageOwner("phantom")
        taken = 16
        block.free_pages -= taken
        block.owner_pages[phantom] = taken
        phantom.block_pages[block] = taken
        manager.zone_normal._free_pages -= taken  # keep the zone counter honest
        check_now(manager)  # still conserved: pages moved free -> owned
        block.owner_pages[phantom] += 8  # now the ledger breaks
        error = violation(manager)
        assert "page-conservation" in error.rules


class TestZoneFreeCounter:
    def test_stale_cached_counter_caught(self, manager):
        manager.zone_normal._free_pages -= 5
        error = violation(manager)
        assert "zone-free-counter" in error.rules
        assert "delta -5" in str(error)

    def test_isolated_blocks_excluded_from_recount(self, manager):
        index = next(iter(manager.hotplug_block_indices()))
        block = manager.online_block(index, manager.zone_movable)
        manager.isolate_block(block)
        check_now(manager)  # isolation is not a violation
        manager.unisolate_block(block)
        check_now(manager)


class TestBlockStateLegality:
    def test_offline_block_in_zone_caught(self, manager):
        block = manager.zone_normal.blocks[-1]
        block.state = BlockState.OFFLINE
        error = violation(manager)
        assert "block-state-legality" in error.rules

    def test_boot_block_never_unplugged(self, manager):
        block = manager.blocks[0]
        # Detach the boot block "legally" so only the boot rule fires.
        manager.free_pages(manager.kernel, manager.kernel.total_pages)
        manager.zone_normal.detach_block(block)
        block.state = BlockState.ABSENT
        block.free_pages = 0
        error = violation(manager)
        assert "block-state-legality" in error.rules
        assert "boot" in str(error)

    def test_broken_backreference_caught(self, manager):
        index = next(iter(manager.hotplug_block_indices()))
        block = manager.online_block(index, manager.zone_movable)
        block.zone = manager.zone_normal
        error = violation(manager)
        assert "block-state-legality" in error.rules


class TestZoneMovability:
    def test_unmovable_owner_in_movable_zone_caught(self, manager):
        index = next(iter(manager.hotplug_block_indices()))
        block = manager.online_block(index, manager.zone_movable)
        # Seed the corruption below the zone API (which would refuse it):
        # kernel pages can never live in ZONE_MOVABLE.
        taken = 10
        block.charge(manager.kernel, taken)
        manager.kernel._mirror_charge(block, taken)
        manager.zone_movable._free_pages -= taken
        error = violation(manager)
        assert "zone-movability" in error.rules
        assert "kernel" in str(error)

    def test_movable_owner_in_movable_zone_ok(self, manager):
        index = next(iter(manager.hotplug_block_indices()))
        manager.online_block(index, manager.zone_movable)
        mm = MmStruct("movable")
        manager.alloc_pages(mm, 100, zones=[manager.zone_movable])
        check_now(manager)


class TestOwnerMirrorSync:
    def test_inflated_mirror_caught(self, manager):
        mm = MmStruct("mirror")
        manager.alloc_pages(mm, 100)
        block = next(iter(mm.block_pages))
        mm.block_pages[block] += 3
        error = violation(manager)
        assert "owner-mirror-sync" in error.rules

    def test_stale_mirror_entry_caught(self, manager):
        mm = MmStruct("stale")
        manager.alloc_pages(mm, 100)
        orphan = manager.blocks[manager.boot_blocks - 1]
        if orphan not in mm.block_pages:
            mm.block_pages[orphan] = 4
        else:
            mm.block_pages[orphan] += 4
        error = violation(manager)
        assert "owner-mirror-sync" in error.rules

    def test_non_positive_charge_caught(self, manager):
        mm = MmStruct("zero")
        manager.alloc_pages(mm, 50)
        block = next(iter(mm.block_pages))
        held = block.owner_pages[mm]
        block.owner_pages[mm] = 0
        block.free_pages += held  # keep conservation satisfied
        manager.zone_normal._free_pages += held
        mm.block_pages[block] = 0
        error = violation(manager)
        assert "owner-mirror-sync" in error.rules


class TestHotMemExclusivity:
    def test_clean_hotmem_setup_passes(self, manager, hotmem):
        check_now(manager, hotmem=hotmem)

    def test_foreign_owner_in_private_partition_caught(self, manager, hotmem):
        partition = hotmem.partitions[0]
        leader = MmStruct("leader")
        partition.assign(leader)
        manager.alloc_pages(leader, 200, zones=[partition.zone])
        intruder = MmStruct("intruder")
        manager.alloc_pages(intruder, 50, zones=[partition.zone])
        error = violation(manager, hotmem=hotmem)
        assert "hotmem-exclusivity" in error.rules
        assert intruder.owner_id in str(error)

    def test_anon_pages_in_shared_partition_caught(self, manager, hotmem):
        shared = hotmem.shared_partition
        mm = MmStruct("anon-in-shared")
        manager.alloc_pages(mm, 30, zones=[shared.zone])
        error = violation(manager, hotmem=hotmem)
        assert "hotmem-exclusivity" in error.rules

    def test_page_cache_in_shared_partition_ok(self, manager, hotmem):
        cache = PageOwner("page-cache")
        manager.alloc_pages(cache, 30, zones=[hotmem.shared_partition.zone])
        check_now(manager, hotmem=hotmem)


class TestFootprintConfinement:
    def test_partitioned_instance_leaking_outside_caught(self, manager, hotmem):
        partition = hotmem.partitions[0]
        mm = MmStruct("confined")
        partition.assign(mm)
        manager.alloc_pages(mm, 100, zones=[partition.zone])
        check_now(manager, hotmem=hotmem)
        # The bug class fig2 quantifies: anonymous pages of a partitioned
        # instance landing in a generic zone.
        manager.alloc_pages(mm, 10, zones=[manager.zone_normal])
        error = violation(manager, hotmem=hotmem)
        assert "footprint-confinement" in error.rules

    def test_vanilla_instance_may_interleave(self, manager):
        mm = MmStruct("vanilla")
        manager.alloc_pages(mm, 100)
        check_now(manager)


class TestPartitionRefcount:
    def test_refcount_without_assignment_caught(self, manager, hotmem):
        hotmem.partitions[0].partition_users = 2
        error = violation(manager, hotmem=hotmem)
        assert "partition-refcount" in error.rules

    def test_negative_refcount_caught(self, manager, hotmem):
        hotmem.partitions[1].partition_users = -1
        error = violation(manager, hotmem=hotmem)
        assert "partition-refcount" in error.rules

    def test_leak_on_teardown_caught(self, manager, hotmem):
        partition = hotmem.partitions[0]
        mm = MmStruct("leaker")
        partition.assign(mm)
        manager.alloc_pages(mm, 100, zones=[partition.zone])
        # Drop the refcount without freeing the address space (the bug
        # partition_users exists to prevent).
        partition.partition_users = 0
        partition.assigned_to = None
        mm.hotmem_partition = None
        error = violation(manager, hotmem=hotmem)
        assert "partition-refcount" in error.rules
        assert "leaked" in str(error)

    def test_shared_partition_never_assigned(self, manager, hotmem):
        hotmem.shared_partition.partition_users = 1
        error = violation(manager, hotmem=hotmem)
        assert "partition-refcount" in error.rules

    def test_empty_unassigned_partition_mid_unplug_ok(self, manager, hotmem):
        # Isolated-but-free partition blocks are a legal transient during
        # batched unplug, not a leak (regression for the Zone.occupied_pages
        # subtlety: the zone counter hides isolated pages).
        partition = hotmem.partitions[0]
        for block in partition.zone.blocks:
            manager.isolate_block(block)
        check_now(manager, hotmem=hotmem)


class TestQuarantineIsolation:
    def test_clean_quarantine_passes(self, manager):
        index = next(iter(manager.hotplug_block_indices()))
        block = manager.online_block(index, manager.zone_movable)
        manager.quarantine_block(block, reason="test")
        check_now(manager)
        manager.release_quarantine(block)
        check_now(manager)

    def test_unisolated_quarantined_block_caught(self, manager):
        index = next(iter(manager.hotplug_block_indices()))
        block = manager.online_block(index, manager.zone_movable)
        manager.quarantine_block(block)
        # Bypass the manager guard: leak the block back to the allocator.
        manager.zone_movable.unisolate_block(block)
        error = violation(manager)
        assert "quarantine-isolation" in error.rules
        assert "visible to the allocator" in str(error)

    def test_offline_quarantined_block_caught(self, manager):
        index = next(iter(manager.hotplug_block_indices()))
        block = manager.online_block(index, manager.zone_movable)
        manager.quarantine_block(block)
        block.state = BlockState.OFFLINE
        failures = run_invariants(
            CheckContext(manager), rules=["quarantine-isolation"]
        )
        assert failures and "must keep the block online" in failures[0].message

    def test_quarantined_block_in_live_partition_caught(self, manager, hotmem):
        partition = hotmem.partitions[0]
        manager.quarantine_block(partition.zone.blocks[0])
        error = violation(manager, hotmem=hotmem)
        assert "quarantine-isolation" in error.rules
        assert "not quarantined itself" in str(error)

    def test_assigned_quarantined_partition_caught(self, manager, hotmem):
        partition = hotmem.partitions[0]
        mm = MmStruct("assigned")
        partition.assign(mm)
        partition.quarantined = True  # bypass the PartitionBusy guard
        error = violation(manager, hotmem=hotmem)
        assert "quarantine-isolation" in error.rules
        assert "still assigned" in str(error)

    def test_quarantined_partition_unassigned_ok(self, manager, hotmem):
        partition = hotmem.partitions[0]
        for block in partition.zone.blocks:
            manager.quarantine_block(block)
        partition.quarantine()
        check_now(manager, hotmem=hotmem)


class TestTeardownNoLeak:
    def test_released_owner_with_pages_caught(self, manager):
        mm = MmStruct("undead")
        manager.alloc_pages(mm, 100)
        error = violation(manager, event="teardown", owner=mm)
        assert "teardown-no-leak" in error.rules

    def test_fully_freed_owner_passes(self, manager):
        mm = MmStruct("clean-exit")
        manager.alloc_pages(mm, 100)
        manager.free_all(mm)
        check_now(manager, event="teardown", owner=mm)

    def test_skipped_without_owner(self, manager):
        mm = MmStruct("not-torn-down")
        manager.alloc_pages(mm, 100)
        check_now(manager)  # owning pages is fine outside teardown


class TestSanitizerRegression:
    """Satellite: the full `--sanitize` experiment sweep surfaced no latent
    accounting bug, so pin the detection machinery itself — deliberately
    corrupt a healthy manager mid-workload and assert the sweep attributes
    the damage to the right rules."""

    def test_corruption_mid_workload_is_attributed(self, manager):
        instances = [MmStruct(f"fn-{i}") for i in range(4)]
        for index in list(manager.hotplug_block_indices())[:4]:
            manager.online_block(index, manager.zone_movable)
        for mm in instances:
            manager.alloc_pages(mm, 3000)
        manager.free_all(instances[1])
        manager.check_consistency()  # healthy after real churn
        victim = next(iter(instances[0].block_pages))
        victim.free_pages += 7  # the seeded bug
        with pytest.raises(InvariantViolation) as excinfo:
            manager.check_consistency()
        assert excinfo.value.rules == [
            "page-conservation",
            "zone-free-counter",
        ]
        assert f"block {victim.index}" in str(excinfo.value)

    def test_check_consistency_uses_hotmem_context(self, manager, hotmem):
        # manager.check_consistency() must pick up partition rules through
        # the _hotmem_context hook without being handed the HotMem layer.
        hotmem.partitions[0].partition_users = 3
        with pytest.raises(InvariantViolation) as excinfo:
            manager.check_consistency()
        assert "partition-refcount" in excinfo.value.rules


class TestHostConservation:
    """Fleet-level rule: per node, resident VMs' attributed backing bytes
    must sum exactly to the node's used bytes."""

    @staticmethod
    def _fleet_with_vm():
        from repro.cluster import Fleet, VmSpec

        sim = Simulator()
        fleet = Fleet(sim, hosts=1, nodes_per_host=1, memory_per_node=8 * GIB)
        handle = fleet.provision(
            VmSpec(name="hc-vm", region_bytes=1 * GIB, vcpus=2)
        )
        return fleet, handle

    def test_clean_fleet_passes(self):
        fleet, handle = self._fleet_with_vm()
        check_now(handle.vm.manager)

    def test_unattributed_host_charge_is_detected(self):
        fleet, handle = self._fleet_with_vm()
        # A charge made directly against the node bypasses every VM's
        # HostAccount ledger — exactly the leak the rule exists to catch.
        fleet.hosts[0].node(0).charge(128 * MIB)
        failure = violation(handle.vm.manager)
        assert "host-conservation" in failure.rules
        assert "hc-vm" in str(failure)

    def test_understated_ledger_is_detected(self):
        fleet, handle = self._fleet_with_vm()
        handle.vm.node.charged_bytes -= 64 * MIB  # corrupt the ledger
        failure = violation(handle.vm.manager)
        assert "host-conservation" in failure.rules

    def test_shutdown_vm_stops_counting(self):
        fleet, handle = self._fleet_with_vm()
        handle.shutdown()
        check_now(handle.vm.manager)

    def test_rule_skips_without_fleet_context(self, manager):
        # A bare manager (no fleet) must not trip the fleet-level rule.
        check_now(manager, rules=["host-conservation"])


class TestLedgerConservation:
    """Fleet-level rule: the density arbiter's committed ledger must
    equal the ground truth recomputed from alive VMs (zero drift)."""

    @staticmethod
    def _fleet_with_vms():
        from repro.cluster import Fleet, VmSpec

        sim = Simulator()
        fleet = Fleet(sim, hosts=1, nodes_per_host=1, memory_per_node=8 * GIB)
        a = fleet.provision(VmSpec(name="lc-a", region_bytes=1 * GIB, vcpus=2))
        b = fleet.provision(VmSpec(name="lc-b", region_bytes=1 * GIB, vcpus=2))
        return fleet, a, b

    def test_clean_fleet_passes(self):
        fleet, a, b = self._fleet_with_vms()
        check_now(a.vm.manager, rules=["ledger-conservation"])

    def test_overstated_arbiter_ledger_is_detected(self):
        fleet, a, b = self._fleet_with_vms()
        fleet.arbiter._committed[(0, 0)] += 64 * MIB  # corrupt the ledger
        failure = violation(a.vm.manager, rules=["ledger-conservation"])
        assert "ledger-conservation" in failure.rules

    def test_dead_vm_left_in_ledger_is_detected(self):
        fleet, a, b = self._fleet_with_vms()
        # Kill the VM behind the arbiter's back: the committed charge
        # survives with no alive VM backing it — exactly the drift a
        # crash leaves behind until reconcile() runs.
        if b.agent is not None:
            b.agent.kill()
        b.vm.kill()
        failure = violation(a.vm.manager, rules=["ledger-conservation"])
        assert "ledger-conservation" in failure.rules

    def test_reconcile_repairs_the_drift(self):
        fleet, a, b = self._fleet_with_vms()
        fleet.kill_vm("lc-b")
        check_now(a.vm.manager, rules=["ledger-conservation"])

    def test_rule_skips_without_fleet_context(self, manager):
        check_now(manager, rules=["ledger-conservation"])


def test_every_rule_has_a_seeded_violation_test():
    """Meta-test: each registered rule name appears in an assertion above."""
    import pathlib

    source = pathlib.Path(__file__).read_text(encoding="utf-8")
    for name in INVARIANTS:
        assert f'"{name}"' in source, f"no test asserts rule {name!r}"
