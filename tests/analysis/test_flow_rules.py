"""Precision fixtures for the CFG/dataflow lint rules.

Each rule gets minimal positive *and* negative snippets so its
behaviour is pinned: the true-positive patterns it exists to catch
(headlined by the pre-PR-4 DIMM slot race, reconstructed verbatim) and
the disciplined patterns it must stay quiet about (re-validated guards,
reservation tokens, results checked on all paths, spans closed in a
``finally``).
"""

from repro.analysis.lint import lint_source

# Flow rules only run over repro modules; fixtures pose as one.
FIXTURE_MODULE = "repro.fixtures.flow"


def findings(source: str, rule: str, module: str = FIXTURE_MODULE):
    return [
        error
        for error in lint_source(source, path="fixture.py", module=module)
        if error.rule == rule
    ]


def line_of(source: str, needle: str) -> int:
    for number, line in enumerate(source.splitlines(), start=1):
        if needle in line:
            return number
    raise AssertionError(f"fixture does not contain {needle!r}")


# ----------------------------------------------------------------------
# stale-guard-across-yield
# ----------------------------------------------------------------------
#: The pre-PR-4 DIMM plug path: snapshot free slots, guard on the
#: snapshot, cross the device RTT yield, then online blocks into slots
#: that another request may have claimed meanwhile.
RACY_DIMM_PLUG = '''\
__all__ = []


class RacyDimmHotplug:
    """Pre-PR-4 reconstruction: snapshot, guard, yield, act."""

    def plug(self, dimm_count):
        free_slots = self.free_dimms()
        if dimm_count > len(free_slots):
            raise HotplugError("not enough free DIMM slots")
        claimed = free_slots[:dimm_count]
        yield self.vmm_core.submit(self.costs.dimm_plug_rtt_ns, "dimm")
        for dimm in claimed:
            for index in self.dimm_block_indices(dimm):
                self.manager.online_block(index, zone_movable=True)
        return claimed
'''


class TestStaleGuardAcrossYield:
    def test_dimm_slot_race_flagged_at_check_and_act_lines(self):
        errors = findings(RACY_DIMM_PLUG, "stale-guard-across-yield")
        assert len(errors) == 1
        error = errors[0]
        check = line_of(RACY_DIMM_PLUG, "if dimm_count > len(free_slots)")
        act = line_of(RACY_DIMM_PLUG, "online_block")
        assert error.line == act
        assert f"check line {check}, act line {act}" in error.message
        assert "'free_dimms'" in error.message
        assert "yield intervenes" in error.message

    def test_reservation_token_published_before_yield_passes(self):
        # The PR-4 fix: claim the slots into shared state *before* the
        # yield, so concurrent requests see them as taken.
        fixed = RACY_DIMM_PLUG.replace(
            "        yield self.vmm_core.submit",
            "        self._reserved.update(claimed)\n"
            "        yield self.vmm_core.submit",
        )
        assert findings(fixed, "stale-guard-across-yield") == []

    def test_revalidated_guard_after_yield_passes(self):
        # The other disciplined shape: re-read shared state after the
        # resume and guard the mutation on the fresh read.
        revalidated = RACY_DIMM_PLUG.replace(
            "        for dimm in claimed:\n"
            "            for index in self.dimm_block_indices(dimm):\n"
            "                self.manager.online_block",
            "        for dimm in claimed:\n"
            "            if dimm not in self.free_dimms():\n"
            "                continue\n"
            "            for index in self.dimm_block_indices(dimm):\n"
            "                self.manager.online_block",
        )
        assert revalidated != RACY_DIMM_PLUG
        assert findings(revalidated, "stale-guard-across-yield") == []

    def test_mutation_before_the_yield_passes(self):
        source = '''\
__all__ = []


class EagerPlug:
    def plug(self, dimm_count):
        free_slots = self.free_dimms()
        if dimm_count > len(free_slots):
            raise HotplugError("not enough free DIMM slots")
        for dimm in free_slots[:dimm_count]:
            self.manager.online_block(dimm, zone_movable=True)
        yield self.vmm_core.submit(10, "dimm")
        return None
'''
        assert findings(source, "stale-guard-across-yield") == []

    def test_loop_recomputed_snapshot_passes(self):
        # The balloon inflate shape: the observation sits inside the
        # loop, so every iteration acts on a fresh snapshot even though
        # a yield separates iterations.
        source = '''\
__all__ = []


class Inflater:
    def inflate(self, target_pages):
        done = 0
        while done < target_pages:
            take = min(self._stealable_pages(), target_pages - done)
            if take > 0:
                self.manager.alloc_pages(self.owner, take)
                done += take
                continue
            yield Timeout(self.retry_ns)
        return done
'''
        assert findings(source, "stale-guard-across-yield") == []

    def test_suppression_comment_silences_the_finding(self):
        suppressed = RACY_DIMM_PLUG.replace(
            "self.manager.online_block(index, zone_movable=True)",
            "self.manager.online_block(index, zone_movable=True)"
            "  # lint: allow[stale-guard-across-yield] fixture",
        )
        assert findings(suppressed, "stale-guard-across-yield") == []

    def test_rule_scoped_to_repro_modules(self):
        assert (
            findings(RACY_DIMM_PLUG, "stale-guard-across-yield", module="scratch")
            == []
        )


# ----------------------------------------------------------------------
# unchecked-result
# ----------------------------------------------------------------------
class TestUncheckedResult:
    def test_result_dying_unchecked_is_flagged(self):
        source = '''\
__all__ = []


class Rig:
    def forget(self, nbytes):
        result = yield from self.datapath.request_unplug(nbytes)
        self.counter = self.counter + 1
        return None
'''
        errors = findings(source, "unchecked-result")
        assert len(errors) == 1
        assert errors[0].line == line_of(source, "request_unplug")
        assert "request_unplug" in errors[0].message
        assert "dies unchecked" in errors[0].message

    def test_result_checked_on_one_path_only_is_flagged(self):
        source = '''\
__all__ = []


class Rig:
    def sometimes(self, nbytes):
        result = yield from self.datapath.request_unplug(nbytes)
        if self.fast_path:
            return 0
        if result.fully_unplugged:
            return result.unplugged_bytes
        return 0
'''
        errors = findings(source, "unchecked-result")
        assert len(errors) == 1
        assert errors[0].line == line_of(source, "request_unplug")

    def test_result_checked_on_all_paths_passes(self):
        source = '''\
__all__ = []


class Rig:
    def checked(self, nbytes):
        result = yield from self.datapath.request_unplug(nbytes)
        if result.fully_unplugged:
            return result.unplugged_bytes
        return 0
'''
        assert findings(source, "unchecked-result") == []

    def test_result_propagated_by_return_passes(self):
        source = '''\
__all__ = []


class Rig:
    def propagate(self, nbytes):
        result = yield from self.datapath.request_unplug(nbytes)
        return result
'''
        assert findings(source, "unchecked-result") == []

    def test_process_handle_value_transfer_passes(self):
        # The request_* producers return a Process; `yield p` only joins
        # it, `p.value` transfers the checking obligation to the target.
        source = '''\
__all__ = []


class Rig:
    def via_handle(self, nbytes):
        unplug = self.vm.request_unplug(nbytes)
        yield unplug
        result = unplug.value
        return result.unplugged_bytes
'''
        assert findings(source, "unchecked-result") == []

    def test_process_handle_never_read_is_flagged(self):
        source = '''\
__all__ = []


class Rig:
    def fire_and_forget(self, nbytes):
        unplug = self.vm.request_unplug(nbytes)
        yield unplug
        return None
'''
        errors = findings(source, "unchecked-result")
        assert len(errors) == 1
        assert errors[0].line == line_of(source, "request_unplug")

    def test_admission_result_flagged_too(self):
        source = '''\
__all__ = []


class Gate:
    def route(self, invocation):
        decision = self.arbiter.admit(invocation)
        self.routed = self.routed + 1
        return None
'''
        errors = findings(source, "unchecked-result")
        assert len(errors) == 1
        assert ".admitted" in errors[0].message


# ----------------------------------------------------------------------
# span-hygiene
# ----------------------------------------------------------------------
class TestSpanHygiene:
    def test_early_return_skipping_close_is_flagged(self):
        source = '''\
__all__ = []


class Worker:
    def leaky(self, tracer, cond):
        span = tracer.span("op")
        if cond:
            return None
        span.close()
        return None
'''
        errors = findings(source, "span-hygiene")
        assert len(errors) == 1
        assert errors[0].line == line_of(source, 'tracer.span("op")')
        assert "'span'" in errors[0].message

    def test_close_in_only_one_branch_is_flagged(self):
        # A close() inside one branch must not settle the other branch:
        # this pins the compound-statement-head handling.
        source = '''\
__all__ = []


class Worker:
    def half(self, tracer, cond):
        span = tracer.span("op")
        if cond:
            span.close()
        return None
'''
        errors = findings(source, "span-hygiene")
        assert len(errors) == 1

    def test_close_in_every_branch_passes(self):
        source = '''\
__all__ = []


class Worker:
    def branchy(self, tracer, cond):
        span = tracer.span("op")
        if cond:
            span.close()
        else:
            span.close()
        return None
'''
        assert findings(source, "span-hygiene") == []

    def test_close_in_finally_passes(self):
        source = '''\
__all__ = []


class Worker:
    def safe(self, tracer):
        span = tracer.span("op")
        try:
            yield from self.work()
        finally:
            span.close()
        return None
'''
        assert findings(source, "span-hygiene") == []

    def test_with_statement_passes(self):
        source = '''\
__all__ = []


class Worker:
    def scoped(self, tracer):
        with tracer.span("op") as span:
            yield from self.work(span)
        return None
'''
        assert findings(source, "span-hygiene") == []

    def test_handoff_to_helper_passes(self):
        source = '''\
__all__ = []


class Worker:
    def handoff(self, tracer):
        span = tracer.span("op")
        self.finisher.finish(span)
        return None
'''
        assert findings(source, "span-hygiene") == []


# ----------------------------------------------------------------------
# no-sim-sleep-side-effect
# ----------------------------------------------------------------------
class TestNoSimSleepSideEffect:
    def test_mutation_fused_with_timeout_yield_is_flagged(self):
        source = '''\
__all__ = []


class Device:
    def refill(self):
        self._pending_blocks.append((yield Timeout(10)))
        return None
'''
        errors = findings(source, "no-sim-sleep-side-effect")
        assert len(errors) == 1
        assert errors[0].line == line_of(source, "_pending_blocks")

    def test_shared_attribute_store_of_timeout_result_is_flagged(self):
        source = '''\
__all__ = []


class Device:
    def mark(self):
        self._idle_since = (yield Timeout(5))
        return None
'''
        errors = findings(source, "no-sim-sleep-side-effect")
        assert len(errors) == 1
        assert "._idle_since =" in errors[0].message

    def test_split_sleep_then_mutation_passes(self):
        source = '''\
__all__ = []


class Device:
    def refill(self):
        block = yield Timeout(10)
        self._pending_blocks.append(block)
        return None
'''
        assert findings(source, "no-sim-sleep-side-effect") == []

    def test_non_timeout_yield_passes(self):
        source = '''\
__all__ = []


class Device:
    def refill(self):
        self._pending_blocks.append((yield self.core.submit(5, "x")))
        return None
'''
        assert findings(source, "no-sim-sleep-side-effect") == []


# ----------------------------------------------------------------------
# no-unbounded-retry
# ----------------------------------------------------------------------
class TestNoUnboundedRetry:
    def test_unbounded_retry_loop_is_flagged(self):
        source = '''\
__all__ = []


class Driver:
    def plug(self, request):
        attempt = 0
        while True:
            attempt += 1
            result = yield self.device.submit(request)
            if result.error:
                yield Timeout(self.backoff_ns)
                continue
            return result.error
'''
        errors = findings(source, "no-unbounded-retry")
        assert len(errors) == 1
        assert errors[0].line == line_of(source, "while True:")
        assert "attempt" in errors[0].message

    def test_budget_gated_retry_passes(self):
        source = '''\
__all__ = []


class Driver:
    def plug(self, request):
        attempt = 0
        while True:
            attempt += 1
            result = yield self.device.submit(request)
            if not result.error:
                return result.error
            if attempt > self.retry.max_retries:
                return result.error
            yield Timeout(self.backoff_ns)
'''
        assert findings(source, "no-unbounded-retry") == []

    def test_event_loop_without_retry_vocabulary_passes(self):
        source = '''\
__all__ = []


class Monitor:
    def run(self, period_ns):
        while True:
            yield Timeout(period_ns)
            self.scan_hosts()
'''
        assert findings(source, "no-unbounded-retry") == []

    def test_bounded_while_condition_passes(self):
        source = '''\
__all__ = []


class Driver:
    def plug(self, request):
        attempt = 0
        while attempt < 5:
            attempt += 1
            yield Timeout(10)
        return None
'''
        assert findings(source, "no-unbounded-retry") == []

    def test_suppression_comment_silences_the_finding(self):
        source = '''\
__all__ = []


class Driver:
    def drain(self):
        while True:  # lint: allow[no-unbounded-retry]
            retry = yield self.queue.get()
            if retry is None:
                return None
'''
        assert findings(source, "no-unbounded-retry") == []


# ----------------------------------------------------------------------
# failure-domain result producers
# ----------------------------------------------------------------------
class TestFailureDomainProducers:
    def test_evacuation_result_dying_unchecked_is_flagged(self):
        source = '''\
__all__ = []


class Coordinator:
    def recover(self, host_index, victims):
        result = yield from self.fleet.evacuate(host_index, victims, 0)
        self.done = True
        return None
'''
        errors = findings(source, "unchecked-result")
        assert len(errors) == 1
        assert ".evacuated" in errors[0].message

    def test_evacuation_result_checked_passes(self):
        source = '''\
__all__ = []


class Coordinator:
    def recover(self, host_index, victims):
        result = yield from self.fleet.evacuate(host_index, victims, 0)
        if not result.ok:
            self.alert(host_index)
        return None
'''
        assert findings(source, "unchecked-result") == []

    def test_breaker_transition_dying_unchecked_is_flagged(self):
        source = '''\
__all__ = []


class Router:
    def settle(self, slot, ok):
        transition = slot.breaker.record_failure(self.sim.now)
        self.settled = True
        return None
'''
        errors = findings(source, "unchecked-result")
        assert len(errors) == 1
        assert ".to_state" in errors[0].message

    def test_breaker_transition_handed_off_passes(self):
        source = '''\
__all__ = []


class Router:
    def settle(self, slot, ok):
        transition = slot.breaker.record_failure(self.sim.now)
        if transition is not None:
            self.note(transition)
        return None
'''
        assert findings(source, "unchecked-result") == []
