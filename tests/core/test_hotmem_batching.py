"""Batched unplug over HotMem partitions (contiguity with gaps)."""

import pytest

from repro.cluster.provision import VmSpec
from repro.faas.policy import DeploymentMode
from repro.units import MIB


@pytest.fixture
def vm(fleet):
    return fleet.provision(
        VmSpec(
            "batched",
            mode=DeploymentMode.HOTMEM,
            partition_bytes=384 * MIB,
            concurrency=4,
            batch_unplug=True,
        )
    ).vm


def test_adjacent_free_partitions_unplug_as_one_run(sim, vm):
    vm.request_plug(4 * 384 * MIB)
    sim.run()
    # All four partitions are free and physically contiguous.
    process = vm.request_unplug(4 * 384 * MIB)
    sim.run()
    event = vm.tracer.unplug_events()[0]
    assert event.completed_bytes == 4 * 384 * MIB
    # One contiguous run: far cheaper than 12 per-block operations.
    assert process.value.latency_ns < 12 * (
        vm.costs.offline_block_base_ns + vm.costs.hot_remove_block_ns
    )
    vm.check_consistency()


def test_gap_from_busy_partition_splits_the_runs(sim, vm):
    vm.request_plug(4 * 384 * MIB)
    sim.run()
    # Occupy partition 1, leaving free partitions 0 and 2-3 (a gap).
    mms = []
    for _ in range(2):
        mm = vm.new_process("fn")
        vm.hotmem.try_attach(mm)
        mms.append(mm)
    # mms took partitions 0 and 1; free ones are 2,3 (contiguous).
    vm.exit_process(mms[0])  # partition 0 free again → runs {0} and {2,3}
    process = vm.request_unplug(3 * 384 * MIB)
    sim.run()
    assert process.value.unplugged_bytes == 3 * 384 * MIB
    assert process.value.migrated_pages == 0
    vm.check_consistency()
    # The busy partition is untouched.
    assert mms[1].hotmem_partition.is_fully_populated
