"""Unit tests for HotMem partitions (state machine + refcounting)."""

import pytest

from repro.core.partition import HotMemPartition, PartitionState
from repro.errors import PartitionBusy, PartitionError
from repro.mm.block import BlockState, MemoryBlock
from repro.mm.mm_struct import MmStruct
from repro.units import PAGES_PER_BLOCK


def populate(partition):
    for i in range(partition.size_blocks):
        block = MemoryBlock(i)
        block.state = BlockState.ONLINE
        block.free_pages = PAGES_PER_BLOCK
        partition.zone.add_block(block)


@pytest.fixture
def partition():
    return HotMemPartition(0, size_blocks=3)


class TestStates:
    def test_starts_empty(self, partition):
        assert partition.state is PartitionState.EMPTY
        assert partition.missing_blocks == 3
        assert not partition.is_reclaimable

    def test_populated_after_blocks_arrive(self, partition):
        populate(partition)
        assert partition.state is PartitionState.POPULATED
        assert partition.is_fully_populated
        assert partition.is_reclaimable

    def test_assigned_after_attach(self, partition):
        populate(partition)
        partition.assign(MmStruct("fn"))
        assert partition.state is PartitionState.ASSIGNED
        assert not partition.is_reclaimable

    def test_invalid_size_rejected(self):
        with pytest.raises(PartitionError):
            HotMemPartition(0, size_blocks=0)


class TestAssignment:
    def test_assign_links_mm(self, partition):
        populate(partition)
        mm = MmStruct("fn")
        partition.assign(mm)
        assert mm.hotmem_partition is partition
        assert partition.partition_users == 1
        assert partition.assigned_to is mm

    def test_assign_empty_partition_rejected(self, partition):
        with pytest.raises(PartitionError):
            partition.assign(MmStruct("fn"))

    def test_assign_partially_populated_rejected(self, partition):
        block = MemoryBlock(0)
        block.state = BlockState.ONLINE
        block.free_pages = PAGES_PER_BLOCK
        partition.zone.add_block(block)
        with pytest.raises(PartitionError):
            partition.assign(MmStruct("fn"))

    def test_double_assignment_rejected(self, partition):
        populate(partition)
        partition.assign(MmStruct("a"))
        with pytest.raises(PartitionError):
            partition.assign(MmStruct("b"))

    def test_shared_partition_not_assignable(self):
        shared = HotMemPartition(9, size_blocks=1, shared=True)
        populate(shared)
        with pytest.raises(PartitionError):
            shared.assign(MmStruct("fn"))

    def test_shared_partition_never_reclaimable(self):
        shared = HotMemPartition(9, size_blocks=1, shared=True)
        populate(shared)
        assert not shared.is_reclaimable


class TestForkRefcounting:
    def test_fork_increments_users(self, partition):
        populate(partition)
        parent, child = MmStruct("p"), MmStruct("c")
        partition.assign(parent)
        partition.add_user(child)
        assert partition.partition_users == 2
        assert child.hotmem_partition is partition

    def test_add_user_without_assignment_rejected(self, partition):
        populate(partition)
        with pytest.raises(PartitionError):
            partition.add_user(MmStruct("c"))

    def test_partition_released_only_after_last_exit(self, partition):
        populate(partition)
        parent, child = MmStruct("p"), MmStruct("c")
        partition.assign(parent)
        partition.add_user(child)
        assert partition.drop_user(child) is False
        assert partition.state is PartitionState.ASSIGNED
        assert partition.drop_user(parent) is True
        assert partition.state is PartitionState.POPULATED

    def test_drop_foreign_mm_rejected(self, partition):
        populate(partition)
        partition.assign(MmStruct("p"))
        with pytest.raises(PartitionError):
            partition.drop_user(MmStruct("other"))

    def test_drop_without_users_rejected(self, partition):
        populate(partition)
        mm = MmStruct("p")
        partition.assign(mm)
        partition.drop_user(mm)
        with pytest.raises(PartitionError):
            partition.drop_user(mm)


class TestReleaseInvariant:
    def test_last_drop_with_occupied_pages_rejected(self, partition):
        populate(partition)
        mm = MmStruct("p")
        partition.assign(mm)
        partition.zone.allocate(mm, 100)
        with pytest.raises(PartitionBusy):
            partition.drop_user(mm)
        # State unchanged so the caller can free pages and retry.
        assert partition.partition_users == 1
        assert mm.hotmem_partition is partition

    def test_drop_after_freeing_succeeds(self, partition):
        populate(partition)
        mm = MmStruct("p")
        partition.assign(mm)
        plan = partition.zone.allocate(mm, 100)
        for block, pages in plan.items():
            partition.zone.release(mm, block, pages)
        assert partition.drop_user(mm) is True
        assert partition.is_reclaimable
