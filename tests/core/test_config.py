"""Unit tests for HotMem boot parameters."""

import pytest

from repro.core.config import HotMemBootParams
from repro.errors import ConfigError
from repro.units import GIB, MEMORY_BLOCK_SIZE, MIB


class TestValidation:
    def test_valid_params(self):
        params = HotMemBootParams(384 * MIB, concurrency=8, shared_bytes=256 * MIB)
        assert params.partition_blocks == 3
        assert params.shared_blocks == 2

    def test_misaligned_partition_rejected(self):
        with pytest.raises(ConfigError):
            HotMemBootParams(100 * MIB, concurrency=1, shared_bytes=0)

    def test_zero_concurrency_rejected(self):
        with pytest.raises(ConfigError):
            HotMemBootParams(384 * MIB, concurrency=0, shared_bytes=0)

    def test_misaligned_shared_rejected(self):
        with pytest.raises(ConfigError):
            HotMemBootParams(384 * MIB, concurrency=1, shared_bytes=10 * MIB)

    def test_zero_shared_allowed(self):
        params = HotMemBootParams(128 * MIB, concurrency=1, shared_bytes=0)
        assert params.shared_blocks == 0


class TestDerived:
    def test_for_function_rounds_up(self):
        params = HotMemBootParams.for_function(
            300 * MIB, concurrency=4, shared_bytes=100 * MIB
        )
        assert params.partition_bytes == 384 * MIB  # 3 blocks
        assert params.shared_bytes == 128 * MIB  # 1 block

    def test_max_hotplug_bytes(self):
        params = HotMemBootParams(384 * MIB, concurrency=8, shared_bytes=256 * MIB)
        assert params.max_hotplug_bytes == 8 * 384 * MIB + 256 * MIB

    def test_table1_bert_partition(self):
        params = HotMemBootParams.for_function(640 * MIB, 10, 256 * MIB)
        assert params.partition_bytes == 640 * MIB
        assert params.partition_blocks == 5
