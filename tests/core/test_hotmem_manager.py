"""Unit tests for the HotMem manager (syscall interface + waitqueue)."""

import pytest

from repro.core.config import HotMemBootParams
from repro.core.manager import HotMemManager
from repro.errors import NoFreePartition, PartitionError
from repro.mm.fault import FaultHandler
from repro.mm.manager import GuestMemoryManager
from repro.mm.mm_struct import MmStruct
from repro.sim.costs import CostModel
from repro.sim.engine import Simulator
from repro.units import GIB, MIB


@pytest.fixture
def setup(sim):
    manager = GuestMemoryManager(1 * GIB, 4 * GIB)
    params = HotMemBootParams(384 * MIB, concurrency=3, shared_bytes=128 * MIB)
    hotmem = HotMemManager(sim, manager, params)
    handler = FaultHandler(
        manager,
        CostModel(),
        shared_file_zones=hotmem.file_mapping_zones(),
    )
    return sim, manager, hotmem, handler


def populate_partition(manager, partition):
    free = [
        i
        for i in manager.hotplug_block_indices()
        if manager.blocks[i].state.value == "absent"
    ]
    for index in free[: partition.missing_blocks]:
        manager.online_block(index, partition.zone)


class TestBootState:
    def test_partition_table_created(self, setup):
        _, _, hotmem, _ = setup
        assert len(hotmem.partitions) == 3
        assert hotmem.shared_partition is not None
        assert hotmem.shared_partition.shared

    def test_zones_registered_with_mm(self, setup):
        _, manager, hotmem, _ = setup
        for partition in hotmem.partitions:
            assert partition.zone.name in manager.zones

    def test_no_shared_partition_when_zero_bytes(self, sim):
        manager = GuestMemoryManager(1 * GIB, 1 * GIB)
        params = HotMemBootParams(128 * MIB, concurrency=2, shared_bytes=0)
        hotmem = HotMemManager(sim, manager, params)
        assert hotmem.shared_partition is None

    def test_file_mapping_zones_fall_back_to_normal(self, setup):
        _, manager, hotmem, _ = setup
        zones = hotmem.file_mapping_zones()
        assert zones[0] is hotmem.shared_partition.zone
        assert zones[-1] is manager.zone_normal


class TestTryAttach:
    def test_attach_fails_with_no_populated_partition(self, setup):
        _, _, hotmem, _ = setup
        with pytest.raises(NoFreePartition):
            hotmem.try_attach(MmStruct("fn"))

    def test_attach_takes_lowest_populated(self, setup):
        _, manager, hotmem, _ = setup
        populate_partition(manager, hotmem.partitions[1])
        populate_partition(manager, hotmem.partitions[0])
        partition = hotmem.try_attach(MmStruct("fn"))
        assert partition.partition_id == 0

    def test_double_attach_rejected(self, setup):
        _, manager, hotmem, _ = setup
        populate_partition(manager, hotmem.partitions[0])
        mm = MmStruct("fn")
        hotmem.try_attach(mm)
        with pytest.raises(PartitionError):
            hotmem.try_attach(mm)

    def test_concurrency_limit_enforced(self, setup):
        _, manager, hotmem, _ = setup
        for partition in hotmem.partitions:
            populate_partition(manager, partition)
        for i in range(3):
            hotmem.try_attach(MmStruct(f"fn{i}"))
        with pytest.raises(NoFreePartition):
            hotmem.try_attach(MmStruct("fn3"))


class TestBlockingAttach:
    def test_attach_wakes_on_release(self, setup):
        sim, manager, hotmem, handler = setup
        populate_partition(manager, hotmem.partitions[0])
        first = MmStruct("first")
        hotmem.try_attach(first)
        handler.fault_anon(first, 100)

        def waiter():
            partition = yield from hotmem.attach(MmStruct("second"))
            return partition.partition_id

        process = sim.spawn(waiter())
        sim.run()
        assert not process.finished
        assert hotmem.waitqueue_depth == 1
        hotmem.process_exit(handler, first)
        sim.run()
        assert process.finished
        assert process.value == 0

    def test_attach_wakes_on_plug_completion(self, setup):
        sim, manager, hotmem, handler = setup

        def waiter():
            partition = yield from hotmem.attach(MmStruct("fn"))
            return partition.partition_id

        process = sim.spawn(waiter())
        sim.run()
        assert not process.finished
        partition = hotmem.partitions[0]
        populate_partition(manager, partition)
        hotmem.on_block_plugged(partition)
        sim.run()
        assert process.finished

    def test_waiters_fifo(self, setup):
        sim, manager, hotmem, handler = setup
        order = []

        def waiter(tag):
            yield from hotmem.attach(MmStruct(tag))
            order.append(tag)

        sim.spawn(waiter("a"))
        sim.spawn(waiter("b"))
        sim.run()
        partition = hotmem.partitions[0]
        populate_partition(manager, partition)
        hotmem.on_block_plugged(partition)
        sim.run()
        assert order == ["a"]  # only one partition became available

    def test_kick_wakes_one_waiter_per_partition(self, setup):
        sim, manager, hotmem, handler = setup
        finished = []

        def waiter(tag):
            yield from hotmem.attach(MmStruct(tag))
            finished.append(tag)

        for tag in ("a", "b", "c"):
            sim.spawn(waiter(tag))
        sim.run()
        for partition in hotmem.partitions[:2]:
            populate_partition(manager, partition)
            hotmem.on_block_plugged(partition)
        sim.run()
        assert finished == ["a", "b"]
        assert hotmem.waitqueue_depth == 1


class TestForkAndExit:
    def test_fork_colocates_child(self, setup):
        _, manager, hotmem, _ = setup
        populate_partition(manager, hotmem.partitions[0])
        parent, child = MmStruct("p"), MmStruct("c")
        partition = hotmem.try_attach(parent)
        hotmem.fork(parent, child)
        assert child.hotmem_partition is partition
        assert partition.partition_users == 2

    def test_fork_from_non_hotmem_parent_rejected(self, setup):
        _, _, hotmem, _ = setup
        with pytest.raises(PartitionError):
            hotmem.fork(MmStruct("p"), MmStruct("c"))

    def test_exit_frees_pages_and_releases_partition(self, setup):
        _, manager, hotmem, handler = setup
        populate_partition(manager, hotmem.partitions[0])
        mm = MmStruct("fn")
        partition = hotmem.try_attach(mm)
        handler.fault_anon(mm, 5000)
        hotmem.process_exit(handler, mm)
        assert mm.total_pages == 0
        assert partition.partition_users == 0
        assert partition.is_reclaimable

    def test_exit_of_non_hotmem_process_rejected(self, setup):
        _, _, hotmem, handler = setup
        with pytest.raises(PartitionError):
            hotmem.process_exit(handler, MmStruct("plain"))

    def test_partition_reusable_without_replug(self, setup):
        """The rapid-reuse path: a released partition serves the next
        instance with zero plug work."""
        _, manager, hotmem, handler = setup
        populate_partition(manager, hotmem.partitions[0])
        first = MmStruct("first")
        hotmem.try_attach(first)
        handler.fault_anon(first, 1000)
        hotmem.process_exit(handler, first)
        second = MmStruct("second")
        partition = hotmem.try_attach(second)
        assert partition.partition_id == 0
        handler.fault_anon(second, 1000)
        assert second.total_pages == 1000


class TestReclaimable:
    def test_reclaimable_lists_only_free_populated(self, setup):
        _, manager, hotmem, handler = setup
        populate_partition(manager, hotmem.partitions[0])
        populate_partition(manager, hotmem.partitions[1])
        mm = MmStruct("fn")
        hotmem.try_attach(mm)  # takes partition 0
        reclaimable = hotmem.reclaimable_partitions()
        assert [p.partition_id for p in reclaimable] == [1]

    def test_partitions_needing_population_ordered(self, setup):
        _, manager, hotmem, _ = setup
        populate_partition(manager, hotmem.partitions[1])
        needing = hotmem.partitions_needing_population()
        assert [p.partition_id for p in needing] == [0, 2]
