"""Unit tests for the HotMem virtio-mem backend."""

import pytest

from repro.core.backend import HotMemBackend
from repro.core.config import HotMemBootParams
from repro.core.manager import HotMemManager
from repro.errors import HotplugError, OfflineFailed
from repro.mm.fault import FaultHandler
from repro.mm.manager import GuestMemoryManager
from repro.mm.mm_struct import MmStruct
from repro.sim.costs import CostModel, ZeroingMode
from repro.units import GIB, MIB


@pytest.fixture
def setup(sim):
    manager = GuestMemoryManager(1 * GIB, 4 * GIB)
    params = HotMemBootParams(384 * MIB, concurrency=3, shared_bytes=128 * MIB)
    hotmem = HotMemManager(sim, manager, params)
    backend = HotMemBackend(hotmem)
    return manager, hotmem, backend


def plug_blocks(manager, backend, count):
    placement = backend.zones_for_plug(count)
    free = [
        i
        for i in manager.hotplug_block_indices()
        if manager.blocks[i].state.value == "absent"
    ]
    cursor = 0
    for zone, n in placement:
        for _ in range(n):
            block = manager.online_block(free[cursor], zone)
            backend.on_block_plugged(block)
            cursor += 1


class TestPlugPolicy:
    def test_plug_fills_lowest_partition_first(self, setup):
        manager, hotmem, backend = setup
        placement = backend.zones_for_plug(3)
        assert placement == [(hotmem.partitions[0].zone, 3)]

    def test_plug_spans_partitions(self, setup):
        manager, hotmem, backend = setup
        placement = backend.zones_for_plug(5)
        assert placement == [
            (hotmem.partitions[0].zone, 3),
            (hotmem.partitions[1].zone, 2),
        ]

    def test_plug_beyond_concurrency_rejected(self, setup):
        _, _, backend = setup
        with pytest.raises(HotplugError):
            backend.zones_for_plug(10)

    def test_plug_never_zeroes(self, setup):
        _, _, backend = setup
        assert backend.plug_zero_pages_per_block() == 0

    def test_plug_completion_tracked_per_partition(self, setup):
        manager, hotmem, backend = setup
        plug_blocks(manager, backend, 3)
        assert hotmem.partitions[0].is_fully_populated
        first_index = next(iter(manager.hotplug_block_indices()))
        assert backend.partition_of_block(first_index) is hotmem.partitions[0]


class TestUnplugPolicy:
    def test_plan_only_reclaimable_partitions(self, setup):
        manager, hotmem, backend = setup
        plug_blocks(manager, backend, 6)  # partitions 0 and 1
        mm = MmStruct("fn")
        hotmem.try_attach(mm)  # occupies partition 0
        plan = backend.plan_unplug(6)
        zone1 = hotmem.partitions[1].zone
        assert len(plan) == 3
        assert all(entry.block.zone is zone1 for entry in plan)

    def test_plan_has_no_scan_cost(self, setup):
        manager, hotmem, backend = setup
        plug_blocks(manager, backend, 3)
        plan = backend.plan_unplug(3)
        assert all(entry.scanned_blocks == 0 for entry in plan)

    def test_no_migration_ever(self, setup):
        manager, hotmem, backend = setup
        plug_blocks(manager, backend, 3)
        block = hotmem.partitions[0].zone.blocks[0]
        assert backend.migrate_for_unplug(block) == 0

    def test_occupied_block_violates_invariant(self, setup):
        manager, hotmem, backend = setup
        plug_blocks(manager, backend, 3)
        mm = MmStruct("fn")
        zone = hotmem.partitions[0].zone
        zone.allocate(mm, 10)
        with pytest.raises(OfflineFailed):
            backend.migrate_for_unplug(zone.blocks[0])

    def test_no_zeroing_on_unplug(self, setup):
        _, _, backend = setup
        assert backend.unplug_zero_pages(0) == 0

    def test_plan_empty_when_everything_busy(self, setup):
        manager, hotmem, backend = setup
        plug_blocks(manager, backend, 3)
        hotmem.try_attach(MmStruct("fn"))
        assert backend.plan_unplug(3) == []
