"""Property-based tests for HotMem invariants.

The central claims of the design, driven through random operation
sequences:

* *isolation* — a HotMem process's anonymous pages only ever live in its
  assigned partition's zone;
* *refcount sanity* — ``partition_users`` equals the number of live
  memory descriptors linked to the partition;
* *reclaimability* — a partition with zero users is always empty
  (unpluggable with zero migrations).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import HotMemBootParams
from repro.core.manager import HotMemManager
from repro.errors import NoFreePartition, OutOfMemory, PartitionError
from repro.mm.fault import FaultHandler
from repro.mm.manager import GuestMemoryManager
from repro.mm.mm_struct import MmStruct
from repro.sim.costs import CostModel
from repro.sim.engine import Simulator
from repro.units import GIB, MIB

CONCURRENCY = 3

operations = st.lists(
    st.one_of(
        st.tuples(st.just("spawn"), st.integers(0, 5), st.just(0)),
        st.tuples(st.just("fault"), st.integers(0, 5), st.integers(1, 40000)),
        st.tuples(st.just("fork"), st.integers(0, 5), st.integers(0, 5)),
        st.tuples(st.just("exit"), st.integers(0, 5), st.just(0)),
    ),
    min_size=1,
    max_size=50,
)


def build():
    sim = Simulator()
    manager = GuestMemoryManager(1 * GIB, 4 * GIB)
    params = HotMemBootParams(
        384 * MIB, concurrency=CONCURRENCY, shared_bytes=0
    )
    hotmem = HotMemManager(sim, manager, params)
    handler = FaultHandler(manager, CostModel(), oom_killer=None)
    # Populate every partition (plug everything up front).
    free = list(manager.hotplug_block_indices())
    cursor = 0
    for partition in hotmem.partitions:
        for _ in range(partition.size_blocks):
            manager.online_block(free[cursor], partition.zone)
            cursor += 1
    return manager, hotmem, handler


def check_invariants(manager, hotmem, slots):
    manager.check_consistency()
    for partition in hotmem.partitions:
        linked = [
            mm
            for mm in slots.values()
            if mm is not None and mm.hotmem_partition is partition
        ]
        assert partition.partition_users == len(linked)
        if partition.partition_users == 0:
            assert partition.zone.is_empty
        for mm in linked:
            assert all(b.zone is partition.zone for b in mm.block_pages)


@settings(max_examples=60, deadline=None)
@given(ops=operations)
def test_partition_isolation_and_refcounts(ops):
    manager, hotmem, handler = build()
    slots = {i: None for i in range(6)}
    children = {}  # slot -> parent slot

    for op, slot, arg in ops:
        mm = slots[slot]
        if op == "spawn":
            if mm is None:
                candidate = MmStruct(f"s{slot}")
                try:
                    hotmem.try_attach(candidate)
                    slots[slot] = candidate
                except NoFreePartition:
                    pass
        elif op == "fault":
            if mm is not None:
                try:
                    handler.fault_anon(mm, arg)
                except OutOfMemory:
                    # Partition overflow killed the process: clean it up.
                    hotmem.process_exit(handler, mm)
                    slots[slot] = None
        elif op == "fork":
            parent = slots[arg]
            if parent is not None and mm is None and slot != arg:
                child = MmStruct(f"s{slot}-child")
                hotmem.fork(parent, child)
                slots[slot] = child
        elif op == "exit":
            if mm is not None:
                hotmem.process_exit(handler, mm)
                slots[slot] = None
        check_invariants(manager, hotmem, slots)


@settings(max_examples=40, deadline=None)
@given(
    attach_order=st.permutations(list(range(5))),
    exits=st.lists(st.integers(0, 4), max_size=5, unique=True),
)
def test_attach_exit_cycles_never_leak_partitions(attach_order, exits):
    manager, hotmem, handler = build()
    attached = {}
    for i in attach_order:
        mm = MmStruct(f"p{i}")
        try:
            hotmem.try_attach(mm)
            attached[i] = mm
        except NoFreePartition:
            pass
    assert len(attached) == CONCURRENCY
    for i in exits:
        if i in attached:
            hotmem.process_exit(handler, attached.pop(i))
    free = len(hotmem.populated_unassigned())
    assert free == CONCURRENCY - len(attached)
    # Every freed partition must be immediately reattachable.
    for _ in range(free):
        hotmem.try_attach(MmStruct("reuse"))
