"""Unit tests for time-series collection."""

import pytest

from repro.metrics.collector import FleetCollector, PeriodicSampler, TimeSeries
from repro.obs.rollup import RollupSeries
from repro.units import SEC


class TestTimeSeries:
    def test_record_and_read(self):
        series = TimeSeries("t")
        series.record(0, 1.0)
        series.record(10, 2.0)
        assert series.values() == [1.0, 2.0]
        assert len(series) == 2
        assert series.last() == (10, 2.0)

    def test_non_monotone_time_rejected(self):
        series = TimeSeries("t")
        series.record(10, 1.0)
        with pytest.raises(ValueError):
            series.record(5, 2.0)

    def test_empty_series_accessors_raise(self):
        series = TimeSeries("t")
        with pytest.raises(ValueError):
            series.last()
        with pytest.raises(ValueError):
            series.max_value()

    def test_delta_and_max(self):
        series = TimeSeries("t")
        for t, v in [(0, 5.0), (1, 9.0), (2, 7.0)]:
            series.record(t, v)
        assert series.delta() == 2.0
        assert series.max_value() == 9.0

    def test_times_in_seconds(self):
        series = TimeSeries("t")
        series.record(2 * SEC, 1.0)
        assert series.times_s() == [2.0]

    def test_percentile_nearest_rank(self):
        series = TimeSeries("t")
        for t, v in enumerate([10.0, 40.0, 20.0, 30.0]):
            series.record(t, v)
        assert series.percentile(50) == 20.0
        assert series.percentile(99) == 40.0
        assert series.percentile(0) == 10.0
        assert series.percentile(100) == 40.0

    def test_percentile_is_an_actual_sample(self):
        series = TimeSeries("t")
        for t, v in enumerate([1.0, 1000.0]):
            series.record(t, v)
        # Nearest-rank, not interpolated: the result is a real sample.
        assert series.percentile(50) in series.values()

    def test_percentile_empty_and_out_of_range_raise(self):
        with pytest.raises(ValueError):
            TimeSeries("t").percentile(50)
        series = TimeSeries("t")
        series.record(0, 1.0)
        with pytest.raises(ValueError):
            series.percentile(101)
        with pytest.raises(ValueError):
            series.percentile(-1)


class TestPeriodicSampler:
    def test_samples_on_period(self, sim):
        counter = {"n": 0}

        def probe():
            counter["n"] += 1
            return counter["n"]

        sampler = PeriodicSampler(sim, probe, period_ns=SEC, name="s")
        sampler.start(until_ns=5 * SEC)
        sim.run(until=10 * SEC)
        assert 5 <= len(sampler.series) <= 7

    def test_stop_ends_sampling(self, sim):
        sampler = PeriodicSampler(sim, lambda: 1.0, period_ns=SEC)
        sampler.start()
        sim.run(until=3 * SEC)
        sampler.stop()
        sim.run(until=20 * SEC)
        count = len(sampler.series)
        sim.run(until=40 * SEC)
        assert len(sampler.series) == count

    def test_invalid_period_rejected(self, sim):
        with pytest.raises(ValueError):
            PeriodicSampler(sim, lambda: 0.0, period_ns=0)


class TestTimeSeriesRejectsNonFinite:
    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf")]
    )
    def test_non_finite_samples_raise_with_series_name(self, bad):
        series = TimeSeries("mem-used")
        with pytest.raises(ValueError, match="mem-used: non-finite sample"):
            series.record(5, bad)
        assert len(series) == 0


class TestFleetCollectorExactMode:
    def test_host_rollup_is_pointwise_sum(self, sim, fleet):
        collector = FleetCollector(sim, fleet, period_ns=SEC, bounded=False)
        collector.start(until_ns=3 * SEC)
        sim.run(until=3 * SEC)
        rolled = collector.host_used_series(0)
        parts = [s for (h, _), s in collector.used.items() if h == 0]
        assert len(rolled) == len(parts[0])
        for i, (_, value) in enumerate(rolled.samples):
            assert value == sum(p.samples[i][1] for p in parts)

    def test_rolled_series_names_come_from_kind(self, sim, fleet):
        collector = FleetCollector(sim, fleet, period_ns=SEC, bounded=False)
        collector.start(until_ns=2 * SEC)
        sim.run(until=2 * SEC)
        assert collector.host_used_series(0).name == "used-h0"
        assert collector.host_used_series(0).kind == "used"
        assert collector.host_committed_series(0).name == "committed-h0"
        assert collector.host_committed_series(0).kind == "committed"

    def test_unknown_host_raises(self, sim, fleet):
        collector = FleetCollector(sim, fleet, period_ns=SEC, bounded=False)
        with pytest.raises(ValueError, match="no series for host 7"):
            collector.host_used_series(7)

    def test_misaligned_series_raise_with_lengths(self, sim, fleet):
        collector = FleetCollector(sim, fleet, period_ns=SEC, bounded=False)
        collector.start(until_ns=3 * SEC)
        sim.run(until=3 * SEC)
        straggler = TimeSeries("used-h0n99")
        straggler.record(0, 1.0)
        collector.used[(0, 99)] = straggler
        with pytest.raises(ValueError, match="misaligned per-node series"):
            collector.host_used_series(0)
        with pytest.raises(ValueError, match="used-h0n99=1"):
            collector.host_used_series(0)


class TestFleetCollectorBoundedMode:
    def test_bounded_is_the_default(self, sim, fleet):
        collector = FleetCollector(sim, fleet, period_ns=SEC)
        assert collector.bounded

    def test_host_series_is_a_rollup(self, sim, fleet):
        collector = FleetCollector(sim, fleet, period_ns=SEC)
        collector.start(until_ns=3 * SEC)
        sim.run(until=3 * SEC)
        series = collector.host_used_series(0)
        assert isinstance(series, RollupSeries)
        assert series.kind == "used"
        assert series.labels["host"] == 0
        assert "node" not in series.labels

    def test_unknown_host_raises(self, sim, fleet):
        collector = FleetCollector(sim, fleet, period_ns=SEC)
        with pytest.raises(ValueError, match="no series for host 7"):
            collector.host_used_series(7)

    def test_peak_matches_exact_mode_bitwise(self, sim, fleet):
        bounded = FleetCollector(sim, fleet, period_ns=SEC)
        exact = FleetCollector(sim, fleet, period_ns=SEC, bounded=False)
        bounded.start(until_ns=5 * SEC)
        exact.start(until_ns=5 * SEC)
        sim.run(until=5 * SEC)
        for host_index in range(len(fleet.hosts)):
            assert bounded.peak_used_bytes(host_index) == exact.peak_used_bytes(
                host_index
            )

    def test_resident_buckets_stay_bounded_over_long_horizons(
        self, sim, fleet
    ):
        max_buckets = 8
        collector = FleetCollector(
            sim, fleet, period_ns=SEC, max_buckets=max_buckets
        )
        collector.start(until_ns=200 * SEC)
        sim.run(until=200 * SEC)
        series_count = (
            len(collector.used)
            + len(collector.committed)
            + 2 * len(fleet.hosts)
        )
        assert collector.bucket_count() <= series_count * max_buckets
        # Sample counts keep growing even though residency does not.
        host = collector.host_used_series(0)
        assert len(host) > max_buckets

    def test_bucket_count_is_bounded_mode_only(self, sim, fleet):
        exact = FleetCollector(sim, fleet, period_ns=SEC, bounded=False)
        with pytest.raises(ValueError, match="bounded-mode"):
            exact.bucket_count()

    def test_labels_propagate_to_every_series(self, sim, fleet):
        collector = FleetCollector(
            sim, fleet, period_ns=SEC, labels={"mode": "hotmem"}
        )
        for series in collector.used.values():
            assert series.labels["mode"] == "hotmem"
        assert collector.host_used_series(0).labels["mode"] == "hotmem"
