"""Unit and property tests for latency statistics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faas.records import InvocationRecord
from repro.metrics.latency import (
    mean_ms,
    p99_ms,
    per_second_average_ms,
    percentile,
    spike_factor,
    window_mean_factor,
)
from repro.units import MS, SEC


def record(arrival_s, latency_ms, function="f"):
    arrival = int(arrival_s * SEC)
    return InvocationRecord(
        function, arrival, arrival, arrival + int(latency_ms * MS),
        cold=False, ok=True,
    )


class TestPercentile:
    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_single_value(self):
        assert percentile([7], 99) == 7

    def test_median_of_odd_sample(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_p0_is_min_p100_is_max(self):
        values = [5, 1, 9, 3]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    @settings(max_examples=50)
    @given(values=st.lists(st.integers(0, 10**6), min_size=1, max_size=200),
           q=st.floats(0, 100))
    def test_percentile_always_a_sample_value(self, values, q):
        assert percentile(values, q) in values

    @settings(max_examples=50)
    @given(values=st.lists(st.integers(0, 10**6), min_size=1, max_size=100))
    def test_percentile_monotone_in_q(self, values):
        assert percentile(values, 50) <= percentile(values, 99)


class TestRecordStats:
    def test_p99_of_uniform_sample(self):
        records = [record(0, latency_ms=i) for i in range(1, 101)]
        assert p99_ms(records) == 99.0

    def test_mean(self):
        records = [record(0, 10), record(0, 30)]
        assert mean_ms(records) == 20.0

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ms([])


class TestPerSecondSeries:
    def test_buckets_by_arrival_second(self):
        records = [record(0.2, 10), record(0.8, 30), record(2.5, 100)]
        series = per_second_average_ms(records, duration_s=4)
        assert series[0] == (0, 20.0)
        assert math.isnan(series[1][1])
        assert series[2] == (2, 100.0)
        assert math.isnan(series[3][1])

    def test_out_of_range_arrivals_ignored(self):
        records = [record(10, 50)]
        series = per_second_average_ms(records, duration_s=5)
        assert all(math.isnan(v) for _, v in series)


class TestSpikeFactors:
    def make_series(self):
        series = [(s, 100.0) for s in range(20)]
        series[10] = (10, 300.0)
        series[11] = (11, 200.0)
        return series

    def test_spike_factor_peak_over_baseline(self):
        assert spike_factor(self.make_series(), (9, 13)) == 3.0

    def test_window_mean_factor(self):
        # window [10, 12): mean(300, 200)=250 over baseline 100.
        assert window_mean_factor(self.make_series(), (10, 12)) == 2.5

    def test_flat_series_factor_one(self):
        series = [(s, 100.0) for s in range(20)]
        assert spike_factor(series, (5, 10)) == 1.0
        assert window_mean_factor(series, (5, 10)) == 1.0

    def test_empty_window_returns_one(self):
        series = [(s, 100.0) for s in range(5)]
        assert spike_factor(series, (10, 12)) == 1.0

    def test_nan_values_skipped(self):
        series = [(0, 100.0), (1, math.nan), (2, 100.0), (3, 400.0)]
        assert spike_factor(series, (3, 4)) == 4.0
