"""Unit tests for fragmentation metrics."""

import pytest

from repro.metrics.fragmentation import (
    fragmentation_report,
    migration_cost_to_reclaim,
    occupancy_histogram,
)
from repro.mm.block import BlockState, MemoryBlock
from repro.mm.manager import GuestMemoryManager
from repro.mm.mm_struct import MmStruct
from repro.mm.owner import PageOwner
from repro.units import GIB, PAGES_PER_BLOCK


def make_block(index, occupied_by=()):
    block = MemoryBlock(index)
    block.state = BlockState.ONLINE
    block.free_pages = PAGES_PER_BLOCK
    for owner, pages in occupied_by:
        block.charge(owner, pages)
    return block


class TestReport:
    def test_empty_set(self):
        report = fragmentation_report([])
        assert report.total_blocks == 0
        assert report.free_block_fraction == 0.0

    def test_all_free(self):
        report = fragmentation_report([make_block(i) for i in range(4)])
        assert report.fully_free_blocks == 4
        assert report.free_block_fraction == 1.0
        assert report.mean_owners_per_block == 0.0

    def test_owner_statistics(self):
        a, b = PageOwner("a"), PageOwner("b")
        blocks = [
            make_block(0, [(a, 100), (b, 100)]),
            make_block(1, [(a, 100)]),
            make_block(2),
        ]
        report = fragmentation_report(blocks)
        assert report.occupied_blocks == 2
        assert report.mean_owners_per_block == 1.5
        assert report.max_owners_per_block == 2
        assert report.fully_free_blocks == 1

    def test_reclaimable_bytes(self):
        report = fragmentation_report([make_block(0), make_block(1)])
        assert report.reclaimable_without_migration_bytes == 2 * 128 * 1024 * 1024


class TestHistogram:
    def test_buckets(self):
        a = PageOwner("a")
        blocks = [
            make_block(0),  # 0% → bucket 0
            make_block(1, [(a, PAGES_PER_BLOCK // 2)]),  # 50% → bucket 5
            make_block(2, [(a, PAGES_PER_BLOCK)]),  # 100% → last bucket
        ]
        histogram = occupancy_histogram(blocks)
        assert histogram[0] == 1
        assert histogram[5] == 1
        assert histogram[9] == 1
        assert sum(histogram) == 3

    def test_invalid_buckets_rejected(self):
        with pytest.raises(ValueError):
            occupancy_histogram([], buckets=0)


class TestMigrationCost:
    def test_picks_emptiest_blocks(self):
        manager = GuestMemoryManager(1 * GIB, 1 * GIB, placement="sequential")
        for index in manager.hotplug_block_indices():
            manager.online_block(index, manager.zone_movable)
        mm = MmStruct("p")
        manager.alloc_pages(mm, PAGES_PER_BLOCK + 100, zones=[manager.zone_movable])
        # Sequential fill: block0 full, block1 has 100 pages, rest empty.
        assert migration_cost_to_reclaim(manager, 2) == 0
        assert migration_cost_to_reclaim(manager, 7) == 100
        assert migration_cost_to_reclaim(manager, 8) == PAGES_PER_BLOCK + 100
