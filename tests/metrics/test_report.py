"""Unit tests for text report rendering."""

from repro.metrics.report import format_ratio, render_series, render_table


def test_render_table_contains_everything():
    text = render_table("Title", ["a", "bb"], [[1, 2.5], ["x", "y"]])
    assert "Title" in text
    assert "=" * len("Title") in text
    assert "2.50" in text
    assert "x" in text


def test_columns_padded_to_widest_cell():
    text = render_table("T", ["col"], [["wide-cell-value"]])
    header_line = text.splitlines()[2]
    assert len(header_line) >= len("wide-cell-value")


def test_format_ratio():
    assert format_ratio(10, 2) == "5.0x"
    assert format_ratio(1, 0) == "inf"


def test_render_series_is_a_table():
    text = render_series("S", [(0, 1.0)], ["t", "v"])
    assert "S" in text and "1.00" in text
