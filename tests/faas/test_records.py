"""Unit tests for invocation records."""

from repro.faas.records import InvocationRecord


def test_latency_is_end_to_end():
    record = InvocationRecord("f", arrival_ns=100, start_ns=150, end_ns=400,
                              cold=False, ok=True)
    assert record.latency_ns == 300
    assert record.queue_ns == 50


def test_failed_record_carries_error():
    record = InvocationRecord("f", 0, 0, 0, cold=True, ok=False, error="oom")
    assert not record.ok
    assert record.error == "oom"
