"""Unit tests for invocation records."""

from repro.faas.records import InvocationRecord


def test_latency_is_end_to_end():
    record = InvocationRecord("f", arrival_ns=100, start_ns=150, end_ns=400,
                              cold=False, ok=True)
    assert record.latency_ns == 300
    assert record.queue_ns == 50


def test_failed_record_carries_error():
    record = InvocationRecord("f", 0, 0, 0, cold=True, ok=False, error="oom")
    assert not record.ok
    assert record.error == "oom"


def test_cold_start_aliases_cold():
    record = InvocationRecord("f", 0, 0, 0, cold=True, ok=True)
    assert record.cold_start is True
    assert InvocationRecord("f", 0, 0, 0, cold=False, ok=True).cold_start is False


def test_eviction_record_carries_policy_attribution():
    from repro.faas.records import EvictionRecord

    record = EvictionRecord(
        time_ns=10,
        function="bert",
        cid=3,
        policy="greedy-dual",
        rank=0,
        idle_ns=5,
        memory_bytes=640,
        pressure=True,
    )
    assert record.policy == "greedy-dual"
    assert record.pressure
