"""Agent resilience: spawn faults, recycler races, deferred reclamation
and graceful degradation (satellite of the fault-injection PR).

The recycler edge cases the issue calls out: an unplug failure mid-
recycle must leave the idle pool and the partition owner-mirror
consistent, and a retried recycle must converge once the fault clears.
"""

import pytest

from repro.core import HotMemBootParams
from repro.faas.agent import Agent, FunctionDeployment
from repro.faas.policy import DeploymentMode, KeepAlivePolicy
from repro.faults import (
    AGENT_RECYCLE_RACE,
    AGENT_SPAWN_FAIL,
    AGENT_SPAWN_OOM,
    DEVICE_PLUG_NACK,
    DRIVER_MIGRATE_FAIL,
    FaultPlan,
    FaultSpec,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.cluster.provision import VmSpec
from repro.sim.engine import Timeout
from repro.units import GIB, MIB, SEC
from repro.workloads.functions import get_function


def make_vm(sim, fleet, specs, hotmem=False, retry=None, seed=0):
    del sim  # the fleet owns the simulator
    plan = FaultPlan(tuple(specs))
    if hotmem:
        params = HotMemBootParams.for_function(
            384 * MIB, concurrency=4, shared_bytes=128 * MIB
        )
        spec = VmSpec(
            "fault-vm",
            mode=DeploymentMode.HOTMEM,
            partition_bytes=params.partition_bytes,
            concurrency=params.concurrency,
            shared_bytes=params.shared_bytes,
            faults=plan,
            fault_seed=seed,
            retry=retry,
        )
    else:
        spec = VmSpec(
            "fault-vm",
            region_bytes=4 * GIB,
            faults=plan,
            fault_seed=seed,
            retry=retry,
        )
    return fleet.provision(spec).vm


def make_agent(sim, vm, mode, resilience=None, **kw):
    spec = get_function("html")
    policy = KeepAlivePolicy(
        keep_alive_ns=kw.pop("keep_alive_s", 10) * SEC,
        recycle_interval_ns=kw.pop("recycle_s", 5) * SEC,
        spare_slots=kw.pop("spare_slots", 0),
    )
    return Agent(
        sim,
        vm,
        [FunctionDeployment(spec, max_instances=kw.pop("max_instances", 4))],
        policy,
        mode,
        resilience=resilience,
    )


def recycle_after(sim, agent, idle_s):
    def cycle():
        yield Timeout(idle_s * SEC)
        return (yield from agent.recycle_pass())

    evicted = sim.run_process(cycle())
    sim.run()  # drain the fire-and-forget unplug (and deferred retries)
    return evicted


class TestSpawnFaults:
    def test_spawn_failure_fails_the_invocation_then_heals(self, sim, fleet):
        vm = make_vm(sim, fleet, [FaultSpec(AGENT_SPAWN_FAIL, 1.0, max_fires=1)])
        agent = make_agent(sim, vm, DeploymentMode.VANILLA)
        record = sim.run_process(agent.handle("html", 0))
        assert not record.ok and record.error == "spawn-failed"
        assert agent.live_instances() == 0
        assert vm.faults.unresolved() == []
        assert vm.recovery_log.by_path() == {"invocation-failed": 1}
        retry = sim.run_process(agent.handle("html", sim.now))
        assert retry.ok
        vm.check_consistency()

    def test_spawn_oom_counts_as_oom(self, sim, fleet):
        vm = make_vm(sim, fleet, [FaultSpec(AGENT_SPAWN_OOM, 1.0, max_fires=1)])
        agent = make_agent(sim, vm, DeploymentMode.VANILLA)
        record = sim.run_process(agent.handle("html", 0))
        assert not record.ok and record.error == "oom"
        assert vm.recovery_log.by_path() == {"oom-failfast": 1}
        assert vm.faults.unresolved() == []


class TestPlugRetry:
    def test_nacked_plug_retried_to_success(self, sim, fleet):
        vm = make_vm(sim, fleet, [FaultSpec(DEVICE_PLUG_NACK, 1.0, max_fires=1)])
        agent = make_agent(
            sim,
            vm,
            DeploymentMode.VANILLA,
            resilience=ResiliencePolicy(plug_retries=2),
        )
        record = sim.run_process(agent.handle("html", 0))
        assert record.ok
        assert vm.device.plugged_bytes >= 384 * MIB
        assert vm.faults.unresolved() == []
        assert vm.recovery_log.by_path() == {"retried": 1}
        assert not agent.degraded

    def test_persistent_nack_degrades_to_static(self, sim, fleet):
        vm = make_vm(sim, fleet, [FaultSpec(DEVICE_PLUG_NACK, 1.0)], hotmem=True)
        agent = make_agent(
            sim,
            vm,
            DeploymentMode.HOTMEM,
            resilience=ResiliencePolicy(plug_retries=1, degrade_after=2),
        )
        record = sim.run_process(agent.handle("html", 0))
        # No populated partition exists, so the degraded spawn fails fast
        # instead of parking on the attach waitqueue forever.
        assert not record.ok and record.error == "spawn-failed"
        assert agent.degraded
        assert not agent.elastic
        assert vm.faults.unresolved() == []
        paths = vm.recovery_log.by_path()
        assert paths.get("static-fallback", 0) >= 1
        vm.check_consistency()

    def test_degraded_hotmem_agent_reuses_populated_partitions(self, sim, fleet):
        # First spawn succeeds (fault capped), leaving a populated
        # partition after recycle; once degraded, spawns must still be
        # served from it.
        vm = make_vm(
            sim,
            fleet,
            [FaultSpec(DEVICE_PLUG_NACK, 1.0, max_fires=0)],
            hotmem=True,
        )
        agent = make_agent(sim, vm, DeploymentMode.HOTMEM, spare_slots=1)
        record = sim.run_process(agent.handle("html", 0))
        assert record.ok
        recycle_after(sim, agent, idle_s=11)
        assert agent.live_instances() == 0
        assert len(vm.hotmem.populated_unassigned()) == 1
        agent.degraded = True  # simulate an earlier backend outage
        again = sim.run_process(agent.handle("html", sim.now))
        assert again.ok
        vm.check_consistency()


class TestRecyclerFaults:
    def failing_unplug_vm(self, sim, fleet, max_fires=0):
        return make_vm(
            sim,
            fleet,
            [FaultSpec(DRIVER_MIGRATE_FAIL, 1.0, max_fires=max_fires or None)],
            hotmem=True,
        )

    def test_unplug_failure_mid_recycle_keeps_state_consistent(self, sim, fleet):
        vm = self.failing_unplug_vm(sim, fleet)
        agent = make_agent(sim, vm, DeploymentMode.HOTMEM)
        record = sim.run_process(agent.handle("html", 0))
        assert record.ok
        plugged_before = vm.device.plugged_bytes
        evicted = recycle_after(sim, agent, idle_s=11)
        assert evicted == 1
        # The unplug failed wholesale: memory still plugged, instance gone.
        assert vm.device.plugged_bytes == plugged_before
        assert agent.live_instances() == 0
        assert agent.idle_instances("html") == 0
        # Partition owner-mirror and zone accounting survive the failure.
        vm.check_consistency()
        assert len(vm.hotmem.populated_unassigned()) == 1
        assert vm.faults.unresolved() == []
        # A follow-up spawn reuses the still-populated partition instead
        # of plugging more memory on top of the unreclaimed excess.
        again = sim.run_process(agent.handle("html", sim.now))
        assert again.ok
        assert vm.device.plugged_bytes == plugged_before
        vm.check_consistency()

    def test_retried_recycle_converges_once_fault_clears(self, sim, fleet):
        vm = make_vm(
            sim,
            fleet,
            [FaultSpec(DRIVER_MIGRATE_FAIL, 1.0, max_fires=1)],
            hotmem=True,
        )
        agent = make_agent(
            sim,
            vm,
            DeploymentMode.HOTMEM,
            resilience=ResiliencePolicy(deferred_attempts=3),
        )
        shared = vm.hotmem.params.shared_bytes
        record = sim.run_process(agent.handle("html", 0))
        assert record.ok
        recycle_after(sim, agent, idle_s=11)
        # The first unplug lost one block to the fault; the deferred
        # retry reclaimed it after the backoff.
        assert vm.device.plugged_bytes == shared
        paths = vm.recovery_log.by_path()
        assert paths.get("deferred") == 1
        assert paths.get("deferred-done") == 1
        assert agent.deferred_reclaims() == 0
        assert vm.faults.unresolved() == []
        vm.check_consistency()

    def test_shortfall_dropped_at_deferred_cap(self, sim, fleet):
        vm = self.failing_unplug_vm(sim, fleet)  # never clears
        agent = make_agent(
            sim,
            vm,
            DeploymentMode.HOTMEM,
            resilience=ResiliencePolicy(deferred_attempts=2),
        )
        sim.run_process(agent.handle("html", 0))
        recycle_after(sim, agent, idle_s=11)
        paths = vm.recovery_log.by_path()
        assert paths.get("dropped") == 1
        assert paths.get("deferred") == 2
        assert agent.deferred_reclaims() == 0
        assert vm.faults.unresolved() == []
        vm.check_consistency()

    def test_recycle_race_serialized(self, sim, fleet):
        vm = make_vm(
            sim,
            fleet,
            [FaultSpec(AGENT_RECYCLE_RACE, 1.0, max_fires=1)],
            hotmem=True,
        )
        agent = make_agent(
            sim, vm, DeploymentMode.HOTMEM, keep_alive_s=5, recycle_s=3,
            max_instances=2,
        )
        sim.run_process(agent.handle("html", 0))
        sim.run_process(agent.handle("html", sim.now))

        def staggered():
            # First recycle starts an unplug; a second pass while it is
            # in flight gives the race site its opportunity.
            yield Timeout(6 * SEC)
            yield from agent.recycle_pass()
            yield from agent.recycle_pass()

        sim.run_process(staggered())
        sim.run()
        assert vm.faults.unresolved() == []
        if vm.faults.count(AGENT_RECYCLE_RACE):
            assert vm.recovery_log.by_path().get("serialized") == 1
        # Over-requested unplugs were clamped by the device: never
        # negative, and the deficit guard heals the next spawn.
        assert vm.device.plugged_bytes >= vm.hotmem.params.shared_bytes
        vm.check_consistency()
