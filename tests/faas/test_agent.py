"""Unit tests for the in-VM Agent (scale-up/down, queueing, pinning)."""

import pytest

from repro.core import HotMemBootParams
from repro.errors import ConfigError
from repro.faas.agent import Agent, FunctionDeployment
from repro.faas.policy import DeploymentMode, KeepAlivePolicy
from repro.cluster.provision import VmSpec
from repro.sim.engine import Timeout
from repro.units import GIB, MIB, SEC
from repro.workloads.functions import get_function


def make_agent(sim, vm, mode, max_instances=4, vcpu_indices=None,
               keep_alive_s=10, recycle_s=5, function="html", reuse="lifo"):
    spec = get_function(function)
    return Agent(
        sim,
        vm,
        [
            FunctionDeployment(
                spec=spec,
                max_instances=max_instances,
                vcpu_indices=vcpu_indices,
                reuse=reuse,
            )
        ],
        KeepAlivePolicy(
            keep_alive_ns=keep_alive_s * SEC, recycle_interval_ns=recycle_s * SEC
        ),
        mode,
    )


@pytest.fixture
def vanilla_agent(sim, vanilla_vm):
    return make_agent(sim, vanilla_vm, DeploymentMode.VANILLA)


@pytest.fixture
def hotmem_agent(sim, hotmem_vm):
    return make_agent(sim, hotmem_vm, DeploymentMode.HOTMEM)


def run_request(sim, agent, arrival=0):
    return sim.run_process(agent.handle("html", arrival))


class TestModeValidation:
    def test_hotmem_mode_requires_hotmem_vm(self, sim, vanilla_vm):
        with pytest.raises(ConfigError):
            make_agent(sim, vanilla_vm, DeploymentMode.HOTMEM)

    def test_vanilla_mode_rejects_hotmem_vm(self, sim, hotmem_vm):
        with pytest.raises(ConfigError):
            make_agent(sim, hotmem_vm, DeploymentMode.VANILLA)

    def test_duplicate_function_rejected(self, sim, vanilla_vm):
        spec = get_function("html")
        with pytest.raises(ConfigError):
            Agent(
                sim,
                vanilla_vm,
                [
                    FunctionDeployment(spec, 1),
                    FunctionDeployment(spec, 1),
                ],
                KeepAlivePolicy(),
                DeploymentMode.VANILLA,
            )

    def test_unknown_function_rejected(self, sim, vanilla_agent):
        from repro.errors import FaasError

        with pytest.raises(FaasError):
            sim.run_process(vanilla_agent.handle("nope", 0))


class TestScaleUp:
    def test_first_request_cold_starts_and_plugs(self, sim, vanilla_vm, vanilla_agent):
        record = run_request(sim, vanilla_agent)
        assert record.ok and record.cold
        assert vanilla_agent.live_instances("html") == 1
        assert len(vanilla_vm.tracer.plug_events()) == 1
        # Plug sized to the function limit, block-rounded.
        assert vanilla_vm.tracer.plug_events()[0].completed_bytes == 384 * MIB

    def test_second_request_warm_no_plug(self, sim, vanilla_vm, vanilla_agent):
        run_request(sim, vanilla_agent)
        record = run_request(sim, vanilla_agent, arrival=sim.now)
        assert record.ok and not record.cold
        assert len(vanilla_vm.tracer.plug_events()) == 1

    def test_overprovisioned_never_plugs(self, sim, fleet):
        vm = fleet.provision(
            VmSpec(
                "op",
                mode=DeploymentMode.OVERPROVISIONED,
                region_bytes=2 * GIB,
            )
        ).vm
        agent = make_agent(sim, vm, DeploymentMode.OVERPROVISIONED)
        record = run_request(sim, agent)
        assert record.ok
        assert vm.tracer.plug_events() == []

    def test_hotmem_cold_start_lands_in_partition(self, sim, hotmem_vm, hotmem_agent):
        record = run_request(sim, hotmem_agent)
        assert record.ok
        occupied = [
            p for p in hotmem_vm.hotmem.partitions if p.partition_users > 0
        ]
        assert len(occupied) == 1

    def test_concurrent_burst_spawns_up_to_limit(self, sim, vanilla_vm, vanilla_agent):
        records = []

        def burst():
            processes = [
                sim.spawn(vanilla_agent.handle("html", 0)) for _ in range(10)
            ]
            for process in processes:
                value = yield process
                records.append(value)

        sim.run_process(burst())
        assert vanilla_agent.live_instances("html") == 4  # max_instances
        assert all(r.ok for r in records)
        cold = sum(1 for r in records if r.cold)
        assert cold == 4

    def test_plug_deficit_accounts_exactly(self, sim, vanilla_vm, vanilla_agent):
        def burst():
            processes = [
                sim.spawn(vanilla_agent.handle("html", 0)) for _ in range(10)
            ]
            for process in processes:
                yield process

        sim.run_process(burst())
        assert vanilla_vm.device.plugged_bytes == 4 * 384 * MIB


class TestQueueing:
    def test_waiters_receive_released_containers(self, sim, vanilla_agent):
        done = []

        def burst():
            processes = [
                sim.spawn(vanilla_agent.handle("html", 0)) for _ in range(12)
            ]
            for process in processes:
                record = yield process
                done.append(record)

        sim.run_process(burst())
        assert len(done) == 12
        assert all(r.ok for r in done)
        # 4 colds, 8 warm handoffs.
        assert sum(1 for r in done if r.cold) == 4


class TestPinning:
    def test_round_robin_over_allowed_vcpus(self, sim, vanilla_vm):
        agent = make_agent(
            sim, vanilla_vm, DeploymentMode.VANILLA, vcpu_indices=(2, 5)
        )

        def burst():
            processes = [sim.spawn(agent.handle("html", 0)) for _ in range(4)]
            for process in processes:
                yield process

        sim.run_process(burst())
        # Function work stays on the pinned vCPUs; the only work elsewhere
        # is the virtio-mem plug path on the IRQ vCPU.
        used = sum(
            vanilla_vm.vcpus[i].busy_ns_for_prefix("fn:") for i in (2, 5)
        )
        others = sum(
            core.busy_ns_for_prefix("fn:")
            for i, core in enumerate(vanilla_vm.vcpus)
            if i not in (2, 5)
        )
        assert used > 0
        assert others == 0


class TestScaleDown:
    def test_recycle_evicts_idle_past_keep_alive(self, sim, vanilla_vm, vanilla_agent):
        run_request(sim, vanilla_agent)
        assert vanilla_agent.live_instances("html") == 1

        def wait_and_recycle():
            yield Timeout(11 * SEC)
            evicted = yield from vanilla_agent.recycle_pass()
            return evicted

        evicted = sim.run_process(wait_and_recycle())
        assert evicted == 1
        assert vanilla_agent.live_instances("html") == 0

    def test_recycle_spares_fresh_idle(self, sim, vanilla_agent):
        run_request(sim, vanilla_agent)

        def recycle_now():
            evicted = yield from vanilla_agent.recycle_pass()
            return evicted

        assert sim.run_process(recycle_now()) == 0

    def test_recycle_requests_unplug_of_freed_memory(self, sim, vanilla_vm, vanilla_agent):
        run_request(sim, vanilla_agent)

        def wait_and_recycle():
            yield Timeout(11 * SEC)
            yield from vanilla_agent.recycle_pass()

        sim.run_process(wait_and_recycle())
        sim.run()
        unplugs = vanilla_vm.tracer.unplug_events()
        assert len(unplugs) == 1
        assert unplugs[0].completed_bytes == 384 * MIB
        assert vanilla_agent.shrink_events[0].evicted == 1

    def test_hotmem_recycle_reclaims_without_migration(self, sim, hotmem_vm, hotmem_agent):
        run_request(sim, hotmem_agent)

        def wait_and_recycle():
            yield Timeout(11 * SEC)
            yield from hotmem_agent.recycle_pass()

        sim.run_process(wait_and_recycle())
        sim.run()
        unplugs = hotmem_vm.tracer.unplug_events()
        assert len(unplugs) == 1
        assert unplugs[0].migrated_pages == 0
        hotmem_vm.check_consistency()

    def test_recycler_loop_runs_until_stopped(self, sim, vanilla_agent):
        vanilla_agent.start_recycler(until_ns=30 * SEC)
        run_request(sim, vanilla_agent)
        sim.run(until=40 * SEC)
        assert vanilla_agent.live_instances("html") == 0

    def test_partition_reuse_after_recycle(self, sim, hotmem_vm, hotmem_agent):
        """Scale up → down → up again: the second cold start may reuse the
        populated partition (plug only if it was already reclaimed)."""
        run_request(sim, hotmem_agent)

        def cycle():
            yield Timeout(11 * SEC)
            yield from hotmem_agent.recycle_pass()
            record = yield from hotmem_agent.handle("html", self_now())
            return record

        def self_now():
            return sim.now

        record = sim.run_process(cycle())
        sim.run()
        assert record.ok and record.cold
        hotmem_vm.check_consistency()


class TestReusePolicy:
    def test_fifo_rotates_instances(self, sim, vanilla_vm):
        agent = make_agent(
            sim, vanilla_vm, DeploymentMode.VANILLA, max_instances=2, reuse="fifo"
        )

        def scenario():
            first = yield from agent.handle("html", 0)
            second = yield from agent.handle("html", 0)
            third = yield from agent.handle("html", 0)
            return first, second, third

        sim.run_process(scenario())
        state = agent.functions["html"]
        # FIFO: the third request reused the first container, so both
        # containers have work.
        assert all(c.invocations >= 1 for c in state.idle)

    def test_lifo_reuses_hottest(self, sim, vanilla_vm):
        agent = make_agent(
            sim, vanilla_vm, DeploymentMode.VANILLA, max_instances=2, reuse="lifo"
        )

        def scenario():
            # Force two instances by overlapping requests.
            a = sim.spawn(agent.handle("html", 0))
            b = sim.spawn(agent.handle("html", 0))
            yield a
            yield b
            # Now serial requests reuse the most recently released one.
            for _ in range(3):
                yield from agent.handle("html", sim.now)

        sim.run_process(scenario())
        state = agent.functions["html"]
        counts = sorted(c.invocations for c in state.idle)
        assert counts[0] == 1  # the cold one never ran again
