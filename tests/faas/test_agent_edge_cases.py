"""Edge cases for the Agent's scaling logic."""

import pytest

from repro.core import HotMemBootParams
from repro.faas.agent import Agent, FunctionDeployment
from repro.faas.policy import DeploymentMode, KeepAlivePolicy
from repro.cluster.provision import VmSpec
from repro.sim.engine import Timeout
from repro.units import GIB, MIB, SEC
from repro.workloads.functions import get_function


def make_agent(sim, vm, mode, **kw):
    spec = get_function("html")
    policy = KeepAlivePolicy(
        keep_alive_ns=kw.pop("keep_alive_s", 10) * SEC,
        recycle_interval_ns=kw.pop("recycle_s", 5) * SEC,
        spare_slots=kw.pop("spare_slots", 0),
    )
    return Agent(
        sim,
        vm,
        [FunctionDeployment(spec, max_instances=kw.pop("max_instances", 4))],
        policy,
        mode,
    )


class TestSpareSlots:
    def test_spare_slot_survives_shrink(self, sim, hotmem_vm):
        agent = make_agent(
            sim, hotmem_vm, DeploymentMode.HOTMEM, spare_slots=1
        )
        sim.run_process(agent.handle("html", 0))

        def cycle():
            yield Timeout(11 * SEC)
            yield from agent.recycle_pass()

        sim.run_process(cycle())
        sim.run()
        # The instance's partition stays populated as the spare.
        assert hotmem_vm.device.plugged_bytes >= 384 * MIB
        assert len(hotmem_vm.hotmem.populated_unassigned()) == 1

    def test_next_cold_start_skips_the_plug(self, sim, hotmem_vm):
        agent = make_agent(
            sim, hotmem_vm, DeploymentMode.HOTMEM, spare_slots=1
        )
        sim.run_process(agent.handle("html", 0))
        plugs_before = len(hotmem_vm.tracer.plug_events())

        def cycle():
            yield Timeout(11 * SEC)
            yield from agent.recycle_pass()
            record = yield from agent.handle("html", sim.now)
            return record

        record = sim.run_process(cycle())
        assert record.ok and record.cold
        assert len(hotmem_vm.tracer.plug_events()) == plugs_before


class TestRecyclerEdgeCases:
    def test_double_recycler_start_rejected(self, sim, vanilla_vm):
        from repro.errors import FaasError

        agent = make_agent(sim, vanilla_vm, DeploymentMode.VANILLA)
        agent.start_recycler(until_ns=SEC)
        with pytest.raises(FaasError):
            agent.start_recycler()
        sim.run(until=2 * SEC)

    def test_stop_halts_the_loop(self, sim, vanilla_vm):
        agent = make_agent(sim, vanilla_vm, DeploymentMode.VANILLA)
        agent.start_recycler()
        sim.run(until=7 * SEC)
        agent.stop()
        sim.run(until=60 * SEC)
        assert sim.pending_events() == 0

    def test_recycle_pass_without_containers_is_noop(self, sim, vanilla_vm):
        agent = make_agent(sim, vanilla_vm, DeploymentMode.VANILLA)

        def pass_():
            return (yield from agent.recycle_pass())

        assert sim.run_process(pass_()) == 0
        assert agent.shrink_events == []

    def test_overprovisioned_recycle_records_zero_unplug(self, sim, fleet):
        vm = fleet.provision(
            VmSpec(
                "op",
                mode=DeploymentMode.OVERPROVISIONED,
                region_bytes=2 * GIB,
            )
        ).vm
        agent = make_agent(sim, vm, DeploymentMode.OVERPROVISIONED)
        sim.run_process(agent.handle("html", 0))

        def cycle():
            yield Timeout(11 * SEC)
            yield from agent.recycle_pass()

        sim.run_process(cycle())
        sim.run()
        assert len(agent.shrink_events) == 1
        assert agent.shrink_events[0].unplug_requested_bytes == 0
        assert vm.tracer.unplug_events() == []


class TestTargetAccounting:
    def test_target_counts_live_instances_and_shared(self, sim, hotmem_vm):
        agent = make_agent(sim, hotmem_vm, DeploymentMode.HOTMEM)
        shared = hotmem_vm.hotmem.params.shared_bytes
        assert agent.target_plugged_bytes() == shared
        sim.run_process(agent.handle("html", 0))
        assert agent.target_plugged_bytes() == shared + 384 * MIB

    def test_device_converges_to_target_after_churn(self, sim, hotmem_vm):
        agent = make_agent(
            sim, hotmem_vm, DeploymentMode.HOTMEM, max_instances=6,
            keep_alive_s=3, recycle_s=2,
        )

        def churn():
            for round_index in range(3):
                processes = [
                    sim.spawn(agent.handle("html", sim.now)) for _ in range(6)
                ]
                for process in processes:
                    yield process
                yield Timeout(6 * SEC)
                yield from agent.recycle_pass()
                yield Timeout(1 * SEC)

        sim.run_process(churn())
        sim.run()
        assert (
            hotmem_vm.device.plugged_bytes == agent.target_plugged_bytes()
        )
        hotmem_vm.check_consistency()
