"""Tests for multi-process function instances (the fork/clone path)."""

import pytest

from repro.faas.container import Container, ContainerState
from repro.mm.pagecache import CachedFile
from repro.units import MIB
from repro.workloads.functions import get_function


@pytest.fixture
def spec():
    return get_function("cnn").with_workers(3)


def make_container(vm, spec):
    deps = vm.page_cache.register(CachedFile("deps", 1000))
    return Container(vm, spec, deps, vcpu_index=0)


class TestSpec:
    def test_with_workers_copies(self, spec):
        base = get_function("cnn")
        assert base.worker_processes == 1
        assert spec.worker_processes == 3
        assert spec.memory_limit_bytes == base.memory_limit_bytes

    def test_zero_workers_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            get_function("cnn").with_workers(0)


class TestVanillaMultiprocess:
    def test_footprint_split_across_processes(self, sim, vanilla_vm, spec):
        vanilla_vm.request_plug(512 * MIB)
        sim.run()
        container = make_container(vanilla_vm, spec)
        sim.run_process(container.cold_start())
        assert len(container.worker_mms) == 2
        total = container.mm.anon_pages + sum(
            w.anon_pages for w in container.worker_mms
        )
        assert total == spec.anon_footprint_pages

    def test_teardown_frees_all_processes(self, sim, vanilla_vm, spec):
        vanilla_vm.request_plug(512 * MIB)
        sim.run()
        container = make_container(vanilla_vm, spec)
        sim.run_process(container.cold_start())
        workers = list(container.worker_mms)
        sim.run_process(container.teardown())
        assert container.mm.total_pages == 0
        assert all(w.total_pages == 0 for w in workers)


class TestHotMemMultiprocess:
    def test_workers_share_the_partition(self, sim, hotmem_vm, spec):
        hotmem_vm.request_plug(384 * MIB)
        sim.run()
        container = make_container(hotmem_vm, spec)
        sim.run_process(container.cold_start())
        partition = container.mm.hotmem_partition
        assert partition.partition_users == 3
        for worker in container.worker_mms:
            assert worker.hotmem_partition is partition
            assert all(b.zone is partition.zone for b in worker.block_pages)

    def test_partition_released_after_all_exit(self, sim, hotmem_vm, spec):
        hotmem_vm.request_plug(384 * MIB)
        sim.run()
        container = make_container(hotmem_vm, spec)
        sim.run_process(container.cold_start())
        partition = container.mm.hotmem_partition
        sim.run_process(container.teardown())
        assert partition.partition_users == 0
        assert partition.is_reclaimable
        hotmem_vm.check_consistency()

    def test_unplug_after_multiprocess_recycle_is_migration_free(
        self, sim, hotmem_vm, spec
    ):
        hotmem_vm.request_plug(384 * MIB)
        sim.run()
        container = make_container(hotmem_vm, spec)
        sim.run_process(container.cold_start())
        sim.run_process(container.teardown())
        process = hotmem_vm.request_unplug(384 * MIB)
        sim.run()
        assert process.value.migrated_pages == 0
        assert process.value.unplugged_bytes == 384 * MIB
