"""Unit tests for containers."""

import pytest

from repro.errors import FaasError, OutOfMemory
from repro.faas.container import Container, ContainerState
from repro.mm.pagecache import CachedFile
from repro.units import MIB
from repro.workloads.functions import get_function


@pytest.fixture
def spec():
    return get_function("cnn")


@pytest.fixture
def deps(vanilla_vm, spec):
    file = CachedFile("cnn-deps", spec.shared_deps_bytes // 4096)
    return vanilla_vm.page_cache.register(file)


def make_container(vm, spec, deps, vcpu=0):
    return Container(vm, spec, deps, vcpu_index=vcpu)


class TestColdStart:
    def test_cold_start_faults_footprint(self, sim, vanilla_vm, spec, deps):
        vanilla_vm.request_plug(512 * MIB)
        sim.run()
        container = make_container(vanilla_vm, spec, deps)
        sim.run_process(container.cold_start())
        assert container.state is ContainerState.IDLE
        assert container.mm.anon_pages == spec.anon_footprint_pages
        assert container.mm.mapped_file_pages == deps.size_pages

    def test_cold_start_takes_time(self, sim, vanilla_vm, spec, deps):
        vanilla_vm.request_plug(512 * MIB)
        sim.run()
        start = sim.now
        container = make_container(vanilla_vm, spec, deps)
        sim.run_process(container.cold_start())
        assert sim.now - start >= spec.cold_start_cpu_ns

    def test_double_cold_start_rejected(self, sim, vanilla_vm, spec, deps):
        vanilla_vm.request_plug(512 * MIB)
        sim.run()
        container = make_container(vanilla_vm, spec, deps)
        sim.run_process(container.cold_start())
        with pytest.raises(FaasError):
            sim.run_process(container.cold_start())

    def test_cold_start_oom_cleans_up(self, sim, vanilla_vm, spec, deps):
        # No plug: boot memory alone cannot hold the footprint after the
        # kernel's share... it actually can, so shrink the guest instead by
        # occupying boot memory.
        hog = vanilla_vm.new_process("hog")
        vanilla_vm.fault_handler.fault_anon(
            hog, vanilla_vm.manager.free_pages_total - 1000
        )
        container = make_container(vanilla_vm, spec, deps)
        process = sim.spawn(container.cold_start())
        with pytest.raises(OutOfMemory):
            sim.run()
        assert container.state is ContainerState.DEAD
        assert container.mm.total_pages == 0

    def test_hotmem_cold_start_attaches(self, sim, hotmem_vm, spec):
        deps = hotmem_vm.page_cache.register(CachedFile("deps", 100))
        hotmem_vm.request_plug(384 * MIB)
        sim.run()
        container = make_container(hotmem_vm, spec, deps)
        sim.run_process(container.cold_start())
        assert container.mm.hotmem_partition is not None


class TestInvoke:
    @pytest.fixture
    def warm(self, sim, vanilla_vm, spec, deps):
        vanilla_vm.request_plug(512 * MIB)
        sim.run()
        container = make_container(vanilla_vm, spec, deps)
        sim.run_process(container.cold_start())
        return container

    def test_invoke_consumes_exec_time(self, sim, warm, spec):
        start = sim.now
        sim.run_process(warm.invoke())
        assert sim.now - start >= spec.exec_cpu_ns
        assert warm.invocations == 1
        assert warm.state is ContainerState.IDLE

    def test_invoke_churn_leaves_footprint_stable(self, sim, warm, spec):
        before = warm.mm.anon_pages
        sim.run_process(warm.invoke())
        assert warm.mm.anon_pages == before

    def test_invoke_busy_container_rejected(self, sim, warm):
        process = sim.spawn(warm.invoke())
        assert warm.state is ContainerState.BUSY or not process.finished
        with pytest.raises(FaasError):
            sim.run_process(warm.invoke())

    def test_idle_timestamps_updated(self, sim, warm):
        sim.run_process(warm.invoke())
        assert warm.idle_since_ns == sim.now
        assert warm.idle_for_ns(sim.now + 100) == 100


class TestTeardown:
    def test_teardown_frees_private_memory(self, sim, vanilla_vm, spec, deps):
        vanilla_vm.request_plug(512 * MIB)
        sim.run()
        container = make_container(vanilla_vm, spec, deps)
        sim.run_process(container.cold_start())
        cache_pages = vanilla_vm.page_cache.total_pages
        sim.run_process(container.teardown())
        assert container.state is ContainerState.DEAD
        assert container.mm.total_pages == 0
        # Shared dependency pages survive in the cache (the N:1 benefit).
        assert vanilla_vm.page_cache.total_pages == cache_pages

    def test_teardown_busy_rejected(self, sim, vanilla_vm, spec, deps):
        vanilla_vm.request_plug(512 * MIB)
        sim.run()
        container = make_container(vanilla_vm, spec, deps)
        sim.run_process(container.cold_start())
        sim.spawn(container.invoke())
        sim.step()
        with pytest.raises(FaasError):
            sim.run_process(container.teardown())

    def test_destroy_after_oom_idempotent(self, sim, vanilla_vm, spec, deps):
        container = make_container(vanilla_vm, spec, deps)
        container.destroy_after_oom()
        container.destroy_after_oom()
        assert container.state is ContainerState.DEAD
