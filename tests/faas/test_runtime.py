"""Unit tests for the FaaS runtime controller."""

import pytest

from repro.errors import FaasError
from repro.faas.agent import Agent, FunctionDeployment
from repro.faas.policy import DeploymentMode, KeepAlivePolicy
from repro.faas.runtime import FaasRuntime
from repro.units import SEC
from repro.workloads.functions import get_function
from repro.workloads.traces import InvocationTrace


@pytest.fixture
def runtime(sim):
    return FaasRuntime(sim)


@pytest.fixture
def agent(sim, vanilla_vm):
    return Agent(
        sim,
        vanilla_vm,
        [FunctionDeployment(get_function("html"), max_instances=4)],
        KeepAlivePolicy(keep_alive_ns=60 * SEC),
        DeploymentMode.VANILLA,
    )


def test_register_agent_twice_rejected(runtime, agent):
    runtime.register_agent(agent)
    with pytest.raises(FaasError):
        runtime.register_agent(agent)


def test_drive_replays_every_arrival(sim, runtime, agent):
    trace = InvocationTrace("html", [0, SEC, 2 * SEC])
    runtime.drive(agent, trace)
    runtime.run(until_ns=30 * SEC)
    assert len(runtime.records) == 3
    assert all(r.ok for r in runtime.records)


def test_arrival_times_respected(sim, runtime, agent):
    trace = InvocationTrace("html", [5 * SEC])
    runtime.drive(agent, trace)
    runtime.run(until_ns=30 * SEC)
    assert runtime.records[0].arrival_ns == 5 * SEC


def test_records_filtered_by_function(sim, runtime, agent):
    trace = InvocationTrace("html", [0])
    runtime.drive(agent, trace)
    runtime.run(until_ns=10 * SEC)
    assert len(runtime.records_for("html")) == 1
    assert runtime.records_for("other") == []


def test_successful_records_and_failures(sim, runtime, agent):
    trace = InvocationTrace("html", [0, 0])
    runtime.drive(agent, trace)
    runtime.run(until_ns=10 * SEC)
    assert len(runtime.successful_records()) == 2
    assert runtime.failure_count == 0


def test_drive_auto_registers_agent(sim, runtime, agent):
    trace = InvocationTrace("html", [0])
    runtime.drive(agent, trace)
    assert agent.vm.name in runtime.agents


def test_concurrent_traces_interleave(sim, runtime, agent):
    early = InvocationTrace("html", [0, SEC])
    late = InvocationTrace("html", [int(0.5 * SEC)])
    runtime.drive(agent, early)
    runtime.drive(agent, late)
    runtime.run(until_ns=30 * SEC)
    assert len(runtime.records) == 3
