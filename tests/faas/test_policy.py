"""Unit tests for scaling policy objects."""

import pytest

from repro.errors import ConfigError
from repro.faas.policy import DeploymentMode, KeepAlivePolicy
from repro.units import SEC


def test_paper_default_keep_alive():
    policy = KeepAlivePolicy()
    assert policy.keep_alive_ns == 120 * SEC


def test_negative_keep_alive_rejected():
    with pytest.raises(ConfigError):
        KeepAlivePolicy(keep_alive_ns=-1)


def test_zero_recycle_interval_rejected():
    with pytest.raises(ConfigError):
        KeepAlivePolicy(recycle_interval_ns=0)


def test_elastic_modes():
    assert DeploymentMode.HOTMEM.elastic
    assert DeploymentMode.VANILLA.elastic
    assert not DeploymentMode.OVERPROVISIONED.elastic


def test_mode_values_stable():
    assert DeploymentMode.HOTMEM.value == "hotmem"
    assert DeploymentMode.VANILLA.value == "vanilla"
    assert DeploymentMode.OVERPROVISIONED.value == "overprovisioned"
