"""Unit tests for the pluggable container-lifecycle policies.

Covers the policy contract (rank is a permutation over idle candidates
only), the registry, every built-in's ordering, and the golden gate:
the default ``ttl`` policy reproduces the pre-refactor recycler's
eviction order exactly on a recorded multi-function scenario.
"""

import pytest

from repro.errors import ConfigError, FaasError
from repro.faas import lifecycle
from repro.faas.agent import Agent, FunctionDeployment
from repro.faas.lifecycle import (
    ContainerStats,
    EvictionPolicy,
    GreedyDualPolicy,
    TtlPolicy,
    get_policy,
    policy_names,
    register_policy,
    registered_policies,
    resolve_policies,
)
from repro.faas.policy import DeploymentMode, KeepAlivePolicy
from repro.sim.engine import Timeout
from repro.units import MIB, SEC
from repro.workloads.functions import get_function

BUILTINS = ("ttl", "rand", "least-used", "max-mem", "greedy-dual")


class _FakeContainer:
    """Just enough container surface for policy-layer tests."""

    class _State:
        def __init__(self, value):
            self.value = value

    def __init__(self, cid, idle=True):
        self.cid = cid
        self._idle = idle
        self.state = self._State("idle" if idle else "busy")

    @property
    def is_idle(self):
        return self._idle


def stats(cid, idle_ns=20 * SEC, invocations=1, lifetime_ns=60 * SEC,
          memory_bytes=384 * MIB, spawn_cost_ns=100 * 10**6,
          pool_index=0, idle=True):
    return ContainerStats(
        container=_FakeContainer(cid, idle=idle),
        function=f"f{cid}",
        cid=cid,
        idle_ns=idle_ns,
        invocations=invocations,
        lifetime_ns=lifetime_ns,
        memory_bytes=memory_bytes,
        spawn_cost_ns=spawn_cost_ns,
        pool_index=pool_index,
    )


def pool(n=5):
    """A mixed candidate pool with distinct stats per container."""
    return [
        stats(
            cid,
            idle_ns=(cid + 1) * 2 * SEC,
            invocations=(7 * cid) % 5,
            memory_bytes=(128 + 128 * (cid % 3)) * MIB,
            spawn_cost_ns=(50 + 40 * cid) * 10**6,
            pool_index=cid,
        )
        for cid in range(n)
    ]


class TestPolicyContract:
    """Properties every registered policy must satisfy."""

    @pytest.mark.parametrize("name", BUILTINS)
    def test_rank_returns_a_permutation(self, name):
        candidates = pool()
        ranked = get_policy(name).rank(candidates, now_ns=100 * SEC)
        assert sorted(s.cid for s in ranked) == [s.cid for s in candidates]

    @pytest.mark.parametrize("name", BUILTINS)
    def test_rank_does_not_mutate_its_input(self, name):
        candidates = pool()
        before = [s.cid for s in candidates]
        get_policy(name).rank(candidates, now_ns=100 * SEC)
        assert [s.cid for s in candidates] == before

    @pytest.mark.parametrize("name", BUILTINS)
    def test_only_idle_candidates_are_ever_ranked(self, name):
        candidates = pool()
        candidates[2] = stats(2, pool_index=2, idle=False)
        with pytest.raises(FaasError, match="non-idle"):
            get_policy(name).victims(candidates, 100 * SEC, min_idle_ns=0)

    @pytest.mark.parametrize("name", BUILTINS)
    def test_victims_respects_the_keep_alive_threshold(self, name):
        candidates = pool()
        chosen = get_policy(name).victims(
            candidates, 100 * SEC, min_idle_ns=5 * SEC
        )
        assert {s.cid for s in chosen} == {
            s.cid for s in candidates if s.idle_ns >= 5 * SEC
        }

    @pytest.mark.parametrize("name", BUILTINS)
    def test_need_bytes_cuts_the_ranked_prefix(self, name):
        candidates = pool()
        policy = get_policy(name)
        full = policy.victims(candidates, 100 * SEC, min_idle_ns=0)
        budget = full[0].memory_bytes  # first victim alone covers it
        cut = policy.victims(
            candidates, 100 * SEC, min_idle_ns=0, need_bytes=budget
        )
        assert [s.cid for s in cut] == [full[0].cid]

    def test_broken_policy_caught_by_permutation_check(self):
        class Dropping(EvictionPolicy):
            name = "dropping"

            def rank(self, candidates, now_ns):
                return list(candidates)[:-1]

        with pytest.raises(FaasError, match="permutation"):
            Dropping().victims(pool(), 100 * SEC, min_idle_ns=0)


class TestRegistry:
    def test_builtins_registered_in_order(self):
        names = policy_names()
        for name in BUILTINS:
            assert name in names

    def test_get_policy_returns_fresh_instances(self):
        a = get_policy("greedy-dual")
        b = get_policy("greedy-dual")
        assert a is not b
        a.note_eviction(stats(0), 10 * SEC)
        assert a._clock != b._clock

    def test_instances_pass_through(self):
        instance = TtlPolicy()
        assert get_policy(instance) is instance

    def test_unknown_policy_lists_registered_names(self):
        with pytest.raises(ConfigError, match="ttl"):
            get_policy("nope")

    def test_register_rejects_bad_names_and_reuse(self):
        class Upper(EvictionPolicy):
            name = "UPPER"

        class BadReuse(EvictionPolicy):
            name = "bad-reuse"
            reuse = "stack"

        with pytest.raises(ConfigError):
            register_policy(Upper)
        with pytest.raises(ConfigError):
            register_policy(BadReuse)

    def test_duplicate_registration_needs_replace(self):
        class Shadow(TtlPolicy):
            name = "ttl"

        with pytest.raises(ConfigError):
            register_policy(Shadow)
        register_policy(TtlPolicy, replace=True)  # restore the real one

    def test_registered_policies_are_fresh(self):
        first = registered_policies()
        second = registered_policies()
        assert [p.name for p in first] == list(policy_names())
        assert all(a is not b for a, b in zip(first, second))

    def test_resolve_policies_rejects_empty(self):
        with pytest.raises(ConfigError):
            resolve_policies([])

    def test_keep_alive_policy_validates_eviction_name(self):
        with pytest.raises(ConfigError):
            KeepAlivePolicy(eviction="nope")
        assert KeepAlivePolicy(eviction="greedy-dual").eviction == "greedy-dual"


class TestBuiltinsOrdering:
    def test_ttl_orders_by_pool_index(self):
        candidates = list(reversed(pool()))
        ranked = get_policy("ttl").rank(candidates, 100 * SEC)
        assert [s.pool_index for s in ranked] == [0, 1, 2, 3, 4]

    def test_least_used_evicts_the_idle_rich_last(self):
        candidates = [
            stats(0, invocations=9, pool_index=0),
            stats(1, invocations=0, pool_index=1),
            stats(2, invocations=3, pool_index=2),
        ]
        ranked = get_policy("least-used").rank(candidates, 100 * SEC)
        assert [s.cid for s in ranked] == [1, 2, 0]

    def test_max_mem_evicts_the_largest_first(self):
        candidates = [
            stats(0, memory_bytes=128 * MIB, pool_index=0),
            stats(1, memory_bytes=640 * MIB, pool_index=1),
            stats(2, memory_bytes=384 * MIB, pool_index=2),
        ]
        ranked = get_policy("max-mem").rank(candidates, 100 * SEC)
        assert [s.cid for s in ranked] == [1, 2, 0]

    def test_rand_is_deterministic_per_pass(self):
        candidates = pool()
        first = get_policy("rand").rank(candidates, 42 * SEC)
        second = get_policy("rand").rank(candidates, 42 * SEC)
        assert [s.cid for s in first] == [s.cid for s in second]

    def test_rand_reorders_across_pass_times(self):
        candidates = pool(8)
        orders = {
            tuple(s.cid for s in get_policy("rand").rank(candidates, t * SEC))
            for t in range(1, 20)
        }
        assert len(orders) > 1


class TestGreedyDual:
    def test_hot_cheap_container_outranks_cold_expensive_memory(self):
        hot = stats(0, invocations=50, lifetime_ns=10 * SEC,
                    memory_bytes=384 * MIB, spawn_cost_ns=160 * 10**6)
        cold = stats(1, invocations=1, lifetime_ns=60 * SEC,
                     memory_bytes=640 * MIB, spawn_cost_ns=350 * 10**6)
        ranked = GreedyDualPolicy().rank([hot, cold], 100 * SEC)
        # The cold, large container goes first; warmth is kept.
        assert [s.cid for s in ranked] == [1, 0]

    def test_clock_inflates_to_the_evicted_priority(self):
        policy = GreedyDualPolicy()
        victim = stats(0, invocations=10, lifetime_ns=10 * SEC)
        before = policy.priority(victim)
        policy.note_eviction(victim, 100 * SEC)
        assert policy._clock == pytest.approx(before)
        # Aging: a newborn's priority now starts at the inflated clock.
        newborn = stats(1, invocations=0, lifetime_ns=0)
        assert policy.priority(newborn) >= before

    def test_clock_never_regresses(self):
        policy = GreedyDualPolicy()
        policy.note_eviction(stats(0, invocations=10, lifetime_ns=SEC), SEC)
        high = policy._clock
        policy.note_eviction(stats(1, invocations=0, lifetime_ns=SEC), SEC)
        assert policy._clock >= high


# ----------------------------------------------------------------------
# Agent integration: the golden gate and the reuse property
# ----------------------------------------------------------------------
def two_function_agent(sim, vm, eviction="ttl", keep_alive_s=10):
    """html (hot/cheap) + bert (cold/expensive) on one vanilla VM."""
    return Agent(
        sim,
        vm,
        [
            FunctionDeployment(get_function("html"), max_instances=3),
            FunctionDeployment(get_function("bert"), max_instances=2),
        ],
        KeepAlivePolicy(
            keep_alive_ns=keep_alive_s * SEC,
            recycle_interval_ns=5 * SEC,
            eviction=eviction,
        ),
        DeploymentMode.VANILLA,
    )


def legacy_eviction_order(agent, now_ns, keep_alive_ns):
    """The pre-refactor recycler scan, reimplemented verbatim: function
    insertion order, then idle-list order, filtered by keep-alive."""
    order = []
    for state in agent.functions.values():
        for container in state.idle:
            if container.idle_for_ns(now_ns) >= keep_alive_ns:
                order.append(container.cid)
    return order


def populate(sim, agent):
    """3 html + 2 bert idle containers with staggered idle times."""

    def scenario():
        burst = [sim.spawn(agent.handle("html", sim.now)) for _ in range(3)]
        for process in burst:
            yield process
        yield Timeout(4 * SEC)
        burst = [sim.spawn(agent.handle("bert", sim.now)) for _ in range(2)]
        for process in burst:
            yield process

    sim.run_process(scenario())


class TestGoldenTtl:
    def test_ttl_reproduces_the_pre_refactor_scan_order(self, sim, vanilla_vm):
        agent = two_function_agent(sim, vanilla_vm, eviction="ttl")
        populate(sim, agent)

        def recycle():
            yield Timeout(30 * SEC)
            expected = legacy_eviction_order(
                agent, sim.now, agent.policy.keep_alive_ns
            )
            evicted = yield from agent.recycle_pass()
            return expected, evicted

        expected, evicted = sim.run_process(recycle())
        assert evicted == len(expected) == 5
        assert [r.cid for r in agent.eviction_records] == expected
        # Golden shape: html's pool drains before bert's (deployment
        # order), each pool front-to-back.
        assert [r.function for r in agent.eviction_records] == (
            ["html"] * 3 + ["bert"] * 2
        )

    def test_ttl_partial_expiry_matches_legacy(self, sim, vanilla_vm):
        """Only html is past keep-alive at recycle time: the legacy scan
        and the policy agree on the filtered subset too."""
        agent = two_function_agent(sim, vanilla_vm, eviction="ttl", keep_alive_s=12)
        populate(sim, agent)

        def recycle():
            # html idle ~16s (> 12s); bert idle ~11.6s (< 12s).
            yield Timeout(16 * SEC - sim.now)
            expected = legacy_eviction_order(
                agent, sim.now, agent.policy.keep_alive_ns
            )
            yield from agent.recycle_pass()
            return expected

        expected = sim.run_process(recycle())
        assert [r.cid for r in agent.eviction_records] == expected
        assert all(r.function == "html" for r in agent.eviction_records)
        assert agent.idle_instances("bert") == 2


class TestAgentPolicyIntegration:
    def test_max_mem_pressure_sacrifices_the_big_container(self, sim, vanilla_vm):
        agent = two_function_agent(sim, vanilla_vm, eviction="max-mem")
        populate(sim, agent)
        agent.request_reclaim(need_bytes=1)
        sim.run()
        # Bounded shed: one victim covers a 1-byte budget, and max-mem
        # picks the largest (bert) even though html is older.
        assert len(agent.eviction_records) == 1
        record = agent.eviction_records[0]
        assert record.function == "bert"
        assert record.pressure
        assert record.policy == "max-mem"
        assert record.rank == 0

    def test_eviction_records_carry_policy_and_rank(self, sim, vanilla_vm):
        agent = two_function_agent(sim, vanilla_vm, eviction="least-used")
        populate(sim, agent)

        def scenario():
            yield Timeout(30 * SEC)
            yield from agent.recycle_pass()

        sim.run_process(scenario())
        records = agent.eviction_records
        assert [r.rank for r in records] == list(range(len(records)))
        assert {r.policy for r in records} == {"least-used"}
        assert all(not r.pressure for r in records)
        assert agent.shrink_events[0].policy == "least-used"

    def test_reuse_order_is_a_policy_property(self, sim, vanilla_vm):
        class FifoTtl(TtlPolicy):
            name = "fifo-ttl"
            reuse = "fifo"

        register_policy(FifoTtl)
        try:
            agent = two_function_agent(sim, vanilla_vm, eviction="fifo-ttl")
            state = agent.functions["html"]
            assert agent._reuse(state) == "fifo"
            # A deployment pin still wins over the policy's preference.
            pinned = FunctionDeployment(
                get_function("cnn"), max_instances=1, reuse="lifo"
            )
            state.deployment = pinned
            assert agent._reuse(state) == "lifo"
        finally:
            lifecycle._REGISTRY.pop("fifo-ttl", None)
