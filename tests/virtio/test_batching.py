"""Unit tests for batched unplug (the Section 6.1.1 future work)."""

import pytest

from repro.mm.manager import GuestMemoryManager
from repro.sim.cpu import CpuCore
from repro.units import GIB, MEMORY_BLOCK_SIZE
from repro.virtio.backend import UnplugPlanEntry, VanillaBackend
from repro.virtio.driver import VirtioMemDriver


@pytest.fixture
def rig(sim, costs):
    manager = GuestMemoryManager(1 * GIB, 2 * GIB)
    backend = VanillaBackend(manager, costs)
    core = CpuCore(sim, name="irq")
    batched = VirtioMemDriver(
        sim, manager, backend, costs, irq_core=core, batch_unplug=True
    )
    return manager, batched, core


def plug_all(sim, manager, driver):
    sim.run_process(driver.handle_plug(list(manager.hotplug_block_indices())))


class TestRunGrouping:
    def make_entries(self, manager, indices):
        return [UnplugPlanEntry(manager.blocks[i]) for i in indices]

    def test_adjacent_blocks_group(self, rig):
        manager, driver, _ = rig
        entries = self.make_entries(manager, [8, 9, 10, 12, 13, 20])
        runs = driver._contiguous_runs(entries)
        assert [[e.block.index for e in run] for run in runs] == [
            [8, 9, 10],
            [12, 13],
            [20],
        ]

    def test_unsorted_plan_still_groups(self, rig):
        manager, driver, _ = rig
        entries = self.make_entries(manager, [10, 8, 9])
        runs = driver._contiguous_runs(entries)
        assert [[e.block.index for e in run] for run in runs] == [[8, 9, 10]]


class TestBatchedExecution:
    def test_batched_unplug_reports_runs(self, sim, rig):
        manager, driver, _ = rig
        plug_all(sim, manager, driver)
        outcome = sim.run_process(driver.handle_unplug(8))
        assert outcome.unplugged_blocks == 8
        assert outcome.contiguous_runs == 1  # empty guest → one run

    def test_unbatched_runs_equal_blocks(self, sim, costs):
        manager = GuestMemoryManager(1 * GIB, 1 * GIB)
        backend = VanillaBackend(manager, costs)
        core = CpuCore(sim)
        driver = VirtioMemDriver(sim, manager, backend, costs, irq_core=core)
        plug_all(sim, manager, driver)
        outcome = sim.run_process(driver.handle_unplug(4))
        assert outcome.contiguous_runs == outcome.unplugged_blocks == 4

    def test_batched_is_faster_for_contiguous_runs(self, sim, costs):
        def unplug_time(batch):
            from repro.sim.engine import Simulator

            local = Simulator()
            manager = GuestMemoryManager(1 * GIB, 1 * GIB)
            backend = VanillaBackend(manager, costs)
            core = CpuCore(local)
            driver = VirtioMemDriver(
                local, manager, backend, costs, irq_core=core, batch_unplug=batch
            )
            local.run_process(
                driver.handle_plug(list(manager.hotplug_block_indices()))
            )
            before = local.now
            local.run_process(driver.handle_unplug(8))
            return local.now - before

        assert unplug_time(True) < unplug_time(False)

    def test_batched_state_identical_to_unbatched(self, sim, rig):
        manager, driver, _ = rig
        plug_all(sim, manager, driver)
        outcome = sim.run_process(driver.handle_unplug(8))
        assert sorted(outcome.unplugged_block_indices) == sorted(
            outcome.unplugged_block_indices
        )
        manager.check_consistency()
        assert manager.plugged_bytes == 8 * MEMORY_BLOCK_SIZE
