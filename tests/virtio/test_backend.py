"""Unit tests for the vanilla hotplug backend."""

import pytest

from repro.mm.manager import GuestMemoryManager
from repro.mm.mm_struct import MmStruct
from repro.sim.costs import CostModel, ZeroingMode
from repro.units import GIB, MIB, PAGES_PER_BLOCK
from repro.virtio.backend import VanillaBackend


@pytest.fixture
def manager():
    manager = GuestMemoryManager(1 * GIB, 2 * GIB)
    for index in manager.hotplug_block_indices():
        manager.online_block(index, manager.zone_movable)
    return manager


@pytest.fixture
def backend(manager, costs):
    return VanillaBackend(manager, costs)


class TestPlugPolicy:
    def test_plug_targets_zone_movable(self, backend, manager):
        assert backend.zones_for_plug(4) == [(manager.zone_movable, 4)]

    def test_no_zeroing_under_init_on_alloc(self, backend):
        assert backend.plug_zero_pages_per_block() == 0

    def test_full_block_zeroing_under_init_on_free(self, manager):
        costs = CostModel(zeroing_mode=ZeroingMode.INIT_ON_FREE)
        backend = VanillaBackend(manager, costs)
        assert backend.plug_zero_pages_per_block() == PAGES_PER_BLOCK


class TestUnplugPlanning:
    def test_plans_highest_blocks_first(self, backend, manager):
        plan = backend.plan_unplug(3)
        indices = [entry.block.index for entry in plan]
        highest = sorted(
            (b.index for b in manager.zone_movable.blocks), reverse=True
        )[:3]
        assert indices == highest

    def test_plan_counts_scanned_blocks(self, backend):
        plan = backend.plan_unplug(2)
        assert all(entry.scanned_blocks >= 1 for entry in plan)

    def test_plan_skips_isolated_blocks(self, backend, manager):
        top = manager.zone_movable.blocks[-1]
        manager.isolate_block(top)
        plan = backend.plan_unplug(1)
        assert plan[0].block is not top

    def test_plan_limited_by_headroom(self, backend, manager):
        # Occupy almost everything: nothing can be migrated anywhere.
        mm = MmStruct("hog")
        manager.alloc_pages(mm, manager.free_pages_total - 10)
        plan = backend.plan_unplug(4)
        assert len(plan) == 0

    def test_partial_plan_when_headroom_allows_some(self, backend, manager):
        mm = MmStruct("hog")
        # Leave ~1.5 blocks of headroom: only a limited number of blocks
        # can be drained.
        manager.alloc_pages(
            mm, manager.free_pages_total - PAGES_PER_BLOCK - PAGES_PER_BLOCK // 2
        )
        plan = backend.plan_unplug(16)
        assert 0 < len(plan) < 16

    def test_emptiest_first_prefers_cheap_blocks(self, manager, costs):
        backend = VanillaBackend(manager, costs, selection="emptiest_first")
        mm = MmStruct("p")
        # Occupy only the highest block heavily (sequential would pick it).
        top = manager.zone_movable.blocks[-1]
        top.charge(mm, 1000)
        mm._mirror_charge(top, 1000)
        manager.zone_movable._free_pages -= 1000
        plan = backend.plan_unplug(1)
        assert plan[0].block.occupied_pages == 0

    def test_unknown_selection_rejected(self, manager, costs):
        with pytest.raises(ValueError):
            VanillaBackend(manager, costs, selection="bogus")


class TestUnplugExecution:
    def test_migrate_for_unplug_empties_block(self, backend, manager):
        mm = MmStruct("p")
        manager.alloc_pages(mm, 3 * PAGES_PER_BLOCK)
        block = manager.zone_movable.blocks[0]
        occupied = block.occupied_pages
        migrated = backend.migrate_for_unplug(block)
        assert migrated == occupied
        assert block.is_empty

    def test_unplug_zeroing_tracks_migrations_under_init_on_alloc(self, backend):
        assert backend.unplug_zero_pages(500) == 500

    def test_unplug_no_zeroing_under_init_on_free(self, manager):
        costs = CostModel(zeroing_mode=ZeroingMode.INIT_ON_FREE)
        backend = VanillaBackend(manager, costs)
        assert backend.unplug_zero_pages(500) == 0
