"""Unit tests for the guest virtio-mem driver."""

import pytest

from repro.mm.block import BlockState
from repro.mm.manager import GuestMemoryManager
from repro.mm.mm_struct import MmStruct
from repro.sim.cpu import CpuCore
from repro.units import GIB, PAGES_PER_BLOCK
from repro.virtio.backend import VanillaBackend
from repro.virtio.driver import VIRTIO_MEM_LABEL, VirtioMemDriver


@pytest.fixture
def rig(sim, costs):
    manager = GuestMemoryManager(1 * GIB, 2 * GIB)
    backend = VanillaBackend(manager, costs)
    core = CpuCore(sim, name="irq-vcpu")
    driver = VirtioMemDriver(sim, manager, backend, costs, irq_core=core)
    return manager, driver, core


class TestPlug:
    def test_plug_onlines_requested_blocks(self, sim, rig):
        manager, driver, core = rig
        indices = list(manager.hotplug_block_indices())[:4]
        outcome = sim.run_process(driver.handle_plug(indices))
        assert outcome.plugged_block_indices == indices
        for index in indices:
            assert manager.blocks[index].state is BlockState.ONLINE

    def test_plug_charges_cpu_with_virtio_label(self, sim, rig, costs):
        manager, driver, core = rig
        indices = list(manager.hotplug_block_indices())[:3]
        sim.run_process(driver.handle_plug(indices))
        assert core.busy_ns_for(VIRTIO_MEM_LABEL) == 3 * costs.plug_block_ns()

    def test_plug_takes_simulated_time(self, sim, rig):
        manager, driver, core = rig
        indices = list(manager.hotplug_block_indices())[:2]
        sim.run_process(driver.handle_plug(indices))
        assert sim.now > 0

    def test_plug_at_boot_is_instant_and_uncharged(self, sim, rig):
        manager, driver, core = rig
        indices = list(manager.hotplug_block_indices())[:2]
        driver.plug_at_boot(indices, manager.zone_movable)
        assert sim.now == 0
        assert core.busy_ns == 0
        assert manager.blocks[indices[0]].state is BlockState.ONLINE


class TestUnplug:
    def _plug_all(self, sim, manager, driver):
        indices = list(manager.hotplug_block_indices())
        sim.run_process(driver.handle_plug(indices))

    def test_unplug_empty_guest_removes_blocks_without_migration(self, sim, rig):
        manager, driver, core = rig
        self._plug_all(sim, manager, driver)
        outcome = sim.run_process(driver.handle_unplug(4))
        assert outcome.unplugged_blocks == 4
        assert outcome.migrated_pages == 0

    def test_unplug_occupied_guest_migrates(self, sim, rig):
        manager, driver, core = rig
        self._plug_all(sim, manager, driver)
        mm = MmStruct("p")
        manager.alloc_pages(mm, 8 * PAGES_PER_BLOCK)
        outcome = sim.run_process(driver.handle_unplug(4))
        assert outcome.unplugged_blocks == 4
        assert outcome.migrated_pages > 0
        manager.check_consistency()

    def test_unplug_migration_charges_cpu(self, sim, rig, costs):
        manager, driver, core = rig
        self._plug_all(sim, manager, driver)
        mm = MmStruct("p")
        manager.alloc_pages(mm, 8 * PAGES_PER_BLOCK)
        cpu_before = core.busy_ns_for(VIRTIO_MEM_LABEL)
        outcome = sim.run_process(driver.handle_unplug(2))
        cpu = core.busy_ns_for(VIRTIO_MEM_LABEL) - cpu_before
        assert cpu >= costs.migrate_pages_ns(outcome.migrated_pages)

    def test_unplug_partial_when_headroom_exhausted(self, sim, rig):
        manager, driver, core = rig
        self._plug_all(sim, manager, driver)
        mm = MmStruct("p")
        manager.alloc_pages(mm, manager.free_pages_total - 100)
        outcome = sim.run_process(driver.handle_unplug(8))
        assert outcome.unplugged_blocks == 0

    def test_unplug_reports_scanned_blocks(self, sim, rig):
        manager, driver, core = rig
        self._plug_all(sim, manager, driver)
        outcome = sim.run_process(driver.handle_unplug(2))
        assert outcome.scanned_blocks >= 2

    def test_unplugged_blocks_are_absent(self, sim, rig):
        manager, driver, core = rig
        self._plug_all(sim, manager, driver)
        outcome = sim.run_process(driver.handle_unplug(3))
        for index in outcome.unplugged_block_indices:
            assert manager.blocks[index].state is BlockState.ABSENT
