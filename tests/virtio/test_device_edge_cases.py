"""Edge cases for the virtio-mem device."""

import pytest

from repro.units import GIB, MEMORY_BLOCK_SIZE, MIB


class TestZeroSizedRequests:
    def test_plug_zero_bytes_is_a_noop(self, sim, vanilla_vm):
        process = vanilla_vm.request_plug(0)
        sim.run()
        assert process.value.plugged_bytes == 0
        assert vanilla_vm.device.plugged_bytes == 0
        vanilla_vm.check_consistency()

    def test_unplug_zero_bytes_is_a_noop(self, sim, vanilla_vm):
        vanilla_vm.request_plug(256 * MIB)
        sim.run()
        process = vanilla_vm.request_unplug(0)
        sim.run()
        assert process.value.unplugged_bytes == 0
        assert vanilla_vm.device.plugged_bytes == 256 * MIB


class TestSubBlockRounding:
    @pytest.mark.parametrize("size", [1, 4096, MIB, 127 * MIB])
    def test_plug_rounds_any_size_to_one_block(self, sim, vanilla_vm, size):
        process = vanilla_vm.request_plug(size)
        sim.run()
        assert process.value.plugged_bytes == MEMORY_BLOCK_SIZE

    def test_unplug_rounds_up_too(self, sim, vanilla_vm):
        vanilla_vm.request_plug(512 * MIB)
        sim.run()
        process = vanilla_vm.request_unplug(129 * MIB)
        sim.run()
        assert process.value.unplugged_bytes == 2 * MEMORY_BLOCK_SIZE


class TestRegionExhaustion:
    def test_exact_region_fill_and_drain(self, sim, vanilla_vm):
        region = vanilla_vm.config.hotplug_region_bytes
        vanilla_vm.request_plug(region)
        sim.run()
        assert vanilla_vm.device.plugged_bytes == region
        vanilla_vm.request_unplug(region)
        sim.run()
        assert vanilla_vm.device.plugged_bytes == 0
        vanilla_vm.check_consistency()

    def test_replug_after_full_drain(self, sim, vanilla_vm):
        region = vanilla_vm.config.hotplug_region_bytes
        for _ in range(2):
            vanilla_vm.request_plug(region)
            sim.run()
            vanilla_vm.request_unplug(region)
            sim.run()
        assert vanilla_vm.device.plugged_bytes == 0
        vanilla_vm.check_consistency()


class TestQueueFairness:
    def test_requests_complete_in_submission_order(self, sim, vanilla_vm):
        order = []
        processes = []
        for i in range(4):
            process = vanilla_vm.request_plug(128 * MIB)
            process.done_event.add_callback(
                lambda _, tag=i: order.append(tag)
            )
            processes.append(process)
        sim.run()
        assert order == [0, 1, 2, 3]

    def test_mixed_queue_preserves_order(self, sim, vanilla_vm):
        events = vanilla_vm.tracer.events
        vanilla_vm.request_plug(512 * MIB)
        vanilla_vm.request_unplug(256 * MIB)
        vanilla_vm.request_plug(256 * MIB)
        sim.run()
        kinds = [e.kind for e in events]
        assert kinds == ["plug", "unplug", "plug"]
        for earlier, later in zip(events, events[1:]):
            assert later.start_ns >= earlier.end_ns
