"""Unit tests for the VMM-side virtio-mem device."""

import pytest

from repro.errors import HotplugError
from repro.sim.engine import Timeout
from repro.units import GIB, MEMORY_BLOCK_SIZE, MIB


class TestPlug:
    def test_plug_rounds_up_to_blocks(self, sim, vanilla_vm):
        process = vanilla_vm.request_plug(100 * MIB)
        sim.run()
        assert process.value.plugged_bytes == MEMORY_BLOCK_SIZE

    def test_plug_charges_host_memory(self, sim, vanilla_vm):
        used_before = vanilla_vm.node.used_bytes
        vanilla_vm.request_plug(512 * MIB)
        sim.run()
        assert vanilla_vm.node.used_bytes == used_before + 512 * MIB

    def test_plug_beyond_region_rejected(self, sim, vanilla_vm):
        vanilla_vm.request_plug(8 * GIB)
        with pytest.raises(HotplugError):
            sim.run()

    def test_plug_latency_positive_and_traced(self, sim, vanilla_vm):
        process = vanilla_vm.request_plug(256 * MIB)
        sim.run()
        assert process.value.latency_ns > 0
        events = vanilla_vm.tracer.plug_events()
        assert len(events) == 1
        assert events[0].completed_bytes == 256 * MIB

    def test_consistency_after_plug(self, sim, vanilla_vm):
        vanilla_vm.request_plug(1 * GIB)
        sim.run()
        vanilla_vm.check_consistency()


class TestUnplug:
    def test_unplug_returns_memory_to_host(self, sim, vanilla_vm):
        vanilla_vm.request_plug(1 * GIB)
        sim.run()
        used_before = vanilla_vm.node.used_bytes
        process = vanilla_vm.request_unplug(512 * MIB)
        sim.run()
        assert process.value.unplugged_bytes == 512 * MIB
        assert vanilla_vm.node.used_bytes == used_before - 512 * MIB

    def test_unplug_more_than_plugged_clamped(self, sim, vanilla_vm):
        vanilla_vm.request_plug(256 * MIB)
        sim.run()
        process = vanilla_vm.request_unplug(4 * GIB)
        sim.run()
        assert process.value.unplugged_bytes == 256 * MIB

    def test_unplug_latency_measured_hypervisor_side(self, sim, vanilla_vm):
        vanilla_vm.request_plug(512 * MIB)
        sim.run()
        process = vanilla_vm.request_unplug(512 * MIB)
        sim.run()
        result = process.value
        event = vanilla_vm.tracer.unplug_events()[0]
        assert event.latency_ns == result.latency_ns
        # Latency covers at least the madvise work.
        assert result.latency_ns >= 4 * vanilla_vm.costs.madvise_block_ns

    def test_consistency_after_unplug(self, sim, vanilla_vm):
        vanilla_vm.request_plug(1 * GIB)
        sim.run()
        vanilla_vm.request_unplug(512 * MIB)
        sim.run()
        vanilla_vm.check_consistency()


class TestSerialization:
    def test_concurrent_requests_serialize(self, sim, vanilla_vm):
        first = vanilla_vm.request_plug(512 * MIB)
        second = vanilla_vm.request_plug(512 * MIB)
        sim.run()
        first_event, second_event = vanilla_vm.tracer.plug_events()
        assert second_event.start_ns >= first_event.end_ns
        assert first.value.fully_plugged and second.value.fully_plugged

    def test_plug_then_unplug_ordering(self, sim, vanilla_vm):
        vanilla_vm.request_plug(512 * MIB)
        vanilla_vm.request_unplug(256 * MIB)
        sim.run()
        plug = vanilla_vm.tracer.plug_events()[0]
        unplug = vanilla_vm.tracer.unplug_events()[0]
        assert unplug.start_ns >= plug.end_ns
        assert unplug.completed_bytes == 256 * MIB


class TestBootPlug:
    def test_plug_at_boot_is_instant(self, sim, vanilla_vm):
        vanilla_vm.device.plug_at_boot(512 * MIB, vanilla_vm.manager.zone_movable)
        assert sim.now == 0
        assert vanilla_vm.device.plugged_bytes == 512 * MIB
        vanilla_vm.check_consistency()

    def test_plug_at_boot_not_traced(self, sim, vanilla_vm):
        vanilla_vm.device.plug_at_boot(256 * MIB, vanilla_vm.manager.zone_movable)
        assert vanilla_vm.tracer.events == []

    def test_boot_plug_beyond_region_rejected(self, vanilla_vm):
        with pytest.raises(HotplugError):
            vanilla_vm.device.plug_at_boot(
                8 * GIB, vanilla_vm.manager.zone_movable
            )


class TestReclaimThroughputMetric:
    def test_throughput_zero_without_unplugs(self, vanilla_vm):
        assert vanilla_vm.tracer.reclaim_throughput_mib_per_sec() == 0.0

    def test_throughput_positive_after_reclaim(self, sim, vanilla_vm):
        vanilla_vm.request_plug(512 * MIB)
        sim.run()
        vanilla_vm.request_unplug(512 * MIB)
        sim.run()
        assert vanilla_vm.tracer.reclaim_throughput_mib_per_sec() > 0
        assert vanilla_vm.tracer.total_unplugged_bytes() == 512 * MIB
