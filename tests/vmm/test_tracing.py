"""Unit tests for hypervisor-side tracing."""

from repro.vmm.tracing import HypervisorTracer
from repro.units import MIB, SEC


def test_events_partitioned_by_kind():
    tracer = HypervisorTracer()
    tracer.record_plug(0, 10, 100, 100)
    tracer.record_unplug(20, 30, 200, 150, migrated_pages=5)
    assert len(tracer.plug_events()) == 1
    assert len(tracer.unplug_events()) == 1


def test_latency_derived_from_timestamps():
    tracer = HypervisorTracer()
    tracer.record_unplug(100, 350, 10, 10, 0)
    assert tracer.unplug_events()[0].latency_ns == 250


def test_total_unplugged_counts_completed_only():
    tracer = HypervisorTracer()
    tracer.record_unplug(0, 1, 10 * MIB, 5 * MIB, 0)
    tracer.record_unplug(2, 3, 10 * MIB, 10 * MIB, 0)
    assert tracer.total_unplugged_bytes() == 15 * MIB


def test_reclaim_throughput_uses_busy_time():
    tracer = HypervisorTracer()
    # 1024 MiB reclaimed over a total of 2 s of unplug busy time.
    tracer.record_unplug(0, 1 * SEC, 512 * MIB, 512 * MIB, 0)
    tracer.record_unplug(5 * SEC, 6 * SEC, 512 * MIB, 512 * MIB, 0)
    assert tracer.reclaim_throughput_mib_per_sec() == 512.0


def test_throughput_zero_when_no_unplugs():
    assert HypervisorTracer().reclaim_throughput_mib_per_sec() == 0.0
