"""Tests for the target-size resize API (virtio-mem protocol semantics)."""

import pytest

from repro.errors import ConfigError
from repro.units import GIB, MEMORY_BLOCK_SIZE, MIB


class TestRequestResize:
    def test_grow_to_target(self, sim, vanilla_vm):
        process = vanilla_vm.request_resize(1 * GIB)
        sim.run()
        assert process.value.plugged_bytes == 1 * GIB
        assert vanilla_vm.device.plugged_bytes == 1 * GIB

    def test_shrink_to_target(self, sim, vanilla_vm):
        vanilla_vm.request_resize(1 * GIB)
        sim.run()
        vanilla_vm.request_resize(256 * MIB)
        sim.run()
        assert vanilla_vm.device.plugged_bytes == 256 * MIB
        vanilla_vm.check_consistency()

    def test_noop_at_target_returns_none(self, sim, vanilla_vm):
        vanilla_vm.request_resize(256 * MIB)
        sim.run()
        assert vanilla_vm.request_resize(256 * MIB) is None

    def test_target_rounded_to_blocks(self, sim, vanilla_vm):
        vanilla_vm.request_resize(200 * MIB)
        sim.run()
        assert vanilla_vm.device.plugged_bytes == 2 * MEMORY_BLOCK_SIZE

    def test_target_beyond_region_rejected(self, vanilla_vm):
        with pytest.raises(ConfigError):
            vanilla_vm.request_resize(100 * GIB)

    def test_resize_to_zero_drains_everything(self, sim, vanilla_vm):
        vanilla_vm.request_resize(1 * GIB)
        sim.run()
        vanilla_vm.request_resize(0)
        sim.run()
        assert vanilla_vm.device.plugged_bytes == 0

    def test_sequence_of_targets_converges(self, sim, vanilla_vm):
        for target in (512 * MIB, 2 * GIB, 128 * MIB, 1 * GIB):
            vanilla_vm.request_resize(target)
            sim.run()
            assert vanilla_vm.device.plugged_bytes == target
        vanilla_vm.check_consistency()

    def test_hotmem_resize_respects_partitions(self, sim, hotmem_vm):
        shared = hotmem_vm.hotmem.params.shared_bytes
        hotmem_vm.request_resize(shared + 2 * 384 * MIB)
        sim.run()
        populated = [
            p for p in hotmem_vm.hotmem.partitions if p.is_fully_populated
        ]
        assert len(populated) == 2
        hotmem_vm.check_consistency()
