"""Unit tests for VM wiring (vanilla, HotMem, overprovisioned)."""

import pytest

from repro.cluster.provision import Fleet, VmSpec
from repro.errors import ConfigError
from repro.faas.policy import DeploymentMode
from repro.sim import Simulator
from repro.units import GIB, MIB


def _provision(fleet, **spec_kwargs):
    return fleet.provision(VmSpec(**spec_kwargs)).vm


class TestVanillaWiring:
    def test_vcpus_and_vmm_thread_created(self, vanilla_vm):
        assert len(vanilla_vm.vcpus) == 10
        assert vanilla_vm.irq_vcpu is vanilla_vm.vcpus[0]
        assert vanilla_vm.vmm_core.name.endswith("-vmm")

    def test_not_hotmem(self, vanilla_vm):
        assert not vanilla_vm.is_hotmem
        assert vanilla_vm.hotmem is None

    def test_boot_memory_charged_on_host(self, fleet, host):
        used_before = host.node(0).used_bytes
        vm = _provision(fleet, name="vm", region_bytes=GIB)
        assert host.node(0).used_bytes == (
            used_before + vm.config.effective_boot_memory_bytes
        )

    def test_shutdown_releases_host_memory(self, sim, fleet, host):
        vm = _provision(fleet, name="vm", region_bytes=GIB)
        vm.request_plug(512 * MIB)
        sim.run()
        vm.shutdown()
        assert host.node(0).used_bytes == 0

    def test_shutdown_idempotent(self, fleet, host):
        vm = _provision(fleet, name="vm", region_bytes=GIB)
        vm.shutdown()
        vm.shutdown()
        assert host.node(0).used_bytes == 0


class TestHotMemWiring:
    def test_partitions_created(self, hotmem_vm, hotmem_params):
        assert hotmem_vm.is_hotmem
        assert len(hotmem_vm.hotmem.partitions) == hotmem_params.concurrency

    def test_shared_partition_populated_at_boot(self, hotmem_vm, hotmem_params):
        shared = hotmem_vm.hotmem.shared_partition
        assert shared.is_fully_populated
        assert hotmem_vm.device.plugged_bytes == hotmem_params.shared_bytes

    def test_region_too_small_rejected(self, fleet, hotmem_params):
        with pytest.raises(ConfigError):
            _provision(
                fleet,
                name="vm",
                mode=DeploymentMode.HOTMEM,
                region_bytes=GIB,
                partition_bytes=hotmem_params.partition_bytes,
                concurrency=hotmem_params.concurrency,
                shared_bytes=hotmem_params.shared_bytes,
            )

    def test_file_faults_use_shared_partition(self, sim, hotmem_vm):
        from repro.mm.pagecache import CachedFile

        file = hotmem_vm.page_cache.register(CachedFile("lib", 1000))
        mm = hotmem_vm.new_process("fn")
        hotmem_vm.fault_handler.fault_file(mm, file, 1000)
        shared_zone = hotmem_vm.hotmem.shared_partition.zone
        assert shared_zone.occupied_pages == 1000


class TestProcessLifecycle:
    def test_exit_vanilla_process(self, sim, vanilla_vm):
        mm = vanilla_vm.new_process("p")
        vanilla_vm.fault_handler.fault_anon(mm, 100)
        charge = vanilla_vm.exit_process(mm)
        assert charge.anon_pages == 100
        assert mm.total_pages == 0

    def test_exit_hotmem_process_releases_partition(self, sim, hotmem_vm):
        hotmem_vm.request_plug(384 * MIB)
        sim.run()
        mm = hotmem_vm.new_process("fn")
        partition = hotmem_vm.hotmem.try_attach(mm)
        hotmem_vm.fault_handler.fault_anon(mm, 1000)
        hotmem_vm.exit_process(mm)
        assert partition.is_reclaimable


class TestOverprovisioned:
    def test_plug_all_at_boot(self, sim, fleet):
        vm = fleet.provision(
            VmSpec(
                "vm",
                mode=DeploymentMode.OVERPROVISIONED,
                region_bytes=2 * GIB,
            )
        ).vm
        assert vm.device.plugged_bytes == 2 * GIB
        assert sim.now == 0
        vm.check_consistency()

    def test_plug_all_at_boot_idempotent(self, fleet):
        vm = _provision(
            fleet,
            name="vm",
            mode=DeploymentMode.OVERPROVISIONED,
            region_bytes=GIB,
        )
        vm.plug_all_at_boot()
        assert vm.device.plugged_bytes == GIB


class TestEndToEndResize:
    def test_hotmem_unplug_is_much_faster_than_vanilla(self):
        """The headline claim at unit scale: same load, same reclaim,
        an order of magnitude apart."""
        from repro.workloads.memhog import Memhog

        results = {}
        for mode in ("vanilla", "hotmem"):
            local_sim = Simulator()
            local_fleet = Fleet(local_sim)
            vm = local_fleet.provision(
                VmSpec(
                    mode,
                    mode=(
                        DeploymentMode.HOTMEM
                        if mode == "hotmem"
                        else DeploymentMode.VANILLA
                    ),
                    region_bytes=8 * 384 * MIB,
                    partition_bytes=384 * MIB if mode == "hotmem" else 0,
                    concurrency=8 if mode == "hotmem" else 0,
                    shared_bytes=0,
                )
            ).vm
            vm.request_plug(8 * 384 * MIB)
            local_sim.run()
            hogs = [
                Memhog(vm, 300 * MIB, vcpu_index=i % 10,
                       use_hotmem=mode == "hotmem", name=f"hog{i}")
                for i in range(8)
            ]
            for hog in hogs:
                hog.materialize()
            for hog in hogs[-2:]:
                hog.release()
            process = vm.request_unplug(2 * 384 * MIB)
            local_sim.run()
            results[mode] = process.value
            vm.check_consistency()
        assert results["hotmem"].migrated_pages == 0
        assert results["vanilla"].migrated_pages > 0
        assert (
            results["vanilla"].latency_ns > 10 * results["hotmem"].latency_ns
        )
