"""Unit tests for VM wiring (vanilla, HotMem, overprovisioned)."""

import pytest

from repro.core import HotMemBootParams
from repro.errors import ConfigError
from repro.units import GIB, MIB
from repro.vmm import VirtualMachine, VmConfig


class TestVanillaWiring:
    def test_vcpus_and_vmm_thread_created(self, vanilla_vm):
        assert len(vanilla_vm.vcpus) == 10
        assert vanilla_vm.irq_vcpu is vanilla_vm.vcpus[0]
        assert vanilla_vm.vmm_core.name.endswith("-vmm")

    def test_not_hotmem(self, vanilla_vm):
        assert not vanilla_vm.is_hotmem
        assert vanilla_vm.hotmem is None

    def test_boot_memory_charged_on_host(self, sim, host):
        used_before = host.node(0).used_bytes
        vm = VirtualMachine(sim, host, VmConfig("vm", hotplug_region_bytes=GIB))
        assert host.node(0).used_bytes == (
            used_before + vm.config.effective_boot_memory_bytes
        )

    def test_shutdown_releases_host_memory(self, sim, host):
        vm = VirtualMachine(sim, host, VmConfig("vm", hotplug_region_bytes=GIB))
        vm.request_plug(512 * MIB)
        sim.run()
        vm.shutdown()
        assert host.node(0).used_bytes == 0

    def test_shutdown_idempotent(self, sim, host):
        vm = VirtualMachine(sim, host, VmConfig("vm", hotplug_region_bytes=GIB))
        vm.shutdown()
        vm.shutdown()
        assert host.node(0).used_bytes == 0


class TestHotMemWiring:
    def test_partitions_created(self, hotmem_vm, hotmem_params):
        assert hotmem_vm.is_hotmem
        assert len(hotmem_vm.hotmem.partitions) == hotmem_params.concurrency

    def test_shared_partition_populated_at_boot(self, hotmem_vm, hotmem_params):
        shared = hotmem_vm.hotmem.shared_partition
        assert shared.is_fully_populated
        assert hotmem_vm.device.plugged_bytes == hotmem_params.shared_bytes

    def test_region_too_small_rejected(self, sim, host, hotmem_params):
        with pytest.raises(ConfigError):
            VirtualMachine(
                sim,
                host,
                VmConfig("vm", hotplug_region_bytes=GIB),
                hotmem_params=hotmem_params,
            )

    def test_file_faults_use_shared_partition(self, sim, hotmem_vm):
        from repro.mm.pagecache import CachedFile

        file = hotmem_vm.page_cache.register(CachedFile("lib", 1000))
        mm = hotmem_vm.new_process("fn")
        hotmem_vm.fault_handler.fault_file(mm, file, 1000)
        shared_zone = hotmem_vm.hotmem.shared_partition.zone
        assert shared_zone.occupied_pages == 1000


class TestProcessLifecycle:
    def test_exit_vanilla_process(self, sim, vanilla_vm):
        mm = vanilla_vm.new_process("p")
        vanilla_vm.fault_handler.fault_anon(mm, 100)
        charge = vanilla_vm.exit_process(mm)
        assert charge.anon_pages == 100
        assert mm.total_pages == 0

    def test_exit_hotmem_process_releases_partition(self, sim, hotmem_vm):
        hotmem_vm.request_plug(384 * MIB)
        sim.run()
        mm = hotmem_vm.new_process("fn")
        partition = hotmem_vm.hotmem.try_attach(mm)
        hotmem_vm.fault_handler.fault_anon(mm, 1000)
        hotmem_vm.exit_process(mm)
        assert partition.is_reclaimable


class TestOverprovisioned:
    def test_plug_all_at_boot(self, sim, host):
        vm = VirtualMachine(sim, host, VmConfig("vm", hotplug_region_bytes=2 * GIB))
        vm.plug_all_at_boot()
        assert vm.device.plugged_bytes == 2 * GIB
        assert sim.now == 0
        vm.check_consistency()

    def test_plug_all_at_boot_idempotent(self, sim, host):
        vm = VirtualMachine(sim, host, VmConfig("vm", hotplug_region_bytes=GIB))
        vm.plug_all_at_boot()
        vm.plug_all_at_boot()
        assert vm.device.plugged_bytes == GIB


class TestEndToEndResize:
    def test_hotmem_unplug_is_much_faster_than_vanilla(self, sim, host):
        """The headline claim at unit scale: same load, same reclaim,
        an order of magnitude apart."""
        from repro.workloads.memhog import Memhog

        results = {}
        for mode in ("vanilla", "hotmem"):
            local_sim = type(sim)()
            local_host = type(host)(local_sim)
            params = None
            if mode == "hotmem":
                params = HotMemBootParams(384 * MIB, concurrency=8, shared_bytes=0)
            vm = VirtualMachine(
                local_sim,
                local_host,
                VmConfig(mode, hotplug_region_bytes=8 * 384 * MIB),
                hotmem_params=params,
            )
            vm.request_plug(8 * 384 * MIB)
            local_sim.run()
            hogs = [
                Memhog(vm, 300 * MIB, vcpu_index=i % 10,
                       use_hotmem=mode == "hotmem", name=f"hog{i}")
                for i in range(8)
            ]
            for hog in hogs:
                hog.materialize()
            for hog in hogs[-2:]:
                hog.release()
            process = vm.request_unplug(2 * 384 * MIB)
            local_sim.run()
            results[mode] = process.value
            vm.check_consistency()
        assert results["hotmem"].migrated_pages == 0
        assert results["vanilla"].migrated_pages > 0
        assert (
            results["vanilla"].latency_ns > 10 * results["hotmem"].latency_ns
        )
