"""Unit tests for VM configuration."""

import pytest

from repro.errors import ConfigError
from repro.units import GIB, MEMORY_BLOCK_SIZE, MIB
from repro.vmm.config import VmConfig, default_boot_memory_bytes


class TestDefaults:
    def test_boot_memory_formula_covers_memmap(self):
        boot = default_boot_memory_bytes(64 * GIB)
        assert boot >= 64 * GIB // 64  # memmap portion
        assert boot % MEMORY_BLOCK_SIZE == 0

    def test_boot_memory_minimum(self):
        assert default_boot_memory_bytes(0) >= 512 * MIB

    def test_explicit_boot_memory_wins(self):
        config = VmConfig("vm", hotplug_region_bytes=GIB, boot_memory_bytes=GIB)
        assert config.effective_boot_memory_bytes == GIB

    def test_auto_boot_memory_applied(self):
        config = VmConfig("vm", hotplug_region_bytes=8 * GIB)
        assert config.effective_boot_memory_bytes == default_boot_memory_bytes(8 * GIB)


class TestValidation:
    def test_zero_vcpus_rejected(self):
        with pytest.raises(ConfigError):
            VmConfig("vm", hotplug_region_bytes=GIB, vcpus=0)

    def test_misaligned_region_rejected(self):
        with pytest.raises(ConfigError):
            VmConfig("vm", hotplug_region_bytes=100 * MIB)

    def test_irq_vcpu_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            VmConfig("vm", hotplug_region_bytes=GIB, vcpus=2, virtio_irq_vcpu=2)

    def test_paper_defaults(self):
        config = VmConfig("vm", hotplug_region_bytes=GIB)
        assert config.vcpus == 10
        assert config.placement == "scatter"
        assert config.virtio_irq_vcpu == 0
