"""Regression tests for the DIMM slot race (the pre-PR-4 bug).

The flow lint's ``stale-guard-across-yield`` rule exists because of one
concrete interleaving: ``plug()`` snapshotting ``free_dimms()``, guarding
on the snapshot, yielding for the device RTT, then onlining blocks into
slots a concurrent request claimed meanwhile.  These tests reconstruct
the unfixed pattern as a subclass and show it collide, show the shipped
reservation-token code survive the *same* schedule, and reproduce the
fixed interleaving end-to-end through the fault injector's recycle-race
site on a DIMM-mode VM.
"""

import pytest

from repro.baselines.dimm import DIMM_LABEL, DimmHotplug
from repro.cluster.provision import VmSpec
from repro.errors import HotplugError
from repro.faas.agent import FunctionDeployment
from repro.faas.policy import KeepAlivePolicy
from repro.faults import AGENT_RECYCLE_RACE, FaultPlan, FaultSpec
from repro.mm.block import BlockState
from repro.sim.engine import Timeout
from repro.units import GIB, MIB, SEC
from repro.workloads.functions import get_function


class RacyDimmHotplug(DimmHotplug):
    """The pre-PR-4 plug path: snapshot, guard, yield, act.

    No reservation token is published before the RTT yield and nothing
    is re-validated after it — exactly the pattern the
    ``stale-guard-across-yield`` rule flags (see
    ``tests/analysis/test_flow_rules.py``, which lints this shape).
    """

    def plug(self, dimm_count: int):
        free_slots = [
            dimm
            for dimm in range(self.dimm_slots)
            if all(
                self.manager.blocks[i].state is BlockState.ABSENT
                for i in self.dimm_block_indices(dimm)
            )
        ]
        if dimm_count > len(free_slots):
            raise HotplugError(
                f"only {len(free_slots)} free DIMM slots, need {dimm_count}"
            )
        start = self.sim.now
        self.host_node.charge(dimm_count * self.dimm_bytes)
        claimed = free_slots[:dimm_count]
        # The stale window: between here and the resume, a concurrent
        # plug sees the same free slots.
        yield self.vmm_core.submit(self.costs.virtio_request_rtt_ns, DIMM_LABEL)
        for dimm in claimed:
            for index in self.dimm_block_indices(dimm):
                self.manager.online_block(index, self.manager.zone_movable)
                yield self.irq_core.submit(
                    self.costs.plug_block_ns(zero_pages=0), DIMM_LABEL
                )
        return self.sim.now - start


@pytest.fixture
def vm(fleet):
    return fleet.provision(VmSpec("dimm-vm", region_bytes=4 * GIB)).vm


def hotplug(cls, sim, vm):
    return cls(
        sim,
        vm.manager,
        vm.costs,
        irq_core=vm.irq_vcpu,
        vmm_core=vm.vmm_core,
        host_node=vm.node,
    )


class TestSlotRaceReconstruction:
    def test_unfixed_concurrent_plugs_collide_on_one_slot(self, sim, vm):
        racy = hotplug(RacyDimmHotplug, sim, vm)
        sim.spawn(racy.plug(1))
        sim.spawn(racy.plug(1))
        # Both snapshots see slot 0 free; the second online_block of the
        # loser lands on a block the winner already onlined.
        with pytest.raises(HotplugError, match="already"):
            sim.run()

    def test_shipped_code_survives_the_same_schedule(self, sim, vm):
        dimm = hotplug(DimmHotplug, sim, vm)
        sim.spawn(dimm.plug(1))
        sim.spawn(dimm.plug(1))
        sim.run()
        # The reservation token published before the yield steered the
        # second request to a disjoint slot.
        assert dimm.plugged_dimms() == [0, 1]
        assert dimm._reserved == set()
        vm.manager.check_consistency()

    def test_concurrent_unplugs_revalidate_and_take_disjoint_dimms(
        self, sim, vm
    ):
        dimm = hotplug(DimmHotplug, sim, vm)
        sim.run_process(dimm.plug(4))
        first = sim.spawn(dimm.unplug(1 * GIB))
        second = sim.spawn(dimm.unplug(1 * GIB))
        sim.run()
        # Both candidate lists were snapshotted before the RTT; the
        # per-DIMM re-validation makes the loser skip the slot the
        # winner already drained instead of double-unplugging it.
        assert first.value.unplugged_dimms == 1
        assert second.value.unplugged_dimms == 1
        assert dimm.plugged_dimms() == [0, 1]
        assert dimm._reserved == set()
        vm.manager.check_consistency()


class TestInjectorDrivenRace:
    def test_recycle_race_on_dimm_vm_respects_reservations(self, sim, fleet):
        """The fixed interleaving, reproduced through the fault injector.

        ``AGENT_RECYCLE_RACE`` makes a second recycle pass size its
        unplug from pre-race state while the first pass's unplug is
        still in flight — concurrent ``DimmHotplug.unplug`` calls over
        one slot set, the exact shape the reservation token serializes.
        """
        function = get_function("html")
        spec = VmSpec.for_function(
            "dimm-race-vm",
            "dimm",
            function.memory_limit_bytes,
            concurrency=8,
            shared_bytes=function.shared_deps_bytes,
            boot_memory_bytes=256 * MIB,
            faults=FaultPlan((FaultSpec(AGENT_RECYCLE_RACE, 1.0, max_fires=1),)),
        )
        handle = fleet.provision(spec)
        vm = handle.vm
        agent = handle.deploy(
            [FunctionDeployment(function, max_instances=2)],
            KeepAlivePolicy(keep_alive_ns=5 * SEC, recycle_interval_ns=3 * SEC),
        )
        sim.run_process(agent.handle("html", 0))
        sim.run_process(agent.handle("html", sim.now))

        def staggered():
            # The first pass starts a fire-and-forget unplug; the second
            # pass while it is in flight gives the race site its window.
            yield Timeout(6 * SEC)
            yield from agent.recycle_pass()
            yield from agent.recycle_pass()

        sim.run_process(staggered())
        sim.run()
        # No HotplugError escaped (sim.run would have raised), the fault
        # was resolved by a recovery path, no slot stayed reserved, and
        # the block/zone/owner accounting all reconcile.
        assert vm.faults.unresolved() == []
        assert vm.datapath.dimm._reserved == set()
        vm.check_consistency()
