"""Unit tests for the DIMM hotplug baseline."""

import pytest

from repro.baselines.dimm import DimmHotplug
from repro.cluster.provision import VmSpec
from repro.errors import ConfigError, HotplugError
from repro.units import GIB, MIB, PAGES_PER_BLOCK


@pytest.fixture
def vm(fleet):
    return fleet.provision(VmSpec("dimm-vm", region_bytes=4 * GIB)).vm


@pytest.fixture
def dimm(sim, vm):
    return DimmHotplug(
        sim,
        vm.manager,
        vm.costs,
        irq_core=vm.irq_vcpu,
        vmm_core=vm.vmm_core,
        host_node=vm.node,
    )


class TestGeometry:
    def test_slots_cover_region(self, dimm):
        assert dimm.dimm_slots == 4
        assert dimm.blocks_per_dimm == 8

    def test_misaligned_dimm_size_rejected(self, sim, vm):
        with pytest.raises(ConfigError):
            DimmHotplug(
                sim, vm.manager, vm.costs, vm.irq_vcpu, vm.vmm_core, vm.node,
                dimm_bytes=100 * MIB,
            )

    def test_region_must_be_whole_dimms(self, sim, fleet):
        odd_vm = fleet.provision(
            VmSpec("odd", region_bytes=3 * GIB + 128 * MIB)
        ).vm
        with pytest.raises(ConfigError):
            DimmHotplug(
                sim, odd_vm.manager, odd_vm.costs, odd_vm.irq_vcpu,
                odd_vm.vmm_core, odd_vm.node,
            )


class TestPlug:
    def test_plug_brings_whole_dimms_online(self, sim, vm, dimm):
        sim.run_process(dimm.plug(2))
        assert dimm.plugged_dimms() == [0, 1]
        assert vm.manager.plugged_bytes == 2 * GIB

    def test_plug_beyond_slots_rejected(self, sim, vm, dimm):
        process = sim.spawn(dimm.plug(5))
        with pytest.raises(HotplugError):
            sim.run()

    def test_plug_charges_host(self, sim, vm, dimm):
        used_before = vm.node.used_bytes
        sim.run_process(dimm.plug(1))
        assert vm.node.used_bytes == used_before + 1 * GIB


class TestUnplug:
    def test_unplug_rounds_up_to_dimms(self, sim, vm, dimm):
        sim.run_process(dimm.plug(3))
        result = sim.run_process(dimm.unplug(1536 * MIB))
        assert result.requested_dimms == 2
        assert result.unplugged_dimms == 2
        assert result.unplugged_bytes == 2 * GIB

    def test_unplug_empty_guest_no_migrations(self, sim, vm, dimm):
        sim.run_process(dimm.plug(2))
        result = sim.run_process(dimm.unplug(1 * GIB))
        assert result.migrated_pages == 0
        vm.manager.check_consistency()

    def test_unplug_occupied_guest_migrates(self, sim, vm, dimm):
        sim.run_process(dimm.plug(4))
        mm = vm.new_process("hog")
        vm.fault_handler.fault_anon(mm, 10 * PAGES_PER_BLOCK)
        result = sim.run_process(dimm.unplug(1 * GIB))
        assert result.unplugged_dimms == 1
        assert result.migrated_pages > 0
        vm.manager.check_consistency()

    def test_unplug_aborts_atomically_without_headroom(self, sim, vm, dimm):
        sim.run_process(dimm.plug(4))
        mm = vm.new_process("hog")
        free = vm.manager.free_pages_total
        vm.fault_handler.fault_anon(mm, free - 2 * PAGES_PER_BLOCK)
        result = sim.run_process(dimm.unplug(1 * GIB))
        # Not enough headroom to drain a whole DIMM: everything aborts,
        # and the partial migrations are wasted work.
        assert result.unplugged_dimms == 0
        assert result.aborted_dimms > 0
        assert result.wasted_migrated_pages > 0
        vm.manager.check_consistency()

    def test_unplug_discharges_host(self, sim, vm, dimm):
        sim.run_process(dimm.plug(2))
        used_before = vm.node.used_bytes
        sim.run_process(dimm.unplug(1 * GIB))
        assert vm.node.used_bytes == used_before - 1 * GIB
