"""Unit tests for free page reporting."""

import pytest

from repro.baselines.fpr import REPORT_BATCH_PAGES, FreePageReporting
from repro.errors import ConfigError
from repro.sim.engine import Timeout
from repro.units import GIB, MIB, SEC, bytes_to_pages


@pytest.fixture
def fpr(sim, vanilla_vm):
    vanilla_vm.device.plug_at_boot(2 * GIB, vanilla_vm.manager.zone_movable)
    return FreePageReporting(
        sim,
        vanilla_vm.manager,
        vanilla_vm.costs,
        irq_core=vanilla_vm.irq_vcpu,
        vmm_core=vanilla_vm.vmm_core,
        host_node=vanilla_vm.node,
        report_interval_ns=1 * SEC,
    )


def run_for(sim, seconds):
    sim.run(until=sim.now + seconds * SEC)


class TestReporting:
    def test_free_memory_reported_after_one_tick(self, sim, vanilla_vm, fpr):
        used_before = vanilla_vm.node.used_bytes
        fpr.start()
        run_for(sim, 1.5)
        assert fpr.reported_bytes > 0
        assert vanilla_vm.node.used_bytes < used_before
        fpr.stop()
        run_for(sim, 2)

    def test_watermark_respected(self, sim, vanilla_vm, fpr):
        fpr.start()
        run_for(sim, 1.5)
        free = sum(
            z.free_pages for z in vanilla_vm.manager.zonelist(True)
        )
        # Reported never exceeds free-minus-watermark.
        assert fpr.reported_pages <= free - fpr.watermark_pages
        fpr.stop()
        run_for(sim, 2)

    def test_reports_in_whole_batches(self, sim, vanilla_vm, fpr):
        fpr.start()
        run_for(sim, 1.5)
        assert fpr.reported_pages % REPORT_BATCH_PAGES == 0
        fpr.stop()
        run_for(sim, 2)

    def test_freed_memory_shows_up_next_tick(self, sim, vanilla_vm, fpr):
        mm = vanilla_vm.new_process("hog")
        vanilla_vm.fault_handler.fault_anon(mm, bytes_to_pages(1 * GIB))
        fpr.start()
        run_for(sim, 1.5)
        before = fpr.reported_bytes
        vanilla_vm.exit_process(mm)
        run_for(sim, 1.5)
        assert fpr.reported_bytes >= before + int(0.9 * GIB)
        fpr.stop()
        run_for(sim, 2)

    def test_reallocation_recharges_host(self, sim, vanilla_vm, fpr):
        fpr.start()
        run_for(sim, 1.5)
        used_low = vanilla_vm.node.used_bytes
        mm = vanilla_vm.new_process("hog")
        vanilla_vm.fault_handler.fault_anon(mm, bytes_to_pages(1 * GIB))
        run_for(sim, 1.5)
        assert vanilla_vm.node.used_bytes >= used_low + int(0.9 * GIB)
        fpr.stop()
        run_for(sim, 2)

    def test_time_reported_reached(self, sim, vanilla_vm, fpr):
        fpr.start()
        run_for(sim, 3.5)
        assert fpr.time_reported_reached(1) is not None
        assert fpr.time_reported_reached(10**15) is None
        fpr.stop()
        run_for(sim, 2)


class TestConfig:
    def test_invalid_interval_rejected(self, sim, vanilla_vm):
        with pytest.raises(ConfigError):
            FreePageReporting(
                sim,
                vanilla_vm.manager,
                vanilla_vm.costs,
                vanilla_vm.irq_vcpu,
                vanilla_vm.vmm_core,
                vanilla_vm.node,
                report_interval_ns=0,
            )

    def test_double_start_rejected(self, sim, vanilla_vm, fpr):
        fpr.start()
        with pytest.raises(ConfigError):
            fpr.start()
        fpr.stop()
        run_for(sim, 2)
