"""Unit tests for the virtio-balloon baseline."""

import pytest

from repro.baselines.balloon import VirtioBalloon
from repro.errors import ConfigError
from repro.units import GIB, MIB, bytes_to_pages


@pytest.fixture
def balloon(sim, vanilla_vm):
    vanilla_vm.device.plug_at_boot(2 * GIB, vanilla_vm.manager.zone_movable)
    return VirtioBalloon(
        sim,
        vanilla_vm.manager,
        vanilla_vm.costs,
        irq_core=vanilla_vm.irq_vcpu,
        vmm_core=vanilla_vm.vmm_core,
        host_node=vanilla_vm.node,
    )


class TestInflate:
    def test_inflate_takes_free_pages(self, sim, vanilla_vm, balloon):
        result = sim.run_process(balloon.inflate(512 * MIB))
        assert result.fully_reclaimed
        assert balloon.inflated_pages == bytes_to_pages(512 * MIB)

    def test_inflate_releases_host_memory(self, sim, vanilla_vm, balloon):
        used_before = vanilla_vm.node.used_bytes
        sim.run_process(balloon.inflate(512 * MIB))
        assert vanilla_vm.node.used_bytes == used_before - 512 * MIB

    def test_inflate_latency_scales_with_pages(self, sim, vanilla_vm, balloon):
        small = sim.run_process(balloon.inflate(128 * MIB))
        large = sim.run_process(balloon.inflate(512 * MIB))
        assert large.latency_ns > 2 * small.latency_ns

    def test_inflate_respects_reserve(self, sim, vanilla_vm, balloon):
        free = sum(
            z.free_pages for z in vanilla_vm.manager.zonelist(True)
        )
        result = sim.run_process(balloon.inflate((free + 10**6) * 4096))
        assert result.reclaimed_pages <= free - balloon.reserve_pages + 1
        remaining = sum(
            z.free_pages for z in vanilla_vm.manager.zonelist(True)
        )
        assert remaining >= balloon.reserve_pages

    def test_inflate_stalls_and_retries_when_memory_busy(self, sim, vanilla_vm, balloon):
        mm = vanilla_vm.new_process("hog")
        free = sum(z.free_pages for z in vanilla_vm.manager.zonelist(True))
        vanilla_vm.fault_handler.fault_anon(mm, free - 1000)
        result = sim.run_process(balloon.inflate(512 * MIB))
        assert not result.fully_reclaimed
        assert result.retries == balloon.max_retries
        assert result.latency_ns >= (
            balloon.max_retries * vanilla_vm.costs.balloon_retry_interval_ns
        )

    def test_inflation_consumes_cpu_on_irq_core(self, sim, vanilla_vm, balloon):
        sim.run_process(balloon.inflate(256 * MIB))
        assert vanilla_vm.irq_vcpu.busy_ns_for("virtio-balloon") > 0


class TestDeflate:
    def test_deflate_returns_pages(self, sim, vanilla_vm, balloon):
        sim.run_process(balloon.inflate(512 * MIB))
        used_before = vanilla_vm.node.used_bytes
        result = sim.run_process(balloon.deflate(256 * MIB))
        assert result.reclaimed_pages == bytes_to_pages(256 * MIB)
        assert balloon.inflated_pages == bytes_to_pages(256 * MIB)
        assert vanilla_vm.node.used_bytes == used_before + 256 * MIB

    def test_deflate_clamped_to_balloon_size(self, sim, vanilla_vm, balloon):
        sim.run_process(balloon.inflate(128 * MIB))
        result = sim.run_process(balloon.deflate(1 * GIB))
        assert result.reclaimed_pages == bytes_to_pages(128 * MIB)
        assert balloon.inflated_pages == 0

    def test_deflate_empty_balloon_is_noop(self, sim, balloon):
        result = sim.run_process(balloon.deflate(128 * MIB))
        assert result.reclaimed_pages == 0


class TestConfig:
    def test_negative_reserve_rejected(self, sim, vanilla_vm):
        with pytest.raises(ConfigError):
            VirtioBalloon(
                sim,
                vanilla_vm.manager,
                vanilla_vm.costs,
                vanilla_vm.irq_vcpu,
                vanilla_vm.vmm_core,
                vanilla_vm.node,
                reserve_pages=-1,
            )

    def test_consistency_after_cycles(self, sim, vanilla_vm, balloon):
        for _ in range(3):
            sim.run_process(balloon.inflate(256 * MIB))
            sim.run_process(balloon.deflate(256 * MIB))
        vanilla_vm.manager.check_consistency()
        assert balloon.inflated_pages == 0
