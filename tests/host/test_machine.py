"""Unit tests for the host machine model."""

import pytest

from repro.errors import ConfigError, OutOfMemory
from repro.host.machine import HostMachine, NumaNode
from repro.units import GIB


class TestNumaNode:
    def test_invalid_configuration_rejected(self, sim):
        with pytest.raises(ConfigError):
            NumaNode(sim, 0, cores=0, memory_bytes=GIB)
        with pytest.raises(ConfigError):
            NumaNode(sim, 0, cores=4, memory_bytes=0)

    def test_charge_and_discharge(self, sim):
        node = NumaNode(sim, 0, cores=2, memory_bytes=4 * GIB)
        node.charge(GIB)
        assert node.used_bytes == GIB
        assert node.free_bytes == 3 * GIB
        node.discharge(GIB)
        assert node.used_bytes == 0

    def test_overcharge_raises_oom(self, sim):
        node = NumaNode(sim, 0, cores=2, memory_bytes=GIB)
        with pytest.raises(OutOfMemory):
            node.charge(2 * GIB)

    def test_failed_charge_leaves_state_untouched(self, sim):
        node = NumaNode(sim, 0, cores=2, memory_bytes=GIB)
        node.charge(GIB // 2)
        with pytest.raises(OutOfMemory):
            node.charge(GIB)
        assert node.used_bytes == GIB // 2

    def test_over_discharge_rejected(self, sim):
        node = NumaNode(sim, 0, cores=2, memory_bytes=GIB)
        with pytest.raises(ConfigError):
            node.discharge(1)

    def test_negative_charge_rejected(self, sim):
        node = NumaNode(sim, 0, cores=2, memory_bytes=GIB)
        with pytest.raises(ConfigError):
            node.charge(-1)

    def test_cores_are_named_by_node(self, sim):
        node = NumaNode(sim, 1, cores=2, memory_bytes=GIB)
        assert [c.name for c in node.cores] == ["node1-cpu0", "node1-cpu1"]


class TestHostMachine:
    def test_paper_defaults(self, host):
        assert len(host.nodes) == 2
        assert len(host.node(0).cores) == 10
        assert host.node(0).memory_bytes == 128 * GIB
        assert host.total_memory_bytes == 256 * GIB

    def test_total_used_aggregates_nodes(self, host):
        host.node(0).charge(GIB)
        host.node(1).charge(2 * GIB)
        assert host.total_used_bytes == 3 * GIB

    def test_core_accounting_table_covers_all_cores(self, sim, host):
        host.node(0).cores[0].submit(1000, "x")
        sim.run()
        table = host.core_accounting()
        assert len(table) == 20
        assert table["node0-cpu0"] == {"x": 1000}
