"""Unit tests for cpuacct-style accounting groups."""

from repro.host.cgroup import CpuAccountingGroup
from repro.sim.cpu import CpuCore
from repro.units import MS


def test_usage_sums_matching_prefixes(sim):
    core = CpuCore(sim)
    core.submit(5 * MS, "virtio-mem")
    core.submit(3 * MS, "fn:cnn")
    sim.run()
    group = CpuAccountingGroup([core], ["virtio-mem"])
    assert group.usage_ns() == 5 * MS


def test_usage_across_cores(sim):
    cores = [CpuCore(sim, name=f"c{i}") for i in range(3)]
    for core in cores:
        core.submit(2 * MS, "virtio-mem")
    sim.run()
    group = CpuAccountingGroup(cores, ["virtio-mem"])
    assert group.usage_ns() == 6 * MS


def test_multiple_prefixes(sim):
    core = CpuCore(sim)
    core.submit(1 * MS, "a:1")
    core.submit(2 * MS, "b:1")
    core.submit(4 * MS, "c:1")
    sim.run()
    group = CpuAccountingGroup([core], ["a:", "c:"])
    assert group.usage_ns() == 5 * MS


def test_samples_accumulate(sim):
    core = CpuCore(sim)
    group = CpuAccountingGroup([core], [""])
    group.sample(sim.now)
    core.submit(1 * MS, "x")
    sim.run()
    group.sample(sim.now)
    assert group.samples == [(0, 0), (1 * MS, 1 * MS)]


def test_empty_group_reports_zero(sim):
    group = CpuAccountingGroup([], ["x"])
    assert group.usage_ns() == 0
