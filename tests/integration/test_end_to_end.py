"""Full-stack end-to-end invariants across the whole system."""

import pytest

from repro.experiments.serverless import (
    FunctionLoad,
    ServerlessScenario,
    run_scenario,
)
from repro.faas.policy import DeploymentMode
from repro.units import MEMORY_BLOCK_SIZE, MIB


@pytest.fixture(scope="module")
def hotmem_run():
    return run_scenario(
        ServerlessScenario(
            mode=DeploymentMode.HOTMEM,
            loads=(FunctionLoad.for_function("cnn", max_instances=8),),
            duration_s=60,
            keep_alive_s=15,
            recycle_interval_s=5,
            drain_s=20,
        )
    )


@pytest.fixture(scope="module")
def vanilla_run():
    return run_scenario(
        ServerlessScenario(
            mode=DeploymentMode.VANILLA,
            loads=(FunctionLoad.for_function("cnn", max_instances=8),),
            duration_s=60,
            keep_alive_s=15,
            recycle_interval_s=5,
            drain_s=20,
        )
    )


class TestMemoryConservation:
    def test_plug_unplug_balance(self, hotmem_run):
        plugged = sum(
            e.completed_bytes for e in hotmem_run.resize_events if e.kind == "plug"
        )
        unplugged = sum(
            e.completed_bytes
            for e in hotmem_run.resize_events
            if e.kind == "unplug"
        )
        assert plugged >= unplugged
        assert plugged % MEMORY_BLOCK_SIZE == 0
        assert unplugged % MEMORY_BLOCK_SIZE == 0

    def test_resize_events_never_overlap(self, hotmem_run):
        events = sorted(hotmem_run.resize_events, key=lambda e: e.start_ns)
        for earlier, later in zip(events, events[1:]):
            assert later.start_ns >= earlier.end_ns


class TestScalingLifecycle:
    def test_cold_starts_bounded_by_traffic(self, hotmem_run):
        assert 0 < hotmem_run.cold_starts["cnn"] <= len(hotmem_run.records)

    def test_every_record_well_formed(self, hotmem_run):
        for record in hotmem_run.records:
            assert record.arrival_ns <= record.start_ns <= record.end_ns
            assert record.function == "cnn"

    def test_shrink_events_follow_keep_alive(self, hotmem_run):
        scenario = hotmem_run.scenario
        for event in hotmem_run.shrink_events:
            assert event.time_ns >= scenario.keep_alive_s * 10**9
            assert event.evicted > 0


class TestMechanismContrast:
    def test_identical_workload_different_reclaim_cost(self, hotmem_run, vanilla_run):
        assert len(hotmem_run.records) == len(vanilla_run.records)
        hotmem_migrated = sum(
            e.migrated_pages for e in hotmem_run.resize_events
        )
        vanilla_migrated = sum(
            e.migrated_pages for e in vanilla_run.resize_events
        )
        assert hotmem_migrated == 0
        assert vanilla_migrated > 0

    def test_unplug_latency_gap(self, hotmem_run, vanilla_run):
        hotmem_ms = hotmem_run.unplug_latencies_ms()
        vanilla_ms = vanilla_run.unplug_latencies_ms()
        assert hotmem_ms and vanilla_ms
        assert max(hotmem_ms) < min(vanilla_ms)

    def test_virtio_cpu_gap(self, hotmem_run, vanilla_run):
        assert vanilla_run.virtio_cpu_ns > 2 * hotmem_run.virtio_cpu_ns
