"""Integration tests for the A1-A4 ablations."""

import pytest

from repro.experiments import ablations
from repro.units import GIB, MIB


class TestPlacementAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.run_placement_ablation(
            total_bytes=2304 * MIB, reclaim_bytes=768 * MIB
        )

    def test_sequential_is_cheapest(self, result):
        assert result.values["sequential"] < result.values["scatter"]
        assert result.values["sequential"] < result.values["random"]

    def test_scatter_and_random_comparable(self, result):
        ratio = result.values["scatter"] / result.values["random"]
        assert 0.5 < ratio < 2.0


class TestZeroingAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.run_zeroing_ablation(
            total_bytes=1536 * MIB, reclaim_bytes=384 * MIB
        )

    def test_init_on_free_penalizes_vanilla_plug(self, result):
        assert (
            result.values["init_on_free/vanilla/plug"]
            > 1.5 * result.values["none/vanilla/plug"]
        )

    def test_hotmem_plug_immune_to_zeroing_mode(self, result):
        for mode in ("init_on_alloc", "init_on_free", "none"):
            assert result.values[f"{mode}/hotmem/plug"] == pytest.approx(
                result.values["none/hotmem/plug"], rel=0.01
            )

    def test_init_on_alloc_penalizes_vanilla_unplug(self, result):
        assert (
            result.values["init_on_alloc/vanilla/unplug"]
            > result.values["none/vanilla/unplug"]
        )

    def test_hotmem_unplug_fast_in_every_mode(self, result):
        for mode in ("init_on_alloc", "init_on_free", "none"):
            assert (
                result.values[f"{mode}/hotmem/unplug"] * 5
                < result.values[f"{mode}/vanilla/unplug"]
            )


class TestSelectionAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.run_selection_ablation(
            total_bytes=2304 * MIB, reclaim_bytes=768 * MIB
        )

    def test_selection_cannot_fix_scatter_interleaving(self, result):
        """The A3 takeaway: with uniform interleaving no selection policy
        helps — the fix must be allocation-side (HotMem's thesis)."""
        linear = result.values["scatter/linear"]
        emptiest = result.values["scatter/emptiest_first"]
        assert emptiest == pytest.approx(linear, rel=0.25)

    def test_emptiest_first_wins_under_sequential_placement(self, result):
        linear = result.values["sequential/linear"]
        emptiest = result.values["sequential/emptiest_first"]
        assert emptiest <= linear


class TestConcurrencyAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.run_concurrency_ablation(
            concurrencies=(4, 8), duration_s=60
        )

    def test_throughput_stays_high_across_n(self, result):
        values = [result.values[str(n)] for n in (4, 8)]
        assert min(values) > 0
        assert max(values) / min(values) < 3.0

    def test_no_failures_at_any_n(self, result):
        for row in result.rows():
            assert row[3] == 0  # oom_failures column
