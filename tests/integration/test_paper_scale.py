"""Paper-scale smoke runs (excluded by default; ``pytest -m slow``).

These execute the full-size configurations (64 GiB guests, 300 s+
horizons) and re-assert the headline claims at the paper's own scale.
"""

import pytest

from repro.experiments import fig5_unplug_latency as fig5
from repro.experiments import fig6_usage_sweep as fig6
from repro.experiments import fig7_cpu_usage as fig7
from repro.experiments import fig10_interference as fig10

pytestmark = pytest.mark.slow


def test_fig5_paper_scale():
    result = fig5.run(fig5.Fig5Config.paper_scale())
    for size in result.config.reclaim_sizes:
        assert result.speedup(size) >= 10.0


def test_fig6_paper_scale_64gib():
    result = fig6.run(fig6.Fig6Config.paper_scale())
    assert result.vanilla_trend_ratio() > 3.0
    assert result.hotmem_spread_ratio() < 1.2


def test_fig7_paper_scale_32_steps():
    result = fig7.run(fig7.Fig7Config.paper_scale())
    assert result.cpu_ratio() > 10.0
    assert len(result.cpu_series["vanilla"]) == 31


def test_fig10_paper_scale_two_shrink_waves():
    result = fig10.run(fig10.Fig10Config.paper_scale())
    # The paper sees two shrink events (~125 s and ~225 s).
    assert len(result.shrink_times_s["vanilla"]) >= 2
    assert result.window_mean["vanilla"] > result.window_mean["hotmem"]
