"""Integration tests: the four-interface comparison (A5)."""

import pytest

from repro.experiments import baselines_comparison as bc
from repro.units import GIB, MIB


class TestHappyPath:
    @pytest.fixture(scope="class")
    def result(self):
        return bc.run(
            bc.BaselinesConfig(
                total_bytes=4 * GIB,
                partition_bytes=512 * MIB,
                reclaim_bytes=1 * GIB,
            )
        )

    def test_hotmem_fastest(self, result):
        for other in ("virtio-mem", "balloon", "dimm"):
            assert result.speedup_over(other) > 3.0

    def test_balloon_beats_migrating_hotplug_when_memory_is_free(self, result):
        assert (
            result.by_mechanism["balloon"].latency_ms
            < result.by_mechanism["virtio-mem"].latency_ms
        )

    def test_everyone_reclaims_the_request(self, result):
        for name in ("hotmem", "virtio-mem", "balloon"):
            assert result.by_mechanism[name].reclaimed_fraction == 1.0

    def test_only_hotplug_migrates(self, result):
        assert result.by_mechanism["hotmem"].migrated_pages == 0
        assert result.by_mechanism["balloon"].migrated_pages == 0
        assert result.by_mechanism["virtio-mem"].migrated_pages > 0
        assert result.by_mechanism["dimm"].migrated_pages > 0

    def test_dimm_over_reclaims(self, result):
        row = result.by_mechanism["dimm"]
        assert row.reclaimed_bytes >= 1 * GIB
        assert row.reclaimed_bytes % (1 * GIB) == 0

    def test_fpr_latency_is_about_one_reporting_tick(self, result):
        row = result.by_mechanism["fpr"]
        # Default tick is 2 s; the reconciliation lands within ~one tick.
        assert 100 < row.latency_ms < 3000
        assert row.migrated_pages == 0

    def test_fpr_slower_than_hotmem_but_reclaims_most(self, result):
        row = result.by_mechanism["fpr"]
        assert row.latency_ms > result.by_mechanism["hotmem"].latency_ms
        assert row.reclaimed_fraction > 0.5


class TestPressure:
    @pytest.fixture(scope="class")
    def result(self):
        return bc.run(bc.BaselinesConfig.pressure())

    def test_balloon_stalls_with_retries(self, result):
        row = result.by_mechanism["balloon"]
        assert row.balloon_retries > 0
        assert row.reclaimed_fraction < 1.0

    def test_hotmem_partial_but_instant(self, result):
        row = result.by_mechanism["hotmem"]
        assert row.reclaimed_bytes == 512 * MIB  # exactly what was freed
        assert row.latency_ms < 100
        assert row.migrated_pages == 0

    def test_dimm_wastes_migrations_on_aborts(self, result):
        assert result.by_mechanism["dimm"].wasted_migrated_pages > 0

    def test_hotmem_latency_unaffected_by_pressure(self, result):
        relaxed = bc.run(
            bc.BaselinesConfig(
                total_bytes=6 * GIB,
                partition_bytes=512 * MIB,
                reclaim_bytes=512 * MIB,
            )
        )
        pressured = result.by_mechanism["hotmem"].latency_ms
        assert pressured == pytest.approx(
            relaxed.by_mechanism["hotmem"].latency_ms, rel=0.5
        )
