"""Integration tests for the host-stranding motivation experiment."""

import pytest

from repro.experiments import stranding
from repro.faas.policy import DeploymentMode


@pytest.fixture(scope="module")
def result():
    return stranding.run(
        stranding.StrandingConfig(
            functions=("cnn", "html"), duration_s=80, keep_alive_s=15
        )
    )


def test_overprovisioned_memory_is_constant(result):
    values = [v for _, v in result.series["overprovisioned"]]
    assert max(values) == min(values)


def test_elastic_modes_release_memory(result):
    for mode in ("vanilla", "hotmem"):
        assert result.savings_vs_overprovisioned(mode) > 0.3
        # After the bursts die down, commitment falls well below the peak.
        assert result.tail_gib[mode] < 0.7 * result.peak_gib[mode]


def test_elastic_modes_track_each_other(result):
    assert result.avg_gib["hotmem"] == pytest.approx(
        result.avg_gib["vanilla"], rel=0.25
    )


def test_samples_cover_the_run(result):
    config = result.config
    for mode in ("overprovisioned", "vanilla", "hotmem"):
        assert len(result.series[mode]) >= config.duration_s - 1
