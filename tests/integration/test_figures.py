"""Integration tests: every figure's qualitative shape must hold.

These run scaled-down versions of the paper's experiments and assert the
*claims*, not the absolute numbers (see EXPERIMENTS.md):

* Fig 5 — HotMem reclaims an order of magnitude faster at every size,
  and latency grows with the request size for both mechanisms;
* Fig 6 — vanilla latency rises with guest memory usage, HotMem is flat;
* Fig 7 — vanilla burns far more unplug-path CPU and takes longer;
* Fig 8 — HotMem's trace-driven reclaim throughput is a multiple of
  vanilla's;
* Fig 9 — elastic P99 is comparable to the over-provisioned baseline and
  HotMem ≈ vanilla;
* Fig 10 — vanilla shows a shrink-window latency spike, HotMem doesn't.
"""

import pytest

from repro.experiments import fig5_unplug_latency as fig5
from repro.experiments import fig6_usage_sweep as fig6
from repro.experiments import fig7_cpu_usage as fig7
from repro.experiments import fig8_reclaim_throughput as fig8
from repro.experiments import fig9_p99_latency as fig9
from repro.experiments import fig10_interference as fig10
from repro.experiments import table1
from repro.units import GIB, MIB


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5.run(
            fig5.Fig5Config(
                reclaim_sizes=(384 * MIB, 768 * MIB, 1536 * MIB),
                total_bytes=3 * GIB,
                trials=1,
            )
        )

    def test_hotmem_order_of_magnitude_faster_at_every_size(self, result):
        for size in result.config.reclaim_sizes:
            assert result.speedup(size) >= 10.0

    def test_latency_grows_with_size(self, result):
        sizes = sorted(result.config.reclaim_sizes)
        for mode in ("vanilla", "hotmem"):
            values = [result.latency_ms[size][mode] for size in sizes]
            assert values == sorted(values)

    def test_hotmem_never_migrates(self, result):
        for size in result.config.reclaim_sizes:
            assert result.migrated_pages[size]["hotmem"] == 0
            assert result.migrated_pages[size]["vanilla"] > 0


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.run(
            fig6.Fig6Config(
                total_bytes=8 * GIB,
                reclaim_bytes=1 * GIB,
                partition_bytes=1 * GIB,
                usage_fractions=(0.2, 0.5, 0.8),
            )
        )

    def test_vanilla_latency_rises_with_usage(self, result):
        assert result.vanilla_trend_ratio() > 2.0

    def test_hotmem_latency_flat(self, result):
        assert result.hotmem_spread_ratio() < 1.2

    def test_hotmem_beats_vanilla_at_every_usage(self, result):
        for fraction in result.config.usage_fractions:
            point = result.latency_ms[fraction]
            assert point["hotmem"] * 5 < point["vanilla"]


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7.run(
            fig7.Fig7Config(total_bytes=4 * GIB, step_bytes=512 * MIB, steps=6)
        )

    def test_vanilla_burns_more_cpu(self, result):
        assert result.cpu_ratio() > 10.0

    def test_vanilla_takes_longer_overall(self, result):
        assert result.duration_s["vanilla"] > result.duration_s["hotmem"]

    def test_cumulative_series_monotone(self, result):
        for mode in ("vanilla", "hotmem"):
            cpu = [v for _, v in result.cpu_series[mode]]
            assert cpu == sorted(cpu)
            assert len(cpu) == result.config.steps


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8.run(
            fig8.Fig8Config(
                functions=("cnn", "html"), duration_s=60, keep_alive_s=15,
                recycle_interval_s=5,
            )
        )

    def test_hotmem_throughput_multiple_of_vanilla(self, result):
        for fn in result.config.functions:
            assert result.speedup(fn) >= 3.0

    def test_both_reclaim_same_amount(self, result):
        for fn in result.config.functions:
            vanilla = result.reclaimed_mib[fn]["vanilla"]
            hotmem = result.reclaimed_mib[fn]["hotmem"]
            assert vanilla > 0
            assert hotmem == pytest.approx(vanilla, rel=0.3)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9.run(
            fig9.Fig9Config(
                functions=("cnn", "bert"), duration_s=80, keep_alive_s=20,
                recycle_interval_s=10,
            )
        )

    def test_hotmem_matches_vanilla(self, result):
        for fn in result.config.functions:
            hotmem = result.p99[fn]["hotmem"]
            vanilla = result.p99[fn]["vanilla"]
            assert hotmem == pytest.approx(vanilla, rel=0.15)

    def test_elasticity_overhead_small(self, result):
        for fn in result.config.functions:
            for mode in ("hotmem", "vanilla"):
                assert result.elasticity_overhead(fn, mode) < 1.5

    def test_plug_latency_tens_of_ms(self, result):
        # The paper reports ≈30 ms plugs for Bert (640 MiB).
        assert 5 < result.plug_ms["bert"]["hotmem"] < 150


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10.run(fig10.Fig10Config())

    def test_shrink_events_happen(self, result):
        for mode in ("vanilla", "hotmem"):
            assert result.shrink_times_s[mode]

    def test_vanilla_spikes_hotmem_does_not(self, result):
        assert result.window_mean["vanilla"] > 1.3
        assert result.window_mean["hotmem"] < 1.2
        assert result.interference_gap() > 1.2

    def test_baselines_comparable(self, result):
        vanilla = result.baseline_ms["vanilla"]
        hotmem = result.baseline_ms["hotmem"]
        assert hotmem == pytest.approx(vanilla, rel=0.1)


class TestTable1:
    def test_rows_match_paper(self):
        rows = table1.rows()
        assert [row[0] for row in rows] == ["Cnn", "Bert", "Bfs", "HTML"]
        assert [row[2] for row in rows] == [0.5, 1.0, 0.5, 0.2]
        assert [row[3] for row in rows] == [384, 640, 384, 384]

    def test_render_mentions_every_function(self):
        text = table1.render()
        for name in ("Cnn", "Bert", "HTML"):
            assert name in text
