"""Property-based full-stack fuzzing of a VM.

Random interleavings of resize requests and guest workload activity must
always leave the VM consistent: device/guest block-state agreement,
zone counters, owner mirrors, host memory accounting, and — for HotMem —
partition refcounts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.provision import Fleet, VmSpec
from repro.errors import NoFreePartition, OutOfMemory
from repro.faas.policy import DeploymentMode
from repro.sim import Simulator
from repro.units import MIB

SLOT = 384 * MIB
SLOTS = 6

operations = st.lists(
    st.one_of(
        st.tuples(st.just("plug"), st.integers(1, 3)),
        st.tuples(st.just("unplug"), st.integers(1, 4)),
        st.tuples(st.just("spawn"), st.integers(0, 5)),
        st.tuples(st.just("exit"), st.integers(0, 5)),
        st.tuples(st.just("fault"), st.integers(0, 5)),
    ),
    min_size=1,
    max_size=40,
)


def drive(mode: str, ops) -> None:
    sim = Simulator()
    fleet = Fleet(sim)
    if mode == "hotmem":
        spec = VmSpec(
            mode,
            mode=DeploymentMode.HOTMEM,
            partition_bytes=SLOT,
            concurrency=SLOTS,
        )
    else:
        spec = VmSpec(mode, region_bytes=SLOTS * SLOT)
    vm = fleet.provision(spec).vm
    slots = {i: None for i in range(6)}
    for op, arg in ops:
        if op == "plug":
            want = arg * SLOT
            free_region = SLOTS * SLOT - vm.device.plugged_bytes
            if mode == "hotmem":
                # HotMem plugs may not exceed empty-partition capacity.
                capacity = sum(
                    p.missing_blocks
                    for p in vm.hotmem.partitions_needing_population()
                ) * 128 * MIB
                want = min(want, capacity)
            want = min(want, free_region)
            if want > 0:
                vm.request_plug(want)
                sim.run()
        elif op == "unplug":
            vm.request_unplug(arg * SLOT)
            sim.run()
        elif op == "spawn":
            if slots[arg] is None:
                mm = vm.new_process(f"p{arg}")
                if mode == "hotmem":
                    try:
                        vm.hotmem.try_attach(mm)
                    except NoFreePartition:
                        continue
                slots[arg] = mm
        elif op == "exit":
            if slots[arg] is not None:
                vm.exit_process(slots[arg])
                slots[arg] = None
        elif op == "fault":
            mm = slots[arg]
            if mm is not None and mm.alive:
                try:
                    vm.fault_handler.fault_anon(mm, 20_000)
                except OutOfMemory:
                    if mm.hotmem_partition is not None or mm.total_pages:
                        vm.exit_process(mm)
                    slots[arg] = None
        # Invariants must hold after every operation.
        vm.check_consistency()
        assert 0 <= vm.device.plugged_bytes <= SLOTS * SLOT
    # Drain and final check.
    sim.run()
    vm.check_consistency()
    if mode == "hotmem":
        linked = sum(1 for mm in slots.values() if mm is not None)
        assigned = sum(
            1 for p in vm.hotmem.partitions if p.partition_users > 0
        )
        assert assigned == linked


@settings(max_examples=40, deadline=None)
@given(ops=operations)
def test_vanilla_vm_random_operations(ops):
    drive("vanilla", ops)


@settings(max_examples=40, deadline=None)
@given(ops=operations)
def test_hotmem_vm_random_operations(ops):
    drive("hotmem", ops)
