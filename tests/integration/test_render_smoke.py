"""Render-method smoke tests for the study experiments.

The figure results' renders are covered by the benchmarks; these cover
the remaining study results (M1/E1/P1/A-tables) so every user-facing
table is exercised by the default suite.
"""

import pytest

from repro.experiments import stranding, tracking
from repro.experiments.ablations import AblationResult


def test_ablation_result_render_roundtrip():
    result = AblationResult(
        title="T", headers=("a", "b"), rows_data=[["x", 1.5], ["y", 2.0]]
    )
    text = result.render()
    assert "T" in text and "1.50" in text and "y" in text
    assert result.rows() == [["x", 1.5], ["y", 2.0]]


def test_stranding_render(monkeypatch):
    result = stranding.StrandingResult(stranding.StrandingConfig())
    for mode in ("overprovisioned", "vanilla", "hotmem"):
        result.avg_gib[mode] = {"overprovisioned": 40.0, "vanilla": 12.0,
                                "hotmem": 11.0}[mode]
        result.peak_gib[mode] = 42.0
        result.tail_gib[mode] = 6.0
    text = result.render()
    assert "M1" in text and "overprovisioned" in text
    assert result.savings_vs_overprovisioned("hotmem") == pytest.approx(0.725)


def test_tracking_render():
    result = tracking.TrackingResult(tracking.TrackingConfig())
    for mode in ("hotmem", "vanilla", "overprovisioned"):
        result.avg_plugged_gib[mode] = 2.0
        result.avg_required_gib[mode] = 2.0
        result.avg_overhead_gib[mode] = 0.0
        result.tracking_ratio[mode] = 1.0
    text = result.render()
    assert "E1" in text and "tracking_ratio" in text
