"""Integration tests for the diurnal tracking experiment (E1)."""

import pytest

from repro.experiments import tracking


@pytest.fixture(scope="module")
def result():
    return tracking.run(
        tracking.TrackingConfig(duration_s=300, period_s=100.0)
    )


def test_elastic_modes_track_demand(result):
    for mode in ("hotmem", "vanilla"):
        assert result.tracking_ratio[mode] == pytest.approx(1.0, abs=0.35)
        assert result.avg_overhead_gib[mode] < 1.0


def test_overprovisioned_holds_maximum(result):
    series = result.plugged["overprovisioned"]
    values = {v for _, v in series}
    assert len(values) == 1  # never resized
    assert result.tracking_ratio["overprovisioned"] > 2.0


def test_plugged_memory_actually_cycles(result):
    for mode in ("hotmem", "vanilla"):
        values = [v for _, v in result.plugged[mode]]
        assert max(values) > 2 * min(values)


def test_required_series_cycles_with_load(result):
    values = [v for _, v in result.required["hotmem"]]
    assert max(values) > 2 * min(values)
