"""Integration test: fig2_interleaving end-to-end under the memory-state
sanitizer.

Runs the experiment that exercises the widest mm surface (four placement
policies, HotMem partitions, an instance exit, migration) with a
sanitizer attached to every guest memory manager, proving a whole
experiment survives continuous invariant sweeps."""

from repro.analysis import sanitizer as san
from repro.experiments import fig2_interleaving as fig2


def test_fig2_runs_clean_under_sanitizer():
    prior = san.uninstall()  # suspend any ambient --sanitize install
    try:
        with san.sanitized(san.SanitizerConfig(every_n_events=32)) as state:
            result = fig2.run()
            # The sanitizer actually instrumented the experiment's guests
            # and swept the registry many times without a violation.
            assert state.sanitizers
            assert sum(s.checks_run for s in state.sanitizers) > 100
        # The experiment's own results are unchanged by instrumentation.
        assert result.reports["hotmem"].max_owners_per_block == 1
        assert result.migration_pages["hotmem"] == 0
        assert result.migration_pages["scatter"] > 10_000
    finally:
        san.uninstall()
        if prior is not None:
            san.install(prior)
