"""Integration tests for the spare-slot policy experiment (P1)."""

import pytest

from repro.experiments import policy_tradeoff as pt


@pytest.fixture(scope="module")
def result():
    return pt.run(pt.PolicyConfig(duration_s=120, spare_slots=(0, 2)))


def test_memory_held_rises_with_spares(result):
    assert (
        result.avg_plugged_gib["spare=2"] > result.avg_plugged_gib["spare=0"]
    )


def test_overprovisioned_holds_the_most(result):
    for label in ("spare=0", "spare=2"):
        assert (
            result.avg_plugged_gib["overprovisioned"]
            > result.avg_plugged_gib[label]
        )


def test_spares_barely_matter_with_fast_plugs(result):
    # The HotMem finding: cheap plugs make buffers pointless (<5% effect).
    assert abs(result.fast_plug_benefit()) < 0.05 * result.cold_mean_ms["spare=0"]


def test_spares_matter_with_slow_plugs(result):
    assert result.slow_plug_benefit() > 3 * abs(result.fast_plug_benefit())


def test_every_variant_served_the_same_load_shape(result):
    counts = [result.cold_count[v] for v in result.variants()]
    assert max(counts) - min(counts) <= 8
