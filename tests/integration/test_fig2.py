"""Integration test: Figure 2 quantified (interleaving after an exit)."""

import pytest

from repro.experiments import fig2_interleaving as fig2


@pytest.fixture(scope="module")
def result():
    return fig2.run()


def test_scatter_interleaves_everything(result):
    report = result.reports["scatter"]
    assert report.fully_free_blocks == 0
    # Every occupied block holds most of the surviving instances.
    assert report.mean_owners_per_block >= result.config.instances - 2


def test_hotmem_isolates_every_instance(result):
    report = result.reports["hotmem"]
    assert report.max_owners_per_block == 1


def test_hotmem_frees_the_exited_partition(result):
    slot_blocks = result.config.slot_bytes // (128 * 1024 * 1024)
    assert result.reports["hotmem"].fully_free_blocks >= slot_blocks


def test_migration_cost_only_for_interleaved_allocators(result):
    assert result.migration_pages["hotmem"] == 0
    assert result.migration_pages["scatter"] > 10_000
    assert result.migration_pages["random"] > 10_000


def test_sequential_is_the_lucky_case(result):
    # The exiting instance was allocated last, so sequential placement
    # leaves its tail blocks free — luck HotMem provides by construction.
    assert result.migration_pages["sequential"] == 0
