"""Failure injection and adversarial interleavings at the VM level.

These drive the full stack through hostile sequences — resize storms,
attach storms against the concurrency limit, OOM storms, unplug/replug
races — and assert that the system stays consistent and makes progress.
"""

import pytest

from repro.cluster.provision import VmSpec
from repro.errors import OutOfMemory
from repro.faas.policy import DeploymentMode
from repro.sim import Simulator, Timeout
from repro.units import GIB, MIB, SEC
from repro.workloads import Memhog


def build(sim, fleet, mode="hotmem", slots=8, slot_bytes=384 * MIB, shared=0):
    del sim  # the fleet owns the simulator
    if mode == "hotmem":
        spec = VmSpec(
            mode,
            mode=DeploymentMode.HOTMEM,
            partition_bytes=slot_bytes,
            concurrency=slots,
            shared_bytes=shared,
        )
    else:
        spec = VmSpec(mode, region_bytes=slots * slot_bytes + shared)
    return fleet.provision(spec).vm


class TestResizeStorms:
    @pytest.mark.parametrize("mode", ["hotmem", "vanilla"])
    def test_interleaved_plug_unplug_storm(self, sim, fleet, mode):
        """Alternating plug/unplug requests fired without waiting."""
        vm = build(sim, fleet, mode)
        for _ in range(6):
            vm.request_plug(768 * MIB)
            vm.request_unplug(384 * MIB)
        sim.run()
        vm.check_consistency()
        # Net effect: 6 * (768 - 384) MiB plugged.
        assert vm.device.plugged_bytes == 6 * 384 * MIB

    def test_unplug_storm_on_empty_device_is_harmless(self, sim, fleet):
        vm = build(sim, fleet, "vanilla")
        processes = [vm.request_unplug(1 * GIB) for _ in range(4)]
        sim.run()
        for process in processes:
            assert process.value.unplugged_bytes == 0
        vm.check_consistency()

    def test_unplug_races_with_running_allocations(self, sim, fleet):
        """Memhogs keep faulting while unplug requests arrive."""
        vm = build(sim, fleet, "vanilla")
        vm.request_plug(8 * 384 * MIB)
        sim.run()
        hogs = [
            Memhog(vm, 256 * MIB, vcpu_index=i, churn_fraction=0.3,
                   name=f"churn{i}")
            for i in range(4)
        ]
        for hog in hogs:
            hog.start()

        def storm():
            yield Timeout(300_000_000)
            for _ in range(3):
                unplug = vm.request_unplug(512 * MIB)
                yield unplug
            for hog in hogs:
                hog.stop()

        sim.run_process(storm(), name="storm")
        sim.run()
        vm.check_consistency()


class TestAttachStorms:
    def test_more_attaches_than_partitions_queue_and_drain(self, sim, fleet):
        vm = build(sim, fleet, "hotmem", slots=4)
        vm.request_plug(4 * 384 * MIB)
        sim.run()
        finished = []

        def instance(tag):
            mm = vm.new_process(f"fn{tag}")
            yield from vm.hotmem.attach(mm)
            charge = vm.fault_handler.fault_anon(mm, 1000)
            yield vm.vcpus[tag % 10].submit(charge.cost_ns, f"fn{tag}")
            yield Timeout(50_000_000)
            vm.exit_process(mm)
            finished.append(tag)

        for tag in range(12):
            sim.spawn(instance(tag))
        sim.run()
        assert sorted(finished) == list(range(12))
        assert vm.hotmem.waitqueue_depth == 0
        assert len(vm.hotmem.reclaimable_partitions()) == 4
        vm.check_consistency()

    def test_waiters_survive_partition_reclaim_interleaving(self, sim, fleet):
        """Attach waiters racing with the partitions being unplugged."""
        vm = build(sim, fleet, "hotmem", slots=2)
        vm.request_plug(2 * 384 * MIB)
        sim.run()
        first = vm.new_process("first")
        vm.hotmem.try_attach(first)
        # Reclaim the one free partition first ...
        vm.request_unplug(384 * MIB)
        sim.run()
        second = vm.new_process("second")

        def waiter():
            yield from vm.hotmem.attach(second)
            return "attached"

        # ... so the late attacher has nothing and must park.
        process = sim.spawn(waiter())
        sim.run()
        assert not process.finished
        # ... then release the occupied one: the waiter gets it.
        vm.exit_process(first)
        sim.run()
        assert process.value == "attached"
        vm.check_consistency()


class TestOomStorms:
    def test_partition_overflow_storm(self, sim, fleet):
        """Every instance overflows its partition; all are killed and every
        partition comes back reusable."""
        vm = build(sim, fleet, "hotmem", slots=4)
        vm.request_plug(4 * 384 * MIB)
        sim.run()
        kills = 0
        for round_index in range(8):
            mm = vm.new_process(f"greedy{round_index}")
            vm.hotmem.try_attach(mm)
            with pytest.raises(OutOfMemory):
                vm.fault_handler.fault_anon(mm, 4 * 384 * MIB // 4096)
            kills += 1
            vm.exit_process(mm)
        assert vm.oom_killer.kill_count == kills
        assert len(vm.hotmem.reclaimable_partitions()) == 4
        vm.check_consistency()

    def test_global_exhaustion_does_not_corrupt_state(self, sim, fleet):
        vm = build(sim, fleet, "vanilla", slots=2)
        vm.request_plug(2 * 384 * MIB)
        sim.run()
        survivors = []
        for i in range(3):
            mm = vm.new_process(f"ok{i}")
            vm.fault_handler.fault_anon(mm, 10_000)
            survivors.append(mm)
        greedy = vm.new_process("greedy")
        with pytest.raises(OutOfMemory):
            vm.fault_handler.fault_anon(greedy, 10**7)
        for mm in survivors:
            assert mm.total_pages == 10_000
        vm.check_consistency()


class TestReplugCycles:
    def test_unplug_replug_cycles_converge(self, sim, fleet):
        """Repeated full shrink/grow cycles end exactly where they began."""
        vm = build(sim, fleet, "hotmem", slots=6)
        for _ in range(5):
            plug = vm.request_plug(6 * 384 * MIB)
            sim.run()
            assert plug.value.fully_plugged
            mm = vm.new_process("fn")
            vm.hotmem.try_attach(mm)
            vm.fault_handler.fault_anon(mm, 50_000)
            vm.exit_process(mm)
            unplug = vm.request_unplug(6 * 384 * MIB)
            sim.run()
            assert unplug.value.unplugged_bytes == 6 * 384 * MIB
            assert unplug.value.migrated_pages == 0
        vm.check_consistency()
        assert vm.device.plugged_bytes == 0

    def test_partial_unplug_then_replug_heals(self, sim, fleet):
        """A vanilla unplug that goes partial must not strand the device."""
        vm = build(sim, fleet, "vanilla", slots=4)
        vm.request_plug(4 * 384 * MIB)
        sim.run()
        hog = Memhog(vm, 4 * 300 * MIB)
        hog.materialize()
        partial = vm.request_unplug(4 * 384 * MIB)
        sim.run()
        assert partial.value.unplugged_bytes < 4 * 384 * MIB
        hog.release()
        # Now everything can go.
        final = vm.request_unplug(4 * 384 * MIB)
        sim.run()
        assert vm.device.plugged_bytes + final.value.unplugged_bytes >= 0
        vm.check_consistency()
