"""Unit tests for the memhog workload."""

import pytest

from repro.sim.engine import Timeout
from repro.units import MIB, SEC
from repro.workloads.memhog import Memhog


class TestProcessLifecycle:
    def test_start_faults_footprint_and_signals_ready(self, sim, vanilla_vm):
        vanilla_vm.request_plug(512 * MIB)
        sim.run()
        hog = Memhog(vanilla_vm, 256 * MIB)
        hog.start()

        def wait_ready():
            yield hog.ready
            pages = hog.mm.anon_pages
            resident = hog.resident
            hog.stop()  # let the spin loop (and the simulation) drain
            return pages, resident

        pages, resident = sim.run_process(wait_ready())
        assert pages == 256 * MIB // 4096
        assert resident

    def test_stop_frees_memory(self, sim, vanilla_vm):
        vanilla_vm.request_plug(512 * MIB)
        sim.run()
        hog = Memhog(vanilla_vm, 128 * MIB)
        hog.start()

        def scenario():
            yield hog.ready
            hog.stop()

        sim.run_process(scenario())
        sim.run()
        assert hog.stopped
        assert not hog.resident
        assert hog.mm.total_pages == 0

    def test_spin_loop_keeps_vcpu_busy(self, sim, vanilla_vm):
        vanilla_vm.request_plug(512 * MIB)
        sim.run()
        hog = Memhog(vanilla_vm, 64 * MIB, vcpu_index=3)
        hog.start()

        def scenario():
            yield hog.ready
            yield Timeout(1 * SEC)
            hog.stop()

        sim.run_process(scenario())
        sim.run()
        busy = vanilla_vm.vcpus[3].busy_ns_for_prefix("memhog:")
        assert busy >= int(0.9 * SEC)

    def test_churn_cycles_allocations(self, sim, vanilla_vm):
        vanilla_vm.request_plug(512 * MIB)
        sim.run()
        hog = Memhog(vanilla_vm, 64 * MIB, churn_fraction=0.5)
        hog.start()

        def scenario():
            yield hog.ready
            yield Timeout(int(0.2 * SEC))
            hog.stop()

        sim.run_process(scenario())
        sim.run()
        assert hog.stopped

    def test_double_start_rejected(self, sim, vanilla_vm):
        hog = Memhog(vanilla_vm, 64 * MIB)
        vanilla_vm.request_plug(256 * MIB)
        sim.run()
        hog.start()
        with pytest.raises(RuntimeError):
            hog.start()
        hog.stop()
        sim.run()

    def test_invalid_churn_rejected(self, vanilla_vm):
        with pytest.raises(ValueError):
            Memhog(vanilla_vm, MIB, churn_fraction=1.5)


class TestHotMemMode:
    def test_hotmem_memhog_attaches_to_partition(self, sim, hotmem_vm):
        hotmem_vm.request_plug(384 * MIB)
        sim.run()
        hog = Memhog(hotmem_vm, 256 * MIB, use_hotmem=True)
        hog.start()

        def scenario():
            yield hog.ready
            hog.stop()

        sim.run_process(scenario())
        sim.run()
        assert len(hotmem_vm.hotmem.reclaimable_partitions()) == 1


class TestStateOnlyHelpers:
    def test_materialize_and_release(self, sim, vanilla_vm):
        vanilla_vm.request_plug(512 * MIB)
        sim.run()
        hog = Memhog(vanilla_vm, 128 * MIB)
        hog.materialize()
        assert hog.resident
        assert sim.now > 0  # only the plug took time
        hog.release()
        assert hog.mm.total_pages == 0

    def test_double_materialize_rejected(self, sim, vanilla_vm):
        vanilla_vm.request_plug(256 * MIB)
        sim.run()
        hog = Memhog(vanilla_vm, 64 * MIB)
        hog.materialize()
        with pytest.raises(RuntimeError):
            hog.materialize()

    def test_release_without_materialize_rejected(self, vanilla_vm):
        with pytest.raises(RuntimeError):
            Memhog(vanilla_vm, MIB).release()
