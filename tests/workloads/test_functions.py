"""Unit tests for the Table 1 function specs."""

import pytest

from repro.errors import ConfigError
from repro.units import MIB
from repro.workloads.functions import TABLE1_FUNCTIONS, FunctionSpec, get_function
from repro.units import MS


class TestTable1:
    """The resource limits exactly as the paper's Table 1 lists them."""

    @pytest.mark.parametrize(
        "name, vcpus, memory_mib",
        [
            ("cnn", 0.5, 384),
            ("bert", 1.0, 640),
            ("bfs", 0.5, 384),
            ("html", 0.2, 384),
        ],
    )
    def test_assigned_limits(self, name, vcpus, memory_mib):
        spec = get_function(name)
        assert spec.assigned_vcpus == vcpus
        assert spec.memory_limit_bytes == memory_mib * MIB

    def test_exactly_four_functions(self):
        assert set(TABLE1_FUNCTIONS) == {"cnn", "bert", "bfs", "html"}

    @pytest.mark.parametrize(
        "name, expected",
        [("cnn", 20), ("bert", 10), ("bfs", 20), ("html", 50)],
    )
    def test_max_instances_rule(self, name, expected):
        """Max concurrency = VM vCPUs / assigned vCPUs (Section 6.2.1)."""
        assert get_function(name).max_instances_for(10) == expected

    def test_lookup_case_insensitive(self):
        assert get_function("CNN") is get_function("cnn")

    def test_unknown_function_rejected(self):
        with pytest.raises(ConfigError):
            get_function("nope")


class TestSpecValidation:
    def test_footprint_within_limit(self):
        for spec in TABLE1_FUNCTIONS.values():
            assert spec.anon_footprint_bytes <= spec.memory_limit_bytes

    def test_footprint_exceeding_limit_rejected(self):
        with pytest.raises(ConfigError):
            FunctionSpec(
                name="bad",
                assigned_vcpus=1.0,
                memory_limit_bytes=100 * MIB,
                exec_cpu_ns=MS,
                anon_footprint_bytes=200 * MIB,
                shared_deps_bytes=0,
                cold_start_cpu_ns=MS,
                warm_start_cpu_ns=0,
                warm_churn_bytes=0,
            )

    def test_zero_vcpus_rejected(self):
        with pytest.raises(ConfigError):
            FunctionSpec(
                name="bad",
                assigned_vcpus=0,
                memory_limit_bytes=100 * MIB,
                exec_cpu_ns=MS,
                anon_footprint_bytes=50 * MIB,
                shared_deps_bytes=0,
                cold_start_cpu_ns=MS,
                warm_start_cpu_ns=0,
                warm_churn_bytes=0,
            )

    def test_page_helpers(self):
        spec = get_function("cnn")
        assert spec.anon_footprint_pages == spec.anon_footprint_bytes // 4096
        assert spec.warm_churn_pages == spec.warm_churn_bytes // 4096
