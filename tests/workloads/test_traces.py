"""Unit tests for trace containers."""

import pytest

from repro.errors import ConfigError
from repro.units import SEC
from repro.workloads.traces import InvocationTrace


def test_arrivals_sorted_on_construction():
    trace = InvocationTrace("f", [3, 1, 2])
    assert trace.arrivals_ns == [1, 2, 3]


def test_negative_arrival_rejected():
    with pytest.raises(ConfigError):
        InvocationTrace("f", [-1])


def test_len_and_iter():
    trace = InvocationTrace("f", [1, 2, 3])
    assert len(trace) == 3
    assert list(trace) == [1, 2, 3]


def test_empty_trace_statistics():
    trace = InvocationTrace("f", [])
    assert trace.duration_ns == 0
    assert trace.mean_rps() == 0.0
    assert trace.peak_rps() == 0.0


def test_mean_rps():
    trace = InvocationTrace("f", [i * SEC for i in range(1, 11)])
    assert trace.mean_rps() == pytest.approx(1.0)


def test_peak_rps_finds_densest_window():
    arrivals = [0, 1, 2, SEC * 5]
    trace = InvocationTrace("f", arrivals)
    assert trace.peak_rps(window_s=1.0) == 3.0


def test_arrivals_in_window_half_open():
    trace = InvocationTrace("f", [10, 20, 30])
    assert trace.arrivals_in_window(10, 30) == 2
