"""Unit tests for the Azure Functions CSV trace loader."""

import csv

import pytest

from repro.errors import ConfigError
from repro.units import SEC
from repro.workloads.azure_csv import (
    DAY_MINUTES,
    load_azure_trace,
    load_invocation_rows,
    trace_from_minute_counts,
)


def write_csv(path, rows):
    header = ["HashOwner", "HashApp", "HashFunction", "Trigger"] + [
        str(m) for m in range(1, DAY_MINUTES + 1)
    ]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for owner, app, function, trigger, counts in rows:
            writer.writerow([owner, app, function, trigger] + counts)


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "invocations_per_function_md.anon.d01.csv"
    busy = [0] * DAY_MINUTES
    busy[0] = 10
    busy[1] = 5
    busy[700] = 100
    idle = [0] * DAY_MINUTES
    idle[3] = 1
    write_csv(
        path,
        [
            ("o1", "a1", "fn-busy", "http", busy),
            ("o1", "a1", "fn-idle", "timer", idle),
        ],
    )
    return path


class TestLoadRows:
    def test_loads_every_row(self, trace_file):
        rows = load_invocation_rows(trace_file)
        assert [r.function for r in rows] == ["fn-busy", "fn-idle"]
        assert rows[0].total_invocations == 115
        assert rows[0].trigger == "http"

    def test_function_hash_filter(self, trace_file):
        rows = load_invocation_rows(trace_file, function_hash="fn-idle")
        assert len(rows) == 1
        assert rows[0].function == "fn-idle"

    def test_min_total_filter(self, trace_file):
        rows = load_invocation_rows(trace_file, min_total=10)
        assert [r.function for r in rows] == ["fn-busy"]

    def test_limit(self, trace_file):
        rows = load_invocation_rows(trace_file, limit=1)
        assert len(rows) == 1

    def test_malformed_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n")
        with pytest.raises(ConfigError):
            load_invocation_rows(path)

    def test_truncated_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        header = ["HashOwner", "HashApp", "HashFunction", "Trigger"] + [
            str(m) for m in range(1, DAY_MINUTES + 1)
        ]
        path.write_text(",".join(header) + "\no,a,f,http,1,2,3\n")
        with pytest.raises(ConfigError):
            load_invocation_rows(path)


class TestMinuteCounts:
    def test_counts_preserved_exactly(self):
        trace = trace_from_minute_counts("f", [3, 0, 2])
        assert len(trace) == 5
        assert trace.arrivals_in_window(0, 60 * SEC) == 3
        assert trace.arrivals_in_window(60 * SEC, 120 * SEC) == 0
        assert trace.arrivals_in_window(120 * SEC, 180 * SEC) == 2

    def test_deterministic_per_seed(self):
        a = trace_from_minute_counts("f", [5, 5], seed=1)
        b = trace_from_minute_counts("f", [5, 5], seed=1)
        c = trace_from_minute_counts("f", [5, 5], seed=2)
        assert a.arrivals_ns == b.arrivals_ns
        assert a.arrivals_ns != c.arrivals_ns

    def test_time_scale_compresses(self):
        trace = trace_from_minute_counts("f", [1] * 10, time_scale=0.1)
        assert trace.duration_ns < 10 * 6 * SEC

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigError):
            trace_from_minute_counts("f", [1, -1])

    def test_invalid_time_scale_rejected(self):
        with pytest.raises(ConfigError):
            trace_from_minute_counts("f", [1], time_scale=0)


class TestOneCallLoader:
    def test_load_by_hash(self, trace_file):
        trace = load_azure_trace(trace_file, "fn-busy")
        assert len(trace) == 115

    def test_minute_window(self, trace_file):
        trace = load_azure_trace(
            trace_file, "fn-busy", minutes=slice(0, 2)
        )
        assert len(trace) == 15

    def test_unknown_hash_rejected(self, trace_file):
        with pytest.raises(ConfigError):
            load_azure_trace(trace_file, "nope")

    def test_loaded_trace_drives_the_runtime(self, trace_file, sim, vanilla_vm):
        from repro.faas import (
            Agent,
            DeploymentMode,
            FaasRuntime,
            FunctionDeployment,
            KeepAlivePolicy,
        )
        from repro.workloads import get_function

        trace = load_azure_trace(
            trace_file, "fn-busy", minutes=slice(0, 2), time_scale=0.2
        )
        agent = Agent(
            sim,
            vanilla_vm,
            [FunctionDeployment(get_function("html"), max_instances=4)],
            KeepAlivePolicy(),
            DeploymentMode.VANILLA,
        )
        runtime = FaasRuntime(sim)
        renamed = type(trace)("html", trace.arrivals_ns)
        runtime.drive(agent, renamed)
        runtime.run(until_ns=120 * SEC)
        assert len(runtime.records) == 15
        assert all(r.ok for r in runtime.records)
