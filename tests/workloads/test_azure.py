"""Unit tests for the Azure-like trace generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.units import SEC
from repro.workloads.azure import (
    AzureTraceGenerator,
    RatePhase,
    bursty_trace,
    diurnal_phases,
)


class TestRatePhase:
    def test_empty_phase_rejected(self):
        with pytest.raises(ConfigError):
            RatePhase(5.0, 5.0, 1.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigError):
            RatePhase(0.0, 1.0, -1.0)


class TestGenerate:
    def test_deterministic_per_seed(self):
        phases = [RatePhase(0, 10, 5.0)]
        a = AzureTraceGenerator(1).generate("f", phases)
        b = AzureTraceGenerator(1).generate("f", phases)
        assert a.arrivals_ns == b.arrivals_ns

    def test_different_seeds_differ(self):
        phases = [RatePhase(0, 10, 5.0)]
        a = AzureTraceGenerator(1).generate("f", phases)
        b = AzureTraceGenerator(2).generate("f", phases)
        assert a.arrivals_ns != b.arrivals_ns

    def test_function_name_seeds_independent_streams(self):
        phases = [RatePhase(0, 10, 5.0)]
        generator = AzureTraceGenerator(1)
        a = generator.generate("alpha", phases)
        b = generator.generate("beta", phases)
        assert a.arrivals_ns != b.arrivals_ns

    def test_zero_rate_phase_yields_nothing(self):
        trace = AzureTraceGenerator(0).generate("f", [RatePhase(0, 100, 0.0)])
        assert len(trace) == 0

    def test_arrivals_within_phase_bounds(self):
        trace = AzureTraceGenerator(0).generate("f", [RatePhase(5, 10, 20.0)])
        assert all(5 * SEC <= t < 10 * SEC for t in trace)

    def test_rate_roughly_respected(self):
        trace = AzureTraceGenerator(0).generate("f", [RatePhase(0, 100, 10.0)])
        assert 800 <= len(trace) <= 1200


class TestBursty:
    def test_burst_denser_than_base(self):
        trace = bursty_trace(
            "f", seed=3, duration_s=100, burst_rps=50, base_rps=1,
            bursts=((0.0, 5.0),),
        )
        burst_count = trace.arrivals_in_window(0, 5 * SEC)
        later_count = trace.arrivals_in_window(5 * SEC, 100 * SEC)
        assert burst_count > 150
        assert later_count < burst_count

    def test_multiple_bursts(self):
        trace = bursty_trace(
            "f", seed=3, duration_s=200, burst_rps=50, base_rps=0,
            bursts=((0.0, 2.0), (100.0, 102.0)),
        )
        assert trace.arrivals_in_window(0, 2 * SEC) > 0
        assert trace.arrivals_in_window(100 * SEC, 102 * SEC) > 0
        assert trace.arrivals_in_window(10 * SEC, 90 * SEC) == 0

    def test_burst_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            bursty_trace("f", duration_s=10, bursts=((5.0, 20.0),))


class TestDiurnal:
    def test_phases_cover_duration(self):
        phases = diurnal_phases(100, period_s=50, peak_rps=10, trough_rps=1)
        assert phases[0].start_s == 0
        assert phases[-1].end_s == 100
        for left, right in zip(phases, phases[1:]):
            assert left.end_s == right.start_s

    def test_rates_bounded_by_peak_and_trough(self):
        phases = diurnal_phases(200, period_s=100, peak_rps=20, trough_rps=2)
        rates = [p.rps for p in phases]
        assert max(rates) <= 20 + 1e-9
        assert min(rates) >= 2 - 1e-9

    def test_cycle_actually_oscillates(self):
        trace = AzureTraceGenerator(0).diurnal(
            "f", duration_s=400, period_s=100, peak_rps=40, trough_rps=1
        )
        from repro.units import SEC

        # Quarter-period windows around peak vs trough differ strongly.
        peak_window = trace.arrivals_in_window(10 * SEC, 40 * SEC)
        trough_window = trace.arrivals_in_window(60 * SEC, 90 * SEC)
        assert peak_window > 3 * max(trough_window, 1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigError):
            diurnal_phases(100, period_s=0, peak_rps=1, trough_rps=0)
        with pytest.raises(ConfigError):
            diurnal_phases(100, period_s=10, peak_rps=1, trough_rps=5)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 1000),
    duration=st.floats(1.0, 120.0),
    rps=st.floats(0.1, 50.0),
)
def test_generated_traces_always_sorted_and_bounded(seed, duration, rps):
    trace = AzureTraceGenerator(seed).generate(
        "f", [RatePhase(0.0, duration, rps)]
    )
    arrivals = trace.arrivals_ns
    assert arrivals == sorted(arrivals)
    assert all(0 <= t < duration * SEC for t in arrivals)
