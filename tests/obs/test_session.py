"""The global tracing session and the scope/context plumbing.

Session tests must leave the module-level singleton uninstalled; every
path here goes through ``traced()`` or an explicit try/finally.
"""

import pytest

from repro.obs.context import NO_OBS, NO_SCOPE, ObsContext
from repro.obs.session import (
    context_for,
    current_session,
    install,
    is_installed,
    traced,
    uninstall,
)
from repro.obs.span import NULL_SPAN
from repro.sim import Simulator


class TestInstall:
    def test_install_uninstall_cycle(self):
        assert not is_installed()
        assert current_session() is None
        session = install()
        try:
            assert is_installed()
            assert current_session() is session
        finally:
            assert uninstall() is session
        assert not is_installed()
        assert uninstall() is None

    def test_double_install_raises(self):
        with traced():
            with pytest.raises(RuntimeError):
                install()

    def test_traced_uninstalls_on_exception(self):
        with pytest.raises(ValueError):
            with traced():
                raise ValueError("boom")
        assert not is_installed()


class TestContextFor:
    def test_uninstalled_returns_inert_context(self):
        context = context_for(Simulator())
        assert context is NO_OBS
        assert not context.enabled
        assert context.scope() is NO_SCOPE

    def test_one_context_per_simulator_in_creation_order(self):
        with traced() as session:
            sim_a, sim_b = Simulator(), Simulator()
            ctx_a = context_for(sim_a)
            ctx_b = context_for(sim_b)
            assert context_for(sim_a) is ctx_a
            assert ctx_a is not ctx_b
            assert (ctx_a.index, ctx_b.index) == (0, 1)
            assert session.contexts == [ctx_a, ctx_b]
            assert ctx_a.sim is sim_a

    def test_session_rollups(self):
        with traced() as session:
            context = context_for(Simulator())
            scope = context.scope(vm="vm0")
            span = scope.span("device.plug")
            scope.event("partition.assign")
            scope.inc("plug_requests_total", error="ok")
            assert session.total_spans() == 1  # only the closed event
            assert session.open_spans() == 1
            assert session.metric_series() == 1
            assert session.finalize() == 1
            assert session.open_spans() == 0
            assert span.attrs["cut"] == "run-end"


class TestScope:
    def test_scope_stamps_labels_on_spans_and_metrics(self):
        context = ObsContext()
        context.bind_sim(Simulator())
        scope = context.scope(vm="vm3", mode="hotmem")
        span = scope.span("device.unplug", requested_bytes=4096)
        assert span.attrs == {
            "vm": "vm3",
            "mode": "hotmem",
            "requested_bytes": 4096,
        }
        scope.inc("unplug_requests_total", outcome="full")
        assert (
            context.metrics.counter_value(
                "unplug_requests_total",
                vm="vm3",
                mode="hotmem",
                outcome="full",
            )
            == 1
        )

    def test_call_site_wins_on_label_collision(self):
        context = ObsContext()
        scope = context.scope(vm="provisioned")
        span = scope.span("x", vm="override")
        assert span.attrs["vm"] == "override"

    def test_no_scope_is_inert(self):
        assert NO_SCOPE.span("x") is NULL_SPAN
        assert NO_SCOPE.event("x") is NULL_SPAN
        NO_SCOPE.inc("c")
        NO_SCOPE.observe("h", 1)
        NO_SCOPE.gauge_set("g", 1)
        assert NO_OBS.metrics.series_count() == 0
        assert NO_OBS.tracer.spans() == []

    def test_disabled_context_hands_out_the_no_scope_singleton(self):
        context = ObsContext(enabled=False)
        assert context.scope(vm="ignored") is NO_SCOPE
