"""Histogram bucket-edge math and label canonicalization.

The power-of-two bucketing (``max(0, v - 1).bit_length()``) is shared
with :class:`~repro.obs.sketch.QuantileSketch` — exponent ``e >= 1``
covers ``(2^(e-1), 2^e]`` and exponent ``0`` covers ``{0, 1}`` — so
its edge behaviour is gated here once for both consumers.
"""

from repro.obs.metrics import MetricsRegistry


def _histogram_row(registry, name):
    return next(
        row
        for row in registry.snapshot()
        if row["kind"] == "histogram" and row["name"] == name
    )


class TestBucketEdges:
    def test_zero_and_one_share_the_bottom_bucket(self):
        registry = MetricsRegistry()
        registry.observe("lat", 0)
        registry.observe("lat", 1)
        row = _histogram_row(registry, "lat")
        assert row["buckets"] == {"0": 2}
        assert row["min"] == 0 and row["max"] == 1

    def test_exact_powers_of_two_land_in_their_own_bucket(self):
        registry = MetricsRegistry()
        for exponent in (1, 4, 10, 30):
            registry.observe("lat", 1 << exponent)
        row = _histogram_row(registry, "lat")
        # 2^e is the inclusive top of bucket e: (2^(e-1), 2^e].
        assert row["buckets"] == {"1": 1, "4": 1, "10": 1, "30": 1}

    def test_one_past_a_power_of_two_spills_to_the_next_bucket(self):
        registry = MetricsRegistry()
        registry.observe("lat", 1024)
        registry.observe("lat", 1025)
        row = _histogram_row(registry, "lat")
        assert row["buckets"] == {"10": 1, "11": 1}

    def test_huge_values_do_not_overflow(self):
        registry = MetricsRegistry()
        huge = 1 << 200
        registry.observe("lat", huge)
        registry.observe("lat", huge + 1)
        row = _histogram_row(registry, "lat")
        assert row["buckets"] == {"200": 1, "201": 1}
        assert row["max"] == huge + 1
        assert row["sum"] == 2 * huge + 1

    def test_count_sum_min_max_are_exact(self):
        registry = MetricsRegistry()
        for value in (7, 3, 900):
            registry.observe("lat", value)
        row = _histogram_row(registry, "lat")
        assert row["count"] == 3
        assert row["sum"] == 910
        assert row["min"] == 3
        assert row["max"] == 900

    def test_bucket_keys_export_sorted_numerically(self):
        registry = MetricsRegistry()
        for value in (1 << 12, 2, 1 << 33):
            registry.observe("lat", value)
        keys = list(_histogram_row(registry, "lat")["buckets"])
        assert [int(k) for k in keys] == sorted(int(k) for k in keys)


class TestLabelCanonicalization:
    def test_label_order_does_not_split_series(self):
        registry = MetricsRegistry()
        registry.inc("hits", mode="hotmem", host=0)
        registry.inc("hits", host=0, mode="hotmem")
        assert registry.counter_value("hits", host=0, mode="hotmem") == 2
        assert registry.series_count() == 1

    def test_label_values_coerce_to_strings(self):
        registry = MetricsRegistry()
        registry.inc("hits", host=0)
        assert registry.counter_value("hits", host="0") == 2 - 1
        snapshot = registry.snapshot()
        assert snapshot[0]["labels"] == {"host": "0"}

    def test_histograms_share_series_across_label_orderings(self):
        registry = MetricsRegistry()
        registry.observe("lat", 5, a=1, b=2)
        registry.observe("lat", 6, b=2, a=1)
        assert registry.histogram_count("lat", b=2, a=1) == 2

    def test_snapshot_sorts_by_name_then_labels(self):
        registry = MetricsRegistry()
        registry.inc("b_metric")
        registry.inc("a_metric", z=1)
        registry.inc("a_metric", a=1)
        names = [
            (row["name"], row["labels"])
            for row in registry.snapshot()
            if row["kind"] == "counter"
        ]
        assert names == [
            ("a_metric", {"a": "1"}),
            ("a_metric", {"z": "1"}),
            ("b_metric", {}),
        ]
