"""SLO burn-rate monitor: window math, breach spans, finish hygiene."""

import pytest

from repro.faas.records import InvocationRecord
from repro.obs.session import context_for, traced
from repro.obs.slo import SloMonitor, SloSpec, fleet_slo_specs
from repro.sim import Simulator
from repro.units import MS, SEC


class FakeRouter:
    """Just the record stream the monitor tails."""

    def __init__(self):
        self.records = []

    def complete(self, end_ns, latency_ns, cold=False, ok=True):
        self.records.append(
            InvocationRecord(
                function="f",
                arrival_ns=end_ns - latency_ns,
                start_ns=end_ns - latency_ns,
                end_ns=end_ns,
                cold=cold,
                ok=ok,
            )
        )


def _latency_spec(**overrides):
    spec = {
        "name": "latency",
        "kind": "latency",
        "objective_ns": 100 * MS,
        "budget": 0.1,
        "window_ns": SEC,
        "min_requests": 1,
    }
    spec.update(overrides)
    return SloSpec(**spec)


class TestSloSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown SLO kind"):
            SloSpec(name="x", kind="throughput")

    def test_budget_bounds(self):
        with pytest.raises(ValueError, match="budget"):
            SloSpec(name="x", budget=0.0)
        with pytest.raises(ValueError, match="budget"):
            SloSpec(name="x", budget=1.5)

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="window"):
            SloSpec(name="x", window_ns=0)

    def test_fleet_pair_covers_both_kinds(self):
        latency, cold = fleet_slo_specs(latency_objective_ns=SEC)
        assert latency.kind == "latency"
        assert latency.objective_ns == SEC
        assert cold.kind == "cold-start"


class TestWindowMath:
    def _run(self, router, specs, until_s=4):
        sim = Simulator()
        monitor = SloMonitor(
            sim, router, specs, period_ns=SEC // 2
        )
        monitor.start(until_ns=until_s * SEC)
        sim.run(until=until_s * SEC)
        monitor.finish()
        return monitor

    def test_burn_is_bad_fraction_over_budget(self):
        router = FakeRouter()
        # Window 0: 10 requests, 2 slow -> burn = 0.2 / 0.1 = 2.0.
        for i in range(8):
            router.complete(end_ns=100 * MS + i, latency_ns=10 * MS)
        for i in range(2):
            router.complete(end_ns=200 * MS + i, latency_ns=500 * MS)
        monitor = self._run(router, [_latency_spec()])
        window = monitor.windows[0]
        assert (window.bad, window.total) == (2, 10)
        assert window.burn == pytest.approx(2.0)
        assert window.breached

    def test_failures_count_as_bad_latency(self):
        router = FakeRouter()
        router.complete(end_ns=100 * MS, latency_ns=1 * MS, ok=False)
        monitor = self._run(router, [_latency_spec()])
        assert monitor.windows[0].bad == 1

    def test_cold_start_kind_counts_cold_invocations(self):
        router = FakeRouter()
        router.complete(end_ns=100 * MS, latency_ns=1 * MS, cold=True)
        router.complete(end_ns=200 * MS, latency_ns=1 * MS)
        spec = _latency_spec(name="cold", kind="cold-start", budget=0.25)
        monitor = self._run(router, [spec])
        window = monitor.windows[0]
        assert (window.bad, window.total) == (1, 2)
        assert window.burn == pytest.approx(2.0)

    def test_min_requests_gates_breaches(self):
        router = FakeRouter()
        router.complete(end_ns=100 * MS, latency_ns=500 * MS)
        spec = _latency_spec(min_requests=10)
        monitor = self._run(router, [spec])
        window = monitor.windows[0]
        assert window.total == 1
        assert window.burn == 0.0
        assert not window.breached

    def test_windows_key_on_completion_time(self):
        router = FakeRouter()
        router.complete(end_ns=int(0.5 * SEC), latency_ns=1 * MS)
        router.complete(end_ns=int(1.5 * SEC), latency_ns=1 * MS)
        router.complete(end_ns=int(2.5 * SEC), latency_ns=1 * MS)
        monitor = self._run(router, [_latency_spec()])
        indices = [w.index for w in monitor.windows]
        assert indices == [0, 1, 2]
        for w in monitor.windows:
            assert w.start_ns == w.index * SEC
            assert w.end_ns == (w.index + 1) * SEC

    def test_sketch_observes_only_successful_latencies(self):
        router = FakeRouter()
        router.complete(end_ns=100 * MS, latency_ns=7 * MS)
        router.complete(end_ns=200 * MS, latency_ns=9 * MS, ok=False)
        monitor = self._run(router, [_latency_spec()])
        assert len(monitor.sketch) == 1

    def test_deterministic_across_identical_streams(self):
        def run():
            router = FakeRouter()
            for i in range(50):
                slow = i % 7 == 0
                router.complete(
                    end_ns=(i + 1) * 60 * MS,
                    latency_ns=400 * MS if slow else 10 * MS,
                )
            monitor = self._run(router, [_latency_spec()])
            return [
                (w.slo, w.index, w.bad, w.total, w.burn, w.breached)
                for w in monitor.windows
            ]

        assert run() == run()


class TestLifecycle:
    def test_finish_is_idempotent_and_closes_partial_windows(self):
        sim = Simulator()
        router = FakeRouter()
        monitor = SloMonitor(sim, router, [_latency_spec()], period_ns=SEC)
        monitor.start(until_ns=10 * SEC)
        router.complete(end_ns=int(2.3 * SEC), latency_ns=1 * MS)
        sim.run(until=int(2.5 * SEC))
        monitor.finish()
        count = len(monitor.windows)
        assert count == 1
        # The run was cut mid-window: it closes at now, not the boundary.
        assert monitor.windows[0].end_ns == int(2.5 * SEC)
        monitor.finish()
        assert len(monitor.windows) == count

    def test_double_start_rejected(self):
        sim = Simulator()
        monitor = SloMonitor(
            sim, FakeRouter(), [_latency_spec()], period_ns=SEC
        )
        monitor.start()
        with pytest.raises(ValueError, match="already started"):
            monitor.start()

    def test_duplicate_spec_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate SLO names"):
            SloMonitor(
                Simulator(),
                FakeRouter(),
                [_latency_spec(), _latency_spec()],
                period_ns=SEC,
            )

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError, match="period"):
            SloMonitor(
                Simulator(), FakeRouter(), [_latency_spec()], period_ns=0
            )

    def test_note_pressure_lands_in_the_open_window(self):
        sim = Simulator()
        router = FakeRouter()
        monitor = SloMonitor(sim, router, [_latency_spec()], period_ns=SEC)
        monitor.start(until_ns=4 * SEC)
        router.complete(end_ns=100 * MS, latency_ns=500 * MS)
        monitor.note_pressure(150 * MS, host_index=0, node_id=0)
        sim.run(until=4 * SEC)
        monitor.finish()
        assert monitor.windows[0].pressure == 1


class TestTracing:
    def test_breach_spans_close_under_the_monitor_root(self):
        with traced() as session:
            sim = Simulator()
            router = FakeRouter()
            monitor = SloMonitor(
                sim, router, [_latency_spec()], period_ns=SEC
            )
            monitor.start(until_ns=3 * SEC)
            for i in range(10):
                router.complete(
                    end_ns=100 * MS + i, latency_ns=500 * MS
                )
            sim.run(until=3 * SEC)
            monitor.finish()
            assert monitor.breach_count() == 1
            spans = context_for(sim).tracer.spans()
            names = [span.name for span in spans]
            assert "slo.monitor" in names
            assert "slo.breach" in names
            assert session.open_spans() == 0
            breach = next(s for s in spans if s.name == "slo.breach")
            root = next(s for s in spans if s.name == "slo.monitor")
            assert breach.parent_id == root.span_id

    def test_sketch_registers_with_the_traced_context(self):
        with traced():
            sim = Simulator()
            monitor = SloMonitor(
                sim, FakeRouter(), [_latency_spec()], period_ns=SEC
            )
            assert monitor.sketch in context_for(sim).sketches

    def test_untraced_monitor_registers_nothing_globally(self):
        from repro.obs.context import NO_OBS

        sim = Simulator()
        SloMonitor(sim, FakeRouter(), [_latency_spec()], period_ns=SEC)
        assert NO_OBS.sketches == []
