"""End-to-end tracing of a real reclaim: deterministic JSONL export,
round-trip parsing, and phase attribution that matches the legacy
hypervisor tracer to the nanosecond."""

import json
import re

from repro.experiments import MicrobenchRig, MicrobenchSetup
from repro.obs import build_report, export_session, read_trace, traced
from repro.units import MIB

SETUP = dict(mode="hotmem", total_bytes=768 * MIB, partition_bytes=384 * MIB)


def traced_reclaim():
    """One fixed microbench reclaim under a scoped tracing session."""
    with traced() as session:
        rig = MicrobenchRig(MicrobenchSetup(**SETUP))
        rig.run_single_reclaim(384 * MIB)
        session.finalize()
    return session, rig


class TestExport:
    def test_identical_across_in_process_reruns(self, tmp_path):
        # Owner ids come from a process-global pid allocator, so two runs
        # in ONE process differ only in pid numbers; fresh processes (the
        # CI digest gate) are byte-identical.  Normalize pids and demand
        # everything else match exactly.
        session_a, _ = traced_reclaim()
        session_b, _ = traced_reclaim()
        export_session(session_a, str(tmp_path / "a.jsonl"))
        export_session(session_b, str(tmp_path / "b.jsonl"))
        normalize = lambda p: re.sub(r"pid\d+", "pidN", p.read_text())
        assert normalize(tmp_path / "a.jsonl") == normalize(
            tmp_path / "b.jsonl"
        )

    def test_summary_matches_session_and_render(self, tmp_path):
        session, _ = traced_reclaim()
        path = tmp_path / "trace.jsonl"
        summary = export_session(session, str(path))
        assert summary.contexts == 1
        assert summary.spans == session.total_spans() > 0
        assert summary.open_spans == 0
        assert summary.metric_series == session.metric_series() > 0
        rendered = summary.render()
        assert f"spans={summary.spans}" in rendered
        assert "open=0" in rendered
        assert summary.digest in rendered

    def test_read_trace_round_trips_the_meta_counts(self, tmp_path):
        session, _ = traced_reclaim()
        path = tmp_path / "trace.jsonl"
        export_session(session, str(path))
        records = read_trace(str(path))
        assert len(records) == len(path.read_text().splitlines())
        meta = [r for r in records if r["type"] == "meta"]
        assert len(meta) == 1
        assert meta[0]["spans"] == sum(
            1 for r in records if r["type"] == "span"
        )
        assert meta[0]["metrics"] == sum(
            1 for r in records if r["type"] == "metric"
        )

    def test_rows_are_sorted_compact_json(self, tmp_path):
        session, _ = traced_reclaim()
        path = tmp_path / "trace.jsonl"
        export_session(session, str(path))
        for line in path.read_text().splitlines():
            assert line == json.dumps(
                json.loads(line), sort_keys=True, separators=(",", ":")
            )


class TestAttribution:
    def test_phase_sums_match_hypervisor_tracer_to_the_ns(self, tmp_path):
        session, rig = traced_reclaim()
        path = tmp_path / "trace.jsonl"
        export_session(session, str(path))
        report = build_report(read_trace(str(path)))
        assert report.open_spans == 0
        assert report.total_unplugs > 0
        assert report.exact_matches == report.total_unplugs
        (breakdown,) = report.modes
        assert breakdown.mode == "hotmem"
        span_latencies = sorted(u.duration_ns for u in breakdown.unplugs)
        tracer_latencies = sorted(
            event.latency_ns
            for event in rig.vm.tracer.events
            if event.kind == "unplug"
        )
        assert span_latencies == tracer_latencies
        assert "hotmem" in report.metric_modes
        assert "nanosecond-exact" in report.render()

    def test_metrics_labeled_with_vm_and_mode(self):
        session, rig = traced_reclaim()
        metrics = session.contexts[0].metrics
        assert metrics.label_values("unplug_requests_total", "mode") == [
            "hotmem"
        ]
        assert rig.vm.name in metrics.label_values(
            "unplug_requests_total", "vm"
        )
        assert metrics.counter_total("unplugged_bytes_total") == 384 * MIB


class TestConsumerEquivalence:
    def test_traced_run_records_identical_resize_events(self):
        _, traced_rig = traced_reclaim()
        untraced_rig = MicrobenchRig(MicrobenchSetup(**SETUP))
        untraced_rig.run_single_reclaim(384 * MIB)
        assert traced_rig.vm.tracer.events == untraced_rig.vm.tracer.events
        assert traced_rig.vm.tracer.events
