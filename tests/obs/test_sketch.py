"""Quantile sketch: error bound, merge invariance, serialization."""

import pytest

from repro.metrics.latency import percentile
from repro.obs.sketch import SKETCH_RELATIVE_ERROR, QuantileSketch


def _gaussian_latencies(n, mean_ns, sigma_ns, seed=7):
    """A deterministic latency-shaped sample set (no stdlib random)."""
    values = []
    state = seed
    for _ in range(n):
        total = 0
        for _ in range(12):  # Irwin-Hall approximation of a gaussian
            state = (state * 6364136223846793005 + 1442695040888963407) % (
                1 << 64
            )
            total += state >> 40
        # 12 uniforms on [0, 2^24) sum to ~N(6*2^24, 2^24).
        z = (total - 6 * (1 << 24)) / (1 << 24)
        values.append(max(1, int(mean_ns + z * sigma_ns)))
    return values


class TestErrorBound:
    @pytest.mark.parametrize("q", [50.0, 90.0, 99.0, 99.9])
    def test_quantiles_within_documented_bound(self, q):
        values = _gaussian_latencies(5_000, mean_ns=40_000_000, sigma_ns=9_000_000)
        sketch = QuantileSketch.from_values(values, name="lat")
        exact = percentile(values, q)
        approx = sketch.quantile(q)
        # Documented: relative error <= 1/subbuckets (+1 unit of slack).
        assert abs(approx - exact) <= SKETCH_RELATIVE_ERROR * exact + 1

    def test_powers_of_two_are_exact(self):
        sketch = QuantileSketch("p2")
        for _ in range(10):
            sketch.observe(4096)
        assert sketch.quantile(50) == 4096
        assert sketch.quantile(99.9) == 4096

    def test_extremes_are_exact(self):
        values = [17, 999_983, 5, 123_456]
        sketch = QuantileSketch.from_values(values)
        assert sketch.quantile(0) == 5
        assert sketch.quantile(100) == 999_983
        assert sketch.vmin == 5
        assert sketch.vmax == 999_983

    def test_small_values_including_zero_and_one(self):
        sketch = QuantileSketch.from_values([0, 0, 1, 1, 2])
        assert sketch.quantile(0) == 0
        assert sketch.quantile(100) == 2
        assert sketch.count == 5

    def test_mean_is_exact(self):
        values = [10, 20, 30, 40]
        sketch = QuantileSketch.from_values(values)
        assert sketch.mean() == 25.0


class TestValidation:
    def test_negative_samples_rejected(self):
        sketch = QuantileSketch("lat")
        with pytest.raises(ValueError, match="lat: negative sample"):
            sketch.observe(-1)

    def test_non_finite_floats_rejected(self):
        sketch = QuantileSketch("lat")
        with pytest.raises(ValueError, match="non-finite"):
            sketch.observe(float("nan"))

    def test_empty_sketch_queries_raise(self):
        sketch = QuantileSketch("lat")
        with pytest.raises(ValueError, match="empty sketch"):
            sketch.quantile(50)
        with pytest.raises(ValueError, match="empty sketch"):
            sketch.mean()

    def test_out_of_range_percentile_rejected(self):
        sketch = QuantileSketch.from_values([1])
        with pytest.raises(ValueError, match="out of range"):
            sketch.quantile(101)
        with pytest.raises(ValueError, match="out of range"):
            sketch.quantile(-1)

    def test_subbucket_count_must_be_positive(self):
        with pytest.raises(ValueError, match="subbuckets"):
            QuantileSketch(subbuckets=0)


class TestMerge:
    def test_sharded_merge_is_byte_identical_to_serial(self):
        values = _gaussian_latencies(3_000, 25_000_000, 6_000_000)
        serial = QuantileSketch.from_values(values, name="lat")
        merged = QuantileSketch(name="lat")
        for shard in range(8):
            part = QuantileSketch(name="lat")
            part.observe_many(values[shard::8])
            merged.merge(part)
        assert merged.to_row()["buckets"] == serial.to_row()["buckets"]
        assert merged.count == serial.count
        assert merged.total == serial.total
        assert merged.vmin == serial.vmin
        assert merged.vmax == serial.vmax

    def test_merge_order_does_not_matter(self):
        a = QuantileSketch.from_values([1, 2, 3])
        b = QuantileSketch.from_values([1000, 2000])
        ab = QuantileSketch().merge(a).merge(b)
        ba = QuantileSketch().merge(b).merge(a)
        assert ab.to_row()["buckets"] == ba.to_row()["buckets"]
        assert ab.vmin == ba.vmin and ab.vmax == ba.vmax

    def test_merging_empty_is_a_no_op(self):
        sketch = QuantileSketch.from_values([5, 6])
        before = sketch.to_row()
        sketch.merge(QuantileSketch())
        assert sketch.to_row() == before

    def test_mismatched_subbuckets_rejected(self):
        sketch = QuantileSketch("lat")
        other = QuantileSketch(subbuckets=8)
        with pytest.raises(ValueError, match="16 vs 8 sub-buckets"):
            sketch.merge(other)


class TestSerialization:
    def test_row_round_trip_is_lossless(self):
        values = _gaussian_latencies(1_000, 30_000_000, 5_000_000)
        sketch = QuantileSketch.from_values(values, name="lat", unit="ns")
        sketch.labels["mode"] = "hotmem"
        row = sketch.to_row()
        assert row["type"] == "sketch"
        back = QuantileSketch.from_row(row)
        assert back.to_row() == row
        for q in (50.0, 99.0, 99.9):
            assert back.quantile(q) == sketch.quantile(q)

    def test_bucket_keys_are_sorted_strings(self):
        sketch = QuantileSketch.from_values([3, 100, 7])
        keys = list(sketch.to_row()["buckets"])
        assert keys == sorted(
            keys, key=lambda k: tuple(int(p) for p in k.split(":"))
        )
