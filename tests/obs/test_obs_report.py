"""The obs-report dashboard: assembly, rendering, digest stability."""

import pytest

from repro.obs.dashboard import build_obs_report, load_obs_report
from repro.obs.export import encode_rows
from repro.obs.rollup import RollupSeries
from repro.obs.sketch import QuantileSketch
from repro.units import GIB, SEC


def _rollup_row(context, name, kind, labels, values):
    series = RollupSeries(name, kind=kind, labels=labels, width_ns=SEC)
    for i, value in enumerate(values):
        series.record(i * SEC, value)
    row = series.to_row()
    row["context"] = context
    return row


def _sketch_row(context, name, values, labels=None):
    sketch = QuantileSketch(name, labels=labels or {})
    sketch.observe_many(values)
    row = sketch.to_row()
    row["context"] = context
    return row


def _breach_row(context, span_id, start_s, end_s, bad=5, total=20):
    return {
        "type": "span",
        "context": context,
        "id": span_id,
        "trace": 1,
        "parent": 1,
        "name": "slo.breach",
        "start_ns": start_s * SEC,
        "end_ns": end_s * SEC,
        "attrs": {
            "slo": "latency",
            "kind": "latency",
            "bad": bad,
            "total": total,
            "pressure": 2,
            "burn_x1000": 2500,
        },
    }


def _records():
    host_labels = {"host": 0, "mode": "hotmem"}
    node_labels = {"host": 0, "mode": "hotmem", "node": 0}
    return [
        {"type": "meta", "context": 0, "spans": 1, "metrics": 0},
        _breach_row(0, 2, 8, 16),
        _rollup_row(
            0, "used-h0", "used", host_labels, [1.0 * GIB, 3.0 * GIB]
        ),
        _rollup_row(
            0, "used-h0n0", "used", node_labels, [1.0 * GIB, 3.0 * GIB]
        ),
        _sketch_row(0, "fleet.invocation_latency_ns", [10_000, 20_000]),
        {"type": "meta", "context": 1, "spans": 0, "metrics": 0},
        _sketch_row(1, "fleet.invocation_latency_ns", [40_000]),
    ]


class TestBuild:
    def test_host_rows_render_and_node_rows_are_summarised(self):
        report = build_obs_report(_records())
        assert [r.name for r in report.rollups] == ["used-h0"]
        assert report.rollup_rows == 2
        assert report.rollups[0].vmax == 3.0 * GIB

    def test_sketches_merge_across_contexts(self):
        report = build_obs_report(_records())
        assert len(report.sketches) == 1
        merged = report.sketches[0]
        assert merged.contexts == 2
        assert merged.count == 3
        assert merged.vmax == 40_000

    def test_breach_windows_come_from_slo_breach_spans(self):
        report = build_obs_report(_records())
        assert len(report.breaches) == 1
        breach = report.breaches[0]
        assert breach.slo == "latency"
        assert (breach.bad, breach.total) == (5, 20)
        assert breach.burn_x1000 == 2500

    def test_context_count_spans_all_row_types(self):
        report = build_obs_report(_records())
        assert report.contexts == 2

    def test_empty_trace_builds_an_empty_report(self):
        report = build_obs_report([])
        assert report.rollups == []
        assert report.sketches == []
        assert report.breaches == []
        rendered = report.render()
        assert "(no rollup rows in this trace)" in rendered
        assert "(none)" in rendered


class TestRender:
    def test_sections_and_footer(self):
        rendered = build_obs_report(_records()).render()
        assert rendered.startswith("obs-report: fleet streaming telemetry")
        assert "host memory timelines (per-host rollups):" in rendered
        assert "sketch percentiles (merged across contexts):" in rendered
        assert "slo breach windows:" in rendered
        assert "contexts=2 rollups=2 sketches=1 breaches=1" in rendered
        assert "(+1 per-node rollup series" in rendered

    def test_digest_is_stable_and_tracks_content(self):
        a = build_obs_report(_records())
        b = build_obs_report(_records())
        assert a.digest == b.digest
        shifted = build_obs_report(_records() + [_breach_row(1, 3, 0, 8)])
        assert shifted.digest != a.digest

    def test_record_order_does_not_change_the_digest(self):
        records = _records()
        report = build_obs_report(records)
        assert build_obs_report(records[::-1]).digest == report.digest

    def test_summary_line_shape(self):
        line = build_obs_report(_records()).summary_line("trace.jsonl")
        assert line.startswith("[obs-report: sha256=")
        assert "rollups=2 sketches=1 breaches=1" in line
        assert line.endswith("file=trace.jsonl]")


class TestLoad:
    def test_load_round_trips_through_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(encode_rows(_records()))
        report = load_obs_report(str(path))
        assert report.digest == build_obs_report(_records()).digest

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_obs_report(str(tmp_path / "absent.jsonl"))
