"""Bounded-memory rollup series: exactness, compaction, determinism."""

import pytest

from repro.metrics.collector import TimeSeries
from repro.obs.rollup import RollupSeries
from repro.units import SEC


def _stream(n):
    """A deterministic sample stream with repeats and plateaus."""
    return [
        (i * 7_000, float((i * 37) % 211 - 50))
        for i in range(n)
    ]


class TestFinestResolutionEquivalence:
    """With no compaction, every aggregate matches the exact log."""

    def test_aggregates_match_timeseries_exactly(self):
        rollup = RollupSeries("r", max_buckets=1 << 20)
        exact = TimeSeries("t")
        for time_ns, value in _stream(500):
            rollup.record(time_ns, value)
            exact.record(time_ns, value)
        assert len(rollup) == len(exact)
        assert rollup.last() == exact.last()
        assert rollup.max_value() == exact.max_value()
        assert rollup.min_value() == min(exact.values())
        assert rollup.delta() == exact.delta()
        assert rollup.total() == sum(exact.values())
        assert rollup.mean() == sum(exact.values()) / len(exact)

    def test_first_and_last_are_exact_samples(self):
        rollup = RollupSeries("r", max_buckets=1 << 20)
        samples = _stream(100)
        for time_ns, value in samples:
            rollup.record(time_ns, value)
        assert rollup.first() == samples[0]
        assert rollup.last() == samples[-1]


class TestCompaction:
    def test_resident_buckets_stay_bounded(self):
        rollup = RollupSeries("r", max_buckets=16)
        for time_ns, value in _stream(100_000):
            rollup.record(time_ns, value)
        assert rollup.bucket_count() <= 16
        assert len(rollup) == 100_000

    def test_width_doubles_per_compaction(self):
        rollup = RollupSeries("r", max_buckets=4, width_ns=1)
        for i in range(64):
            rollup.record(i, 1.0)
        # Width grows by powers of two only.
        assert rollup.width_ns & (rollup.width_ns - 1) == 0
        assert rollup.width_ns > 1

    def test_aggregates_survive_compaction_exactly(self):
        rollup = RollupSeries("r", max_buckets=8)
        exact = TimeSeries("t")
        for time_ns, value in _stream(10_000):
            rollup.record(time_ns, value)
            exact.record(time_ns, value)
        assert rollup.max_value() == exact.max_value()
        assert rollup.min_value() == min(exact.values())
        assert rollup.total() == pytest.approx(sum(exact.values()))
        assert rollup.last() == exact.last()
        assert rollup.delta() == exact.delta()

    def test_compaction_is_deterministic(self):
        a = RollupSeries("r", max_buckets=8)
        b = RollupSeries("r", max_buckets=8)
        for time_ns, value in _stream(5_000):
            a.record(time_ns, value)
            b.record(time_ns, value)
        assert a.to_row() == b.to_row()

    def test_timeline_rows_are_per_bucket(self):
        rollup = RollupSeries("r", max_buckets=8, width_ns=SEC)
        for i in range(20):
            rollup.record(i * SEC, float(i))
        timeline = rollup.timeline()
        assert len(timeline) == rollup.bucket_count()
        counts = sum(count for _, count, _, _, _ in timeline)
        assert counts == 20
        for start_ns, _, vmin, mean, vmax in timeline:
            assert start_ns % rollup.width_ns == 0
            assert vmin <= mean <= vmax


class TestValidation:
    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf")]
    )
    def test_non_finite_samples_rejected(self, bad):
        rollup = RollupSeries("mem")
        with pytest.raises(ValueError, match="mem: non-finite sample"):
            rollup.record(0, bad)
        assert len(rollup) == 0

    def test_time_must_not_decrease(self):
        rollup = RollupSeries("r")
        rollup.record(10, 1.0)
        with pytest.raises(ValueError, match="sample at 5 before 10"):
            rollup.record(5, 2.0)

    def test_empty_series_accessors_raise(self):
        rollup = RollupSeries("r")
        for accessor in (
            rollup.last,
            rollup.first,
            rollup.max_value,
            rollup.min_value,
            rollup.mean,
        ):
            with pytest.raises(ValueError, match="empty series"):
                accessor()
        assert rollup.delta() == 0.0
        assert rollup.total() == 0.0

    def test_constructor_bounds(self):
        with pytest.raises(ValueError, match="max_buckets"):
            RollupSeries("r", max_buckets=1)
        with pytest.raises(ValueError, match="width_ns"):
            RollupSeries("r", width_ns=0)


class TestSerialization:
    def test_row_round_trip_preserves_aggregates(self):
        rollup = RollupSeries(
            "used-h0",
            kind="used",
            max_buckets=8,
            labels={"host": 0, "mode": "hotmem"},
        )
        for time_ns, value in _stream(3_000):
            rollup.record(time_ns, value)
        row = rollup.to_row()
        assert row["type"] == "rollup"
        back = RollupSeries.from_row(row)
        assert back.name == rollup.name
        assert back.kind == rollup.kind
        assert back.labels == rollup.labels
        assert len(back) == len(rollup)
        assert back.max_value() == rollup.max_value()
        assert back.min_value() == rollup.min_value()
        # Sample times coarsen to bucket starts on export; values are exact.
        assert back.last()[1] == rollup.last()[1]
        assert back.to_row()["buckets"] == row["buckets"]

    def test_times_s_reports_bucket_starts(self):
        rollup = RollupSeries("r", width_ns=SEC, max_buckets=64)
        rollup.record(2 * SEC, 1.0)
        rollup.record(5 * SEC, 2.0)
        assert rollup.times_s() == [2.0, 5.0]
