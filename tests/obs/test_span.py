"""Unit tests for causal spans: identity, parenting, close semantics,
consumers, and the inert NULL_SPAN."""

from repro.obs.span import NULL_SPAN, Span, Tracer
from repro.sim import Simulator, Timeout


def make_tracer(now_ns=0):
    sim = Simulator()
    tracer = Tracer()
    tracer.bind_sim(sim)
    if now_ns:
        sim.run_process(_advance(now_ns), name="advance")
    return sim, tracer


def _advance(ns):
    yield Timeout(ns)


class TestSpanIdentity:
    def test_root_starts_its_own_trace(self):
        _, tracer = make_tracer()
        root = tracer.span("device.unplug")
        assert root.trace_id == root.span_id
        assert root.parent_id is None

    def test_child_inherits_trace_and_links_parent(self):
        _, tracer = make_tracer()
        root = tracer.span("device.unplug")
        child = tracer.span("phase.offline", parent=root)
        grandchild = tracer.span("phase.migrate", parent=child)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert grandchild.trace_id == root.trace_id
        assert grandchild.parent_id == child.span_id

    def test_null_span_parent_makes_a_root(self):
        _, tracer = make_tracer()
        span = tracer.span("agent.plug", parent=NULL_SPAN)
        assert span.parent_id is None
        assert span.trace_id == span.span_id

    def test_ids_are_dense_and_deterministic(self):
        _, tracer = make_tracer()
        ids = [tracer.span(f"s{i}").span_id for i in range(5)]
        assert ids == [1, 2, 3, 4, 5]


class TestSpanClose:
    def test_close_stamps_clock_and_fires_consumer_once(self):
        sim, tracer = make_tracer()
        seen = []
        tracer.add_consumer(seen.append)
        span = tracer.span("faas.invoke")
        sim.run_process(_advance(100), name="t")
        span.close()
        span.close()  # idempotent: consumer must not fire again
        assert span.end_ns == 100
        assert seen == [span]

    def test_explicit_end_ns_and_close_attrs(self):
        _, tracer = make_tracer()
        span = tracer.span("device.plug", requested_bytes=4096)
        span.close(end_ns=77, completed_bytes=4096, error="")
        assert span.end_ns == 77
        assert span.duration_ns == 77
        assert span.attrs["completed_bytes"] == 4096

    def test_second_close_keeps_first_end(self):
        _, tracer = make_tracer()
        span = tracer.span("x").close(end_ns=5)
        span.close(end_ns=99)
        assert span.end_ns == 5

    def test_open_span_duration_is_zero(self):
        _, tracer = make_tracer()
        span = tracer.span("x")
        assert not span.closed
        assert span.duration_ns == 0

    def test_event_is_instant(self):
        sim, tracer = make_tracer()
        sim.run_process(_advance(42), name="t")
        event = tracer.event("partition.assign", partition=3)
        assert event.closed
        assert event.start_ns == event.end_ns == 42

    def test_context_manager_closes(self):
        _, tracer = make_tracer()
        with tracer.span("agent.recycle") as span:
            span.set(evicted=1)
        assert span.closed
        assert tracer.open_spans() == 0


class TestTracerRegistry:
    def test_open_bookkeeping(self):
        _, tracer = make_tracer()
        a = tracer.span("a")
        b = tracer.span("b")
        assert tracer.open_spans() == 2
        assert tracer.open_span_list() == [a, b]
        a.close()
        assert tracer.open_spans() == 1
        assert tracer.spans() == [a]
        b.close()
        assert tracer.spans() == [a, b]

    def test_close_open_closes_children_before_parents(self):
        _, tracer = make_tracer()
        root = tracer.span("faas.invoke")
        child = tracer.span("agent.plug", parent=root)
        closed = tracer.close_open(cut="run-end")
        assert closed == 2
        assert tracer.open_spans() == 0
        # Close order: the child (higher id) first, so consumers never
        # see a parent finish while its child is still open.
        assert tracer.spans() == [child, root]
        assert root.attrs["cut"] == "run-end"
        assert child.attrs["cut"] == "run-end"
        assert tracer.close_open() == 0  # idempotent

    def test_consumers_see_close_order(self):
        sim, tracer = make_tracer()
        order = []
        tracer.add_consumer(lambda s: order.append(s.name))
        first = tracer.span("first")
        second = tracer.span("second")
        second.close()
        first.close()
        del sim
        assert order == ["second", "first"]


class TestDisabledTracer:
    def test_span_degrades_to_null(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("x") is NULL_SPAN
        assert tracer.event("y") is NULL_SPAN
        assert tracer.spans() == []
        assert tracer.open_spans() == 0

    def test_consumers_not_registered(self):
        tracer = Tracer(enabled=False)
        tracer.add_consumer(lambda s: (_ for _ in ()).throw(AssertionError))
        tracer.span("x").close()  # must not raise


class TestNullSpan:
    def test_inert_and_falsy(self):
        assert not NULL_SPAN
        assert NULL_SPAN.closed
        assert NULL_SPAN.duration_ns == 0
        assert NULL_SPAN.set(a=1) is NULL_SPAN
        assert NULL_SPAN.close(end_ns=9) is NULL_SPAN
        assert NULL_SPAN.attrs == {}

    def test_usable_as_context_manager(self):
        with NULL_SPAN as span:
            assert span is NULL_SPAN

    def test_real_span_is_truthy(self):
        _, tracer = make_tracer()
        assert tracer.span("x")
        assert isinstance(tracer.span("y"), Span)
