"""Unit tests for the unified metrics registry: counters, gauges,
histograms, label handling, and deterministic snapshots."""

from repro.obs.metrics import MetricsRegistry


class TestCounters:
    def test_inc_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        reg.inc("plug_requests_total", error="ok")
        reg.inc("plug_requests_total", error="ok")
        reg.inc("plug_requests_total", error="nack")
        assert reg.counter_value("plug_requests_total", error="ok") == 2
        assert reg.counter_value("plug_requests_total", error="nack") == 1
        assert reg.counter_total("plug_requests_total") == 3

    def test_inc_with_explicit_value(self):
        reg = MetricsRegistry()
        reg.inc("plugged_bytes_total", 4096, vm="vm0")
        reg.inc("plugged_bytes_total", 8192, vm="vm0")
        assert reg.counter_value("plugged_bytes_total", vm="vm0") == 12288

    def test_missing_series_reads_zero(self):
        reg = MetricsRegistry()
        assert reg.counter_value("never_written_total") == 0
        assert reg.counter_total("never_written_total") == 0

    def test_label_values_coerced_to_strings(self):
        reg = MetricsRegistry()
        reg.inc("admissions_total", admitted=True, host=0)
        assert reg.counter_value("admissions_total", admitted="True", host="0") == 1


class TestGauges:
    def test_latest_value_wins(self):
        reg = MetricsRegistry()
        reg.gauge_set("open_spans", 4)
        reg.gauge_set("open_spans", 2)
        assert reg.gauge_value("open_spans") == 2

    def test_missing_gauge_is_none(self):
        assert MetricsRegistry().gauge_value("nope") is None


class TestHistograms:
    def test_count_sum_min_max(self):
        reg = MetricsRegistry()
        for value in (10, 30, 20):
            reg.observe("unplug_latency_ns", value, mode="hotmem")
        assert reg.histogram_count("unplug_latency_ns", mode="hotmem") == 3
        row = next(
            r for r in reg.snapshot() if r["kind"] == "histogram"
        )
        assert row["count"] == 3
        assert row["sum"] == 60
        assert row["min"] == 10
        assert row["max"] == 30

    def test_power_of_two_bucketing(self):
        reg = MetricsRegistry()
        # value v lands in bucket (v-1).bit_length(): v <= 2**exponent.
        for value, exponent in ((1, 0), (2, 1), (1024, 10), (1025, 11)):
            reg.observe("latency", value)
        row = next(r for r in reg.snapshot() if r["kind"] == "histogram")
        assert row["buckets"] == {"0": 1, "1": 1, "10": 1, "11": 1}

    def test_missing_histogram_counts_zero(self):
        assert MetricsRegistry().histogram_count("nope") == 0


class TestRegistry:
    def test_label_values_distinct_and_sorted(self):
        reg = MetricsRegistry()
        reg.inc("unplug_requests_total", mode="vanilla")
        reg.inc("unplug_requests_total", mode="hotmem")
        reg.observe("unplug_latency_ns", 5, mode="balloon")
        assert reg.label_values("unplug_requests_total", "mode") == [
            "hotmem",
            "vanilla",
        ]
        assert reg.label_values("unplug_latency_ns", "mode") == ["balloon"]

    def test_series_count_spans_all_kinds(self):
        reg = MetricsRegistry()
        reg.inc("c", vm="a")
        reg.inc("c", vm="b")
        reg.gauge_set("g", 1)
        reg.observe("h", 1)
        assert reg.series_count() == 4

    def test_snapshot_is_deterministically_ordered(self):
        reg = MetricsRegistry()
        reg.observe("h", 1)
        reg.inc("z_counter")
        reg.inc("a_counter", vm="b")
        reg.inc("a_counter", vm="a")
        reg.gauge_set("g", 7)
        kinds = [row["kind"] for row in reg.snapshot()]
        assert kinds == ["counter", "counter", "counter", "gauge", "histogram"]
        counters = [row for row in reg.snapshot() if row["kind"] == "counter"]
        assert [(r["name"], r["labels"]) for r in counters] == [
            ("a_counter", {"vm": "a"}),
            ("a_counter", {"vm": "b"}),
            ("z_counter", {}),
        ]

    def test_disabled_registry_is_inert(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("c")
        reg.gauge_set("g", 1)
        reg.observe("h", 1)
        assert reg.series_count() == 0
        assert reg.snapshot() == []
        assert reg.counter_value("c") == 0
