"""Unit tests for the units module."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


def test_page_and_block_constants():
    assert units.PAGE_SIZE == 4096
    assert units.MEMORY_BLOCK_SIZE == 128 * 1024 * 1024
    assert units.PAGES_PER_BLOCK == 32768


def test_bytes_to_pages_rounds_up():
    assert units.bytes_to_pages(1) == 1
    assert units.bytes_to_pages(4096) == 1
    assert units.bytes_to_pages(4097) == 2


def test_bytes_to_blocks_rounds_up():
    assert units.bytes_to_blocks(1) == 1
    assert units.bytes_to_blocks(units.MEMORY_BLOCK_SIZE) == 1
    assert units.bytes_to_blocks(units.MEMORY_BLOCK_SIZE + 1) == 2


@given(st.integers(0, 10**15))
def test_pages_roundtrip_is_monotone(size):
    pages = units.bytes_to_pages(size)
    assert units.pages_to_bytes(pages) >= size
    assert units.pages_to_bytes(max(pages - 1, 0)) <= max(size, 0) or pages == 0


def test_format_bytes_picks_binary_suffix():
    assert units.format_bytes(384 * units.MIB) == "384MiB"
    assert units.format_bytes(2 * units.GIB) == "2GiB"
    assert units.format_bytes(4 * units.KIB) == "4KiB"
    assert units.format_bytes(100) == "100B"


def test_format_ns_magnitudes():
    assert units.format_ns(1_500) == "1.500us"
    assert units.format_ns(2_500_000) == "2.500ms"
    assert units.format_ns(3 * units.SEC) == "3.000s"
    assert units.format_ns(500) == "500ns"
