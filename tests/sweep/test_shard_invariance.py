"""Worker-count invariance: payloads and trace exports are byte-identical.

The determinism contract of :mod:`repro.sweep`: for any worker count the
merged result payload and the exported trace/metrics stream match the
serial run bit for bit.  The fast test proves it on a scaled-down chaos
sweep for workers {1, 2}; the slow matrix covers density, chaos and
cluster-chaos for workers {1, 2, 8} (the CI cluster gate re-checks the
rendered output the same way).
"""

import hashlib

import pytest

from repro.experiments import chaos, cluster_chaos, density
from repro.sweep import RunContext, collecting, payload_digest

CHAOS_FAST = chaos.ChaosConfig(
    fault_rates=(0.0, 0.2),
    modes=("hotmem",),
    duration_s=10,
    keep_alive_s=4,
    recycle_interval_s=2,
)

DENSITY_FAST = density.DensityConfig(
    hosts=2,
    max_vms_per_host=3,
    duration_s=20,
    drain_s=10,
    stagger_s=10.0,
    keep_alive_s=5,
)

CLUSTER_FAST = cluster_chaos.ClusterChaosConfig(
    fault_rates=(0.0, 0.2),
    duration_s=16,
    drain_s=10,
    keep_alive_s=6,
    stagger_s=8.0,
    burst_len_s=4.0,
)


def _run_with_workers(run_fn, config, workers, trace_path):
    """One full experiment run; returns (payload digest, trace digest)."""
    with collecting(RunContext(workers=workers, trace=True)) as report:
        result = run_fn(config)
        report.write_trace(str(trace_path))
    return (
        payload_digest(result),
        hashlib.sha256(trace_path.read_bytes()).hexdigest(),
    )


def test_chaos_is_worker_count_invariant(tmp_path):
    digests = {
        workers: _run_with_workers(
            chaos.run, CHAOS_FAST, workers, tmp_path / f"chaos-{workers}.jsonl"
        )
        for workers in (1, 2)
    }
    assert digests[2] == digests[1]


def test_streaming_telemetry_is_worker_count_invariant(tmp_path):
    """Rollups, sketches and the obs-report digest survive sharding.

    Trace byte-identity already implies this, but the dashboard is the
    artifact CI gates on — so compare what ``obs-report`` actually
    renders, and prove the trace carries telemetry rows at all.
    """
    from repro.obs.dashboard import load_obs_report
    from repro.obs.export import read_trace

    reports = {}
    for workers in (1, 2):
        path = tmp_path / f"density-{workers}.jsonl"
        _run_with_workers(density.run, DENSITY_FAST, workers, path)
        rows = read_trace(str(path))
        assert any(row["type"] == "rollup" for row in rows)
        assert any(row["type"] == "sketch" for row in rows)
        reports[workers] = load_obs_report(str(path))
    assert reports[2].digest == reports[1].digest
    assert reports[1].sketches, "density trace must carry latency sketches"


@pytest.mark.slow
@pytest.mark.parametrize(
    "run_fn, config",
    [
        (density.run, DENSITY_FAST),
        (chaos.run, CHAOS_FAST),
        (cluster_chaos.run, CLUSTER_FAST),
    ],
    ids=["density", "chaos", "cluster-chaos"],
)
def test_full_matrix_is_worker_count_invariant(run_fn, config, tmp_path):
    digests = {
        workers: _run_with_workers(
            run_fn, config, workers, tmp_path / f"trace-{workers}.jsonl"
        )
        for workers in (1, 2, 8)
    }
    assert digests[2] == digests[1]
    assert digests[8] == digests[1]
