"""Microbenchmark jobs and the snapshot regression gate."""

from repro.sweep.bench import (
    MAX_ROLLUP_RESIDENT_BYTES,
    MAX_UNTRACED_BYTES_PER_OP,
    BenchResult,
    bench_engine,
    bench_mm_occupancy,
    bench_obs_untraced,
    bench_rollup,
    bench_sweep_runner,
    compare,
    snapshot,
)


class TestJobs:
    def test_engine_job_reports_positive_throughput(self):
        result = bench_engine(events=2_000)
        assert result.unit == "events/s"
        assert result.value > 0

    def test_untraced_obs_path_is_allocation_free(self):
        throughput, retained = bench_obs_untraced(ops=20_000)
        assert throughput.value > 0
        assert retained.unit == "bytes/op"
        # The satellite invariant: NO_OBS/NO_SCOPE/NULL_SPAN retain
        # nothing per operation when tracing is off.
        assert retained.value <= MAX_UNTRACED_BYTES_PER_OP

    def test_mm_occupancy_job_round_trips_pages(self):
        result = bench_mm_occupancy(rounds=50)
        assert result.unit == "pages/s"
        assert result.value > 0

    def test_rollup_job_stays_under_the_memory_ceiling(self):
        throughput, resident = bench_rollup(samples=50_000, max_buckets=64)
        assert throughput.unit == "samples/s"
        assert throughput.value > 0
        assert resident.unit == "bytes"
        # The streaming invariant: resident memory is O(buckets), so a
        # 50k-sample run already sits under the 10**6-sample ceiling.
        assert resident.value <= MAX_ROLLUP_RESIDENT_BYTES

    def test_sweep_runner_job_names_by_worker_count(self):
        serial = bench_sweep_runner(cells=2, events_per_cell=100, workers=1)
        sharded = bench_sweep_runner(cells=2, events_per_cell=100, workers=2)
        assert serial.name == "sweep_cells_per_s_serial"
        assert sharded.name == "sweep_cells_per_s_sharded"


class TestSnapshot:
    def test_schema_has_version_host_and_jobs(self):
        doc = snapshot([BenchResult("job_a", 123.456, "ops/s")])
        assert doc["version"] == 1
        assert set(doc["host"]) == {"python", "platform", "cpus"}
        assert doc["jobs"] == {"job_a": {"value": 123.46, "unit": "ops/s"}}


def _committed(**jobs):
    return {
        "version": 1,
        "jobs": {
            name: {"value": value, "unit": unit}
            for name, (value, unit) in jobs.items()
        },
    }


class TestCompare:
    def test_within_threshold_passes(self):
        committed = _committed(job_a=(100.0, "ops/s"))
        current = [BenchResult("job_a", 60.0, "ops/s")]
        assert compare(current, committed, min_ratio=0.5) == []

    def test_throughput_regression_fails_softly(self):
        committed = _committed(job_a=(100.0, "ops/s"))
        current = [BenchResult("job_a", 40.0, "ops/s")]
        failures = compare(current, committed, min_ratio=0.5)
        assert len(failures) == 1 and "job_a" in failures[0]

    def test_bytes_per_op_gates_absolutely(self):
        committed = _committed(obs_untraced_bytes_per_op=(0.0, "bytes/op"))
        current = [BenchResult("obs_untraced_bytes_per_op", 8.0, "bytes/op")]
        failures = compare(current, committed)
        assert len(failures) == 1 and "ceiling" in failures[0]

    def test_rollup_resident_bytes_gate_is_absolute(self):
        committed = _committed(rollup_resident_bytes=(40_000.0, "bytes"))
        ok = [BenchResult("rollup_resident_bytes", 50_000.0, "bytes")]
        assert compare(ok, committed) == []
        blown = [
            BenchResult(
                "rollup_resident_bytes",
                MAX_ROLLUP_RESIDENT_BYTES + 1.0,
                "bytes",
            )
        ]
        failures = compare(blown, committed)
        assert len(failures) == 1 and "bounded-memory" in failures[0]

    def test_unknown_absolute_unit_requires_a_ceiling(self):
        committed = _committed(leaky=(0.0, "bytes/op"))
        current = [BenchResult("leaky", 0.0, "bytes/op")]
        failures = compare(current, committed)
        assert len(failures) == 1 and "no registered ceiling" in failures[0]

    def test_job_set_mismatch_fails_both_ways(self):
        committed = _committed(gone=(10.0, "ops/s"))
        current = [BenchResult("new", 10.0, "ops/s")]
        failures = compare(current, committed)
        assert len(failures) == 2

    def test_missing_jobs_table_fails(self):
        assert compare([], {"version": 1}) != []
