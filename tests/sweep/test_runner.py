"""Runner semantics: grid-order merge, ambient context, cell hygiene."""

import pytest

from repro.analysis import sanitizer as san
from repro.sweep import (
    RunContext,
    SweepGrid,
    ambient_context,
    ambient_report,
    collecting,
    execute_cell,
    payload_digest,
    run_sweep,
)


def _square(config, cell):
    return config * cell["n"] * cell["n"]


GRID = SweepGrid("squares").axis("n", (1, 2, 3, 4))


class TestSerial:
    def test_results_come_back_in_grid_order(self):
        results = run_sweep(GRID, _square, 10)
        assert [r.index for r in results] == [0, 1, 2, 3]
        assert [r.payload for r in results] == [10, 40, 90, 160]

    def test_results_carry_cell_identity(self):
        results = run_sweep(GRID, _square, 1)
        assert results[2].cell_id == "n=3"
        assert results[2]["n"] == 3

    def test_exceptions_propagate(self):
        def boom(config, cell):
            raise RuntimeError("cell failed")

        with pytest.raises(RuntimeError, match="cell failed"):
            run_sweep(GRID, boom, None)


class TestSharded:
    def test_sharded_payloads_match_serial(self):
        serial = run_sweep(GRID, _square, 10, context=RunContext(workers=1))
        sharded = run_sweep(GRID, _square, 10, context=RunContext(workers=2))
        assert payload_digest([r.payload for r in serial]) == payload_digest(
            [r.payload for r in sharded]
        )
        assert [r.index for r in sharded] == [r.index for r in serial]

    def test_single_cell_grid_runs_with_any_worker_count(self):
        grid = SweepGrid("one").axis("n", (5,))
        results = run_sweep(grid, _square, 1, context=RunContext(workers=8))
        assert [r.payload for r in results] == [25]


class TestCellHygiene:
    def test_every_cell_sees_fresh_id_counters(self):
        def first_pid(config, cell):
            from repro.mm.mm_struct import MmStruct

            return MmStruct(f"proc-{cell['n']}").pid

        pids = [r.payload for r in run_sweep(GRID, first_pid, None)]
        assert pids == [1, 1, 1, 1]

    def test_execute_cell_returns_plain_outcome(self):
        cell = GRID.cells()[1]
        outcome = execute_cell(_square, 10, cell, RunContext())
        assert (outcome.index, outcome.cell_id) == (1, "n=2")
        assert outcome.payload == 40
        assert outcome.trace_rows == []


class TestSanitize:
    def test_sanitizer_installed_only_inside_the_cell(self):
        def probe(config, cell):
            return san.is_installed()

        context = RunContext(sanitize=True, sanitize_every=64)
        results = run_sweep(GRID, probe, None, context=context)
        assert all(r.payload for r in results)
        assert not san.is_installed()


class TestAmbient:
    def test_defaults_outside_a_collecting_block(self):
        assert ambient_context() == RunContext()
        assert ambient_report() is None

    def test_collecting_installs_and_restores(self):
        context = RunContext(workers=2)
        with collecting(context) as report:
            assert ambient_context() is context
            assert ambient_report() is report
        assert ambient_report() is None

    def test_report_absorbs_every_cell(self):
        with collecting(RunContext()) as report:
            run_sweep(GRID, _square, 1)
            run_sweep(GRID, _square, 2)
        assert report.cells_run == 2 * len(GRID)

    def test_sanitizer_line_format_is_stable(self):
        with collecting(RunContext(sanitize=True)) as report:
            run_sweep(GRID, _square, 1)
        line = report.sanitizer_line()
        assert line.startswith("[sanitizer: ")
        assert line.endswith("guest memory manager(s), no violations]")
