"""Grid model: axis crossing, cell identity, canonical digests."""

import enum
from dataclasses import dataclass

import pytest

from repro.sweep import Cell, CellResult, SweepGrid, canonical, payload_digest


class TestAxes:
    def test_later_axes_vary_fastest(self):
        grid = (
            SweepGrid("g")
            .axis("mode", ("vanilla", "hotmem"))
            .axis("rate", (0.0, 0.2))
        )
        assert [c.cell_id for c in grid.cells()] == [
            "mode=vanilla/rate=0.0",
            "mode=vanilla/rate=0.2",
            "mode=hotmem/rate=0.0",
            "mode=hotmem/rate=0.2",
        ]

    def test_cell_index_matches_grid_position(self):
        grid = SweepGrid("g").axis("seed", (0, 1, 2))
        assert [c.index for c in grid.cells()] == [0, 1, 2]

    def test_duplicate_axis_rejected(self):
        grid = SweepGrid("g").axis("mode", ("a",))
        with pytest.raises(ValueError, match="duplicate axis"):
            grid.axis("mode", ("b",))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            SweepGrid("g").axis("mode", ())

    def test_len_and_iter_cover_the_cross_product(self):
        grid = SweepGrid("g").axis("a", (1, 2)).axis("b", (1, 2, 3))
        assert len(grid) == 6
        assert [c.index for c in grid] == list(range(6))

    def test_axis_names_in_declaration_order(self):
        grid = SweepGrid("g").axis("mode", ("a",)).axis("rate", (0.5,))
        assert grid.axes() == ("mode", "rate")


class TestExplicit:
    def test_row_order_is_cell_order(self):
        grid = SweepGrid.explicit(
            ("mode", "spare"),
            [{"mode": "warm", "spare": 2}, {"mode": "cold", "spare": 0}],
            name="policy",
        )
        assert [c.cell_id for c in grid.cells()] == [
            "mode=warm/spare=2",
            "mode=cold/spare=0",
        ]

    def test_row_key_mismatch_rejected(self):
        with pytest.raises(ValueError, match="do not match axes"):
            SweepGrid.explicit(("mode",), [{"mode": "a", "extra": 1}])

    def test_axis_after_explicit_rejected(self):
        grid = SweepGrid.explicit(("mode",), [{"mode": "a"}])
        with pytest.raises(ValueError, match="explicit grid"):
            grid.axis("rate", (0.0,))


class TestCellAccess:
    def test_getitem_and_get(self):
        cell = Cell(0, "mode=a", (("mode", "a"), ("rate", 0.2)))
        assert cell["rate"] == 0.2
        assert cell.get("mode") == "a"
        assert cell.get("missing", "fallback") == "fallback"

    def test_missing_axis_raises_keyerror(self):
        cell = Cell(0, "mode=a", (("mode", "a"),))
        with pytest.raises(KeyError):
            cell["rate"]

    def test_as_dict_preserves_axis_order(self):
        cell = Cell(0, "b=2/a=1", (("b", 2), ("a", 1)))
        assert list(cell.as_dict()) == ["b", "a"]

    def test_cell_result_of_copies_identity(self):
        cell = Cell(3, "mode=a", (("mode", "a"),))
        result = CellResult.of(cell, payload=42)
        assert (result.index, result.cell_id) == (3, "mode=a")
        assert result["mode"] == "a"
        assert result.payload == 42


class _Color(enum.Enum):
    RED = "red"


@dataclass(frozen=True)
class _Point:
    x: int
    y: float


class TestCanonical:
    def test_floats_keep_repr_precision(self):
        assert canonical(0.1 + 0.2) == repr(0.1 + 0.2)

    def test_dataclasses_become_dicts(self):
        assert canonical(_Point(1, 0.5)) == {"x": 1, "y": "0.5"}

    def test_enums_collapse_to_value(self):
        assert canonical(_Color.RED) == "red"

    def test_sets_sort_deterministically(self):
        assert canonical({"b", "a"}) == ["a", "b"]

    def test_digest_ignores_dict_insertion_order(self):
        assert payload_digest({"a": 1, "b": 2}) == payload_digest(
            {"b": 2, "a": 1}
        )

    def test_digest_distinguishes_payloads(self):
        assert payload_digest((1, 2)) != payload_digest((2, 1))
