"""The deployment-backend contract, enforced over every registered mode.

Anything in the registry — built-in or baseline — must satisfy the same
obligations the experiments rely on: it provisions through the fleet's
admission-checked path, serves an invocation end to end, reclaims memory
between bursts (or documents why it cannot), keeps the guest memory
manager's invariants intact under the sanitizer, and declares an
admission credit the arbiter can use.  A new mode registered via
:func:`repro.modes.register` gets this suite for free through the
``registered()`` parametrization.
"""

import pytest

from repro.analysis import sanitizer
from repro.cluster.provision import Fleet, VmSpec
from repro.cluster.routing import TraceRouter
from repro.faas.agent import FunctionDeployment
from repro.faas.policy import KeepAlivePolicy
from repro.modes import DeploymentBackend, get_mode, registered
from repro.sim import Simulator
from repro.units import MIB, SEC
from repro.workloads.functions import get_function
from repro.workloads.traces import InvocationTrace

MODES = registered()


def spec_for(mode: DeploymentBackend, name: str) -> VmSpec:
    """One VM sized like a density-sweep cell.

    Eight partitions keep the elastic region at 2 GiB so even the
    coarsest datapath (whole-DIMM, 1 GiB units) has room to both plug
    and unplug within the region.
    """
    function = get_function("html")
    return VmSpec.for_function(
        name,
        mode,
        function.memory_limit_bytes,
        concurrency=8,
        shared_bytes=function.shared_deps_bytes,
        boot_memory_bytes=256 * MIB,
    )


def serve(sim: Simulator, fleet: Fleet, mode: DeploymentBackend, count: int = 3):
    """Provision one VM, serve ``count`` invocations, run the recycler
    long enough for keep-alive expiry, and return (handle, router)."""
    handle = fleet.provision(spec_for(mode, f"{mode.name}-vm"))
    agent = handle.deploy(
        [FunctionDeployment(get_function("html"), max_instances=8)],
        KeepAlivePolicy(keep_alive_ns=2 * SEC, recycle_interval_ns=1 * SEC),
    )
    router = TraceRouter(sim)
    router.register(agent)
    router.drive(InvocationTrace("html", [0] * count))
    agent.start_recycler(until_ns=30 * SEC)
    router.run(until_ns=30 * SEC)
    handle.vm.check_consistency()
    return handle, router


@pytest.fixture(params=MODES, ids=[m.name for m in MODES])
def mode(request) -> DeploymentBackend:
    return request.param


class TestModeContract:
    def test_registry_roundtrip(self, mode):
        assert get_mode(mode.name) is mode
        assert get_mode(mode) is mode
        assert str(mode) == mode.value == mode.name

    def test_reclaim_credit_in_unit_interval(self, mode):
        assert 0.0 <= mode.reclaim_credit <= 1.0
        # Non-elastic modes give nothing back between bursts, so the
        # arbiter must not be promised anything.
        if not mode.elastic:
            assert mode.reclaim_credit == 0.0

    def test_provisions_and_serves_through_fleet(self, sim, fleet, mode):
        handle, router = serve(sim, fleet, mode)
        assert len(router.successful_records()) == 3
        assert router.failure_count == 0
        assert handle.vm.datapath is not None

    def test_reclaims_or_documents_why_not(self, sim, fleet, mode):
        if not mode.elastic:
            # Statically sized modes must say how (or why) they skip
            # reclamation — the density report surfaces this string.
            assert mode.reclaim_semantics
            return
        handle = fleet.provision(spec_for(mode, f"{mode.name}-vm"))
        agent = handle.deploy(
            [FunctionDeployment(get_function("html"), max_instances=8)],
            KeepAlivePolicy(keep_alive_ns=2 * SEC, recycle_interval_ns=1 * SEC),
        )
        router = TraceRouter(sim)
        router.register(agent)
        router.drive(InvocationTrace("html", [0, 0, 0]))
        agent.start_recycler(until_ns=60 * SEC)
        # Phase 1: serve the burst and observe the grown footprint.
        router.run(until_ns=1 * SEC)
        grown = handle.vm.elastic_bytes
        assert grown > 0, "elastic mode never plugged for the burst"
        # Phase 2: idle past keep-alive; the recycler must give memory
        # back through this mode's datapath.
        router.run(until_ns=60 * SEC)
        handle.vm.check_consistency()
        assert handle.vm.elastic_bytes < grown
        assert mode.reclaim_granularity_bytes > 0

    def test_sanitizer_invariants_hold(self, mode):
        sim = Simulator()

        def exercise():
            fleet = Fleet(sim)
            handle, router = serve(sim, fleet, mode)
            assert len(router.successful_records()) == 3
            handle.shutdown()

        if sanitizer.is_installed():  # --sanitize / REPRO_SANITIZE run
            exercise()
            return
        with sanitizer.sanitized(sanitizer.SanitizerConfig(every_n_events=16)):
            exercise()
            swept = sum(s.checks_run for s in sanitizer.installed_sanitizers())
            assert swept > 0

    def test_shutdown_releases_host_memory(self, sim, fleet, mode):
        handle, _ = serve(sim, fleet, mode)
        host_index, node_id = handle.host_index, handle.node_id
        handle.shutdown()
        assert handle.vm.backed_bytes == 0
        assert fleet.arbiter.committed_bytes(host_index, node_id) == 0

    def test_fault_sites_declared_and_known(self, mode):
        from repro.faults.sites import ALL_SITES

        assert mode.fault_sites
        assert set(mode.fault_sites) <= set(ALL_SITES)
