"""Shared fixtures for the test suite.

Every VM fixture goes through the cluster provisioning layer
(:mod:`repro.cluster.provision`) — the same admission-checked path the
experiments use — so host accounting and fleet context are always wired.
"""

from __future__ import annotations

import os

import pytest

from repro.cluster.provision import Fleet, VmSpec
from repro.core import HotMemBootParams
from repro.faas.policy import DeploymentMode
from repro.host import HostMachine
from repro.sim import CostModel, Simulator
from repro.units import GIB, MIB
from repro.vmm import VirtualMachine


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help="attach the memory-state sanitizer to every guest memory "
        "manager constructed during the tests (see docs/analysis.md)",
    )


@pytest.fixture(autouse=True)
def _memory_sanitizer(request):
    """Run every test under the sanitizer when --sanitize (or
    REPRO_SANITIZE=1) is given; a no-op otherwise."""
    enabled = request.config.getoption("--sanitize") or os.environ.get(
        "REPRO_SANITIZE"
    )
    if not enabled:
        yield
        return
    from repro.analysis import sanitizer

    if sanitizer.is_installed():  # a sanitizer test already installed one
        yield
        return
    with sanitizer.sanitized(sanitizer.SanitizerConfig(every_n_events=64)):
        yield


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def fleet(sim) -> Fleet:
    """A single-host fleet on the paper's evaluation host."""
    return Fleet(sim)


@pytest.fixture
def host(fleet) -> HostMachine:
    """The paper's evaluation host (2 nodes × 10 cores × 128 GiB)."""
    return fleet.hosts[0]


@pytest.fixture
def vanilla_vm(fleet) -> VirtualMachine:
    """A vanilla VM with a 4 GiB hotplug region."""
    return fleet.provision(
        VmSpec("vanilla-test", region_bytes=4 * GIB)
    ).vm


@pytest.fixture
def hotmem_params() -> HotMemBootParams:
    """8 × 384 MiB partitions plus a 256 MiB shared partition."""
    return HotMemBootParams.for_function(
        384 * MIB, concurrency=8, shared_bytes=256 * MIB
    )


@pytest.fixture
def hotmem_vm(fleet, hotmem_params) -> VirtualMachine:
    """A HotMem VM sized exactly for its partitions."""
    return fleet.provision(
        VmSpec(
            "hotmem-test",
            mode=DeploymentMode.HOTMEM,
            partition_bytes=hotmem_params.partition_bytes,
            concurrency=hotmem_params.concurrency,
            shared_bytes=hotmem_params.shared_bytes,
        )
    ).vm


@pytest.fixture
def costs() -> CostModel:
    """The calibrated default cost model."""
    return CostModel()
