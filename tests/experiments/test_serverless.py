"""Unit tests for the serverless experiment harness."""

import pytest

from repro.experiments.serverless import (
    FunctionLoad,
    ServerlessScenario,
    run_scenario,
)
from repro.faas.policy import DeploymentMode
from repro.units import MEMORY_BLOCK_SIZE, MIB


def small_scenario(mode, **overrides):
    defaults = dict(
        mode=mode,
        loads=(FunctionLoad.for_function("html", max_instances=6),),
        duration_s=40,
        keep_alive_s=10,
        recycle_interval_s=5,
        drain_s=10,
    )
    defaults.update(overrides)
    return ServerlessScenario(**defaults)


class TestScenarioDerivation:
    def test_partition_bytes_is_max_limit_rounded(self):
        scenario = ServerlessScenario(
            mode=DeploymentMode.HOTMEM,
            loads=(
                FunctionLoad.for_function("cnn", max_instances=2),
                FunctionLoad.for_function("bert", max_instances=2),
            ),
        )
        assert scenario.partition_bytes == 640 * MIB

    def test_concurrency_sums_loads(self):
        scenario = ServerlessScenario(
            mode=DeploymentMode.HOTMEM,
            loads=(
                FunctionLoad.for_function("cnn", max_instances=4),
                FunctionLoad.for_function("html", max_instances=40),
            ),
        )
        assert scenario.concurrency == 44

    def test_shared_bytes_block_aligned(self):
        scenario = small_scenario(DeploymentMode.HOTMEM)
        assert scenario.shared_bytes % MEMORY_BLOCK_SIZE == 0

    def test_table1_defaults_applied(self):
        load = FunctionLoad.for_function("html")
        assert load.max_instances == 50  # 10 vcpus / 0.2


@pytest.mark.parametrize(
    "mode",
    [DeploymentMode.HOTMEM, DeploymentMode.VANILLA, DeploymentMode.OVERPROVISIONED],
)
class TestRunScenario:
    def test_all_requests_served(self, mode):
        run = run_scenario(small_scenario(mode))
        assert run.oom_failures == 0
        assert len(run.records) > 0
        assert all(r.ok for r in run.records)

    def test_scaling_behaviour_per_mode(self, mode):
        run = run_scenario(small_scenario(mode))
        plugs = [e for e in run.resize_events if e.kind == "plug"]
        if mode is DeploymentMode.OVERPROVISIONED:
            assert plugs == []
            assert run.shrink_events == [] or all(
                e.unplug_requested_bytes == 0 for e in run.shrink_events
            )
        else:
            assert len(plugs) > 0
            assert len(run.shrink_events) > 0


class TestCrossModeComparability:
    def test_same_trace_same_arrival_count(self):
        runs = {
            mode: run_scenario(small_scenario(mode))
            for mode in (DeploymentMode.HOTMEM, DeploymentMode.VANILLA)
        }
        counts = {mode: len(run.records) for mode, run in runs.items()}
        assert len(set(counts.values())) == 1

    def test_hotmem_unplugs_without_migrations(self):
        run = run_scenario(small_scenario(DeploymentMode.HOTMEM))
        unplugs = [e for e in run.resize_events if e.kind == "unplug"]
        assert unplugs
        assert all(e.migrated_pages == 0 for e in unplugs)
