"""Tests for the K1 keep-alive × eviction-policy sweep.

The acceptance gates of the lifecycle refactor live here: the sweep
reports a cold-start-vs-density frontier for every deployment mode,
greedy-dual measurably diverges from plain ttl on at least one trace
shape, and the sweep payload is byte-identical for any worker count
({1, 2} fast, {1, 2, 8} in the slow matrix).
"""

import pytest

from repro.experiments import keepalive
from repro.sweep import RunContext, collecting, payload_digest, registry

FAST = keepalive.KeepAliveConfig(
    policies=("ttl", "greedy-dual"),
    horizons_s=(4,),
)

TINY = keepalive.KeepAliveConfig(
    modes=("hotmem",),
    policies=("ttl", "greedy-dual"),
    horizons_s=(4,),
    traces=("bursty",),
)


@pytest.fixture(scope="module")
def fast_result():
    return keepalive.run(FAST)


class TestFrontier:
    def test_every_mode_reports_a_frontier(self, fast_result):
        for mode in FAST.modes:
            points = fast_result.frontier(mode)
            assert points, f"no frontier points for {mode}"
            assert fast_result.pareto(mode)

    def test_frontier_points_are_densest_first(self, fast_result):
        for mode in FAST.modes:
            densities = [p[0] for p in fast_result.frontier(mode)]
            assert densities == sorted(densities, reverse=True)

    def test_pareto_rates_strictly_improve(self, fast_result):
        for mode in FAST.modes:
            rates = [p[1] for p in fast_result.pareto(mode)]
            assert rates == sorted(rates, reverse=True)
            assert len(set(rates)) == len(rates)

    def test_cells_cover_the_full_grid(self, fast_result):
        assert len(fast_result.cells) == (
            len(FAST.modes)
            * len(FAST.policies)
            * len(FAST.horizons_s)
            * len(FAST.traces)
        )
        for cell in fast_result.cells:
            assert cell.invocations > 0
            assert cell.peak_used_bytes > 0

    def test_cell_lookup_raises_on_missing(self, fast_result):
        with pytest.raises(KeyError):
            fast_result.cell("hotmem", "ttl", 999, "diurnal")

    def test_render_names_every_mode_frontier(self, fast_result):
        rendered = fast_result.render()
        for mode in FAST.modes:
            assert f"{mode} frontier:" in rendered
        assert "greedy-dual vs ttl diverges on:" in rendered


class TestDivergence:
    def test_greedy_dual_diverges_from_ttl(self, fast_result):
        """The refactor's acceptance gate: the ranking must change
        measured outcomes on at least one trace shape."""
        assert fast_result.divergent_traces()

    def test_divergence_is_observable_in_evictions(self, fast_result):
        diverged = False
        for trace in FAST.traces:
            for mode in FAST.modes:
                a = fast_result.cell(mode, "greedy-dual", 4, trace)
                b = fast_result.cell(mode, "ttl", 4, trace)
                if a.cold_function_evictions != b.cold_function_evictions:
                    diverged = True
        assert diverged


class TestShardInvariance:
    @staticmethod
    def _digest(config, workers):
        with collecting(RunContext(workers=workers)):
            return payload_digest(keepalive.run(config))

    def test_workers_1_and_2_are_byte_identical(self):
        assert self._digest(TINY, 2) == self._digest(TINY, 1)

    @pytest.mark.slow
    def test_full_matrix_workers_1_2_8(self):
        digests = {w: self._digest(FAST, w) for w in (1, 2, 8)}
        assert digests[2] == digests[1]
        assert digests[8] == digests[1]


class TestRegistration:
    def test_registered_as_mode_sweeping_experiment(self):
        spec = registry()["keepalive"]
        assert spec.mode_sweeping
        assert "frontier" in spec.description

    def test_paper_scale_grows_the_grid(self):
        config = keepalive.KeepAliveConfig.paper_scale()
        assert config.hosts > keepalive.KeepAliveConfig().hosts
        assert len(config.horizons_s) > len(
            keepalive.KeepAliveConfig().horizons_s
        )
