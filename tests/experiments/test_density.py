"""D1 density sweep: admission caps, SLO gating, determinism."""

import pytest

from repro.experiments.density import (
    DensityConfig,
    _probe_admission,
    _run_cell,
    run,
)
from repro.faas.policy import DeploymentMode

#: Scaled-down sweep: one burst window per function, short drain.
FAST = DensityConfig(
    hosts=2,
    max_vms_per_host=3,
    duration_s=20,
    drain_s=10,
    stagger_s=10.0,
    keep_alive_s=5,
)


class TestAdmissionProbe:
    def test_mode_caps_are_ordered(self):
        caps = {
            mode: _probe_admission(FAST, mode)[0]
            for mode in DeploymentMode
        }
        assert (
            caps[DeploymentMode.HOTMEM]
            >= caps[DeploymentMode.VANILLA]
            >= caps[DeploymentMode.OVERPROVISIONED]
            >= 1
        )

    def test_cap_comes_with_structured_rejection(self):
        from dataclasses import replace

        roomy = replace(FAST, max_vms_per_host=8)
        cap, rejection = _probe_admission(roomy, DeploymentMode.OVERPROVISIONED)
        assert cap < roomy.max_vms_per_host
        assert rejection is not None and rejection.reason == "saturated"


class TestCell:
    def test_cell_is_deterministic(self):
        runs = [
            _run_cell(FAST, DeploymentMode.HOTMEM, 2) for _ in range(2)
        ]
        first, second = runs
        assert first.invocations == second.invocations
        assert first.p99_ms == second.p99_ms
        assert first.failures == second.failures
        assert first.peak_used_bytes == second.peak_used_bytes

    def test_cell_collects_per_vm_records(self):
        cell = _run_cell(FAST, DeploymentMode.VANILLA, 1)
        assert len(cell.per_vm_records) == FAST.hosts
        assert cell.invocations > 0
        assert cell.peak_used_bytes > 0


@pytest.mark.slow
class TestSweep:
    def test_density_ordering_holds(self):
        result = run(FAST)
        assert result.ordering_holds()
        assert result.density(DeploymentMode.HOTMEM) >= 1
        rendered = result.render()
        assert "hotmem" in rendered and "VIOLATED" not in rendered
