"""Tests for the cluster-chaos sweep: determinism, fault-accounting
completeness, zero ledger drift, and the density edge under failure."""

import pytest

from repro.experiments import cluster_chaos
from repro.faults.policy import RetryBudget
from repro.units import MS


CONFIG = cluster_chaos.ClusterChaosConfig(
    fault_rates=(0.0, 0.2),
    duration_s=16,
    drain_s=10,
    keep_alive_s=6,
    stagger_s=8.0,
    burst_len_s=4.0,
)


@pytest.fixture(scope="module")
def result():
    return cluster_chaos.run(CONFIG)


def test_two_runs_are_bit_identical(result):
    again = cluster_chaos.run(CONFIG)
    assert again.cells == result.cells


def test_every_domain_fault_is_accounted_for(result):
    assert result.total_unresolved() == 0
    for mode in CONFIG.modes:
        faulted = result.cell(mode, 0.2)
        assert faulted.injected > 0
        assert faulted.unresolved == 0


def test_ledger_reconciles_to_zero_drift(result):
    assert result.total_ledger_drift() == 0
    for cell in result.cells:
        assert cell.ledger_drift_bytes == 0


def test_control_row_sees_no_storm(result):
    for mode in CONFIG.modes:
        control = result.cell(mode, 0.0)
        assert control.injected == 0
        assert control.evacuated == 0 and control.evacuation_rejected == 0
        assert control.retained_frac == 1.0
        assert control.availability > 0.9


def test_storm_triggers_evacuation_but_fleet_keeps_serving(result):
    faulted = result.cell("hotmem", 0.2)
    assert faulted.evacuated > 0
    assert 0.0 < faulted.availability <= 1.0
    assert faulted.invocations > 0
    assert faulted.mttr_ms >= 0.0
    assert faulted.recovery_summary  # per-site rollup present


def test_density_edge_holds_under_failure(result):
    assert result.density_edge_holds()
    hot = result.cell("hotmem", 0.2)
    van = result.cell("vanilla", 0.2)
    assert hot.retained_frac >= van.retained_frac


def test_render_includes_the_gate_columns(result):
    table = result.render()
    for needle in (
        "avail",
        "mttr ms",
        "retained",
        "unresolved",
        "drift",
        "Recovery paths by failure site",
        "density edge under failure",
    ):
        assert needle in table


def test_cell_lookup_raises_on_missing(result):
    with pytest.raises(KeyError):
        result.cell("hotmem", 0.5)


def test_budget_derives_from_the_config():
    budget = CONFIG.budget()
    assert isinstance(budget, RetryBudget)
    assert budget.max_failovers == CONFIG.max_failovers
    assert budget.deadline_ns == int(CONFIG.deadline_ms * MS)


def test_paper_scale_widens_the_sweep():
    config = cluster_chaos.ClusterChaosConfig.paper_scale()
    default = cluster_chaos.ClusterChaosConfig()
    assert len(config.fault_rates) > len(default.fault_rates)
    assert config.duration_s > default.duration_s


def test_cli_registration():
    from repro.experiments.__main__ import EXPERIMENTS, MODE_SWEEPING

    assert "cluster-chaos" in EXPERIMENTS
    assert "cluster-chaos" in MODE_SWEEPING
