"""Tests for the chaos experiment: determinism, fault accounting
completeness, and control-row byte-identity with the fault-free harness."""

import pytest

from repro.experiments import chaos
from repro.experiments.serverless import (
    FunctionLoad,
    ServerlessScenario,
    run_scenario,
)
from repro.faas.policy import DeploymentMode


CONFIG = chaos.ChaosConfig(
    fault_rates=(0.0, 0.2),
    modes=(DeploymentMode.HOTMEM,),
    duration_s=10,
    keep_alive_s=4,
    recycle_interval_s=2,
)


@pytest.fixture(scope="module")
def result():
    return chaos.run(CONFIG)


def test_two_runs_are_bit_identical(result):
    again = chaos.run(CONFIG)
    assert again.cells == result.cells


def test_every_injected_fault_is_accounted_for(result):
    assert result.total_unresolved() == 0
    faulted = result.cell("hotmem", 0.2)
    assert faulted.injected > 0
    assert faulted.recovered + faulted.degraded > 0


def test_control_row_matches_fault_free_harness(result):
    control = result.cell("hotmem", 0.0)
    assert control.injected == 0 and control.unresolved == 0
    assert not control.static_fallback
    plain = run_scenario(
        ServerlessScenario(
            mode=DeploymentMode.HOTMEM,
            loads=(FunctionLoad.for_function(CONFIG.function),),
            duration_s=CONFIG.duration_s,
            keep_alive_s=CONFIG.keep_alive_s,
            recycle_interval_s=CONFIG.recycle_interval_s,
            seed=CONFIG.seed,
        )
    )
    assert control.reclaim_mib_s == plain.reclaim_mib_per_s
    assert control.invocations == len(plain.records_for(CONFIG.function))
    assert plain.injected_faults == 0 and plain.recovery_events == []


def test_render_includes_accounting_columns(result):
    table = result.render()
    for column in ("reclaim_mib_s", "p99_ms", "unresolved", "static"):
        assert column in table


def test_cell_lookup_raises_on_missing(result):
    with pytest.raises(KeyError):
        result.cell("vanilla", 0.5)


def test_p99_degradation_uses_control(result):
    value = result.p99_degradation("hotmem", 0.2)
    assert value >= 0.0


def test_paper_scale_widens_the_sweep():
    config = chaos.ChaosConfig.paper_scale()
    assert len(config.fault_rates) > len(chaos.ChaosConfig().fault_rates)
    assert config.duration_s > chaos.ChaosConfig().duration_s


def test_plan_disabled_at_control_rate():
    config = chaos.ChaosConfig()
    assert config.plan(0.0) is None
    plan = config.plan(0.1)
    assert plan is not None
    assert all(spec.probability == 0.1 for spec in plan.specs)
