"""Unit tests for experiment result containers (synthetic data, no runs)."""

import pytest

from repro.experiments import fig5_unplug_latency as fig5
from repro.experiments import fig6_usage_sweep as fig6
from repro.experiments import fig7_cpu_usage as fig7
from repro.experiments import fig8_reclaim_throughput as fig8
from repro.experiments import fig9_p99_latency as fig9
from repro.experiments import fig10_interference as fig10
from repro.experiments.baselines_comparison import (
    BaselinesConfig,
    BaselinesResult,
    MechanismRow,
)
from repro.units import GIB, MIB


class TestFig5Result:
    @pytest.fixture
    def result(self):
        config = fig5.Fig5Config(reclaim_sizes=(384 * MIB, 768 * MIB), trials=1)
        result = fig5.Fig5Result(config)
        result.latency_ms[384 * MIB] = {"vanilla": 1000.0, "hotmem": 50.0}
        result.latency_ms[768 * MIB] = {"vanilla": 2000.0, "hotmem": 80.0}
        result.migrated_pages[384 * MIB] = {"vanilla": 5000, "hotmem": 0}
        result.migrated_pages[768 * MIB] = {"vanilla": 9000, "hotmem": 0}
        return result

    def test_speedup(self, result):
        assert result.speedup(384 * MIB) == 20.0
        assert result.speedup(768 * MIB) == 25.0

    def test_rows_one_per_size(self, result):
        rows = result.rows()
        assert len(rows) == 2
        assert rows[0][0] == "384MiB"
        assert rows[0][3] == "20.0x"

    def test_render_contains_title_and_sizes(self, result):
        text = result.render()
        assert "Figure 5" in text
        assert "768MiB" in text


class TestFig6Result:
    @pytest.fixture
    def result(self):
        config = fig6.Fig6Config(usage_fractions=(0.1, 0.9))
        result = fig6.Fig6Result(config)
        result.latency_ms[0.1] = {"vanilla": 500.0, "hotmem": 100.0}
        result.latency_ms[0.9] = {"vanilla": 4000.0, "hotmem": 104.0}
        result.migrated_pages[0.1] = {"vanilla": 100, "hotmem": 0}
        result.migrated_pages[0.9] = {"vanilla": 900, "hotmem": 0}
        return result

    def test_trend_and_spread(self, result):
        assert result.vanilla_trend_ratio() == 8.0
        assert result.hotmem_spread_ratio() == pytest.approx(1.04)

    def test_render_percent_labels(self, result):
        assert "10%" in result.render()
        assert "90%" in result.render()


class TestFig7Result:
    @pytest.fixture
    def result(self):
        config = fig7.Fig7Config(steps=2)
        result = fig7.Fig7Result(config)
        result.cpu_series["vanilla"] = [(1.0, 2.0), (3.0, 5.0)]
        result.cpu_series["hotmem"] = [(0.5, 0.1), (1.0, 0.2)]
        result.duration_s = {"vanilla": 3.0, "hotmem": 1.0}
        return result

    def test_totals_and_ratio(self, result):
        assert result.total_cpu_s("vanilla") == 5.0
        assert result.total_cpu_s("hotmem") == 0.2
        assert result.cpu_ratio() == 25.0

    def test_rows_pair_the_series(self, result):
        rows = result.rows()
        assert rows[0] == [1, 1.0, 2.0, 0.5, 0.1]


class TestFig8Result:
    def test_speedup(self):
        result = fig8.Fig8Result(fig8.Fig8Config(functions=("cnn",)))
        result.throughput["cnn"] = {"vanilla": 1000.0, "hotmem": 7000.0}
        result.reclaimed_mib["cnn"] = {"vanilla": 100.0, "hotmem": 100.0}
        assert result.speedup("cnn") == 7.0
        assert "7.0x" in result.render()


class TestFig9Result:
    def test_elasticity_overhead(self):
        result = fig9.Fig9Result(fig9.Fig9Config(functions=("bert",)))
        result.p99["bert"] = {
            "hotmem": 110.0,
            "vanilla": 112.0,
            "overprovisioned": 100.0,
        }
        result.plug_ms["bert"] = {"hotmem": 30.0, "vanilla": 31.0}
        assert result.elasticity_overhead("bert", "hotmem") == pytest.approx(1.1)
        assert "bert" in result.render()


class TestFig10Result:
    def test_series_rows_thin_and_skip_nan(self):
        import math

        result = fig10.Fig10Result(fig10.Fig10Config())
        result.cnn_series["vanilla"] = [
            (0, 100.0),
            (5, math.nan),
            (10, 200.0),
            (15, 300.0),
            (20, math.nan),
        ]
        rows = result.series_rows("vanilla", every=10)
        assert rows == [[0, 100.0], [10, 200.0]]

    def test_interference_gap(self):
        result = fig10.Fig10Result(fig10.Fig10Config())
        result.window_mean = {"vanilla": 1.8, "hotmem": 1.2}
        assert result.interference_gap() == pytest.approx(1.5)


class TestBaselinesResult:
    def test_speedup_and_fraction(self):
        result = BaselinesResult(BaselinesConfig())
        result.by_mechanism["hotmem"] = MechanismRow(
            "hotmem", 50.0, 1 * GIB, 1 * GIB
        )
        result.by_mechanism["virtio-mem"] = MechanismRow(
            "virtio-mem", 2500.0, 1 * GIB, 1 * GIB, migrated_pages=1000
        )
        assert result.speedup_over("virtio-mem") == 50.0
        row = result.by_mechanism["virtio-mem"]
        assert row.reclaimed_fraction == 1.0
