"""Unit tests for the microbenchmark harness."""

import pytest

from repro.errors import ConfigError
from repro.experiments.microbench import MicrobenchRig, MicrobenchSetup
from repro.units import MIB


class TestSetupValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            MicrobenchSetup(mode="x", total_bytes=384 * MIB, partition_bytes=384 * MIB)

    def test_total_must_be_multiple_of_partition(self):
        with pytest.raises(ConfigError):
            MicrobenchSetup(
                mode="vanilla", total_bytes=500 * MIB, partition_bytes=384 * MIB
            )

    def test_partition_must_be_block_aligned(self):
        with pytest.raises(ConfigError):
            MicrobenchSetup(
                mode="vanilla", total_bytes=400 * MIB, partition_bytes=200 * MIB
            )

    def test_usage_fraction_bounds(self):
        with pytest.raises(ConfigError):
            MicrobenchSetup(
                mode="vanilla",
                total_bytes=384 * MIB,
                partition_bytes=384 * MIB,
                usage_fraction=0.0,
            )

    def test_slots_derived(self):
        setup = MicrobenchSetup(
            mode="vanilla", total_bytes=1536 * MIB, partition_bytes=384 * MIB
        )
        assert setup.slots == 4


class TestSingleReclaim:
    def test_misaligned_reclaim_rejected(self):
        rig = MicrobenchRig(
            MicrobenchSetup(
                mode="vanilla", total_bytes=768 * MIB, partition_bytes=384 * MIB
            )
        )
        with pytest.raises(ConfigError):
            rig.run_single_reclaim(100 * MIB)

    def test_reclaim_beyond_total_rejected(self):
        rig = MicrobenchRig(
            MicrobenchSetup(
                mode="vanilla", total_bytes=384 * MIB, partition_bytes=384 * MIB
            )
        )
        with pytest.raises(ConfigError):
            rig.run_single_reclaim(768 * MIB)

    @pytest.mark.parametrize("mode", ["vanilla", "hotmem"])
    def test_reclaim_fully_succeeds(self, mode):
        rig = MicrobenchRig(
            MicrobenchSetup(
                mode=mode, total_bytes=1536 * MIB, partition_bytes=384 * MIB
            )
        )
        measurement = rig.run_single_reclaim(384 * MIB)
        assert measurement.fully_reclaimed
        assert measurement.latency_ns > 0
        rig.vm.check_consistency()

    def test_hotmem_reclaim_never_migrates(self):
        rig = MicrobenchRig(
            MicrobenchSetup(
                mode="hotmem", total_bytes=1536 * MIB, partition_bytes=384 * MIB
            )
        )
        measurement = rig.run_single_reclaim(768 * MIB)
        assert measurement.migrated_pages == 0

    def test_vanilla_reclaim_migrates_under_load(self):
        rig = MicrobenchRig(
            MicrobenchSetup(
                mode="vanilla", total_bytes=1536 * MIB, partition_bytes=384 * MIB
            )
        )
        measurement = rig.run_single_reclaim(384 * MIB)
        assert measurement.migrated_pages > 0

    def test_deterministic_for_fixed_seed(self):
        def measure():
            rig = MicrobenchRig(
                MicrobenchSetup(
                    mode="vanilla",
                    total_bytes=1536 * MIB,
                    partition_bytes=384 * MIB,
                    seed=5,
                )
            )
            return rig.run_single_reclaim(384 * MIB)

        first, second = measure(), measure()
        assert first.latency_ns == second.latency_ns
        assert first.migrated_pages == second.migrated_pages
