"""Byte-identical regression guard for the three original modes.

The mode-registry refactor (``repro.modes``) must not change a single
event of the fixed-seed serverless and density runs for ``hotmem``,
``vanilla`` and ``overprovisioned``.  These tests canonicalize every
artifact such a run produces (invocation records, shrink events, resize
events, CPU/fault accounting, admission commitments) into a stable
string and compare its SHA-256 against digests captured on the
pre-refactor tree.

If one of these digests moves, the refactor changed simulation
behaviour — that is a bug, not a test to update.  (Adding *new* modes
or experiments must never move them: the runs below only use the three
original modes.)
"""

import hashlib

import pytest

from repro.experiments.density import DensityConfig, _run_cell
from repro.experiments.serverless import (
    FunctionLoad,
    ServerlessScenario,
    run_scenario,
)
from repro.faas.policy import DeploymentMode

pytestmark = pytest.mark.slow

ORIGINAL_MODES = ("hotmem", "vanilla", "overprovisioned")

#: SHA-256 digests of the canonicalized artifacts, captured on the tree
#: *before* the deployment-mode registry existed.
SERVERLESS_GOLDEN = {
    "hotmem": "5c6a5ed43d3b32c2d7d3d420373002619170d18b204125c40f0dcdcae3acb7ab",
    "vanilla": "4c503a4ea1b4037c1a5b3902b502a9a8f893a63f1c04dc745eac5b821b8be76f",
    "overprovisioned": "d7ba421173506d860b13d7928f726a40d7627e11a54374181c18f562f89f6a64",
}
DENSITY_GOLDEN = {
    "hotmem": "fc1f2552b0f26d6c833a8e1dad32d73e012b0fae0c6ace47f2694b3e890a6ee3",
    "vanilla": "16c2e8dd1d390ccea9416d7c385c9d23f2f2a33f68eb1486717b341acd643b75",
    "overprovisioned": "82ebb94553488a42a8775ccdd7436a94828f0b1705e4de6de5413840cbf1a5c1",
}


def _digest(lines):
    payload = "\n".join(lines).encode()
    return hashlib.sha256(payload).hexdigest()


def _record_line(record):
    return (
        f"rec {record.function} {record.arrival_ns} {record.start_ns} "
        f"{record.end_ns} {int(record.cold)} {int(record.ok)} {record.error}"
    )


def serverless_digest(mode_name: str) -> str:
    """Canonical digest of one fixed-seed serverless run."""
    scenario = ServerlessScenario(
        mode=DeploymentMode(mode_name),
        loads=(FunctionLoad.for_function("html", vm_vcpus=4),),
        duration_s=20,
        drain_s=10,
        keep_alive_s=5,
        recycle_interval_s=2,
        vm_vcpus=4,
        seed=7,
    )
    run = run_scenario(scenario)
    lines = [f"serverless {mode_name}"]
    lines += [_record_line(r) for r in run.records]
    lines += [
        f"shrink {e.time_ns} {e.evicted} {e.unplug_requested_bytes}"
        for e in run.shrink_events
    ]
    lines += [
        f"resize {e.kind} {e.start_ns} {e.end_ns} {e.requested_bytes} "
        f"{e.completed_bytes} {e.migrated_pages}"
        for e in run.resize_events
    ]
    lines.append(f"reclaim {run.reclaim_mib_per_s!r}")
    lines += [f"cold {name} {n}" for name, n in sorted(run.cold_starts.items())]
    lines.append(f"oom {run.oom_failures}")
    lines.append(f"virtio-cpu {run.virtio_cpu_ns}")
    lines.append(f"faults {run.injected_faults} {run.unresolved_faults}")
    lines.append(f"degraded {int(run.degraded)}")
    return _digest(lines)


def density_digest(mode_name: str) -> str:
    """Canonical digest of one fixed-seed density cell."""
    config = DensityConfig(
        hosts=1,
        functions=("html",),
        max_vms_per_host=2,
        duration_s=12,
        drain_s=6,
        seed=3,
    )
    cell = _run_cell(config, DeploymentMode(mode_name), 2)
    lines = [f"density {mode_name} {cell.vms_per_host} {cell.total_vms}"]
    for name in sorted(cell.per_vm_records):
        lines += [
            f"{name} {_record_line(r)}" for r in cell.per_vm_records[name]
        ]
    lines.append(f"p50 {cell.p50_ms!r}")
    lines.append(f"p99 {cell.p99_ms!r}")
    lines.append(
        f"counts {cell.invocations} {cell.failures} {cell.rejections} "
        f"{cell.pressure_reclaims}"
    )
    lines.append(f"bytes {cell.peak_used_bytes} {cell.committed_bytes}")
    return _digest(lines)


@pytest.mark.parametrize("mode_name", ORIGINAL_MODES)
def test_serverless_artifacts_bit_identical(mode_name):
    assert serverless_digest(mode_name) == SERVERLESS_GOLDEN[mode_name]


@pytest.mark.parametrize("mode_name", ORIGINAL_MODES)
def test_density_artifacts_bit_identical(mode_name):
    assert density_digest(mode_name) == DENSITY_GOLDEN[mode_name]


if __name__ == "__main__":  # pragma: no cover - capture driver
    for name in ORIGINAL_MODES:
        print(f'    "{name}": "{serverless_digest(name)}",  # serverless')
    for name in ORIGINAL_MODES:
        print(f'    "{name}": "{density_digest(name)}",  # density')
