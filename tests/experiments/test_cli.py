"""Unit tests for the experiment CLI (python -m repro.experiments)."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


def test_list_prints_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_unknown_experiment_rejected(capsys):
    assert main(["nope"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_table1_runs(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Bert" in out and "[table1:" in out


def test_fig6_runs_and_renders(capsys):
    assert main(["fig6"]) == 0
    out = capsys.readouterr().out
    assert "vanilla_ms" in out and "hotmem_ms" in out


def test_sanitize_flag_reports_sweeps(capsys):
    from repro.analysis import sanitizer as san

    prior = san.uninstall()  # suspend any ambient --sanitize install
    try:
        assert main(["fig2", "--sanitize", "--sanitize-every", "64"]) == 0
        assert not san.is_installed()  # the runner uninstalls on exit
    finally:
        san.uninstall()
        if prior is not None:
            san.install(prior)
    out = capsys.readouterr().out
    assert "[sanitizer:" in out and "no violations" in out


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_every_experiment_has_a_description(name):
    description, runner = EXPERIMENTS[name]
    assert description
    assert callable(runner)
