"""Unit tests for the round-robin CPU core model."""

import pytest

from repro.errors import SimulationError
from repro.sim.cpu import CpuCore
from repro.sim.engine import Simulator, Timeout
from repro.units import MS


@pytest.fixture
def core(sim):
    return CpuCore(sim, name="test-core", quantum_ns=2 * MS)


class TestBasicExecution:
    def test_single_task_completes_after_its_work(self, sim, core):
        done = core.submit(5 * MS, "t")
        sim.run()
        assert done.triggered
        assert sim.now == 5 * MS

    def test_zero_work_completes_immediately(self, sim, core):
        done = core.submit(0, "t")
        assert done.triggered
        assert sim.now == 0

    def test_negative_work_rejected(self, core):
        with pytest.raises(SimulationError):
            core.submit(-1, "t")

    def test_busy_flag(self, sim, core):
        core.submit(1 * MS, "t")
        assert core.busy
        sim.run()
        assert not core.busy

    def test_sequential_tasks_serialize(self, sim, core):
        first = core.submit(3 * MS, "a")
        second = core.submit(3 * MS, "b")
        sim.run()
        assert first.value.completed_at < second.value.completed_at
        assert sim.now == 6 * MS

    def test_queue_depth(self, sim, core):
        core.submit(10 * MS, "a")
        core.submit(10 * MS, "b")
        core.submit(10 * MS, "c")
        assert core.queue_depth == 2


class TestRoundRobin:
    def test_two_equal_tasks_finish_together_ish(self, sim, core):
        done_a = core.submit(10 * MS, "a")
        done_b = core.submit(10 * MS, "b")
        sim.run()
        finish_a = done_a.value.completed_at
        finish_b = done_b.value.completed_at
        # Interleaved: both finish near 20ms, within one quantum.
        assert abs(finish_a - finish_b) <= core.quantum_ns
        assert max(finish_a, finish_b) == 20 * MS

    def test_short_task_not_starved_by_long_task(self, sim, core):
        core.submit(100 * MS, "long")
        short = core.submit(2 * MS, "short")
        sim.run()
        # Short runs after at most one quantum of the long task.
        assert short.value.completed_at <= 3 * core.quantum_ns

    def test_contention_doubles_completion_time(self, sim, core):
        solo_sim = Simulator()
        solo = CpuCore(solo_sim, quantum_ns=2 * MS)
        done_solo = solo.submit(20 * MS, "t")
        solo_sim.run()

        core.submit(20 * MS, "other")
        done_contended = core.submit(20 * MS, "t")
        sim.run()
        assert done_contended.value.completed_at >= 2 * done_solo.value.completed_at - core.quantum_ns

    def test_late_arrival_waits_at_most_one_slice(self, sim, core):
        core.submit(50 * MS, "background")

        def late():
            yield Timeout(5 * MS)
            done = core.submit(1 * MS, "late")
            work = yield done
            return work.completed_at - work.submitted_at

        waited = sim.run_process(late())
        assert waited <= 2 * core.quantum_ns


class TestAccounting:
    def test_busy_ns_counts_all_work(self, sim, core):
        core.submit(7 * MS, "a")
        core.submit(3 * MS, "b")
        sim.run()
        assert core.busy_ns == 10 * MS

    def test_per_label_accounting(self, sim, core):
        core.submit(7 * MS, "virtio-mem")
        core.submit(3 * MS, "fn:cnn")
        sim.run()
        assert core.busy_ns_for("virtio-mem") == 7 * MS
        assert core.busy_ns_for("fn:cnn") == 3 * MS
        assert core.busy_ns_for("unknown") == 0

    def test_prefix_accounting(self, sim, core):
        core.submit(2 * MS, "fn:cnn:1")
        core.submit(3 * MS, "fn:cnn:2")
        core.submit(5 * MS, "fn:html:1")
        sim.run()
        assert core.busy_ns_for_prefix("fn:cnn") == 5 * MS
        assert core.busy_ns_for_prefix("fn:") == 10 * MS

    def test_accounting_snapshot_is_a_copy(self, sim, core):
        core.submit(1 * MS, "x")
        sim.run()
        snapshot = core.accounting()
        snapshot["x"] = 0
        assert core.busy_ns_for("x") == 1 * MS

    def test_utilization(self, sim, core):
        core.submit(5 * MS, "t")
        sim.run()

        def idle():
            yield Timeout(5 * MS)

        sim.run_process(idle())
        assert core.utilization() == pytest.approx(0.5)

    def test_run_helper_generator(self, sim, core):
        def body():
            yield from core.run(4 * MS, "gen")
            return sim.now

        assert sim.run_process(body()) == 4 * MS

    def test_invalid_quantum_rejected(self, sim):
        with pytest.raises(SimulationError):
            CpuCore(sim, quantum_ns=0)
