"""Exception semantics of the event loop.

Errors raised inside a process body propagate out of ``run()`` at the
point the process was resumed — simulations fail fast and loudly rather
than swallowing bugs.
"""

import pytest

from repro.sim.engine import Simulator, Timeout


class BoomError(Exception):
    pass


def test_exception_in_process_body_propagates(sim):
    def body():
        yield Timeout(5)
        raise BoomError("inside")

    sim.spawn(body())
    with pytest.raises(BoomError, match="inside"):
        sim.run()


def test_clock_stops_at_the_failure_point(sim):
    def body():
        yield Timeout(7)
        raise BoomError

    sim.spawn(body())
    with pytest.raises(BoomError):
        sim.run()
    assert sim.now == 7


def test_exception_in_scheduled_callback_propagates(sim):
    def bad():
        raise BoomError

    sim.schedule(3, bad)
    with pytest.raises(BoomError):
        sim.run()


def test_other_events_resume_after_a_failed_run(sim):
    seen = []

    def bad():
        raise BoomError

    sim.schedule(1, bad)
    sim.schedule(2, seen.append, "later")
    with pytest.raises(BoomError):
        sim.run()
    # The queue is not corrupted: a subsequent run drains the rest.
    sim.run()
    assert seen == ["later"]


def test_generator_close_does_not_break_the_loop(sim):
    def body():
        yield Timeout(10)

    process = sim.spawn(body())
    process._generator.close()
    # The resume of a closed generator raises StopIteration → finishes.
    sim.run()
    assert process.finished
