"""Unit tests for deterministic RNG streams."""

from repro.sim.rng import make_rng


def test_same_seed_same_stream_reproduces():
    a = [make_rng(1, "s").random() for _ in range(10)]
    b = [make_rng(1, "s").random() for _ in range(10)]
    assert a == b


def test_different_streams_differ():
    a = make_rng(1, "alpha").random()
    b = make_rng(1, "beta").random()
    assert a != b


def test_different_seeds_differ():
    assert make_rng(1, "s").random() != make_rng(2, "s").random()


def test_default_stream_is_stable():
    assert make_rng(7).random() == make_rng(7).random()
