"""Unit tests for the cost model."""

import pytest

from repro.sim.costs import DEFAULT_COSTS, CostModel, ZeroingMode


class TestValidation:
    def test_default_model_valid(self):
        assert DEFAULT_COSTS.page_migration_ns > 0

    def test_unknown_zeroing_mode_rejected(self):
        with pytest.raises(ValueError):
            CostModel(zeroing_mode="bogus")

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            CostModel(page_migration_ns=-1)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COSTS.page_migration_ns = 0


class TestDerivedCosts:
    def test_migrate_pages_scales_linearly(self):
        one = DEFAULT_COSTS.migrate_pages_ns(1)
        assert DEFAULT_COSTS.migrate_pages_ns(1000) == 1000 * one

    def test_zero_pages_scales_linearly(self):
        assert DEFAULT_COSTS.zero_pages_ns(10) == 10 * DEFAULT_COSTS.page_zero_ns

    def test_plug_block_without_zeroing(self):
        expected = DEFAULT_COSTS.hot_add_block_ns + DEFAULT_COSTS.online_block_ns
        assert DEFAULT_COSTS.plug_block_ns() == expected

    def test_plug_block_with_zeroing(self):
        base = DEFAULT_COSTS.plug_block_ns()
        with_zero = DEFAULT_COSTS.plug_block_ns(zero_pages=100)
        assert with_zero == base + 100 * DEFAULT_COSTS.page_zero_ns

    def test_offline_block_empty_is_base_cost(self):
        assert (
            DEFAULT_COSTS.offline_block_ns(0)
            == DEFAULT_COSTS.offline_block_base_ns
        )

    def test_offline_block_migration_dominates(self):
        small = DEFAULT_COSTS.offline_block_ns(0)
        large = DEFAULT_COSTS.offline_block_ns(30000)
        assert large > 10 * small

    def test_replace_overrides_selected_field(self):
        doubled = DEFAULT_COSTS.replace(page_migration_ns=2 * DEFAULT_COSTS.page_migration_ns)
        assert doubled.page_migration_ns == 2 * DEFAULT_COSTS.page_migration_ns
        assert doubled.hot_add_block_ns == DEFAULT_COSTS.hot_add_block_ns

    def test_replace_keeps_original_untouched(self):
        DEFAULT_COSTS.replace(page_zero_ns=0)
        assert DEFAULT_COSTS.page_zero_ns > 0


class TestZeroingModes:
    def test_all_modes_listed(self):
        assert set(ZeroingMode.ALL) == {
            ZeroingMode.INIT_ON_ALLOC,
            ZeroingMode.INIT_ON_FREE,
            ZeroingMode.NONE,
        }

    def test_default_is_init_on_alloc(self):
        assert DEFAULT_COSTS.zeroing_mode == ZeroingMode.INIT_ON_ALLOC

    def test_mode_switch_via_replace(self):
        model = DEFAULT_COSTS.replace(zeroing_mode=ZeroingMode.INIT_ON_FREE)
        assert model.zeroing_mode == ZeroingMode.INIT_ON_FREE
