"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import AllOf, Event, Process, Simulator, Timeout


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0

    def test_callback_runs_at_scheduled_time(self, sim):
        seen = []
        sim.schedule(10, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [10]

    def test_callbacks_run_in_time_order(self, sim):
        seen = []
        sim.schedule(30, seen.append, "c")
        sim.schedule(10, seen.append, "a")
        sim.schedule(20, seen.append, "b")
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_same_timestamp_runs_in_scheduling_order(self, sim):
        seen = []
        for tag in range(5):
            sim.schedule(7, seen.append, tag)
        sim.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_schedule_at_absolute_time(self, sim):
        seen = []
        sim.schedule_at(42, seen.append, "x")
        sim.run()
        assert sim.now == 42
        assert seen == ["x"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_cancel_prevents_execution(self, sim):
        seen = []
        call = sim.schedule(10, seen.append, "x")
        call.cancel()
        sim.run()
        assert seen == []

    def test_cancel_after_run_is_harmless(self, sim):
        call = sim.schedule(1, lambda: None)
        sim.run()
        call.cancel()

    def test_run_until_stops_before_later_events(self, sim):
        seen = []
        sim.schedule(10, seen.append, "early")
        sim.schedule(100, seen.append, "late")
        sim.run(until=50)
        assert seen == ["early"]
        assert sim.now == 50

    def test_run_until_advances_clock_without_events(self, sim):
        sim.run(until=1234)
        assert sim.now == 1234

    def test_run_until_composes(self, sim):
        seen = []
        sim.schedule(10, seen.append, 1)
        sim.schedule(60, seen.append, 2)
        sim.run(until=50)
        sim.run(until=100)
        assert seen == [1, 2]
        assert sim.now == 100

    def test_step_executes_one_callback(self, sim):
        seen = []
        sim.schedule(1, seen.append, "a")
        sim.schedule(2, seen.append, "b")
        assert sim.step() is True
        assert seen == ["a"]

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_pending_events_excludes_cancelled(self, sim):
        call = sim.schedule(5, lambda: None)
        sim.schedule(6, lambda: None)
        call.cancel()
        assert sim.pending_events() == 1

    def test_callbacks_can_schedule_more(self, sim):
        seen = []
        sim.schedule(1, lambda: sim.schedule(1, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [2]


class TestEvents:
    def test_trigger_resumes_callbacks_with_value(self, sim):
        event = sim.event()
        seen = []
        event.add_callback(seen.append)
        event.trigger("payload")
        assert seen == ["payload"]

    def test_callback_after_trigger_runs_immediately(self, sim):
        event = sim.event()
        event.trigger(5)
        seen = []
        event.add_callback(seen.append)
        assert seen == [5]

    def test_double_trigger_rejected(self, sim):
        event = sim.event()
        event.trigger()
        with pytest.raises(SimulationError):
            event.trigger()

    def test_callbacks_fifo(self, sim):
        event = sim.event()
        seen = []
        event.add_callback(lambda _: seen.append(1))
        event.add_callback(lambda _: seen.append(2))
        event.trigger()
        assert seen == [1, 2]


class TestProcesses:
    def test_process_return_value(self, sim):
        def body():
            yield Timeout(3)
            return "result"

        assert sim.run_process(body()) == "result"

    def test_timeout_advances_clock(self, sim):
        def body():
            yield Timeout(5)
            yield Timeout(7)
            return sim.now

        assert sim.run_process(body()) == 12

    def test_wait_on_event_receives_value(self, sim):
        event = sim.event()
        sim.schedule(10, event.trigger, "hello")

        def body():
            value = yield event
            return value, sim.now

        assert sim.run_process(body()) == ("hello", 10)

    def test_join_process_receives_return_value(self, sim):
        def child():
            yield Timeout(4)
            return 99

        def parent():
            value = yield sim.spawn(child())
            return value

        assert sim.run_process(parent()) == 99

    def test_allof_waits_for_every_event(self, sim):
        events = [sim.event() for _ in range(3)]
        for i, event in enumerate(events):
            sim.schedule(10 * (i + 1), event.trigger, i)

        def body():
            values = yield AllOf(events)
            return values, sim.now

        values, finished = sim.run_process(body())
        assert values == [0, 1, 2]
        assert finished == 30

    def test_allof_empty_resumes_immediately(self, sim):
        def body():
            values = yield AllOf([])
            return values

        assert sim.run_process(body()) == []

    def test_allof_with_triggered_events(self, sim):
        event = sim.event()
        event.trigger("done")

        def body():
            values = yield AllOf([event])
            return values

        assert sim.run_process(body()) == ["done"]

    def test_yielding_garbage_raises(self, sim):
        def body():
            yield 42

        sim.spawn(body())
        with pytest.raises(SimulationError):
            sim.run()

    def test_deadlock_detected_by_run_process(self, sim):
        never = sim.event()

        def body():
            yield never

        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_process(body())

    def test_process_finished_flag(self, sim):
        def body():
            yield Timeout(1)

        process = sim.spawn(body())
        assert not process.finished
        sim.run()
        assert process.finished

    def test_two_processes_interleave_deterministically(self, sim):
        seen = []

        def worker(tag, delay):
            for _ in range(3):
                yield Timeout(delay)
                seen.append((tag, sim.now))

        sim.spawn(worker("a", 2))
        sim.spawn(worker("b", 3))
        sim.run()
        # At t=6 both fire; "b" scheduled its timer first (at t=3), so it
        # resumes first (stable scheduling order).
        assert seen == [
            ("a", 2), ("b", 3), ("a", 4), ("b", 6), ("a", 6), ("b", 9),
        ]

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-5)

    def test_run_not_reentrant(self, sim):
        def evil():
            sim.run()
            yield Timeout(1)

        sim.spawn(evil())
        with pytest.raises(SimulationError, match="reentrant"):
            sim.run()


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build():
            sim = Simulator()
            seen = []

            def worker(tag):
                for step in range(5):
                    yield Timeout((tag * 7 + step * 3) % 11 + 1)
                    seen.append((tag, sim.now))

            for tag in range(4):
                sim.spawn(worker(tag))
            sim.run()
            return seen

        assert build() == build()


class TestKill:
    def test_kill_runs_finally_blocks(self, sim):
        log = []

        def victim():
            try:
                yield Timeout(100)
                log.append("ran")
            finally:
                log.append("cleanup")

        process = sim.spawn(victim())
        sim.schedule(10, process.kill)
        sim.run()
        assert log == ["cleanup"]
        assert process.finished

    def test_joiner_receives_the_kill_value(self, sim):
        def victim():
            yield Timeout(100)
            return "never"

        def joiner(process, out):
            out.append((yield process))

        out = []
        process = sim.spawn(victim())
        sim.spawn(joiner(process, out))
        sim.schedule(5, process.kill, "killed")
        sim.run()
        assert out == ["killed"]

    def test_kill_after_completion_is_a_noop(self, sim):
        def body():
            yield Timeout(1)
            return "done"

        process = sim.spawn(body())
        sim.run()
        assert process.finished
        process.kill()  # must not raise or re-trigger the done event
        assert process.finished

    def test_dangling_wakeup_after_kill_is_absorbed(self, sim):
        # The parked Timeout's wakeup stays queued after the kill; when
        # it fires at t=100 the resume guard must absorb it silently.
        def victim():
            yield Timeout(100)

        process = sim.spawn(victim())
        sim.schedule(10, process.kill)
        sim.run()  # drains past t=100 without raising
        assert sim.now == 100

    def test_kill_mid_chain_kills_only_the_target(self, sim):
        log = []

        def worker(tag, delay):
            yield Timeout(delay)
            log.append(tag)

        doomed = sim.spawn(worker("doomed", 50))
        sim.spawn(worker("survivor", 60))
        sim.schedule(5, doomed.kill)
        sim.run()
        assert log == ["survivor"]
