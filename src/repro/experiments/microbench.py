"""Shared harness for the memhog microbenchmarks (Figures 5-7).

Builds a VM (HotMem or vanilla), fills it with a fleet of memhog
processes per Section 5.5 ("allocate almost all the free memory inside
the VM"), then releases chosen amounts and measures the unplug request
exactly as the paper does: hypervisor-side, request received →
``MADV_DONTNEED``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.provision import Fleet, VmSpec
from repro.errors import ConfigError
from repro.faas.policy import DeploymentMode
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sim.engine import AllOf, Simulator, Timeout
from repro.units import MEMORY_BLOCK_SIZE, MS, bytes_to_blocks, format_bytes
from repro.virtio.driver import VIRTIO_MEM_LABEL
from repro.workloads.memhog import Memhog

__all__ = ["MicrobenchSetup", "ReclaimMeasurement", "MicrobenchRig"]


@dataclass(frozen=True)
class MicrobenchSetup:
    """One microbenchmark configuration.

    The guest is partitioned (conceptually for vanilla, physically for
    HotMem) into ``total_bytes / partition_bytes`` slots, each hosting one
    memhog sized to ``usage_fraction`` of the slot.
    """

    mode: str  # "hotmem" | "vanilla"
    total_bytes: int
    partition_bytes: int
    usage_fraction: float = 0.85
    placement: str = "scatter"
    costs: CostModel = DEFAULT_COSTS
    seed: int = 0
    vcpus: int = 10
    unplug_selection: str = "linear"
    churn_fraction: float = 0.0
    batch_unplug: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ("hotmem", "vanilla"):
            raise ConfigError(f"unknown mode {self.mode!r}")
        if self.total_bytes % self.partition_bytes:
            raise ConfigError("total must be a multiple of the partition size")
        if self.partition_bytes % MEMORY_BLOCK_SIZE:
            raise ConfigError("partition size must be whole memory blocks")
        if not 0.0 < self.usage_fraction <= 1.0:
            raise ConfigError(f"usage fraction out of range: {self.usage_fraction}")

    @property
    def slots(self) -> int:
        """Number of memhog slots."""
        return self.total_bytes // self.partition_bytes


@dataclass
class ReclaimMeasurement:
    """What one measured unplug request produced."""

    requested_bytes: int
    reclaimed_bytes: int
    latency_ns: int
    migrated_pages: int
    virtio_cpu_ns: int

    @property
    def latency_ms(self) -> float:
        return self.latency_ns / MS

    @property
    def fully_reclaimed(self) -> bool:
        return self.reclaimed_bytes == self.requested_bytes


class MicrobenchRig:
    """A VM loaded with memhogs, ready for reclaim measurements."""

    def __init__(self, setup: MicrobenchSetup):
        self.setup = setup
        self.sim = Simulator()
        self.fleet = Fleet(self.sim)
        self.host = self.fleet.hosts[0]
        spec = VmSpec(
            name=f"microbench-{setup.mode}",
            mode=(
                DeploymentMode.HOTMEM
                if setup.mode == "hotmem"
                else DeploymentMode.VANILLA
            ),
            region_bytes=setup.total_bytes,
            partition_bytes=(
                setup.partition_bytes if setup.mode == "hotmem" else 0
            ),
            concurrency=setup.slots if setup.mode == "hotmem" else 0,
            shared_bytes=0,
            vcpus=setup.vcpus,
            placement=setup.placement,
            batch_unplug=setup.batch_unplug,
            unplug_selection=setup.unplug_selection,
            seed=setup.seed,
            costs=setup.costs,
        )
        self.handle = self.fleet.provision(spec)
        self.vm = self.handle.vm
        self.memhogs: List[Memhog] = []

    # ------------------------------------------------------------------
    # Orchestration building blocks (process generators)
    # ------------------------------------------------------------------
    def plug_all(self):
        """Plug the whole device region (populates HotMem partitions)."""
        plug = self.vm.request_plug(self.setup.total_bytes)
        yield plug
        return plug.value

    def start_memhogs(self, count: Optional[int] = None):
        """Start ``count`` memhogs (default: every slot) and await residency."""
        setup = self.setup
        count = setup.slots if count is None else count
        size = int(setup.partition_bytes * setup.usage_fraction)
        for i in range(count):
            hog = Memhog(
                self.vm,
                size,
                vcpu_index=i % setup.vcpus,
                use_hotmem=setup.mode == "hotmem",
                churn_fraction=setup.churn_fraction,
                name=f"memhog-{i}",
            )
            self.memhogs.append(hog)
            hog.start()
        yield AllOf([hog.ready for hog in self.memhogs[-count:]])
        return self.memhogs[-count:]

    def stop_memhogs(self, hogs: List[Memhog]):
        """Stop the given memhogs and wait until their memory is freed."""
        for hog in hogs:
            hog.stop()
        yield AllOf([hog._process.done_event for hog in hogs])
        return None

    def measure_reclaim(self, size_bytes: int):
        """Issue an unplug of ``size_bytes`` and measure it (Section 5.4)."""
        cpu_before = self.vm.irq_vcpu.busy_ns_for(VIRTIO_MEM_LABEL)
        unplug = self.vm.request_unplug(size_bytes)
        yield unplug
        result = unplug.value
        cpu_after = self.vm.irq_vcpu.busy_ns_for(VIRTIO_MEM_LABEL)
        return ReclaimMeasurement(
            requested_bytes=bytes_to_blocks(size_bytes) * MEMORY_BLOCK_SIZE,
            reclaimed_bytes=result.unplugged_bytes,
            latency_ns=result.latency_ns,
            migrated_pages=result.migrated_pages,
            virtio_cpu_ns=cpu_after - cpu_before,
        )

    def stop_all(self):
        """Stop every remaining memhog (lets the simulation drain)."""
        live = [h for h in self.memhogs if not h.stopped]
        yield from self.stop_memhogs(live)
        return None

    # ------------------------------------------------------------------
    # The standard single-reclaim experiment (Figure 5 inner loop)
    # ------------------------------------------------------------------
    def run_single_reclaim(self, reclaim_bytes: int) -> ReclaimMeasurement:
        """Fill the guest, free ``reclaim_bytes`` worth of slots, unplug.

        Runs the whole scenario on a fresh simulation and returns the
        measurement.
        """
        return self.run_reclaim_after_freeing(reclaim_bytes, reclaim_bytes)

    def run_reclaim_after_freeing(
        self, freed_bytes: int, reclaim_bytes: int
    ) -> ReclaimMeasurement:
        """Free ``freed_bytes`` worth of slots, then request ``reclaim_bytes``.

        ``reclaim_bytes`` larger than ``freed_bytes`` produces the
        over-commit scenario: the unplug goes partial (or migrates hard)
        depending on the mechanism.
        """
        setup = self.setup
        if freed_bytes % setup.partition_bytes:
            raise ConfigError(
                f"freed size {format_bytes(freed_bytes)} must be whole "
                f"slots of {format_bytes(setup.partition_bytes)}"
            )
        holders = freed_bytes // setup.partition_bytes
        if holders > setup.slots:
            raise ConfigError("cannot free more than the configured total")

        def scenario():
            yield from self.plug_all()
            hogs = yield from self.start_memhogs()
            # Let the loaded system settle briefly.
            yield Timeout(200 * MS)
            # Free the holders' memory (LIFO: the most recent slots).
            if holders:
                yield from self.stop_memhogs(hogs[-holders:])
            measurement = yield from self.measure_reclaim(reclaim_bytes)
            yield from self.stop_all()
            return measurement

        return self.sim.run_process(scenario(), name="single-reclaim")
