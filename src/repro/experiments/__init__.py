"""Experiment harnesses regenerating every table and figure of the paper.

One module per evaluation artifact (see DESIGN.md's experiment index):

* :mod:`~repro.experiments.table1` — the function resource limits;
* :mod:`~repro.experiments.fig5_unplug_latency` — reclaim latency vs size;
* :mod:`~repro.experiments.fig6_usage_sweep` — reclaim latency vs usage;
* :mod:`~repro.experiments.fig7_cpu_usage` — unplug-path CPU time;
* :mod:`~repro.experiments.fig8_reclaim_throughput` — trace-driven MiB/s;
* :mod:`~repro.experiments.fig9_p99_latency` — P99 across configurations;
* :mod:`~repro.experiments.fig10_interference` — co-location spikes;
* :mod:`~repro.experiments.ablations` — A1-A4 design-choice ablations.

Shared harnesses: :mod:`~repro.experiments.microbench` (memhog fleets,
Figures 5-7) and :mod:`~repro.experiments.serverless` (trace replay,
Figures 8-10).
"""

from repro.experiments.microbench import (
    MicrobenchRig,
    MicrobenchSetup,
    ReclaimMeasurement,
)
from repro.experiments.serverless import (
    FunctionLoad,
    ServerlessRun,
    ServerlessScenario,
    run_scenario,
)

__all__ = [
    "MicrobenchRig",
    "MicrobenchSetup",
    "ReclaimMeasurement",
    "FunctionLoad",
    "ServerlessRun",
    "ServerlessScenario",
    "run_scenario",
]
