"""Shared harness for the trace-driven serverless experiments (Figs 8-10).

Builds a VM + Agent + runtime for any registered deployment mode (the
three configurations of Section 5.5 or a related-work baseline from
:mod:`repro.modes`), replays Azure-shaped traces against it, and returns
every artifact the figures need (records, tracer events, shrink events,
CPU accounting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.cluster.provision import Fleet, VmSpec
from repro.faas.agent import FunctionDeployment, ShrinkEvent
from repro.faas.policy import KeepAlivePolicy
from repro.faas.records import InvocationRecord
from repro.faas.runtime import FaasRuntime
from repro.faults.injector import FaultPlan
from repro.faults.policy import ResiliencePolicy
from repro.faults.recovery import RecoveryEvent
from repro.modes import DeploymentBackend, get_mode
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sim.engine import Simulator
from repro.units import MEMORY_BLOCK_SIZE, SEC, bytes_to_blocks
from repro.vmm.tracing import ResizeEvent
from repro.workloads.azure import AzureTraceGenerator
from repro.workloads.functions import FunctionSpec, get_function
from repro.workloads.traces import InvocationTrace

__all__ = [
    "FunctionLoad",
    "ServerlessScenario",
    "ServerlessRun",
    "run_scenario",
]


@dataclass(frozen=True)
class FunctionLoad:
    """One function's deployment plus the trace that drives it."""

    spec: FunctionSpec
    max_instances: int
    burst_rps: float
    base_rps: float
    bursts: Tuple[Tuple[float, float], ...] = ((0.0, 10.0),)
    vcpu_indices: Optional[Tuple[int, ...]] = None
    #: Idle-pool order override; ``None`` defers to the eviction policy.
    reuse: Optional[str] = None

    @classmethod
    def for_function(
        cls,
        name: str,
        vm_vcpus: int = 10,
        base_rps: float = 2.0,
        bursts: Tuple[Tuple[float, float], ...] = ((0.0, 10.0),),
        burst_rps: Optional[float] = None,
        max_instances: Optional[int] = None,
        vcpu_indices: Optional[Tuple[int, ...]] = None,
        reuse: Optional[str] = None,
    ) -> "FunctionLoad":
        """Table 1 defaults: max instances from the vCPU weight, a burst
        sized to spawn most of them over a ~10 s ramp (production bursts
        build over tens of seconds, not instantaneously)."""
        spec = get_function(name)
        instances = (
            max_instances
            if max_instances is not None
            else spec.max_instances_for(vm_vcpus)
        )
        return cls(
            spec=spec,
            max_instances=instances,
            burst_rps=burst_rps if burst_rps is not None else instances * 2.0,
            base_rps=base_rps,
            bursts=bursts,
            vcpu_indices=vcpu_indices,
            reuse=reuse,
        )


@dataclass(frozen=True)
class ServerlessScenario:
    """One VM, one deployment mode, one or more trace-driven functions."""

    mode: Union[str, DeploymentBackend]
    loads: Tuple[FunctionLoad, ...]
    duration_s: int = 150
    keep_alive_s: int = 30
    recycle_interval_s: int = 10
    spare_slots: int = 0
    drain_s: int = 30
    #: Sample the VM's elastic (datapath-held) bytes every N seconds
    #: (0 = off).
    sample_plugged_s: int = 0
    vm_vcpus: int = 10
    virtio_irq_vcpu: int = 0
    seed: int = 0
    costs: CostModel = DEFAULT_COSTS
    placement: str = "scatter"
    #: Fault-injection plan (None = no injector built; byte-identical to
    #: a build without the fault plane).
    faults: Optional[FaultPlan] = None
    #: Recovery policy for driver + agent (None = inert defaults).
    resilience: Optional[ResiliencePolicy] = None

    def __post_init__(self) -> None:
        # Accept registry names ("balloon") as well as backend objects.
        object.__setattr__(self, "mode", get_mode(self.mode))

    @property
    def partition_bytes(self) -> int:
        """Partition size: the largest function limit, block-rounded.

        Functions co-located on one HotMem VM share the partition size
        (the paper co-locates functions with equal limits, Section 6.2.2).
        """
        return (
            max(
                bytes_to_blocks(load.spec.memory_limit_bytes)
                for load in self.loads
            )
            * MEMORY_BLOCK_SIZE
        )

    @property
    def concurrency(self) -> int:
        """Total instance slots across every deployed function."""
        return sum(load.max_instances for load in self.loads)

    @property
    def shared_bytes(self) -> int:
        """Shared partition sized to all functions' dependencies."""
        deps = sum(load.spec.shared_deps_bytes for load in self.loads)
        return bytes_to_blocks(deps) * MEMORY_BLOCK_SIZE

    def vm_spec(self, name: Optional[str] = None) -> VmSpec:
        """The provisioning spec for this scenario's VM."""
        return VmSpec(
            name=name if name is not None else f"vm-{self.mode.value}",
            mode=self.mode,
            partition_bytes=self.partition_bytes,
            concurrency=self.concurrency,
            shared_bytes=self.shared_bytes,
            vcpus=self.vm_vcpus,
            placement=self.placement,
            virtio_irq_vcpu=self.virtio_irq_vcpu,
            seed=self.seed,
            costs=self.costs,
            faults=self.faults,
            retry=(
                self.resilience.retry if self.resilience is not None else None
            ),
        )

    def deployments(self) -> List[FunctionDeployment]:
        """The agent deployments for this scenario's functions."""
        return [
            FunctionDeployment(
                spec=load.spec,
                max_instances=load.max_instances,
                vcpu_indices=load.vcpu_indices,
                reuse=load.reuse,
            )
            for load in self.loads
        ]

    def keep_alive_policy(self) -> KeepAlivePolicy:
        """The agent keep-alive policy for this scenario."""
        return KeepAlivePolicy(
            keep_alive_ns=self.keep_alive_s * SEC,
            recycle_interval_ns=self.recycle_interval_s * SEC,
            spare_slots=self.spare_slots,
        )


@dataclass
class ServerlessRun:
    """Everything one scenario run produced."""

    scenario: ServerlessScenario
    records: List[InvocationRecord]
    shrink_events: List[ShrinkEvent]
    #: ``(t_ns, plugged_bytes)`` samples (empty unless sampling enabled).
    plugged_series: List[Tuple[int, float]]
    resize_events: List[ResizeEvent]
    reclaim_mib_per_s: float
    cold_starts: Dict[str, int]
    oom_failures: int
    virtio_cpu_ns: int
    #: Recovery-path accounting (empty when no faults were injected and
    #: nothing failed naturally).
    recovery_events: List[RecoveryEvent] = field(default_factory=list)
    injected_faults: int = 0
    unresolved_faults: int = 0
    #: Whether the agent fell back to static (no-elastic) mode.
    degraded: bool = False

    def records_for(self, function_name: str) -> List[InvocationRecord]:
        """Successful records for one function."""
        return [r for r in self.records if r.ok and r.function == function_name]

    def plug_latencies_ms(self) -> List[float]:
        """Latency of every plug request (ms)."""
        return [e.latency_ns / 1e6 for e in self.resize_events if e.kind == "plug"]

    def unplug_latencies_ms(self) -> List[float]:
        """Latency of every unplug request (ms)."""
        return [e.latency_ns / 1e6 for e in self.resize_events if e.kind == "unplug"]


def run_scenario(scenario: ServerlessScenario) -> ServerlessRun:
    """Replay the scenario's traces and collect every output artifact."""
    sim = Simulator()
    fleet = Fleet(sim)
    handle = fleet.provision(scenario.vm_spec())
    vm = handle.vm
    agent = handle.deploy(
        scenario.deployments(),
        scenario.keep_alive_policy(),
        resilience=scenario.resilience,
    )
    runtime = FaasRuntime(sim)
    runtime.register_agent(agent)
    generator = AzureTraceGenerator(scenario.seed)
    for load in scenario.loads:
        trace: InvocationTrace = generator.bursty(
            load.spec.name,
            duration_s=float(scenario.duration_s),
            burst_rps=load.burst_rps,
            base_rps=load.base_rps,
            bursts=load.bursts,
        )
        runtime.drive(agent, trace)
    horizon_ns = (scenario.duration_s + scenario.drain_s) * SEC
    agent.start_recycler(until_ns=horizon_ns)
    sampler = None
    if scenario.sample_plugged_s > 0:
        from repro.metrics.collector import PeriodicSampler

        sampler = PeriodicSampler(
            sim,
            lambda: vm.elastic_bytes,
            period_ns=scenario.sample_plugged_s * SEC,
            name="plugged-bytes",
        )
        sampler.start(until_ns=horizon_ns)
    runtime.run(until_ns=horizon_ns)
    vm.check_consistency()
    return ServerlessRun(
        scenario=scenario,
        records=list(runtime.records),
        shrink_events=list(agent.shrink_events),
        plugged_series=list(sampler.series.samples) if sampler else [],
        resize_events=list(vm.tracer.events),
        reclaim_mib_per_s=vm.tracer.reclaim_throughput_mib_per_sec(),
        cold_starts={
            load.spec.name: agent.cold_start_count(load.spec.name)
            for load in scenario.loads
        },
        oom_failures=runtime.failure_count,
        virtio_cpu_ns=scenario.mode.datapath_cpu_ns(vm),
        recovery_events=list(vm.recovery_log.events),
        injected_faults=vm.faults.count(),
        unresolved_faults=len(vm.faults.unresolved()),
        degraded=agent.degraded,
    )
