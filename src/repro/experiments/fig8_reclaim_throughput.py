"""Figure 8: memory reclamation throughput under trace-driven scaling.

Paper result: while scaling instances up and down with a bursty Azure
trace, HotMem reclaims memory at roughly 7× the throughput of vanilla
virtio-mem, for every one of the four functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.experiments.serverless import (
    FunctionLoad,
    ServerlessScenario,
    run_scenario,
)
from repro.faas.policy import DeploymentMode
from repro.metrics.report import format_ratio, render_table
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sweep import Cell, SweepGrid, register_experiment, run_sweep

__all__ = ["Fig8Config", "Fig8Result", "run"]


@dataclass(frozen=True)
class Fig8Config:
    """Per-function trace replay configuration."""

    functions: Tuple[str, ...] = ("cnn", "bert", "bfs", "html")
    duration_s: int = 150
    keep_alive_s: int = 30
    recycle_interval_s: int = 10
    seed: int = 0
    costs: CostModel = DEFAULT_COSTS

    @classmethod
    def paper_scale(cls) -> "Fig8Config":
        """Longer traces with the paper's 120 s keep-alive."""
        return cls(duration_s=400, keep_alive_s=120, recycle_interval_s=15)


@dataclass
class Fig8Result:
    """Reclaim throughput per function per mechanism."""

    config: Fig8Config
    #: function → mode → MiB/s.
    throughput: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: function → mode → total MiB reclaimed.
    reclaimed_mib: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def speedup(self, function: str) -> float:
        """HotMem over vanilla reclaim throughput."""
        return (
            self.throughput[function]["hotmem"]
            / self.throughput[function]["vanilla"]
        )

    def rows(self) -> List[List[object]]:
        out: List[List[object]] = []
        for fn in self.config.functions:
            out.append(
                [
                    fn,
                    self.throughput[fn]["vanilla"],
                    self.throughput[fn]["hotmem"],
                    format_ratio(
                        self.throughput[fn]["hotmem"],
                        self.throughput[fn]["vanilla"],
                    ),
                    self.reclaimed_mib[fn]["vanilla"],
                    self.reclaimed_mib[fn]["hotmem"],
                ]
            )
        return out

    def render(self) -> str:
        return render_table(
            "Figure 8: reclamation throughput (MiB/s) while scaling with a "
            "bursty trace",
            [
                "function",
                "vanilla_mib_s",
                "hotmem_mib_s",
                "speedup",
                "vanilla_mib",
                "hotmem_mib",
            ],
            self.rows(),
        )


def _cell(config: Fig8Config, cell: Cell) -> Tuple[float, float]:
    """One (function, mode) trace replay in a fresh scenario."""
    scenario = ServerlessScenario(
        mode=DeploymentMode(cell["mode"]),
        loads=(FunctionLoad.for_function(cell["function"]),),
        duration_s=config.duration_s,
        keep_alive_s=config.keep_alive_s,
        recycle_interval_s=config.recycle_interval_s,
        seed=config.seed,
        costs=config.costs,
    )
    run_result = run_scenario(scenario)
    unplugged = sum(
        e.completed_bytes
        for e in run_result.resize_events
        if e.kind == "unplug"
    )
    return run_result.reclaim_mib_per_s, unplugged / (1024 * 1024)


def _grid(config: Fig8Config) -> SweepGrid:
    return (
        SweepGrid("fig8")
        .axis("function", config.functions)
        .axis(
            "mode",
            (DeploymentMode.VANILLA.value, DeploymentMode.HOTMEM.value),
        )
    )


def run(config: Fig8Config = Fig8Config()) -> Fig8Result:
    """Replay each function's trace under both elastic mechanisms."""
    result = Fig8Result(config)
    for cell_result in run_sweep(_grid(config), _cell, config):
        fn, mode = cell_result["function"], cell_result["mode"]
        throughput, reclaimed = cell_result.payload
        result.throughput.setdefault(fn, {})[mode] = throughput
        result.reclaimed_mib.setdefault(fn, {})[mode] = reclaimed
    return result


register_experiment(
    "fig8",
    "Trace-driven reclamation throughput",
    config=Fig8Config,
    run=run,
)
