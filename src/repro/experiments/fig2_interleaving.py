"""Figure 2, quantified: footprint interleaving after a process exits.

The paper's Figure 2 is a concept diagram — three processes' footprints
interleave across memory blocks, so when F2 exits almost no block
becomes fully free and reclaiming its memory requires migrations.  This
experiment turns the diagram into numbers: N instances allocate inside
one guest, one exits, and we measure how many blocks are now completely
free, how many owners share each block, and how many pages would have to
migrate to reclaim the exited instance's worth of memory — for each
allocator placement policy and for HotMem partitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.config import HotMemBootParams
from repro.core.manager import HotMemManager
from repro.metrics.fragmentation import (
    FragmentationReport,
    fragmentation_report,
    migration_cost_to_reclaim,
)
from repro.metrics.report import render_table
from repro.mm.fault import FaultHandler
from repro.mm.manager import GuestMemoryManager
from repro.mm.mm_struct import MmStruct
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.engine import Simulator
from repro.sweep import Cell, SweepGrid, register_experiment, run_sweep
from repro.units import GIB, MEMORY_BLOCK_SIZE, MIB, bytes_to_blocks, bytes_to_pages

__all__ = ["Fig2Config", "Fig2Result", "run"]

VARIANTS = ("scatter", "random", "sequential", "hotmem")


@dataclass(frozen=True)
class Fig2Config:
    """N same-sized instances; the last one spawned exits."""

    instances: int = 8
    instance_bytes: int = 300 * MIB
    slot_bytes: int = 384 * MIB  # block-rounded limit (the partition size)
    seed: int = 0


@dataclass
class Fig2Result:
    """Interleaving metrics per allocator variant."""

    config: Fig2Config
    reports: Dict[str, FragmentationReport] = field(default_factory=dict)
    #: Pages that must migrate to reclaim one slot's worth of blocks.
    migration_pages: Dict[str, int] = field(default_factory=dict)

    def rows(self) -> List[List[object]]:
        out: List[List[object]] = []
        for variant in VARIANTS:
            report = self.reports[variant]
            out.append(
                [
                    variant,
                    f"{report.fully_free_blocks}/{report.total_blocks}",
                    report.mean_owners_per_block,
                    report.max_owners_per_block,
                    f"{report.mean_occupancy:.0%}",
                    self.migration_pages[variant],
                ]
            )
        return out

    def render(self) -> str:
        return render_table(
            "Figure 2 quantified: blocks after one of "
            f"{self.config.instances} instances exits",
            [
                "allocator",
                "free_blocks",
                "avg_owners",
                "max_owners",
                "occupancy",
                "pages_to_migrate",
            ],
            self.rows(),
        )


def _cell(config: Fig2Config, cell: Cell):
    """One allocator variant's exit scenario in a fresh guest."""
    variant = cell["variant"]
    slot_blocks = bytes_to_blocks(config.slot_bytes)
    total_bytes = config.instances * slot_blocks * MEMORY_BLOCK_SIZE
    pages = bytes_to_pages(config.instance_bytes)

    placement = "scatter" if variant == "hotmem" else variant
    manager = GuestMemoryManager(
        1 * GIB, total_bytes, placement=placement
    )
    handler = FaultHandler(manager, DEFAULT_COSTS)
    hotmem = None
    if variant == "hotmem":
        hotmem = HotMemManager(
            Simulator(),
            manager,
            HotMemBootParams(
                partition_bytes=slot_blocks * MEMORY_BLOCK_SIZE,
                concurrency=config.instances,
                shared_bytes=0,
            ),
        )
        free = list(manager.hotplug_block_indices())
        cursor = 0
        for partition in hotmem.partitions:
            for _ in range(partition.size_blocks):
                manager.online_block(free[cursor], partition.zone)
                cursor += 1
    else:
        for index in manager.hotplug_block_indices():
            manager.online_block(index, manager.zone_movable)

    instances = []
    for i in range(config.instances):
        mm = MmStruct(f"fn{i}")
        if hotmem is not None:
            hotmem.try_attach(mm)
        handler.fault_anon(mm, pages)
        instances.append(mm)
    # The last instance exits (the paper's F2).
    exiting = instances[-1]
    if hotmem is not None:
        hotmem.process_exit(handler, exiting)
    else:
        handler.release_address_space(exiting)

    if hotmem is not None:
        blocks = [
            b for p in hotmem.partitions for b in p.zone.blocks
        ]
        # Reclaiming a free partition migrates nothing by construction.
        migration_pages = 0
    else:
        blocks = list(manager.zone_movable.blocks)
        migration_pages = migration_cost_to_reclaim(manager, slot_blocks)
    return fragmentation_report(blocks), migration_pages


def _grid(config: Fig2Config) -> SweepGrid:
    del config
    return SweepGrid("fig2").axis("variant", VARIANTS)


def run(config: Fig2Config = Fig2Config()) -> Fig2Result:
    """Reproduce the Figure 2 scenario under every allocator variant."""
    result = Fig2Result(config)
    for cell_result in run_sweep(_grid(config), _cell, config):
        report, migration_pages = cell_result.payload
        result.reports[cell_result["variant"]] = report
        result.migration_pages[cell_result["variant"]] = migration_pages
    return result


register_experiment(
    "fig2",
    "Figure 2 quantified: interleaving after an instance exits",
    config=Fig2Config,
    run=run,
    paper_scale_config=False,
)
