"""Figure 5: average latency to reclaim different sizes from a loaded guest.

Paper result: HotMem reclamation is an order of magnitude faster than
vanilla at every size (it avoids busy-page migration entirely), and both
curves grow roughly linearly with the request size because Linux
(un)plugs memory in 128 MiB blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.experiments.microbench import MicrobenchRig, MicrobenchSetup
from repro.metrics.report import format_ratio, render_table
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sweep import Cell, SweepGrid, register_experiment, run_sweep
from repro.units import GIB, MIB, format_bytes

__all__ = ["Fig5Config", "Fig5Result", "run"]


@dataclass(frozen=True)
class Fig5Config:
    """Sweep configuration (sizes are reclaim request sizes)."""

    reclaim_sizes: Tuple[int, ...] = (384 * MIB, 768 * MIB, 1536 * MIB, 3 * GIB)
    partition_bytes: int = 384 * MIB
    total_bytes: int = 6 * GIB
    usage_fraction: float = 0.85
    trials: int = 3
    costs: CostModel = DEFAULT_COSTS

    @classmethod
    def paper_scale(cls) -> "Fig5Config":
        """The larger sweep closer to the paper's figure."""
        return cls(
            reclaim_sizes=(384 * MIB, 768 * MIB, 1536 * MIB, 3 * GIB, 6 * GIB),
            total_bytes=12 * GIB,
            trials=5,
        )


@dataclass
class Fig5Result:
    """Per-size average latencies for both mechanisms."""

    config: Fig5Config
    #: size → mode → average latency (ms).
    latency_ms: Dict[int, Dict[str, float]] = field(default_factory=dict)
    #: size → mode → average migrated pages.
    migrated_pages: Dict[int, Dict[str, float]] = field(default_factory=dict)

    def speedup(self, size: int) -> float:
        """Vanilla over HotMem latency at one size."""
        return self.latency_ms[size]["vanilla"] / self.latency_ms[size]["hotmem"]

    def rows(self) -> List[List[object]]:
        out: List[List[object]] = []
        for size in self.config.reclaim_sizes:
            out.append(
                [
                    format_bytes(size),
                    self.latency_ms[size]["vanilla"],
                    self.latency_ms[size]["hotmem"],
                    format_ratio(
                        self.latency_ms[size]["vanilla"],
                        self.latency_ms[size]["hotmem"],
                    ),
                    int(self.migrated_pages[size]["vanilla"]),
                    int(self.migrated_pages[size]["hotmem"]),
                ]
            )
        return out

    def render(self) -> str:
        return render_table(
            "Figure 5: avg latency (ms) to reclaim memory from a loaded guest",
            [
                "size",
                "vanilla_ms",
                "hotmem_ms",
                "speedup",
                "vanilla_migrated",
                "hotmem_migrated",
            ],
            self.rows(),
        )


def _cell(config: Fig5Config, cell: Cell) -> Tuple[float, int]:
    """One (size, mode, trial) reclaim in a fresh rig."""
    rig = MicrobenchRig(
        MicrobenchSetup(
            mode=cell["mode"],
            total_bytes=config.total_bytes,
            partition_bytes=config.partition_bytes,
            usage_fraction=config.usage_fraction,
            costs=config.costs,
            seed=cell["trial"],
        )
    )
    measurement = rig.run_single_reclaim(cell["size"])
    return measurement.latency_ms, measurement.migrated_pages


def _grid(config: Fig5Config) -> SweepGrid:
    return (
        SweepGrid("fig5")
        .axis("size", config.reclaim_sizes)
        .axis("mode", ("vanilla", "hotmem"))
        .axis("trial", range(config.trials))
    )


def run(config: Fig5Config = Fig5Config()) -> Fig5Result:
    """Run the Figure 5 sweep and return averaged measurements."""
    result = Fig5Result(config)
    samples: Dict[Tuple[int, str], List[Tuple[float, int]]] = {}
    for cell_result in run_sweep(_grid(config), _cell, config):
        key = (cell_result["size"], cell_result["mode"])
        samples.setdefault(key, []).append(cell_result.payload)
    for size in config.reclaim_sizes:
        result.latency_ms[size] = {}
        result.migrated_pages[size] = {}
        for mode in ("vanilla", "hotmem"):
            trials = samples[(size, mode)]
            result.latency_ms[size][mode] = sum(
                latency for latency, _ in trials
            ) / len(trials)
            result.migrated_pages[size][mode] = sum(
                migrated for _, migrated in trials
            ) / len(trials)
    return result


register_experiment(
    "fig5",
    "Unplug latency vs reclaim size",
    config=Fig5Config,
    run=run,
)
