"""Command-line experiment runner.

Regenerate any table or figure of the paper from the shell::

    python -m repro.experiments list
    python -m repro.experiments fig5
    python -m repro.experiments fig10 --paper-scale
    python -m repro.experiments all --sanitize

``--paper-scale`` switches to the full-size configuration where one is
defined (the defaults are scaled down to run in seconds).

``--modes`` restricts mode-sweeping experiments (density, chaos) to a
comma-separated list of registered deployment modes, e.g.
``--modes hotmem,vanilla,balloon,dimm,fpr``.

``--sanitize`` attaches the memory-state sanitizer
(:mod:`repro.analysis.sanitizer`) to every guest memory manager the
experiments construct: the run aborts with a structured
:class:`~repro.analysis.invariants.InvariantViolation` report the moment
any mm invariant breaks, instead of quietly producing wrong figures.

``--trace`` installs the tracing session (:mod:`repro.obs`): every
simulator the experiments build gets causal spans across the whole
hotplug datapath plus a labeled metrics registry, exported after the run
as deterministic JSONL (``--trace-file``, default ``trace.jsonl``).
Analyze the export with::

    python -m repro.experiments fig5 --trace
    python -m repro.experiments trace-report
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional, Tuple

from repro.experiments import (
    ablations,
    chaos,
    cluster_chaos,
    density,
    fig2_interleaving,
    baselines_comparison,
    fig5_unplug_latency,
    fig6_usage_sweep,
    fig7_cpu_usage,
    fig8_reclaim_throughput,
    fig9_p99_latency,
    fig10_interference,
    policy_tradeoff,
    stranding,
    tracking,
    table1,
)

__all__ = ["main", "EXPERIMENTS"]


def _figure_runner(module, has_paper_scale: bool = True):
    def run(paper_scale: bool, modes: Optional[Tuple[str, ...]] = None) -> str:
        import dataclasses

        config_cls = next(
            obj
            for name, obj in module.__dict__.items()
            if name.endswith("Config")
            and isinstance(obj, type)
            and obj.__module__ == module.__name__
        )
        config = (
            config_cls.paper_scale()
            if paper_scale and has_paper_scale
            else config_cls()
        )
        if modes is not None:
            field_names = {f.name for f in dataclasses.fields(config_cls)}
            if "modes" not in field_names:
                raise SystemExit(
                    f"{module.__name__.rsplit('.', 1)[-1]} does not sweep "
                    f"deployment modes (--modes not applicable)"
                )
            config = dataclasses.replace(config, modes=modes)
        return module.run(config).render()

    return run


def _simple_runner(fn: Callable[[], object]):
    def run(paper_scale: bool, modes: Optional[Tuple[str, ...]] = None) -> str:
        del paper_scale, modes
        result = fn()
        return result.render() if hasattr(result, "render") else str(result)

    return run


def _ablation_runner():
    def run(paper_scale: bool, modes: Optional[Tuple[str, ...]] = None) -> str:
        del paper_scale, modes
        parts = [
            ablations.run_placement_ablation().render(),
            ablations.run_zeroing_ablation().render(),
            ablations.run_selection_ablation().render(),
            ablations.run_concurrency_ablation().render(),
            ablations.run_batching_ablation().render(),
        ]
        return "\n\n".join(parts)

    return run


def _baselines_runner():
    def run(paper_scale: bool, modes: Optional[Tuple[str, ...]] = None) -> str:
        del paper_scale, modes
        relaxed = baselines_comparison.run().render()
        pressure = baselines_comparison.run(
            baselines_comparison.BaselinesConfig.pressure()
        ).render()
        return relaxed + "\n\nUnder pressure:\n" + pressure

    return run


#: name → (description, runner(paper_scale, modes) -> str)
EXPERIMENTS: Dict[str, Tuple[str, Callable[..., str]]] = {
    "table1": (
        "Function resource limits",
        _simple_runner(lambda: table1.render()),
    ),
    "fig2": (
        "Figure 2 quantified: interleaving after an instance exits",
        _figure_runner(fig2_interleaving, has_paper_scale=False),
    ),
    "fig5": (
        "Unplug latency vs reclaim size",
        _figure_runner(fig5_unplug_latency),
    ),
    "fig6": (
        "Unplug latency vs guest memory usage",
        _figure_runner(fig6_usage_sweep),
    ),
    "fig7": (
        "Cumulative unplug-vCPU time during stepped shrink",
        _figure_runner(fig7_cpu_usage),
    ),
    "fig8": (
        "Trace-driven reclamation throughput",
        _figure_runner(fig8_reclaim_throughput),
    ),
    "fig9": (
        "P99 latency across deployment modes",
        _figure_runner(fig9_p99_latency),
    ),
    "fig10": (
        "Co-location interference during shrink",
        _figure_runner(fig10_interference),
    ),
    "ablations": ("A1-A4 design-choice ablations", _ablation_runner()),
    "baselines": (
        "A5 four-interface comparison (incl. balloon, DIMM)",
        _baselines_runner(),
    ),
    "stranding": (
        "M1 host memory stranding (Figure 1 motivation)",
        _simple_runner(lambda: stranding.run()),
    ),
    "policy": (
        "P1 spare-slot policy: cold-start latency vs memory held",
        _simple_runner(lambda: policy_tradeoff.run()),
    ),
    "tracking": (
        "E1 memory tracking under a diurnal load cycle",
        _figure_runner(tracking),
    ),
    "chaos": (
        "R1 fault-rate sweep: recovery paths and degradation",
        _figure_runner(chaos),
    ),
    "cluster-chaos": (
        "R2 fleet failure domains: availability, MTTR and density "
        "under host/VM crash injection",
        _figure_runner(cluster_chaos),
    ),
    "density": (
        "D1 VMs-per-host at the P99 SLO across deployment modes",
        _figure_runner(density),
    ),
}

#: Experiments whose config sweeps deployment modes (accept ``--modes``).
MODE_SWEEPING = frozenset({"chaos", "cluster-chaos", "density"})


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'list', or 'all'",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the full-size configuration where one exists",
    )
    parser.add_argument(
        "--modes",
        type=str,
        default=None,
        metavar="NAMES",
        help="comma-separated registered deployment modes to sweep "
        "(experiments with a mode sweep only), e.g. "
        "hotmem,vanilla,overprovisioned,balloon,dimm,fpr",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="attach the memory-state sanitizer to every guest memory "
        "manager (abort on the first mm invariant violation)",
    )
    parser.add_argument(
        "--sanitize-every",
        type=int,
        default=256,
        metavar="N",
        help="periodic sanitizer sweep interval in mm mutations "
        "(default 256; 0 disables periodic sweeps)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="install the tracing session: causal spans + labeled "
        "metrics across the hotplug datapath, exported as "
        "deterministic JSONL after the run",
    )
    parser.add_argument(
        "--trace-file",
        type=str,
        default="trace.jsonl",
        metavar="PATH",
        help="where --trace writes its export, and what trace-report "
        "reads (default trace.jsonl)",
    )
    args = parser.parse_args(argv)

    modes: Optional[Tuple[str, ...]] = None
    if args.modes is not None:
        from repro.modes import names as registered_names

        modes = tuple(
            name.strip() for name in args.modes.split(",") if name.strip()
        )
        unknown_modes = [n for n in modes if n not in registered_names()]
        if not modes or unknown_modes:
            print(
                f"unknown mode(s): {', '.join(unknown_modes) or '(empty)'}; "
                f"registered: {', '.join(registered_names())}",
                file=sys.stderr,
            )
            return 2

    if args.sanitize:
        from repro.analysis.sanitizer import SanitizerConfig, install

        install(SanitizerConfig(every_n_events=args.sanitize_every))

    if args.experiment == "list":
        for name, (description, _) in EXPERIMENTS.items():
            print(f"{name:12} {description}")
        print("trace-report per-mode unplug phase attribution from a --trace export")
        return 0

    if args.experiment == "trace-report":
        from repro.obs import load_report

        try:
            report = load_report(args.trace_file)
        except FileNotFoundError:
            print(
                f"no trace export at {args.trace_file!r}; run an "
                f"experiment with --trace first",
                file=sys.stderr,
            )
            return 2
        print(report.render())
        return 0

    if args.trace:
        from repro.obs import install as install_tracing

        install_tracing()

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("use 'list' to see what is available", file=sys.stderr)
        return 2
    if modes is not None and not any(n in MODE_SWEEPING for n in names):
        print(
            f"--modes only applies to: {', '.join(sorted(MODE_SWEEPING))}",
            file=sys.stderr,
        )
        return 2
    for name in names:
        description, runner = EXPERIMENTS[name]
        started = time.time()  # lint: allow[no-wallclock] progress display only
        output = runner(args.paper_scale, modes if name in MODE_SWEEPING else None)
        elapsed = time.time() - started  # lint: allow[no-wallclock] progress display only
        print(output)
        print(f"[{name}: {elapsed:.1f}s]")
        print()
    if args.sanitize:
        from repro.analysis.sanitizer import installed_sanitizers, uninstall

        sweeps = sum(s.checks_run for s in installed_sanitizers())
        managers = len(installed_sanitizers())
        print(
            f"[sanitizer: {sweeps} sweeps across {managers} guest memory "
            f"manager(s), no violations]"
        )
        uninstall()
    if args.trace:
        from repro.obs import current_session, export_session
        from repro.obs import uninstall as uninstall_tracing

        session = current_session()
        if session is not None:
            session.finalize()
            print(export_session(session, args.trace_file).render())
        uninstall_tracing()
    return 0


if __name__ == "__main__":
    sys.exit(main())
