"""Command-line experiment runner.

Regenerate any table or figure of the paper from the shell::

    python -m repro.experiments list
    python -m repro.experiments fig5
    python -m repro.experiments fig10 --paper-scale
    python -m repro.experiments all --sanitize
    python -m repro.experiments density --workers 8

``--paper-scale`` switches to the full-size configuration where one is
defined (the defaults are scaled down to run in seconds).

``--modes`` restricts mode-sweeping experiments (density, chaos) to a
comma-separated list of registered deployment modes, e.g.
``--modes hotmem,vanilla,balloon,dimm,fpr``.

``--workers N`` shards each experiment's sweep cells across ``N``
processes (:mod:`repro.sweep`).  Results merge in cell order, so the
output — including ``--trace`` export digests and ``--sanitize``
summaries — is byte-identical for any worker count.

``--sanitize`` attaches the memory-state sanitizer
(:mod:`repro.analysis.sanitizer`) to every guest memory manager the
experiments construct: the run aborts with a structured
:class:`~repro.analysis.invariants.InvariantViolation` report the moment
any mm invariant breaks, instead of quietly producing wrong figures.

``--trace`` installs the tracing session (:mod:`repro.obs`): every
simulator the experiments build gets causal spans across the whole
hotplug datapath plus a labeled metrics registry, exported after the run
as deterministic JSONL (``--trace-file``, default ``trace.jsonl``).
Analyze the export with::

    python -m repro.experiments fig5 --trace
    python -m repro.experiments trace-report
    python -m repro.experiments obs-report

The dispatch table itself is declarative: every experiment module ends
with a :func:`repro.sweep.register_experiment` call, and this entry
point only imports the modules in canonical order and reads the
registry.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional, Tuple

# Imported for self-registration side effects, in the canonical display
# order of the dispatch table (the paper's table/figure order).
from repro.experiments import (  # noqa: F401  (registration imports)
    table1,
    fig2_interleaving,
    fig5_unplug_latency,
    fig6_usage_sweep,
    fig7_cpu_usage,
    fig8_reclaim_throughput,
    fig9_p99_latency,
    fig10_interference,
    ablations,
    baselines_comparison,
    stranding,
    policy_tradeoff,
    tracking,
    chaos,
    cluster_chaos,
    density,
    keepalive,
)
from repro.sweep import RunContext, collecting, registry

__all__ = ["main", "EXPERIMENTS", "MODE_SWEEPING"]

#: name → (description, runner(paper_scale, modes) -> str), from the
#: self-registration calls at the bottom of each experiment module.
EXPERIMENTS: Dict[str, Tuple[str, Callable[..., str]]] = {
    spec.name: (spec.description, spec.runner)
    for spec in registry().values()
}

#: Experiments whose config sweeps deployment modes (accept ``--modes``).
MODE_SWEEPING = frozenset(
    spec.name for spec in registry().values() if spec.mode_sweeping
)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'list', or 'all'",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the full-size configuration where one exists",
    )
    parser.add_argument(
        "--modes",
        type=str,
        default=None,
        metavar="NAMES",
        help="comma-separated registered deployment modes to sweep "
        "(experiments with a mode sweep only), e.g. "
        "hotmem,vanilla,overprovisioned,balloon,dimm,fpr",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="shard sweep cells across N processes (default 1: serial; "
        "output is byte-identical for any worker count)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="attach the memory-state sanitizer to every guest memory "
        "manager (abort on the first mm invariant violation)",
    )
    parser.add_argument(
        "--sanitize-every",
        type=int,
        default=256,
        metavar="N",
        help="periodic sanitizer sweep interval in mm mutations "
        "(default 256; 0 disables periodic sweeps)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="install the tracing session: causal spans + labeled "
        "metrics across the hotplug datapath, exported as "
        "deterministic JSONL after the run",
    )
    parser.add_argument(
        "--trace-file",
        type=str,
        default="trace.jsonl",
        metavar="PATH",
        help="where --trace writes its export, and what trace-report "
        "reads (default trace.jsonl)",
    )
    args = parser.parse_args(argv)

    modes: Optional[Tuple[str, ...]] = None
    if args.modes is not None:
        from repro.modes import names as registered_names

        modes = tuple(
            name.strip() for name in args.modes.split(",") if name.strip()
        )
        unknown_modes = [n for n in modes if n not in registered_names()]
        if not modes or unknown_modes:
            print(
                f"unknown mode(s): {', '.join(unknown_modes) or '(empty)'}; "
                f"registered: {', '.join(registered_names())}",
                file=sys.stderr,
            )
            return 2

    if args.experiment == "list":
        for name, (description, _) in EXPERIMENTS.items():
            print(f"{name:12} {description}")
        print("trace-report per-mode unplug phase attribution from a --trace export")
        print("obs-report   fleet streaming-telemetry dashboard from a --trace export")
        return 0

    if args.experiment == "trace-report":
        from repro.obs import load_report

        try:
            report = load_report(args.trace_file)
        except FileNotFoundError:
            print(
                f"no trace export at {args.trace_file!r}; run an "
                f"experiment with --trace first",
                file=sys.stderr,
            )
            return 2
        print(report.render())
        return 0

    if args.experiment == "obs-report":
        from repro.obs import load_obs_report

        try:
            obs_report = load_obs_report(args.trace_file)
        except FileNotFoundError:
            print(
                f"no trace export at {args.trace_file!r}; run an "
                f"experiment with --trace first",
                file=sys.stderr,
            )
            return 2
        print(obs_report.render())
        print(obs_report.summary_line(args.trace_file))
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("use 'list' to see what is available", file=sys.stderr)
        return 2
    if modes is not None and not any(n in MODE_SWEEPING for n in names):
        print(
            f"--modes only applies to: {', '.join(sorted(MODE_SWEEPING))}",
            file=sys.stderr,
        )
        return 2

    context = RunContext(
        workers=max(1, args.workers),
        sanitize=args.sanitize,
        sanitize_every=args.sanitize_every,
        trace=args.trace,
    )
    with collecting(context) as report:
        for name in names:
            description, runner = EXPERIMENTS[name]
            started = time.time()  # lint: allow[no-wallclock] progress display only
            output = runner(args.paper_scale, modes if name in MODE_SWEEPING else None)
            elapsed = time.time() - started  # lint: allow[no-wallclock] progress display only
            print(output)
            print(f"[{name}: {elapsed:.1f}s]")
            print()
        if args.sanitize:
            print(report.sanitizer_line())
        if args.trace:
            print(report.write_trace(args.trace_file).render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
