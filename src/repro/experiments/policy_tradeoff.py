"""P1: spare-slot policy — cold-start latency vs memory held.

The memory-harvesting line of work the paper cites ([28]) masks slow
reclamation by keeping buffers of idle memory around.  HotMem makes
reclamation cheap enough that such buffers become a *policy knob* rather
than a necessity; this experiment quantifies the knob: with
``spare_slots = k`` the recycler leaves ``k`` instance-slots of memory
plugged after scale-down, so the next burst's first cold starts skip
their plug (and attach straight to a populated partition).

A repeated burst/quiet-cycle trace drives the measurement.  The headline
finding mirrors the paper's Figure 9 argument: **under HotMem, spare
buffers buy almost nothing** — plugs are cheap and barely on the cold
path, so holding memory back only raises the footprint.  The experiment
also re-runs the sweep with an artificially slow plug path
(``slow_plug_factor``): there the spare slots visibly cut cold-start
latency — demonstrating that idle-memory buffers are a workaround for
slow (un)plug, which HotMem obviates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.experiments.serverless import (
    FunctionLoad,
    ServerlessScenario,
    run_scenario,
)
from repro.faas.policy import DeploymentMode
from repro.metrics.latency import percentile
from repro.metrics.report import render_table
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sweep import Cell, SweepGrid, register_experiment, run_sweep
from repro.units import GIB

__all__ = ["PolicyConfig", "PolicyResult", "run"]


@dataclass(frozen=True)
class PolicyConfig:
    """Repeated burst cycles against one HotMem VM."""

    function: str = "bert"
    spare_slots: Tuple[int, ...] = (0, 1, 2)
    include_overprovisioned: bool = True
    duration_s: int = 160
    cycle_s: float = 40.0
    burst_len_s: float = 5.0
    keep_alive_s: int = 12
    recycle_interval_s: int = 4
    #: Plug-cost multiplier for the slow-plug regime (0 disables it).
    slow_plug_factor: int = 8
    seed: int = 0
    costs: CostModel = DEFAULT_COSTS

    def slow_costs(self) -> CostModel:
        """The cost model of the artificially slow plug path."""
        return self.costs.replace(
            hot_add_block_ns=self.costs.hot_add_block_ns * self.slow_plug_factor,
            online_block_ns=self.costs.online_block_ns * self.slow_plug_factor,
        )

    def bursts(self) -> Tuple[Tuple[float, float], ...]:
        """One burst per cycle."""
        out = []
        start = 0.0
        while start + self.burst_len_s < self.duration_s:
            out.append((start, start + self.burst_len_s))
            start += self.cycle_s
        return tuple(out)


@dataclass
class PolicyResult:
    """Cold-start latency vs memory held, per policy variant."""

    config: PolicyConfig
    #: variant label → mean cold-start latency (ms).
    cold_mean_ms: Dict[str, float] = field(default_factory=dict)
    #: variant label → p95 cold-start latency (ms).
    cold_p95_ms: Dict[str, float] = field(default_factory=dict)
    #: variant label → cold starts observed.
    cold_count: Dict[str, int] = field(default_factory=dict)
    #: variant label → time-averaged plugged memory (GiB).
    avg_plugged_gib: Dict[str, float] = field(default_factory=dict)

    def variants(self) -> List[str]:
        labels = [f"spare={k}" for k in self.config.spare_slots]
        if self.config.slow_plug_factor:
            labels.extend(
                f"slow-plug spare={k}" for k in self.config.spare_slots
            )
        if self.config.include_overprovisioned:
            labels.append("overprovisioned")
        return labels

    def slow_plug_benefit(self) -> float:
        """Cold-latency saved by the max spare count under slow plugs."""
        spares = self.config.spare_slots
        return (
            self.cold_mean_ms[f"slow-plug spare={spares[0]}"]
            - self.cold_mean_ms[f"slow-plug spare={spares[-1]}"]
        )

    def fast_plug_benefit(self) -> float:
        """Cold-latency saved by the max spare count under normal plugs."""
        spares = self.config.spare_slots
        return (
            self.cold_mean_ms[f"spare={spares[0]}"]
            - self.cold_mean_ms[f"spare={spares[-1]}"]
        )

    def rows(self) -> List[List[object]]:
        return [
            [
                label,
                self.cold_count[label],
                self.cold_mean_ms[label],
                self.cold_p95_ms[label],
                self.avg_plugged_gib[label],
            ]
            for label in self.variants()
        ]

    def render(self) -> str:
        return render_table(
            f"P1: spare-slot policy for {self.config.function!r} "
            f"(cold-start latency vs memory held)",
            ["variant", "colds", "cold_mean_ms", "cold_p95_ms", "avg_plugged_gib"],
            self.rows(),
        )


def _cell(config: PolicyConfig, cell: Cell) -> Tuple[int, float, float, float]:
    """One policy variant: (colds, mean ms, p95 ms, avg plugged GiB)."""
    # Modest bursts (≈3 concurrent instances): most of each burst's cold
    # starts can then be absorbed by the spare slots under test.
    load = FunctionLoad.for_function(
        config.function,
        bursts=config.bursts(),
        burst_rps=6.0,
        base_rps=0.2,
    )
    run = run_scenario(
        ServerlessScenario(
            mode=DeploymentMode(cell["mode"]),
            loads=(load,),
            duration_s=config.duration_s,
            keep_alive_s=config.keep_alive_s,
            recycle_interval_s=config.recycle_interval_s,
            spare_slots=cell["spare"],
            sample_plugged_s=1,
            drain_s=15,
            seed=config.seed,
            costs=config.slow_costs() if cell["slow"] else config.costs,
        )
    )
    colds = [r for r in run.records if r.ok and r.cold]
    latencies = [r.latency_ns / 1e6 for r in colds]
    values = [v for _, v in run.plugged_series]
    return (
        len(colds),
        sum(latencies) / len(latencies),
        percentile(latencies, 95),
        sum(values) / len(values) / GIB,
    )


def _variant_rows(config: PolicyConfig) -> List[Dict[str, object]]:
    """Explicit (ragged) rows: the variant labels drive the grid."""
    rows: List[Dict[str, object]] = [
        {"mode": DeploymentMode.HOTMEM.value, "spare": k, "slow": False,
         "label": f"spare={k}"}
        for k in config.spare_slots
    ]
    if config.slow_plug_factor:
        rows.extend(
            {"mode": DeploymentMode.HOTMEM.value, "spare": k, "slow": True,
             "label": f"slow-plug spare={k}"}
            for k in config.spare_slots
        )
    if config.include_overprovisioned:
        rows.append(
            {"mode": DeploymentMode.OVERPROVISIONED.value, "spare": 0,
             "slow": False, "label": "overprovisioned"}
        )
    return rows


def _grid(config: PolicyConfig) -> SweepGrid:
    return SweepGrid.explicit(
        ("mode", "spare", "slow", "label"),
        _variant_rows(config),
        name="policy",
    )


def run(config: PolicyConfig = PolicyConfig()) -> PolicyResult:
    """Measure every spare-slot variant (plus the static limit case)."""
    result = PolicyResult(config)
    for cell_result in run_sweep(_grid(config), _cell, config):
        label = cell_result["label"]
        count, mean_ms, p95_ms, plugged_gib = cell_result.payload
        result.cold_count[label] = count
        result.cold_mean_ms[label] = mean_ms
        result.cold_p95_ms[label] = p95_ms
        result.avg_plugged_gib[label] = plugged_gib
    return result


register_experiment(
    "policy",
    "P1 spare-slot policy: cold-start latency vs memory held",
    config=PolicyConfig,
    run=run,
    paper_scale_config=False,
)
