"""E1: elasticity tracking under a diurnal load cycle.

How closely does each deployment mode's *plugged* memory follow the
*required* memory (live instances × limit) as load swings through
day/night cycles?  The paper's claim is that HotMem's fast, reliable
reclamation lets VM memory track the instance count; this experiment
measures the tracking error over a long horizon:

* **overhead** — plugged minus required (memory held beyond need);
* **tracking ratio** — time-averaged plugged over time-averaged required
  (1.0 = perfect tracking; the over-provisioned mode is the worst case).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.cluster.provision import Fleet, VmSpec
from repro.faas.agent import FunctionDeployment
from repro.faas.policy import DeploymentMode, KeepAlivePolicy
from repro.faas.runtime import FaasRuntime
from repro.metrics.collector import PeriodicSampler
from repro.metrics.report import render_table
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sim.engine import Simulator
from repro.sweep import Cell, SweepGrid, register_experiment, run_sweep
from repro.units import GIB, SEC
from repro.workloads.azure import AzureTraceGenerator
from repro.workloads.functions import get_function

__all__ = ["TrackingConfig", "TrackingResult", "run"]

MODES = (
    DeploymentMode.HOTMEM,
    DeploymentMode.VANILLA,
    DeploymentMode.OVERPROVISIONED,
)


@dataclass(frozen=True)
class TrackingConfig:
    """A long diurnal run for one function."""

    function: str = "html"
    duration_s: int = 600
    period_s: float = 200.0
    peak_rps: float = 60.0
    trough_rps: float = 1.0
    keep_alive_s: int = 30
    recycle_interval_s: int = 10
    sample_period_s: int = 2
    seed: int = 0
    costs: CostModel = DEFAULT_COSTS

    @classmethod
    def paper_scale(cls) -> "TrackingConfig":
        """An hour of simulated time with 20-minute cycles."""
        return cls(duration_s=3600, period_s=1200.0)


@dataclass
class TrackingResult:
    """Tracking statistics per deployment mode."""

    config: TrackingConfig
    #: mode → [(t_ns, plugged_bytes)].
    plugged: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)
    #: mode → [(t_ns, required_bytes)] (live instances × limit + shared).
    required: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)
    avg_plugged_gib: Dict[str, float] = field(default_factory=dict)
    avg_required_gib: Dict[str, float] = field(default_factory=dict)
    avg_overhead_gib: Dict[str, float] = field(default_factory=dict)
    tracking_ratio: Dict[str, float] = field(default_factory=dict)

    def rows(self) -> List[List[object]]:
        out: List[List[object]] = []
        for mode in MODES:
            key = mode.value
            out.append(
                [
                    key,
                    self.avg_required_gib[key],
                    self.avg_plugged_gib[key],
                    self.avg_overhead_gib[key],
                    self.tracking_ratio[key],
                ]
            )
        return out

    def render(self) -> str:
        return render_table(
            f"E1: memory tracking under a diurnal cycle "
            f"({self.config.duration_s}s, period {self.config.period_s:.0f}s)",
            ["mode", "avg_required_gib", "avg_plugged_gib", "avg_overhead_gib",
             "tracking_ratio"],
            self.rows(),
        )


def _run_mode(config: TrackingConfig, mode: DeploymentMode):
    sim = Simulator()
    fleet = Fleet(sim)
    spec = get_function(config.function)
    instances = spec.max_instances_for(10)
    handle = fleet.provision(
        VmSpec.for_function(
            f"track-{mode.value}",
            mode,
            spec.memory_limit_bytes,
            concurrency=instances,
            shared_bytes=spec.shared_deps_bytes,
            costs=config.costs,
            seed=config.seed,
        )
    )
    vm = handle.vm
    agent = handle.deploy(
        [FunctionDeployment(spec, max_instances=instances)],
        KeepAlivePolicy(
            keep_alive_ns=config.keep_alive_s * SEC,
            recycle_interval_ns=config.recycle_interval_s * SEC,
        ),
    )
    runtime = FaasRuntime(sim)
    runtime.register_agent(agent)
    trace = AzureTraceGenerator(config.seed).diurnal(
        config.function,
        duration_s=float(config.duration_s),
        period_s=config.period_s,
        peak_rps=config.peak_rps,
        trough_rps=config.trough_rps,
    )
    runtime.drive(agent, trace)
    horizon = config.duration_s * SEC
    agent.start_recycler(until_ns=horizon)
    plugged = PeriodicSampler(
        sim, lambda: vm.device.plugged_bytes,
        period_ns=config.sample_period_s * SEC, name="plugged",
    )
    required = PeriodicSampler(
        sim, agent.target_plugged_bytes,
        period_ns=config.sample_period_s * SEC, name="required",
    )
    plugged.start(until_ns=horizon)
    required.start(until_ns=horizon)
    runtime.run(until_ns=horizon)
    vm.check_consistency()
    return plugged.series.samples, required.series.samples


def _cell(config: TrackingConfig, cell: Cell):
    return _run_mode(config, DeploymentMode(cell["mode"]))


def _grid(config: TrackingConfig) -> SweepGrid:
    del config
    return SweepGrid("tracking").axis(
        "mode", tuple(m.value for m in MODES)
    )


def run(config: TrackingConfig = TrackingConfig()) -> TrackingResult:
    """Measure tracking for every deployment mode."""
    result = TrackingResult(config)
    for cell_result in run_sweep(_grid(config), _cell, config):
        plugged, required = cell_result.payload
        key = cell_result["mode"]
        result.plugged[key] = plugged
        result.required[key] = required
        plugged_values = [v for _, v in plugged]
        required_values = [v for _, v in required]
        overhead = [
            max(0.0, p - r) for p, r in zip(plugged_values, required_values)
        ]
        result.avg_plugged_gib[key] = sum(plugged_values) / len(plugged_values) / GIB
        result.avg_required_gib[key] = (
            sum(required_values) / len(required_values) / GIB
        )
        result.avg_overhead_gib[key] = sum(overhead) / len(overhead) / GIB
        result.tracking_ratio[key] = (
            result.avg_plugged_gib[key] / result.avg_required_gib[key]
            if result.avg_required_gib[key]
            else float("inf")
        )
    return result


register_experiment(
    "tracking",
    "E1 memory tracking under a diurnal load cycle",
    config=TrackingConfig,
    run=run,
)
