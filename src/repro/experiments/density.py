"""D1: VM density per host at a fixed P99 latency SLO.

The cluster-level payoff of fast reclamation (Section 2's stranding
argument turned around): if a mode reliably returns memory between
bursts, the admission controller can credit that *expected reclaimable*
memory and pack more VMs per host without violating latency SLOs.

For each deployment mode the sweep asks: what is the largest number of
VMs per host that

1. the density arbiter admits (committed-memory accounting per mode,
   :mod:`repro.cluster.admission`), and
2. still meets the end-to-end P99 latency SLO under a staggered bursty
   multi-function workload routed across the fleet?

Expected ordering: ``hotmem >= vanilla >= overprovisioned`` — the
over-provisioned mode commits every VM's maximum forever, vanilla's
slow/partial reclamation earns a small credit, and HotMem's fast
reliable reclamation earns a large one.  The sweep takes any set of
registered modes (``DensityConfig.modes`` / ``--modes`` on the CLI), so
the related-work baselines (balloon, dimm, fpr) slot straight into the
same comparison; hotmem is expected to pack at least as densely as
every other swept mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.admission import AdmissionResult, ArbitrationPolicy
from repro.cluster.provision import Fleet, VmSpec
from repro.cluster.routing import TraceRouter
from repro.faas.agent import FunctionDeployment
from repro.faas.policy import DeploymentMode, KeepAlivePolicy
from repro.faas.records import InvocationRecord
from repro.faults.policy import ResiliencePolicy, RetryPolicy
from repro.metrics.collector import FleetCollector
from repro.metrics.latency import merged_percentile_ms
from repro.metrics.report import render_fleet_latency, render_table
from repro.modes import DeploymentBackend, get_mode, resolve_modes
from repro.obs.slo import SloMonitor, fleet_slo_specs
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sim.engine import Simulator
from repro.sweep import Cell, SweepGrid, register_experiment, run_sweep
from repro.units import GIB, MIB, SEC
from repro.workloads.azure import AzureTraceGenerator
from repro.workloads.functions import get_function

__all__ = ["DensityConfig", "DensityCell", "DensityModeResult", "DensityResult", "run"]

#: The paper's original three-way comparison (kept as the default sweep).
MODES = (
    DeploymentMode.OVERPROVISIONED,
    DeploymentMode.VANILLA,
    DeploymentMode.HOTMEM,
)


@dataclass(frozen=True)
class DensityConfig:
    """Fleet geometry and workload for the density sweep."""

    hosts: int = 3
    nodes_per_host: int = 1
    memory_per_node: int = 8 * GIB
    cores_per_node: int = 16
    #: Functions cycled across the fleet's VMs (one function per VM).
    functions: Tuple[str, ...] = ("html", "bfs")
    vm_vcpus: int = 2
    instances_per_vm: int = 4
    #: Small microVM boot size (the density fleet runs lean kernels; the
    #: default formula's 512 MiB floor would dominate the footprint).
    boot_memory_bytes: int = 256 * MIB
    max_vms_per_host: int = 6
    duration_s: int = 48
    drain_s: int = 24
    keep_alive_s: int = 10
    recycle_interval_s: int = 2
    #: One burst window per function, staggered so cohorts do not peak
    #: together (admission credits *expected* reclamation, which assumes
    #: bursts are not perfectly correlated).
    stagger_s: float = 24.0
    burst_len_s: float = 6.0
    base_rps_per_replica: float = 1.0
    #: Burst arrival rate targets this utilisation of the cohort's vCPUs.
    burst_cpu_rho: float = 0.8
    slo_p99_ms: float = 1500.0
    max_failure_frac: float = 0.02
    routing: str = "least-loaded"
    placement: str = "numa-spread"
    max_queue_per_vm_factor: int = 16
    arbitration: ArbitrationPolicy = ArbitrationPolicy(limit_fraction=0.95)
    pressure_period_s: int = 2
    sample_period_s: int = 2
    #: Error-budget window width for the SLO burn-rate monitors.
    slo_window_s: int = 8
    seed: int = 0
    costs: CostModel = DEFAULT_COSTS
    #: Registry names of the deployment modes to sweep, in report order.
    modes: Tuple[str, ...] = ("overprovisioned", "vanilla", "hotmem")

    def mode_objects(self) -> Tuple[DeploymentBackend, ...]:
        """The swept modes resolved through the registry."""
        return resolve_modes(self.modes)

    @classmethod
    def paper_scale(cls) -> "DensityConfig":
        """A larger fleet with a longer trace."""
        return cls(hosts=4, max_vms_per_host=8, duration_s=96, drain_s=30)


@dataclass
class DensityCell:
    """One (mode, VMs-per-host) fleet run."""

    mode: DeploymentBackend
    vms_per_host: int
    total_vms: int
    p50_ms: float
    p99_ms: float
    invocations: int
    failures: int
    rejections: int
    pressure_reclaims: int
    #: Peak *real* host memory across hosts (bytes).
    peak_used_bytes: int
    #: Committed bytes on the fullest node at admission time (bytes).
    committed_bytes: int
    per_vm_records: Dict[str, List[InvocationRecord]] = field(default_factory=dict)
    #: Streaming-sketch percentiles over successful latencies (the
    #: bounded-memory estimate; ``p50_ms``/``p99_ms`` stay exact and
    #: remain the SLO decision inputs).
    sketch_p50_ms: float = float("nan")
    sketch_p99_ms: float = float("nan")
    #: Closed burn-rate windows that breached (latency + cold-start).
    slo_breaches: int = 0

    @property
    def failure_frac(self) -> float:
        return self.failures / self.invocations if self.invocations else 1.0

    def meets_slo(self, config: DensityConfig) -> bool:
        return (
            self.p99_ms <= config.slo_p99_ms
            and self.failure_frac <= config.max_failure_frac
        )


@dataclass
class DensityModeResult:
    """The sweep outcome for one deployment mode."""

    mode: DeploymentBackend
    #: Densest admission-feasible VMs-per-host (before the SLO check).
    admitted_vms_per_host: int
    #: Structured rejection that capped admission (None if the sweep's
    #: ``max_vms_per_host`` ceiling bound first).
    rejection: Optional[AdmissionResult]
    #: The densest cell that met the SLO (None if even 1 VM/host missed).
    best: Optional[DensityCell]
    #: Every cell run while searching downward, densest first.
    cells: List[DensityCell] = field(default_factory=list)

    @property
    def vms_per_host(self) -> int:
        return self.best.vms_per_host if self.best else 0


@dataclass
class DensityResult:
    """VMs-per-host at the P99 SLO, per deployment mode."""

    config: DensityConfig
    modes: Dict[str, DensityModeResult] = field(default_factory=dict)

    def density(self, mode) -> int:
        return self.modes[get_mode(mode).value].vms_per_host

    def ordering_holds(self) -> bool:
        """hotmem packs at least as densely as every other swept mode
        (and vanilla still beats overprovisioned when both ran)."""
        densities = {name: r.vms_per_host for name, r in self.modes.items()}
        hot = densities.get("hotmem")
        if hot is not None:
            if any(hot < d for n, d in densities.items() if n != "hotmem"):
                return False
        if "vanilla" in densities and "overprovisioned" in densities:
            if densities["vanilla"] < densities["overprovisioned"]:
                return False
        return True

    def rows(self) -> List[List[object]]:
        out: List[List[object]] = []
        for result in self.modes.values():
            mode = result.mode
            best = result.best
            out.append(
                [
                    mode.value,
                    result.admitted_vms_per_host,
                    result.vms_per_host,
                    best.total_vms if best else 0,
                    best.p50_ms if best else float("nan"),
                    best.p99_ms if best else float("nan"),
                    best.sketch_p99_ms if best else float("nan"),
                    best.slo_breaches if best else 0,
                    f"{best.failure_frac:.1%}" if best else "-",
                    best.rejections if best else 0,
                    round(best.peak_used_bytes / GIB, 2) if best else 0.0,
                    round(best.committed_bytes / GIB, 2) if best else 0.0,
                ]
            )
        return out

    def render(self) -> str:
        config = self.config
        table = render_table(
            f"D1: VMs per host at P99 <= {config.slo_p99_ms:.0f} ms "
            f"({config.hosts} hosts x {config.memory_per_node // GIB} GiB)",
            [
                "mode",
                "admitted/host",
                "slo/host",
                "vms",
                "p50 ms",
                "p99 ms",
                "sk_p99 ms",
                "breach",
                "fail",
                "rejected",
                "peak_used_gib",
                "committed_gib",
            ],
            self.rows(),
        )
        parts = [table]
        hot = self.modes.get("hotmem")
        if hot is not None and hot.best is not None:
            parts.append(
                render_fleet_latency(
                    f"hotmem fleet at {hot.best.vms_per_host} VMs/host",
                    hot.best.per_vm_records,
                )
            )
        ordering = "holds" if self.ordering_holds() else "VIOLATED"
        others = ", ".join(n for n in self.modes if n != "hotmem")
        parts.append(f"density ordering hotmem >= {others}: {ordering}")
        return "\n\n".join(parts)


def _vm_spec(
    config: DensityConfig, mode: DeploymentBackend, index: int
) -> VmSpec:
    function = config.functions[index % len(config.functions)]
    spec = get_function(function)
    return VmSpec.for_function(
        f"{mode.value}-vm{index}",
        mode,
        spec.memory_limit_bytes,
        concurrency=config.instances_per_vm,
        shared_bytes=spec.shared_deps_bytes,
        vcpus=config.vm_vcpus,
        boot_memory_bytes=config.boot_memory_bytes,
        placement="scatter",
        seed=config.seed + index,
        costs=config.costs,
    )


def _build_fleet(config: DensityConfig, sim: Simulator) -> Fleet:
    return Fleet(
        sim,
        hosts=config.hosts,
        nodes_per_host=config.nodes_per_host,
        cores_per_node=config.cores_per_node,
        memory_per_node=config.memory_per_node,
        placement=config.placement,
        arbitration=config.arbitration,
    )


def _probe_admission(
    config: DensityConfig, mode: DeploymentBackend
) -> Tuple[int, Optional[AdmissionResult]]:
    """How many VMs per host does the arbiter admit for this mode?

    Provisions a throwaway fleet (no workload runs) until the first
    structured rejection or the sweep ceiling.
    """
    fleet = _build_fleet(config, Simulator())
    ceiling = config.max_vms_per_host * config.hosts
    admitted = 0
    rejection: Optional[AdmissionResult] = None
    for index in range(ceiling + 1):
        handle, result = fleet.try_provision(_vm_spec(config, mode, index))
        if handle is None:
            rejection = result
            break
        admitted += 1
    return min(admitted // config.hosts, config.max_vms_per_host), rejection


def _run_cell(
    config: DensityConfig, mode: DeploymentBackend, vms_per_host: int
) -> DensityCell:
    sim = Simulator()
    fleet = _build_fleet(config, sim)
    total = vms_per_host * config.hosts
    horizon_ns = (config.duration_s + config.drain_s) * SEC
    keep_alive = KeepAlivePolicy(
        keep_alive_ns=config.keep_alive_s * SEC,
        recycle_interval_ns=config.recycle_interval_s * SEC,
    )
    resilience = ResiliencePolicy(
        retry=RetryPolicy(max_retries=1),
        plug_retries=4,
        deferred_attempts=2,
    )
    router = TraceRouter(
        sim,
        policy=config.routing,
        max_queue_per_vm=config.max_queue_per_vm_factor * config.instances_per_vm,
    )
    replicas: Dict[str, int] = {}
    for index in range(total):
        function = config.functions[index % len(config.functions)]
        replicas[function] = replicas.get(function, 0) + 1
        handle = fleet.provision(_vm_spec(config, mode, index))
        spec = get_function(function)
        agent = handle.deploy(
            [FunctionDeployment(spec, max_instances=config.instances_per_vm)],
            keep_alive,
            resilience=resilience,
        )
        router.register(agent)
        agent.start_recycler(until_ns=horizon_ns)

    generator = AzureTraceGenerator(config.seed)
    for position, function in enumerate(config.functions):
        spec = get_function(function)
        cohort_vcpus = replicas[function] * config.vm_vcpus
        exec_s = spec.exec_cpu_ns / SEC
        burst_rps = config.burst_cpu_rho * cohort_vcpus / exec_s
        burst_start = position * config.stagger_s
        trace = generator.bursty(
            function,
            duration_s=float(config.duration_s),
            burst_rps=burst_rps,
            base_rps=config.base_rps_per_replica * replicas[function],
            bursts=((burst_start, burst_start + config.burst_len_s),),
            stream=f"density/{mode.value}/{vms_per_host}",
        )
        router.drive(trace)

    labels = {"mode": mode.value, "vms_per_host": vms_per_host}
    monitor = SloMonitor(
        sim,
        router,
        specs=fleet_slo_specs(
            latency_objective_ns=int(config.slo_p99_ms * 1e6),
            window_ns=config.slo_window_s * SEC,
        ),
        period_ns=config.sample_period_s * SEC,
        labels=labels,
    )
    monitor.start(until_ns=horizon_ns)
    fleet.attach_slo_monitor(monitor)
    fleet.start_pressure_monitor(
        period_ns=config.pressure_period_s * SEC, until_ns=horizon_ns
    )
    collector = FleetCollector(
        sim, fleet, period_ns=config.sample_period_s * SEC, labels=labels
    )
    collector.start(until_ns=horizon_ns)
    router.run(until_ns=horizon_ns)
    monitor.finish()
    for handle in fleet.handles:
        handle.vm.check_consistency()

    successes = router.successful_records()
    records = router.records
    arbiter = fleet.arbiter
    committed = max(
        arbiter.committed_bytes(h, node.node_id)
        for h, node, _ in fleet.node_views()
    )
    peak_used = int(
        max(collector.peak_used_bytes(h) for h in range(config.hosts))
    )
    per_vm = {
        handle.name: router.records_on(handle.name) for handle in fleet.handles
    }
    return DensityCell(
        mode=mode,
        vms_per_host=vms_per_host,
        total_vms=total,
        p50_ms=merged_percentile_ms([successes], 50.0) if successes else float("nan"),
        p99_ms=merged_percentile_ms([successes], 99.0) if successes else float("nan"),
        invocations=len(records),
        failures=router.failure_count,
        rejections=router.rejection_count,
        pressure_reclaims=sum(a.pressure_reclaims for a in fleet.agents()),
        peak_used_bytes=peak_used,
        committed_bytes=committed,
        per_vm_records=per_vm,
        sketch_p50_ms=(
            monitor.sketch.quantile(50.0) / 1e6
            if len(monitor.sketch)
            else float("nan")
        ),
        sketch_p99_ms=(
            monitor.sketch.quantile(99.0) / 1e6
            if len(monitor.sketch)
            else float("nan")
        ),
        slo_breaches=monitor.breach_count(),
    )


def _run_mode(config: DensityConfig, mode: DeploymentBackend) -> DensityModeResult:
    admitted, rejection = _probe_admission(config, mode)
    result = DensityModeResult(
        mode=mode, admitted_vms_per_host=admitted, rejection=rejection, best=None
    )
    for vms_per_host in range(admitted, 0, -1):
        cell = _run_cell(config, mode, vms_per_host)
        result.cells.append(cell)
        if cell.meets_slo(config):
            result.best = cell
            break
    return result


def _cell(config: DensityConfig, cell: Cell) -> DensityModeResult:
    # One cell per mode: the whole downward VMs-per-host search.  The
    # search is inherently sequential (each step depends on whether the
    # denser one met the SLO), so the mode is the parallelism grain —
    # and the per-mode work profile stays identical to a serial sweep.
    return _run_mode(config, get_mode(cell["mode"]))


def _grid(config: DensityConfig) -> SweepGrid:
    return SweepGrid("density").axis(
        "mode", tuple(m.value for m in config.mode_objects())
    )


def run(config: DensityConfig = DensityConfig()) -> DensityResult:
    """Sweep VMs-per-host for every configured deployment mode."""
    result = DensityResult(config)
    for cell_result in run_sweep(_grid(config), _cell, config):
        mode_result: DensityModeResult = cell_result.payload
        result.modes[mode_result.mode.value] = mode_result
    return result


register_experiment(
    "density",
    "D1 VMs-per-host at the P99 SLO across deployment modes",
    config=DensityConfig,
    run=run,
    mode_sweeping=True,
)
