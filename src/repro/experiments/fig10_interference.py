"""Figure 10: unplug interference on co-located function instances.

Paper setup (Section 6.2.2): Cnn and HTML share one VM (equal 384 MiB
limits, so equal partition sizes).  Cnn instances are pinned to two
vCPUs, one of which also serves virtio-mem interrupts; HTML gets the
other eight.  When the runtime shrinks the VM after evicting a wave of
idle HTML instances (keep-alive 120 s → ≈125 s and ≈225 s), vanilla's
page migrations hog the shared vCPU and Cnn's per-second latency spikes
by more than 100 %; HotMem shows no spike.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.experiments.serverless import (
    FunctionLoad,
    ServerlessScenario,
    ServerlessRun,
    run_scenario,
)
from repro.faas.policy import DeploymentMode
from repro.metrics.latency import (
    per_second_average_ms,
    spike_factor,
    window_mean_factor,
)
from repro.metrics.report import render_table
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sweep import Cell, SweepGrid, register_experiment, run_sweep
from repro.units import SEC

__all__ = ["Fig10Config", "Fig10Result", "run"]


@dataclass(frozen=True)
class Fig10Config:
    """Co-location configuration (defaults scaled down for speed)."""

    duration_s: int = 200
    keep_alive_s: int = 90
    recycle_interval_s: int = 15
    cnn_instances: int = 4
    html_instances: int = 30
    cnn_rps: float = 3.0
    html_base_rps: float = 4.0
    html_burst_rps: float = 60.0
    html_bursts: Tuple[Tuple[float, float], ...] = ((0.0, 8.0),)
    #: Seconds after the first shrink event that count as "the spike
    #: window" (unplug plus its queueing aftermath).
    spike_window_s: int = 5
    seed: int = 0
    costs: CostModel = DEFAULT_COSTS

    @classmethod
    def paper_scale(cls) -> "Fig10Config":
        """The paper's 300 s / keep-alive 120 s / 40 HTML instances, with
        a second HTML burst so two shrink waves appear.

        Cnn load is denser than the scaled default so that per-second
        buckets around the shrink events always contain arrivals, and the
        HTML background keeps enough residual occupancy for the vanilla
        unplug to migrate heavily (as on the paper's testbed).
        """
        return cls(
            duration_s=300,
            keep_alive_s=120,
            recycle_interval_s=15,
            html_instances=40,
            html_burst_rps=120.0,
            html_base_rps=8.0,
            cnn_rps=4.0,
            html_bursts=((0.0, 4.0), (95.0, 99.0)),
            spike_window_s=6,
        )


@dataclass
class Fig10Result:
    """Per-second Cnn latency series and spike quantification."""

    config: Fig10Config
    #: mode value → [(second, avg latency ms)] for Cnn.
    cnn_series: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)
    #: mode value → shrink event times (s).
    shrink_times_s: Dict[str, List[float]] = field(default_factory=dict)
    #: mode value → peak-based spike factor around the first shrink event.
    spike: Dict[str, float] = field(default_factory=dict)
    #: mode value → mean-based factor over the shrink window (noise-robust).
    window_mean: Dict[str, float] = field(default_factory=dict)
    #: mode value → baseline (median) per-second latency (ms).
    baseline_ms: Dict[str, float] = field(default_factory=dict)

    def interference_gap(self) -> float:
        """Vanilla window-mean factor over HotMem's (>1 = paper's story)."""
        return self.window_mean["vanilla"] / self.window_mean["hotmem"]

    def rows(self) -> List[List[object]]:
        out: List[List[object]] = []
        for mode in ("vanilla", "hotmem"):
            out.append(
                [
                    mode,
                    self.baseline_ms[mode],
                    self.spike[mode],
                    self.window_mean[mode],
                    ", ".join(f"{t:.0f}" for t in self.shrink_times_s[mode]),
                ]
            )
        return out

    def render(self) -> str:
        return render_table(
            "Figure 10: Cnn per-second latency under HTML scale-down "
            "(factors = peak and mean vs baseline around the first shrink)",
            ["mode", "baseline_ms", "spike_factor", "window_mean", "shrink_times_s"],
            self.rows(),
        )

    def series_rows(self, mode: str, every: int = 10) -> List[List[object]]:
        """A thinned view of the per-second series for printing."""
        rows = []
        for second, value in self.cnn_series[mode]:
            if second % every == 0 and not math.isnan(value):
                rows.append([second, value])
        return rows


def _scenario(config: Fig10Config, mode: DeploymentMode) -> ServerlessScenario:
    # Cnn keeps a fixed warm pool (its instances see steady load and are
    # never recycled), so the only thing that can perturb it mid-run is
    # CPU interference on its pinned vCPUs — the effect under test.
    cnn = FunctionLoad.for_function(
        "cnn",
        max_instances=config.cnn_instances,
        base_rps=config.cnn_rps,
        burst_rps=config.cnn_rps * 4,
        bursts=((0.0, 1.0),),
        vcpu_indices=(0, 1),  # vCPU 0 also serves virtio-mem interrupts
        reuse="fifo",  # rotate the pool so no Cnn instance is ever recycled
    )
    html = FunctionLoad.for_function(
        "html",
        max_instances=config.html_instances,
        base_rps=config.html_base_rps,
        burst_rps=config.html_burst_rps,
        bursts=config.html_bursts,
        vcpu_indices=tuple(range(2, 10)),
    )
    return ServerlessScenario(
        mode=mode,
        loads=(cnn, html),
        duration_s=config.duration_s,
        keep_alive_s=config.keep_alive_s,
        recycle_interval_s=config.recycle_interval_s,
        drain_s=10,
        virtio_irq_vcpu=0,
        seed=config.seed,
        costs=config.costs,
    )


def _cell(config: Fig10Config, cell: Cell) -> Dict[str, object]:
    """One mode's co-location run, with spike factors computed in-cell."""
    run_result: ServerlessRun = run_scenario(
        _scenario(config, DeploymentMode(cell["mode"]))
    )
    series = per_second_average_ms(
        run_result.records_for("cnn"), config.duration_s
    )
    shrink_times = [e.time_ns / SEC for e in run_result.shrink_events]
    if shrink_times:
        first = int(shrink_times[0])
        window = (
            max(0, first),
            min(config.duration_s, first + config.spike_window_s),
        )
    else:
        window = (0, 1)
    finite = sorted(v for _, v in series if not math.isnan(v))
    return {
        "series": series,
        "shrink_times": shrink_times,
        "spike": spike_factor(series, window),
        "window_mean": window_mean_factor(series, window),
        "baseline": finite[len(finite) // 2] if finite else float("nan"),
    }


def _grid(config: Fig10Config) -> SweepGrid:
    del config
    return SweepGrid("fig10").axis(
        "mode",
        (DeploymentMode.VANILLA.value, DeploymentMode.HOTMEM.value),
    )


def run(config: Fig10Config = Fig10Config()) -> Fig10Result:
    """Run the co-location experiment for both mechanisms."""
    result = Fig10Result(config)
    for cell_result in run_sweep(_grid(config), _cell, config):
        mode = cell_result["mode"]
        payload = cell_result.payload
        result.cnn_series[mode] = payload["series"]
        result.shrink_times_s[mode] = payload["shrink_times"]
        result.spike[mode] = payload["spike"]
        result.window_mean[mode] = payload["window_mean"]
        result.baseline_ms[mode] = payload["baseline"]
    return result


register_experiment(
    "fig10",
    "Co-location interference during shrink",
    config=Fig10Config,
    run=run,
)
