"""K1: keep-alive horizon × eviction policy × mode — the cold-start vs
density frontier.

The production trade-off HotMem changes (ROADMAP): reclaiming an idle
instance's partition frees host memory for density, but the next request
for that function pays a cold start.  A fixed keep-alive TTL picks one
point on that curve blindly; the :mod:`repro.faas.lifecycle` policies
pick *which* containers to sacrifice when memory pressure forces the
choice (the CLOUD'21 GreedyDual line shows frequency/size-aware eviction
beats plain TTL there).

Each cell runs a small multi-tenant fleet where every VM co-hosts two
deliberately mismatched functions — ``html`` (small, frequent, cheap to
respawn) and ``bert`` (large, rare, expensive to respawn) — on
diurnal- and bursty-shaped Azure traces, under *bounded* fleet pressure
shedding (:attr:`~repro.cluster.admission.ArbitrationPolicy
.pressure_shed` = ``"bounded"``): when a node crosses the watermark,
each resident agent's eviction policy ranks its idle containers and
only the prefix covering the overage dies.  That is exactly where
policies diverge — ``ttl`` kills in pool order, ``greedy-dual`` spares
the hot cheap containers and sacrifices the cold expensive ones.

Per cell the sweep reports the cold-start rate and an estimated
supportable VMs-per-host (installed node memory over the cell's peak
per-VM footprint); per mode those points form the cold-start-rate vs
VMs-per-host frontier the ROADMAP asks for — longer horizons and
warmth-preserving policies sit at low cold-start / low density,
aggressive reclamation at high density / high cold-start, and HotMem's
cheap reclamation shifts the whole frontier right.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.cluster.admission import ArbitrationPolicy
from repro.cluster.provision import Fleet, VmSpec
from repro.cluster.routing import TraceRouter
from repro.faas.agent import FunctionDeployment
from repro.faas.policy import KeepAlivePolicy
from repro.faults.policy import ResiliencePolicy, RetryPolicy
from repro.metrics.collector import FleetCollector
from repro.metrics.report import render_table
from repro.obs.slo import SloMonitor, fleet_slo_specs
from repro.modes import DeploymentBackend, resolve_modes
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sim.engine import Simulator
from repro.sweep import Cell, SweepGrid, register_experiment, run_sweep
from repro.units import GIB, MEMORY_BLOCK_SIZE, MIB, SEC, bytes_to_blocks
from repro.workloads.azure import AzureTraceGenerator
from repro.workloads.functions import get_function

__all__ = ["KeepAliveConfig", "KeepAliveCell", "KeepAliveResult", "run"]


@dataclass(frozen=True)
class KeepAliveConfig:
    """Fleet geometry, workload shapes and the swept axes."""

    hosts: int = 2
    nodes_per_host: int = 1
    memory_per_node: int = 8 * GIB
    cores_per_node: int = 16
    #: Co-hosted on every VM: a hot cheap function and a cold expensive
    #: one, so eviction policies have a real choice to make.
    hot_function: str = "html"
    cold_function: str = "bert"
    instances_per_function: int = 2
    vm_vcpus: int = 2
    vms_per_host: int = 2
    boot_memory_bytes: int = 256 * MIB
    duration_s: int = 32
    drain_s: int = 12
    recycle_interval_s: int = 2
    #: Keep-alive horizons swept (seconds idle before evictable).
    horizons_s: Tuple[int, ...] = (4, 16)
    #: Lifecycle policies swept (:mod:`repro.faas.lifecycle` names).
    policies: Tuple[str, ...] = (
        "ttl",
        "rand",
        "least-used",
        "max-mem",
        "greedy-dual",
    )
    #: Trace shapes swept (``diurnal`` / ``bursty``).
    traces: Tuple[str, ...] = ("diurnal", "bursty")
    #: Diurnal day/night period.
    diurnal_period_s: float = 16.0
    #: Fleet-wide request rates for the hot function.
    hot_peak_rps: float = 12.0
    hot_trough_rps: float = 1.0
    #: Fleet-wide request rates for the cold function.
    cold_peak_rps: float = 1.5
    cold_trough_rps: float = 0.1
    #: Bursty-shape windows (start_s, end_s), staggered per function.
    hot_burst: Tuple[float, float] = (4.0, 10.0)
    cold_burst: Tuple[float, float] = (16.0, 22.0)
    routing: str = "least-loaded"
    placement: str = "numa-spread"
    max_queue_per_vm_factor: int = 16
    #: Bounded pressure shedding is the point of the study: over the
    #: watermark each agent evicts only the policy-ranked prefix
    #: covering the node's overage, so the ranking is observable.
    arbitration: ArbitrationPolicy = ArbitrationPolicy(
        limit_fraction=0.95, pressure_watermark=0.5, pressure_shed="bounded"
    )
    pressure_period_s: int = 2
    sample_period_s: int = 2
    #: Latency objective for the SLO burn-rate monitor (observation
    #: only — K1's acceptance axes stay cold-start rate and density).
    slo_p99_ms: float = 1500.0
    slo_window_s: int = 8
    seed: int = 0
    costs: CostModel = DEFAULT_COSTS
    #: Registry names of the deployment modes swept, in report order.
    modes: Tuple[str, ...] = ("overprovisioned", "vanilla", "hotmem")

    def mode_objects(self) -> Tuple[DeploymentBackend, ...]:
        """The swept modes resolved through the registry."""
        return resolve_modes(self.modes)

    @classmethod
    def paper_scale(cls) -> "KeepAliveConfig":
        """A bigger fleet, longer traces, a third horizon."""
        return cls(
            hosts=3,
            vms_per_host=3,
            duration_s=96,
            drain_s=24,
            horizons_s=(4, 16, 64),
            diurnal_period_s=32.0,
            hot_peak_rps=24.0,
            cold_peak_rps=3.0,
        )


@dataclass
class KeepAliveCell:
    """One (mode, policy, horizon, trace) fleet run."""

    mode: str
    policy: str
    horizon_s: int
    trace: str
    invocations: int
    cold_starts: int
    failures: int
    #: Total evictions, and the subset chosen under fleet pressure.
    evictions: int
    pressure_evictions: int
    #: Cold-function evictions (the expensive mistakes a good policy
    #: avoids making under pressure).
    cold_function_evictions: int
    #: Peak *real* host memory across hosts (bytes).
    peak_used_bytes: int
    #: Closed SLO burn-rate windows that breached (latency + cold-start).
    slo_breaches: int = 0
    #: Streaming-sketch P99 over successful latencies (ms).
    sketch_p99_ms: float = float("nan")

    @property
    def cold_start_rate(self) -> float:
        """Cold starts per completed invocation."""
        return self.cold_starts / self.invocations if self.invocations else 0.0

    def vms_per_host_estimate(self, config: KeepAliveConfig) -> int:
        """Supportable VMs per host at this cell's peak footprint.

        Installed node memory over the observed peak per-VM footprint —
        the density side of the frontier (the run itself holds
        ``vms_per_host`` fixed; this extrapolates what the measured
        footprint would pack to).
        """
        if self.peak_used_bytes <= 0:
            return 0
        per_vm = self.peak_used_bytes / config.vms_per_host
        return int(config.memory_per_node // max(1.0, per_vm))


@dataclass
class KeepAliveResult:
    """Cold-start-rate vs VMs-per-host frontier, per deployment mode."""

    config: KeepAliveConfig
    cells: List[KeepAliveCell] = field(default_factory=list)

    def cells_for(self, mode: str) -> List[KeepAliveCell]:
        return [cell for cell in self.cells if cell.mode == mode]

    def cell(
        self, mode: str, policy: str, horizon_s: int, trace: str
    ) -> KeepAliveCell:
        for cell in self.cells:
            if (
                cell.mode == mode
                and cell.policy == policy
                and cell.horizon_s == horizon_s
                and cell.trace == trace
            ):
                return cell
        raise KeyError(f"no cell {mode}/{policy}/{horizon_s}/{trace}")

    def frontier(self, mode: str) -> List[Tuple[int, float, str, int, str]]:
        """Frontier points for one mode, densest first.

        Each point is ``(vms_per_host, cold_start_rate, policy,
        horizon_s, trace)``; the Pareto-efficient subset of these is the
        cold-start-vs-density frontier.
        """
        points = [
            (
                cell.vms_per_host_estimate(self.config),
                cell.cold_start_rate,
                cell.policy,
                cell.horizon_s,
                cell.trace,
            )
            for cell in self.cells_for(mode)
        ]
        return sorted(points, key=lambda p: (-p[0], p[1]))

    def pareto(self, mode: str) -> List[Tuple[int, float, str, int, str]]:
        """The Pareto-efficient frontier points (denser and colder
        dominate: a point survives if no other packs at least as many
        VMs with a strictly lower cold-start rate)."""
        best: List[Tuple[int, float, str, int, str]] = []
        lowest = math.inf
        for point in self.frontier(mode):
            if point[1] < lowest:
                best.append(point)
                lowest = point[1]
        return best

    def divergent_traces(
        self, policy_a: str = "greedy-dual", policy_b: str = "ttl"
    ) -> List[str]:
        """Trace shapes where the two policies measurably differ.

        A trace diverges when, for some (mode, horizon), the policies
        disagree on cold-start count or on which functions' containers
        died — the acceptance check that greedy-dual's ranking actually
        changes outcomes relative to plain TTL.
        """
        divergent = []
        for trace in self.config.traces:
            for mode in self.config.modes:
                for horizon in self.config.horizons_s:
                    a = self.cell(mode, policy_a, horizon, trace)
                    b = self.cell(mode, policy_b, horizon, trace)
                    if (
                        a.cold_starts != b.cold_starts
                        or a.cold_function_evictions
                        != b.cold_function_evictions
                    ):
                        divergent.append(trace)
                        break
                if trace in divergent:
                    break
        return divergent

    def rows(self) -> List[List[object]]:
        out: List[List[object]] = []
        for cell in self.cells:
            out.append(
                [
                    cell.mode,
                    cell.trace,
                    cell.policy,
                    cell.horizon_s,
                    cell.invocations,
                    f"{cell.cold_start_rate:.1%}",
                    cell.evictions,
                    cell.pressure_evictions,
                    cell.cold_function_evictions,
                    round(cell.peak_used_bytes / GIB, 2),
                    cell.vms_per_host_estimate(self.config),
                    cell.slo_breaches,
                ]
            )
        return out

    def render(self) -> str:
        config = self.config
        table = render_table(
            f"K1: keep-alive × eviction policy × mode "
            f"({config.hosts} hosts × {config.memory_per_node // GIB} GiB, "
            f"{config.hot_function}+{config.cold_function} per VM)",
            [
                "mode",
                "trace",
                "policy",
                "keepalive_s",
                "invocations",
                "cold_rate",
                "evicted",
                "pressure",
                f"{config.cold_function}_evicted",
                "peak_gib",
                "est_vms/host",
                "breach",
            ],
            self.rows(),
        )
        parts = [table]
        for mode in config.modes:
            points = ", ".join(
                f"({vms} vms/host, {rate:.1%} cold via "
                f"{policy}/{horizon}s/{trace})"
                for vms, rate, policy, horizon, trace in self.pareto(mode)
            )
            parts.append(f"{mode} frontier: {points or '(no cells)'}")
        divergent = self.divergent_traces()
        parts.append(
            "greedy-dual vs ttl diverges on: "
            + (", ".join(divergent) if divergent else "NO TRACE (degenerate)")
        )
        return "\n\n".join(parts)


def _vm_spec(
    config: KeepAliveConfig, mode: DeploymentBackend, index: int
) -> VmSpec:
    hot = get_function(config.hot_function)
    cold = get_function(config.cold_function)
    partition = (
        max(
            bytes_to_blocks(hot.memory_limit_bytes),
            bytes_to_blocks(cold.memory_limit_bytes),
        )
        * MEMORY_BLOCK_SIZE
    )
    shared = (
        bytes_to_blocks(hot.shared_deps_bytes + cold.shared_deps_bytes)
        * MEMORY_BLOCK_SIZE
    )
    return VmSpec(
        name=f"{mode.value}-vm{index}",
        mode=mode,
        partition_bytes=partition,
        concurrency=2 * config.instances_per_function,
        shared_bytes=shared,
        vcpus=config.vm_vcpus,
        boot_memory_bytes=config.boot_memory_bytes,
        placement="scatter",
        seed=config.seed + index,
        costs=config.costs,
    )


def _traces(config: KeepAliveConfig, shape: str, stream: str):
    """The two functions' invocation traces for one cell."""
    generator = AzureTraceGenerator(config.seed)
    if shape == "diurnal":
        hot = generator.diurnal(
            config.hot_function,
            duration_s=float(config.duration_s),
            period_s=config.diurnal_period_s,
            peak_rps=config.hot_peak_rps,
            trough_rps=config.hot_trough_rps,
            stream=stream,
        )
        cold = generator.diurnal(
            config.cold_function,
            duration_s=float(config.duration_s),
            period_s=config.diurnal_period_s,
            peak_rps=config.cold_peak_rps,
            trough_rps=config.cold_trough_rps,
            stream=stream,
        )
    else:
        hot = generator.bursty(
            config.hot_function,
            duration_s=float(config.duration_s),
            burst_rps=config.hot_peak_rps,
            base_rps=config.hot_trough_rps,
            bursts=(config.hot_burst,),
            stream=stream,
        )
        cold = generator.bursty(
            config.cold_function,
            duration_s=float(config.duration_s),
            burst_rps=config.cold_peak_rps,
            base_rps=config.cold_trough_rps,
            bursts=(config.cold_burst,),
            stream=stream,
        )
    return hot, cold


def _run_cell(
    config: KeepAliveConfig,
    mode: DeploymentBackend,
    policy: str,
    horizon_s: int,
    trace_shape: str,
) -> KeepAliveCell:
    sim = Simulator()
    fleet = Fleet(
        sim,
        hosts=config.hosts,
        nodes_per_host=config.nodes_per_host,
        cores_per_node=config.cores_per_node,
        memory_per_node=config.memory_per_node,
        placement=config.placement,
        arbitration=config.arbitration,
    )
    total = config.vms_per_host * config.hosts
    horizon_ns = (config.duration_s + config.drain_s) * SEC
    keep_alive = KeepAlivePolicy(
        keep_alive_ns=horizon_s * SEC,
        recycle_interval_ns=config.recycle_interval_s * SEC,
        eviction=policy,
    )
    resilience = ResiliencePolicy(
        retry=RetryPolicy(max_retries=1),
        plug_retries=4,
        deferred_attempts=2,
    )
    slots = 2 * config.instances_per_function
    router = TraceRouter(
        sim,
        policy=config.routing,
        max_queue_per_vm=config.max_queue_per_vm_factor * slots,
    )
    deployments = [
        FunctionDeployment(
            get_function(config.hot_function),
            max_instances=config.instances_per_function,
        ),
        FunctionDeployment(
            get_function(config.cold_function),
            max_instances=config.instances_per_function,
        ),
    ]
    for index in range(total):
        handle = fleet.provision(_vm_spec(config, mode, index))
        agent = handle.deploy(deployments, keep_alive, resilience=resilience)
        router.register(agent)
        agent.start_recycler(until_ns=horizon_ns)

    stream = f"keepalive/{mode.value}/{policy}/{horizon_s}/{trace_shape}"
    for trace in _traces(config, trace_shape, stream):
        router.drive(trace)

    labels = {
        "mode": mode.value,
        "policy": policy,
        "horizon_s": horizon_s,
        "trace": trace_shape,
    }
    monitor = SloMonitor(
        sim,
        router,
        specs=fleet_slo_specs(
            latency_objective_ns=int(config.slo_p99_ms * 1e6),
            window_ns=config.slo_window_s * SEC,
        ),
        period_ns=config.sample_period_s * SEC,
        labels=labels,
    )
    monitor.start(until_ns=horizon_ns)
    fleet.attach_slo_monitor(monitor)
    fleet.start_pressure_monitor(
        period_ns=config.pressure_period_s * SEC, until_ns=horizon_ns
    )
    collector = FleetCollector(
        sim, fleet, period_ns=config.sample_period_s * SEC, labels=labels
    )
    collector.start(until_ns=horizon_ns)
    router.run(until_ns=horizon_ns)
    monitor.finish()
    for handle in fleet.handles:
        handle.vm.check_consistency()

    records = router.records
    evictions = [
        record
        for agent in fleet.agents()
        for record in agent.eviction_records
    ]
    peak_used = int(
        max(collector.peak_used_bytes(h) for h in range(config.hosts))
    )
    return KeepAliveCell(
        mode=mode.value,
        policy=policy,
        horizon_s=horizon_s,
        trace=trace_shape,
        invocations=len(records),
        cold_starts=sum(1 for r in records if r.cold_start),
        failures=router.failure_count,
        evictions=len(evictions),
        pressure_evictions=sum(1 for e in evictions if e.pressure),
        cold_function_evictions=sum(
            1 for e in evictions if e.function == config.cold_function
        ),
        peak_used_bytes=peak_used,
        slo_breaches=monitor.breach_count(),
        sketch_p99_ms=(
            monitor.sketch.quantile(99.0) / 1e6
            if len(monitor.sketch)
            else float("nan")
        ),
    )


def _cell(config: KeepAliveConfig, cell: Cell) -> KeepAliveCell:
    from repro.modes import get_mode

    return _run_cell(
        config,
        get_mode(cell["mode"]),
        cell["policy"],
        cell["horizon_s"],
        cell["trace"],
    )


def _grid(config: KeepAliveConfig) -> SweepGrid:
    return (
        SweepGrid("keepalive")
        .axis("mode", tuple(m.value for m in config.mode_objects()))
        .axis("policy", config.policies)
        .axis("horizon_s", config.horizons_s)
        .axis("trace", config.traces)
    )


def run(config: KeepAliveConfig = KeepAliveConfig()) -> KeepAliveResult:
    """Sweep keep-alive horizon × eviction policy × mode × trace shape."""
    result = KeepAliveResult(config)
    for cell_result in run_sweep(_grid(config), _cell, config):
        result.cells.append(cell_result.payload)
    return result


register_experiment(
    "keepalive",
    "K1 cold-start-rate vs VMs-per-host frontier across eviction policies",
    config=KeepAliveConfig,
    run=run,
    mode_sweeping=True,
)
