"""Cluster chaos: fleet availability under host/VM failure domains.

The datapath ``chaos`` sweep breaks operations *inside* one VM; this
sweep breaks the fleet around them.  A
:class:`~repro.faults.domains.DomainScheduler` fires host crashes,
host-level pressure spikes, VM OOM-kills, wedged recycler agents and
router link outages through the same seeded fault plane, and the
:class:`~repro.cluster.failover.FailoverCoordinator` answers with the
recovery machinery under test: in-flight invocations fail over to
sibling VMs under a bounded retry budget, crash victims are evacuated
through placement/admission onto the survivors (paying a cold-start
penalty per re-provisioned VM), the density arbiter's committed-memory
ledger is reconciled to zero drift, wedged recyclers are force-recycled
by the heartbeat watchdog, and link outages heal after a fixed window.

For each ``(mode, rate)`` cell the report answers the fleet-operator
questions: what fraction of invocations still completed
(**availability**), how long recovery took per failure site (**MTTR**,
from the fleet :class:`~repro.faults.recovery.RecoveryLog`), and how
many VMs the fleet retained (**density under failure** — a crashed
host's victims only come back if the survivors' committed-memory
headroom re-admits them, so hotmem's reclamation credit keeps more of
the fleet alive than vanilla's).

Three gates make the sweep CI-worthy: every injected fault is resolved
by some recovery path (``total_unresolved() == 0``), the arbiter ledger
shows zero drift after every storm (``total_ledger_drift() == 0``), and
two runs at the same seed are bit-identical (per-site RNG streams and
sorted-victim selection everywhere).  Rate 0.0 is the control row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.admission import ArbitrationPolicy
from repro.cluster.failover import (
    BreakerPolicy,
    FailoverCoordinator,
    FailoverPolicy,
)
from repro.cluster.provision import Fleet, VmSpec
from repro.cluster.routing import TraceRouter
from repro.faas.agent import FunctionDeployment
from repro.faas.policy import KeepAlivePolicy
from repro.faults.domains import domain_plan
from repro.faults.injector import FaultInjector
from repro.faults.policy import ResiliencePolicy, RetryBudget, RetryPolicy
from repro.metrics.latency import merged_percentile_ms
from repro.metrics.report import render_table
from repro.modes import DeploymentBackend, get_mode, resolve_modes
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sim.engine import Simulator
from repro.sweep import Cell, SweepGrid, register_experiment, run_sweep
from repro.units import GIB, MIB, MS, SEC
from repro.workloads.azure import AzureTraceGenerator
from repro.workloads.functions import get_function

__all__ = [
    "ClusterChaosConfig",
    "ClusterChaosCell",
    "ClusterChaosResult",
    "run",
]


@dataclass(frozen=True)
class ClusterChaosConfig:
    """Fleet geometry, workload and fault grid for the cluster sweep."""

    hosts: int = 3
    nodes_per_host: int = 1
    memory_per_node: int = 8 * GIB
    cores_per_node: int = 16
    #: Initial VMs per host.  The default 4 sits below every swept
    #: mode's admission cap (vanilla admits 5/host, hotmem 6/host at
    #: this geometry) so provisioning always succeeds — and leaves the
    #: survivors exactly enough hotmem headroom to re-admit all of a
    #: crashed host's victims while vanilla must reject some.
    vms_per_host: int = 4
    functions: Tuple[str, ...] = ("html", "bfs")
    instances_per_vm: int = 4
    vm_vcpus: int = 2
    boot_memory_bytes: int = 256 * MIB
    duration_s: int = 30
    drain_s: int = 15
    keep_alive_s: int = 10
    recycle_interval_s: int = 2
    #: Staggered per-function burst windows (same shape as density).
    stagger_s: float = 16.0
    burst_len_s: float = 6.0
    base_rps_per_replica: float = 1.0
    burst_cpu_rho: float = 0.6
    #: Per-tick fire probability for each domain site; 0.0 is the
    #: control row (per-site ``max_fires`` caps from
    #: :data:`~repro.faults.domains.DEFAULT_DOMAIN_CAPS` apply).
    fault_rates: Tuple[float, ...] = (0.0, 0.05, 0.2)
    #: Injection-opportunity cadence for the domain scheduler.
    tick_s: int = 2
    #: Router retry budget: failover hops per invocation and the
    #: queue-wait deadline after which an invocation is shed.
    max_failovers: int = 2
    deadline_ms: float = 1000.0
    breakers: BreakerPolicy = BreakerPolicy()
    failover: FailoverPolicy = FailoverPolicy()
    routing: str = "least-loaded"
    placement: str = "numa-spread"
    max_queue_per_vm_factor: int = 16
    arbitration: ArbitrationPolicy = ArbitrationPolicy(limit_fraction=0.95)
    pressure_period_s: int = 2
    seed: int = 0
    costs: CostModel = DEFAULT_COSTS
    #: Registry names of the deployment modes to sweep, in report order.
    modes: Tuple[str, ...] = ("vanilla", "hotmem")

    def mode_objects(self) -> Tuple[DeploymentBackend, ...]:
        """The swept modes resolved through the registry."""
        return resolve_modes(self.modes)

    def budget(self) -> RetryBudget:
        """The router's per-invocation retry budget."""
        return RetryBudget(
            max_failovers=self.max_failovers,
            deadline_ns=int(self.deadline_ms * MS),
        )

    @classmethod
    def paper_scale(cls) -> "ClusterChaosConfig":
        """A finer fault grid over a longer trace."""
        return cls(
            fault_rates=(0.0, 0.02, 0.05, 0.1, 0.2),
            duration_s=60,
            drain_s=30,
        )


@dataclass
class ClusterChaosCell:
    """One (mode, rate) fleet run through the storm."""

    mode: str
    rate: float
    invocations: int
    #: Completed-OK fraction of all arrivals (rejections and deadline
    #: sheds count against availability).
    availability: float
    p99_ms: float
    #: Mean time-to-recovery across every fleet-level recovery event.
    mttr_ms: float
    #: Alive VMs at the end of the run / VMs provisioned.
    retained_frac: float
    #: Alive VMs per *surviving* host at the end of the run.
    vms_per_live_host: float
    evacuated: int
    evacuation_rejected: int
    injected: int
    unresolved: int
    ledger_drift_bytes: int
    #: Per-site rollup from the fleet recovery log (site → counts+MTTR).
    recovery_summary: Dict[str, Dict[str, object]] = field(
        default_factory=dict
    )


@dataclass
class ClusterChaosResult:
    """The full sweep, row per (mode, rate)."""

    config: ClusterChaosConfig
    cells: List[ClusterChaosCell] = field(default_factory=list)

    def cell(self, mode: str, rate: float) -> ClusterChaosCell:
        """The cell for one (mode, rate) pair."""
        for c in self.cells:
            if c.mode == mode and c.rate == rate:
                return c
        raise KeyError(f"no cell for ({mode}, {rate})")

    def total_unresolved(self) -> int:
        """Domain faults no recovery path claimed, across the sweep."""
        return sum(c.unresolved for c in self.cells)

    def total_ledger_drift(self) -> int:
        """Absolute arbiter-ledger drift left behind, across the sweep."""
        return sum(abs(c.ledger_drift_bytes) for c in self.cells)

    def density_edge_holds(self) -> bool:
        """hotmem retains at least vanilla's share of the fleet at every
        nonzero fault rate (the admission-credit payoff under failure)."""
        names = {c.mode for c in self.cells}
        if not {"hotmem", "vanilla"} <= names:
            return True
        for rate in self.config.fault_rates:
            if rate <= 0.0:
                continue
            hot = self.cell("hotmem", rate).retained_frac
            van = self.cell("vanilla", rate).retained_frac
            if hot < van:
                return False
        return True

    def rows(self) -> List[List[object]]:
        out: List[List[object]] = []
        for c in self.cells:
            out.append(
                [
                    c.mode,
                    c.rate,
                    c.invocations,
                    f"{c.availability:.1%}",
                    round(c.p99_ms, 1),
                    round(c.mttr_ms, 1),
                    f"{c.retained_frac:.0%}",
                    round(c.vms_per_live_host, 2),
                    c.evacuated,
                    c.evacuation_rejected,
                    c.injected,
                    c.unresolved,
                    c.ledger_drift_bytes,
                ]
            )
        return out

    def recovery_rows(self) -> List[List[object]]:
        """Per-site recovery rollup rows across the faulted cells."""
        out: List[List[object]] = []
        for c in self.cells:
            for site, stats in c.recovery_summary.items():
                out.append(
                    [
                        c.mode,
                        c.rate,
                        site,
                        stats["events"],
                        stats["recovered"],
                        stats["failed_over"],
                        stats["degraded"],
                        round(float(stats["mttr_ms"]), 1),  # type: ignore[arg-type]
                    ]
                )
        return out

    def render(self) -> str:
        config = self.config
        parts = [
            render_table(
                f"Cluster chaos: availability, MTTR and density under "
                f"failure domains ({config.hosts} hosts x "
                f"{config.memory_per_node // GIB} GiB, "
                f"{config.vms_per_host} VMs/host)",
                [
                    "mode",
                    "rate",
                    "invocations",
                    "avail",
                    "p99 ms",
                    "mttr ms",
                    "retained",
                    "vms/host",
                    "evac",
                    "evac_rej",
                    "injected",
                    "unresolved",
                    "drift",
                ],
                self.rows(),
            )
        ]
        recovery = self.recovery_rows()
        if recovery:
            parts.append(
                render_table(
                    "Recovery paths by failure site (fleet log)",
                    [
                        "mode",
                        "rate",
                        "site",
                        "events",
                        "recovered",
                        "failed_over",
                        "degraded",
                        "mttr ms",
                    ],
                    recovery,
                )
            )
        edge = "holds" if self.density_edge_holds() else "VIOLATED"
        parts.append(
            f"unresolved faults: {self.total_unresolved()}  "
            f"ledger drift: {self.total_ledger_drift()} bytes  "
            f"density edge under failure (hotmem >= vanilla): {edge}"
        )
        return "\n\n".join(parts)


def _vm_spec(
    config: ClusterChaosConfig, mode: DeploymentBackend, index: int
) -> VmSpec:
    function = config.functions[index % len(config.functions)]
    spec = get_function(function)
    return VmSpec.for_function(
        f"{mode.value}-vm{index}",
        mode,
        spec.memory_limit_bytes,
        concurrency=config.instances_per_vm,
        shared_bytes=spec.shared_deps_bytes,
        vcpus=config.vm_vcpus,
        boot_memory_bytes=config.boot_memory_bytes,
        placement="scatter",
        seed=config.seed + index,
        costs=config.costs,
    )


def _run_cell(
    config: ClusterChaosConfig, mode: DeploymentBackend, rate: float
) -> ClusterChaosCell:
    sim = Simulator()
    fleet = Fleet(
        sim,
        hosts=config.hosts,
        nodes_per_host=config.nodes_per_host,
        cores_per_node=config.cores_per_node,
        memory_per_node=config.memory_per_node,
        placement=config.placement,
        arbitration=config.arbitration,
    )
    total = config.vms_per_host * config.hosts
    horizon_ns = (config.duration_s + config.drain_s) * SEC
    keep_alive = KeepAlivePolicy(
        keep_alive_ns=config.keep_alive_s * SEC,
        recycle_interval_ns=config.recycle_interval_s * SEC,
    )
    resilience = ResiliencePolicy(
        retry=RetryPolicy(max_retries=1),
        plug_retries=4,
        deferred_attempts=2,
    )
    router = TraceRouter(
        sim,
        policy=config.routing,
        max_queue_per_vm=(
            config.max_queue_per_vm_factor * config.instances_per_vm
        ),
        budget=config.budget(),
        breakers=config.breakers,
    )
    replicas: Dict[str, int] = {}
    for index in range(total):
        function = config.functions[index % len(config.functions)]
        replicas[function] = replicas.get(function, 0) + 1
        handle = fleet.provision(_vm_spec(config, mode, index))
        spec = get_function(function)
        agent = handle.deploy(
            [FunctionDeployment(spec, max_instances=config.instances_per_vm)],
            keep_alive,
            resilience=resilience,
        )
        router.register(agent)
        agent.start_recycler(until_ns=horizon_ns)

    generator = AzureTraceGenerator(config.seed)
    for position, function in enumerate(config.functions):
        spec = get_function(function)
        cohort_vcpus = replicas[function] * config.vm_vcpus
        exec_s = spec.exec_cpu_ns / SEC
        burst_rps = config.burst_cpu_rho * cohort_vcpus / exec_s
        burst_start = position * config.stagger_s
        trace = generator.bursty(
            function,
            duration_s=float(config.duration_s),
            burst_rps=burst_rps,
            base_rps=config.base_rps_per_replica * replicas[function],
            bursts=((burst_start, burst_start + config.burst_len_s),),
            stream=f"cluster-chaos/{mode.value}/{rate}",
        )
        router.drive(trace)

    fleet.start_pressure_monitor(
        period_ns=config.pressure_period_s * SEC, until_ns=horizon_ns
    )
    injector = FaultInjector(domain_plan(rate), seed=config.seed, sim=sim)
    coordinator = FailoverCoordinator(
        fleet, router, injector, policy=config.failover
    )
    coordinator.start(
        tick_ns=config.tick_s * SEC,
        until_ns=config.duration_s * SEC,
        seed=config.seed,
    )
    router.run(until_ns=horizon_ns)
    # Drain: every remaining process (evacuation cold starts, link-heal
    # and spike windows) is finitely bounded, so an unbounded run
    # terminates — and leaves no recovery half-done at measurement time.
    sim.run()
    coordinator.finalize()
    for handle in fleet.handles:
        if handle.vm._alive:
            handle.vm.check_consistency()

    records = router.records
    successes = router.successful_records()
    alive = sum(1 for h in fleet.handles if h.vm._alive)
    live_hosts = config.hosts - len(fleet.down_hosts)
    evacuated = sum(len(e.evacuated) for e in coordinator.evacuations)
    rejected = sum(len(e.rejected) for e in coordinator.evacuations)
    recovery = coordinator.recovery
    return ClusterChaosCell(
        mode=mode.value,
        rate=rate,
        invocations=len(records),
        availability=len(successes) / len(records) if records else 1.0,
        p99_ms=(
            merged_percentile_ms([successes], 99.0) if successes else 0.0
        ),
        mttr_ms=recovery.mttr_ms(),
        retained_frac=alive / total if total else 0.0,
        vms_per_live_host=alive / live_hosts if live_hosts else 0.0,
        evacuated=evacuated,
        evacuation_rejected=rejected,
        injected=injector.count(),
        unresolved=len(injector.unresolved()),
        ledger_drift_bytes=fleet.ledger_drift_bytes(),
        recovery_summary=recovery.summary(),
    )


def _cell(config: ClusterChaosConfig, cell: Cell) -> ClusterChaosCell:
    return _run_cell(config, get_mode(cell["mode"]), cell["rate"])


def _grid(config: ClusterChaosConfig) -> SweepGrid:
    return (
        SweepGrid("cluster-chaos")
        .axis("mode", tuple(m.value for m in config.mode_objects()))
        .axis("rate", config.fault_rates)
    )


def run(config: ClusterChaosConfig = ClusterChaosConfig()) -> ClusterChaosResult:
    """Sweep domain-fault rates for every configured deployment mode."""
    result = ClusterChaosResult(config)
    for cell_result in run_sweep(_grid(config), _cell, config):
        result.cells.append(cell_result.payload)
    return result


register_experiment(
    "cluster-chaos",
    "R2 fleet failure domains: availability, MTTR and density "
    "under host/VM crash injection",
    config=ClusterChaosConfig,
    run=run,
    mode_sweeping=True,
)
