"""Ablations beyond the paper's figures (DESIGN.md A1-A4).

These isolate the design choices the paper's analysis attributes the
vanilla pathologies to: allocator placement (interleaving), zeroing
mode, unplug block selection, and the HotMem concurrency factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.experiments.microbench import MicrobenchRig, MicrobenchSetup
from repro.experiments.serverless import (
    FunctionLoad,
    ServerlessScenario,
    run_scenario,
)
from repro.faas.policy import DeploymentMode
from repro.metrics.report import render_table
from repro.sim.costs import DEFAULT_COSTS, CostModel, ZeroingMode
from repro.units import GIB, MIB

__all__ = [
    "run_placement_ablation",
    "run_zeroing_ablation",
    "run_selection_ablation",
    "run_concurrency_ablation",
    "AblationResult",
]


@dataclass
class AblationResult:
    """A generic keyed-measurement result with a rendered table."""

    title: str
    headers: Tuple[str, ...]
    rows_data: List[List[object]] = field(default_factory=list)
    values: Dict[str, float] = field(default_factory=dict)

    def rows(self) -> List[List[object]]:
        return self.rows_data

    def render(self) -> str:
        return render_table(self.title, list(self.headers), self.rows_data)


def run_placement_ablation(
    total_bytes: int = 4608 * MIB,
    reclaim_bytes: int = 1536 * MIB,
    costs: CostModel = DEFAULT_COSTS,
) -> AblationResult:
    """A1: how allocator placement drives vanilla unplug cost.

    ``sequential`` is the best case (footprints never interleave, like
    HotMem achieves by construction); ``scatter`` models Linux free-list
    mixing; ``random`` is the worst case.
    """
    result = AblationResult(
        title="A1: vanilla unplug latency vs allocator placement policy",
        headers=("placement", "latency_ms", "migrated_pages"),
    )
    for placement in ("sequential", "scatter", "random"):
        rig = MicrobenchRig(
            MicrobenchSetup(
                mode="vanilla",
                total_bytes=total_bytes,
                partition_bytes=384 * MIB,
                placement=placement,
                costs=costs,
            )
        )
        measurement = rig.run_single_reclaim(reclaim_bytes)
        result.rows_data.append(
            [placement, measurement.latency_ms, measurement.migrated_pages]
        )
        result.values[placement] = measurement.latency_ms
    return result


def run_zeroing_ablation(
    total_bytes: int = 3 * GIB,
    reclaim_bytes: int = 768 * MIB,
) -> AblationResult:
    """A2: plug/unplug cost under the three zeroing modes.

    ``init_on_alloc`` penalizes vanilla unplug (migration targets are
    zeroed); ``init_on_free`` penalizes vanilla plug (pages zeroed before
    onlining).  HotMem skips both because the host provides and re-zeroes
    the memory (Section 4).
    """
    result = AblationResult(
        title="A2: (un)plug latency vs zeroing mode",
        headers=(
            "zeroing",
            "mode",
            "plug_ms_per_gib",
            "unplug_ms",
            "zeroed_pages",
        ),
    )
    for zeroing in ZeroingMode.ALL:
        costs = DEFAULT_COSTS.replace(zeroing_mode=zeroing)
        for mode in ("vanilla", "hotmem"):
            rig = MicrobenchRig(
                MicrobenchSetup(
                    mode=mode,
                    total_bytes=total_bytes,
                    partition_bytes=384 * MIB,
                    costs=costs,
                )
            )

            def scenario(rig=rig):
                plug = yield from rig.plug_all()
                hogs = yield from rig.start_memhogs()
                yield from rig.stop_memhogs(hogs[-2:])
                unplug = yield from rig.measure_reclaim(reclaim_bytes)
                yield from rig.stop_all()
                return plug, unplug

            plug, unplug = rig.sim.run_process(scenario(), name="a2")
            plug_ms_per_gib = (
                plug.latency_ns / 1e6 / (total_bytes / GIB)
            )
            result.rows_data.append(
                [zeroing, mode, plug_ms_per_gib, unplug.latency_ms,
                 plug.zeroed_pages]
            )
            result.values[f"{zeroing}/{mode}/plug"] = plug_ms_per_gib
            result.values[f"{zeroing}/{mode}/unplug"] = unplug.latency_ms
    return result


def run_selection_ablation(
    total_bytes: int = 4608 * MIB,
    reclaim_bytes: int = 1152 * MIB,
) -> AblationResult:
    """A3: vanilla unplug block selection — linear scan vs emptiest-first.

    Crossed with the allocator placement policy, because the two interact:
    under sequential placement, freed slots leave whole blocks empty and
    an emptiest-first scan finds them (approaching HotMem for free); under
    scatter placement every block is equally occupied, so *no* selection
    policy can avoid migrations — the fix has to be allocation-side, which
    is exactly HotMem's thesis (Section 3).
    """
    result = AblationResult(
        title="A3: vanilla unplug latency vs block-selection policy",
        headers=("placement", "selection", "latency_ms", "migrated_pages"),
    )
    for placement in ("scatter", "sequential"):
        for selection in ("linear", "emptiest_first"):
            rig = MicrobenchRig(
                MicrobenchSetup(
                    mode="vanilla",
                    total_bytes=total_bytes,
                    partition_bytes=384 * MIB,
                    placement=placement,
                    unplug_selection=selection,
                )
            )
            measurement = rig.run_single_reclaim(reclaim_bytes)
            result.rows_data.append(
                [
                    placement,
                    selection,
                    measurement.latency_ms,
                    measurement.migrated_pages,
                ]
            )
            result.values[f"{placement}/{selection}"] = measurement.latency_ms
    return result


def run_batching_ablation(
    partition_bytes: int = 384 * MIB,
    total_slots: int = 12,
    reclaim_slots: Tuple[int, ...] = (1, 2, 4, 8),
    costs: CostModel = DEFAULT_COSTS,
) -> AblationResult:
    """A6: batched unplug — the paper's named future work (Section 6.1.1).

    The paper observes that unplug latency grows with request size
    because every 128 MiB block pays fixed offline/remove/madvise costs,
    and names handling requests at larger granularities as future work.
    This ablation implements it: HotMem's free partitions form contiguous
    block runs, so the driver can offline each run in one operation.
    """
    result = AblationResult(
        title="A6: HotMem unplug latency, per-block vs batched runs",
        headers=("reclaim", "per_block_ms", "batched_ms", "speedup"),
    )
    for slots in reclaim_slots:
        latencies = {}
        for batched in (False, True):
            rig = MicrobenchRig(
                MicrobenchSetup(
                    mode="hotmem",
                    total_bytes=total_slots * partition_bytes,
                    partition_bytes=partition_bytes,
                    costs=costs,
                    batch_unplug=batched,
                )
            )
            measurement = rig.run_single_reclaim(slots * partition_bytes)
            latencies[batched] = measurement.latency_ms
        label = f"{slots}x{partition_bytes // MIB}MiB"
        speedup = latencies[False] / latencies[True]
        result.rows_data.append(
            [label, latencies[False], latencies[True], f"{speedup:.1f}x"]
        )
        result.values[f"{slots}/per_block"] = latencies[False]
        result.values[f"{slots}/batched"] = latencies[True]
    return result


def run_concurrency_ablation(
    concurrencies: Tuple[int, ...] = (5, 10, 20),
    duration_s: int = 120,
) -> AblationResult:
    """A4: HotMem reclaim throughput vs the concurrency factor N.

    More partitions mean more instances scale up and down per trace, so
    more memory moves through plug/unplug; throughput should stay high
    across N (reclamation cost is per-block, not per-byte-searched).
    """
    result = AblationResult(
        title="A4: HotMem behaviour vs concurrency factor N",
        headers=("N", "reclaim_mib_s", "cold_starts", "oom_failures"),
    )
    for n in concurrencies:
        scenario = ServerlessScenario(
            mode=DeploymentMode.HOTMEM,
            loads=(
                FunctionLoad.for_function("html", max_instances=n),
            ),
            duration_s=duration_s,
            keep_alive_s=20,
            recycle_interval_s=10,
        )
        run_result = run_scenario(scenario)
        result.rows_data.append(
            [
                n,
                run_result.reclaim_mib_per_s,
                run_result.cold_starts["html"],
                run_result.oom_failures,
            ]
        )
        result.values[str(n)] = run_result.reclaim_mib_per_s
    return result
