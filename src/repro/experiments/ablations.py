"""Ablations beyond the paper's figures (DESIGN.md A1-A4).

These isolate the design choices the paper's analysis attributes the
vanilla pathologies to: allocator placement (interleaving), zeroing
mode, unplug block selection, and the HotMem concurrency factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.microbench import MicrobenchRig, MicrobenchSetup
from repro.experiments.serverless import (
    FunctionLoad,
    ServerlessScenario,
    run_scenario,
)
from repro.faas.policy import DeploymentMode
from repro.metrics.report import render_table
from repro.sim.costs import DEFAULT_COSTS, CostModel, ZeroingMode
from repro.sweep import Cell, SweepGrid, register_experiment, run_sweep
from repro.units import GIB, MIB

__all__ = [
    "run_placement_ablation",
    "run_zeroing_ablation",
    "run_selection_ablation",
    "run_concurrency_ablation",
    "AblationResult",
]


@dataclass
class AblationResult:
    """A generic keyed-measurement result with a rendered table."""

    title: str
    headers: Tuple[str, ...]
    rows_data: List[List[object]] = field(default_factory=list)
    values: Dict[str, float] = field(default_factory=dict)

    def rows(self) -> List[List[object]]:
        return self.rows_data

    def render(self) -> str:
        return render_table(self.title, list(self.headers), self.rows_data)


def run_placement_ablation(
    total_bytes: int = 4608 * MIB,
    reclaim_bytes: int = 1536 * MIB,
    costs: CostModel = DEFAULT_COSTS,
) -> AblationResult:
    """A1: how allocator placement drives vanilla unplug cost.

    ``sequential`` is the best case (footprints never interleave, like
    HotMem achieves by construction); ``scatter`` models Linux free-list
    mixing; ``random`` is the worst case.
    """
    result = AblationResult(
        title="A1: vanilla unplug latency vs allocator placement policy",
        headers=("placement", "latency_ms", "migrated_pages"),
    )
    grid = SweepGrid("a1").axis(
        "placement", ("sequential", "scatter", "random")
    )
    config = (total_bytes, reclaim_bytes, costs)
    for cell_result in run_sweep(grid, _placement_cell, config):
        placement = cell_result["placement"]
        latency_ms, migrated = cell_result.payload
        result.rows_data.append([placement, latency_ms, migrated])
        result.values[placement] = latency_ms
    return result


def _placement_cell(config, cell: Cell) -> Tuple[float, int]:
    total_bytes, reclaim_bytes, costs = config
    rig = MicrobenchRig(
        MicrobenchSetup(
            mode="vanilla",
            total_bytes=total_bytes,
            partition_bytes=384 * MIB,
            placement=cell["placement"],
            costs=costs,
        )
    )
    measurement = rig.run_single_reclaim(reclaim_bytes)
    return measurement.latency_ms, measurement.migrated_pages


def run_zeroing_ablation(
    total_bytes: int = 3 * GIB,
    reclaim_bytes: int = 768 * MIB,
) -> AblationResult:
    """A2: plug/unplug cost under the three zeroing modes.

    ``init_on_alloc`` penalizes vanilla unplug (migration targets are
    zeroed); ``init_on_free`` penalizes vanilla plug (pages zeroed before
    onlining).  HotMem skips both because the host provides and re-zeroes
    the memory (Section 4).
    """
    result = AblationResult(
        title="A2: (un)plug latency vs zeroing mode",
        headers=(
            "zeroing",
            "mode",
            "plug_ms_per_gib",
            "unplug_ms",
            "zeroed_pages",
        ),
    )
    grid = (
        SweepGrid("a2")
        .axis("zeroing", ZeroingMode.ALL)
        .axis("mode", ("vanilla", "hotmem"))
    )
    config = (total_bytes, reclaim_bytes)
    for cell_result in run_sweep(grid, _zeroing_cell, config):
        zeroing, mode = cell_result["zeroing"], cell_result["mode"]
        plug_ms_per_gib, unplug_ms, zeroed_pages = cell_result.payload
        result.rows_data.append(
            [zeroing, mode, plug_ms_per_gib, unplug_ms, zeroed_pages]
        )
        result.values[f"{zeroing}/{mode}/plug"] = plug_ms_per_gib
        result.values[f"{zeroing}/{mode}/unplug"] = unplug_ms
    return result


def _zeroing_cell(config, cell: Cell) -> Tuple[float, float, int]:
    total_bytes, reclaim_bytes = config
    rig = MicrobenchRig(
        MicrobenchSetup(
            mode=cell["mode"],
            total_bytes=total_bytes,
            partition_bytes=384 * MIB,
            costs=DEFAULT_COSTS.replace(zeroing_mode=cell["zeroing"]),
        )
    )

    def scenario():
        plug = yield from rig.plug_all()
        hogs = yield from rig.start_memhogs()
        yield from rig.stop_memhogs(hogs[-2:])
        unplug = yield from rig.measure_reclaim(reclaim_bytes)
        yield from rig.stop_all()
        return plug, unplug

    plug, unplug = rig.sim.run_process(scenario(), name="a2")
    plug_ms_per_gib = plug.latency_ns / 1e6 / (total_bytes / GIB)
    return plug_ms_per_gib, unplug.latency_ms, plug.zeroed_pages


def run_selection_ablation(
    total_bytes: int = 4608 * MIB,
    reclaim_bytes: int = 1152 * MIB,
) -> AblationResult:
    """A3: vanilla unplug block selection — linear scan vs emptiest-first.

    Crossed with the allocator placement policy, because the two interact:
    under sequential placement, freed slots leave whole blocks empty and
    an emptiest-first scan finds them (approaching HotMem for free); under
    scatter placement every block is equally occupied, so *no* selection
    policy can avoid migrations — the fix has to be allocation-side, which
    is exactly HotMem's thesis (Section 3).
    """
    result = AblationResult(
        title="A3: vanilla unplug latency vs block-selection policy",
        headers=("placement", "selection", "latency_ms", "migrated_pages"),
    )
    grid = (
        SweepGrid("a3")
        .axis("placement", ("scatter", "sequential"))
        .axis("selection", ("linear", "emptiest_first"))
    )
    config = (total_bytes, reclaim_bytes)
    for cell_result in run_sweep(grid, _selection_cell, config):
        placement = cell_result["placement"]
        selection = cell_result["selection"]
        latency_ms, migrated = cell_result.payload
        result.rows_data.append([placement, selection, latency_ms, migrated])
        result.values[f"{placement}/{selection}"] = latency_ms
    return result


def _selection_cell(config, cell: Cell) -> Tuple[float, int]:
    total_bytes, reclaim_bytes = config
    rig = MicrobenchRig(
        MicrobenchSetup(
            mode="vanilla",
            total_bytes=total_bytes,
            partition_bytes=384 * MIB,
            placement=cell["placement"],
            unplug_selection=cell["selection"],
        )
    )
    measurement = rig.run_single_reclaim(reclaim_bytes)
    return measurement.latency_ms, measurement.migrated_pages


def run_batching_ablation(
    partition_bytes: int = 384 * MIB,
    total_slots: int = 12,
    reclaim_slots: Tuple[int, ...] = (1, 2, 4, 8),
    costs: CostModel = DEFAULT_COSTS,
) -> AblationResult:
    """A6: batched unplug — the paper's named future work (Section 6.1.1).

    The paper observes that unplug latency grows with request size
    because every 128 MiB block pays fixed offline/remove/madvise costs,
    and names handling requests at larger granularities as future work.
    This ablation implements it: HotMem's free partitions form contiguous
    block runs, so the driver can offline each run in one operation.
    """
    result = AblationResult(
        title="A6: HotMem unplug latency, per-block vs batched runs",
        headers=("reclaim", "per_block_ms", "batched_ms", "speedup"),
    )
    grid = (
        SweepGrid("a6")
        .axis("slots", reclaim_slots)
        .axis("batched", (False, True))
    )
    config = (partition_bytes, total_slots, costs)
    latencies: Dict[Tuple[int, bool], float] = {}
    for cell_result in run_sweep(grid, _batching_cell, config):
        key = (cell_result["slots"], cell_result["batched"])
        latencies[key] = cell_result.payload
    for slots in reclaim_slots:
        label = f"{slots}x{partition_bytes // MIB}MiB"
        per_block = latencies[(slots, False)]
        batched = latencies[(slots, True)]
        speedup = per_block / batched
        result.rows_data.append(
            [label, per_block, batched, f"{speedup:.1f}x"]
        )
        result.values[f"{slots}/per_block"] = per_block
        result.values[f"{slots}/batched"] = batched
    return result


def _batching_cell(config, cell: Cell) -> float:
    partition_bytes, total_slots, costs = config
    rig = MicrobenchRig(
        MicrobenchSetup(
            mode="hotmem",
            total_bytes=total_slots * partition_bytes,
            partition_bytes=partition_bytes,
            costs=costs,
            batch_unplug=cell["batched"],
        )
    )
    measurement = rig.run_single_reclaim(cell["slots"] * partition_bytes)
    return measurement.latency_ms


def run_concurrency_ablation(
    concurrencies: Tuple[int, ...] = (5, 10, 20),
    duration_s: int = 120,
) -> AblationResult:
    """A4: HotMem reclaim throughput vs the concurrency factor N.

    More partitions mean more instances scale up and down per trace, so
    more memory moves through plug/unplug; throughput should stay high
    across N (reclamation cost is per-block, not per-byte-searched).
    """
    result = AblationResult(
        title="A4: HotMem behaviour vs concurrency factor N",
        headers=("N", "reclaim_mib_s", "cold_starts", "oom_failures"),
    )
    grid = SweepGrid("a4").axis("n", concurrencies)
    for cell_result in run_sweep(grid, _concurrency_cell, duration_s):
        n = cell_result["n"]
        mib_per_s, cold_starts, oom_failures = cell_result.payload
        result.rows_data.append([n, mib_per_s, cold_starts, oom_failures])
        result.values[str(n)] = mib_per_s
    return result


def _concurrency_cell(duration_s: int, cell: Cell) -> Tuple[float, int, int]:
    scenario = ServerlessScenario(
        mode=DeploymentMode.HOTMEM,
        loads=(
            FunctionLoad.for_function("html", max_instances=cell["n"]),
        ),
        duration_s=duration_s,
        keep_alive_s=20,
        recycle_interval_s=10,
    )
    run_result = run_scenario(scenario)
    return (
        run_result.reclaim_mib_per_s,
        run_result.cold_starts["html"],
        run_result.oom_failures,
    )


def _render_all(
    paper_scale: bool, modes: Optional[Tuple[str, ...]]
) -> str:
    del paper_scale, modes
    return "\n\n".join(
        [
            run_placement_ablation().render(),
            run_zeroing_ablation().render(),
            run_selection_ablation().render(),
            run_concurrency_ablation().render(),
            run_batching_ablation().render(),
        ]
    )


register_experiment(
    "ablations",
    "A1-A4 design-choice ablations",
    render=_render_all,
)
