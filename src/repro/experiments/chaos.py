"""Chaos experiment: the hotplug datapath under injected faults.

Replays the Figure 8 trace while a deterministic
:class:`~repro.faults.injector.FaultInjector` fires faults across every
named site (device NACKs, partial plugs, slow responses, unmovable
pages, migration failures, block timeouts, spawn failures, recycler
races) at a swept per-opportunity rate.  For each (mode, rate) cell the
experiment reports reclamation throughput and invocation P99 alongside
the fault accounting: how many faults fired, how many were recovered
(retry, defer, absorb) vs degraded (quarantine, partial unplug, static
fallback), and — the completeness check — how many were never claimed
by any recovery path.  A healthy datapath leaves ``unresolved == 0`` at
every rate; rate 0.0 is the control row and is byte-identical to a run
without the fault plane.

Determinism: per-site RNG streams are derived only from the scenario
seed, so two runs at the same seed produce bit-identical tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.experiments.serverless import (
    FunctionLoad,
    ServerlessScenario,
    run_scenario,
)
from repro.faults.injector import FaultPlan
from repro.faults.policy import ResiliencePolicy, RetryPolicy
from repro.faults.recovery import RecoveryLog
from repro.faults.sites import DATAPATH_SITES
from repro.modes import DeploymentBackend, get_mode, resolve_modes
from repro.metrics.latency import p99_ms
from repro.metrics.report import render_table
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sweep import Cell, SweepGrid, register_experiment, run_sweep
from repro.units import MS

__all__ = ["ChaosConfig", "ChaosCell", "ChaosResult", "run"]


@dataclass(frozen=True)
class ChaosConfig:
    """Fault-rate sweep over the trace-replay scenario."""

    #: Per-opportunity fire probability per site; 0.0 is the control.
    fault_rates: Tuple[float, ...] = (0.0, 0.05, 0.2)
    #: Swept modes (registry names or backend objects).
    modes: Tuple[Union[str, DeploymentBackend], ...] = ("vanilla", "hotmem")
    function: str = "html"
    duration_s: int = 30
    keep_alive_s: int = 10
    recycle_interval_s: int = 5
    seed: int = 0
    costs: CostModel = DEFAULT_COSTS
    #: Driver-side recovery: per-block retry budget and quarantine
    #: threshold (consecutive give-ups before a block is quarantined).
    max_retries: int = 3
    quarantine_after: int = 2
    #: Agent-side recovery: plug retry budget, consecutive-failure
    #: threshold for static fallback, deferred-reclamation retry budget.
    plug_retries: int = 2
    degrade_after: int = 4
    deferred_attempts: int = 3
    #: Latency injected by ``device.response.delay`` when it fires.
    response_delay_ns: int = 2 * MS

    @classmethod
    def paper_scale(cls) -> "ChaosConfig":
        """Longer traces and a finer rate sweep."""
        return cls(
            fault_rates=(0.0, 0.01, 0.05, 0.1, 0.2),
            duration_s=120,
            keep_alive_s=30,
            recycle_interval_s=10,
        )

    def plan(
        self, rate: float, mode: Optional[DeploymentBackend] = None
    ) -> "FaultPlan | None":
        """The fault plan for one sweep cell (None at the control rate).

        With a ``mode``, only that mode's applicable fault sites are
        armed — the related-work baselines bypass the virtio-mem
        device/driver, so injecting there would silently never fire.
        """
        if rate <= 0.0:
            return None
        sites = mode.fault_sites if mode is not None else DATAPATH_SITES
        return FaultPlan.uniform(rate, sites=sites, delay_ns=self.response_delay_ns)

    def resilience(self) -> ResiliencePolicy:
        """The recovery policy exercised by every faulted cell."""
        return ResiliencePolicy(
            retry=RetryPolicy(
                max_retries=self.max_retries,
                quarantine_after=self.quarantine_after,
            ),
            plug_retries=self.plug_retries,
            degrade_after=self.degrade_after,
            deferred_attempts=self.deferred_attempts,
        )


@dataclass
class ChaosCell:
    """One (mode, rate) cell of the sweep."""

    mode: str
    rate: float
    reclaim_mib_s: float
    p99_ms: float
    invocations: int
    injected: int
    recovered: int
    degraded: int
    unresolved: int
    #: Whether the agent fell back to static (no-elastic) mode.
    static_fallback: bool
    #: Per-site recovery rollup (site → counts by outcome + MTTR).
    recovery_summary: Dict[str, Dict[str, object]] = field(
        default_factory=dict
    )


@dataclass
class ChaosResult:
    """The full sweep, row per (mode, rate)."""

    config: ChaosConfig
    cells: List[ChaosCell] = field(default_factory=list)

    def cell(self, mode: str, rate: float) -> ChaosCell:
        """The cell for one (mode, rate) pair."""
        for c in self.cells:
            if c.mode == mode and c.rate == rate:
                return c
        raise KeyError(f"no cell for ({mode}, {rate})")

    def total_unresolved(self) -> int:
        """Faults no recovery path claimed, across the whole sweep."""
        return sum(c.unresolved for c in self.cells)

    def p99_degradation(self, mode: str, rate: float) -> float:
        """P99(rate) / P99(control) for one mode (1.0 = no impact)."""
        control = self.cell(mode, 0.0).p99_ms
        return self.cell(mode, rate).p99_ms / control if control else 0.0

    def rows(self) -> List[List[object]]:
        out: List[List[object]] = []
        for c in self.cells:
            out.append(
                [
                    c.mode,
                    c.rate,
                    c.reclaim_mib_s,
                    c.p99_ms,
                    c.invocations,
                    c.injected,
                    c.recovered,
                    c.degraded,
                    c.unresolved,
                    "yes" if c.static_fallback else "no",
                ]
            )
        return out

    def recovery_rows(self) -> List[List[object]]:
        """Per-site recovery rollup rows across the faulted cells."""
        out: List[List[object]] = []
        for c in self.cells:
            for site, stats in c.recovery_summary.items():
                out.append(
                    [
                        c.mode,
                        c.rate,
                        site,
                        stats["events"],
                        stats["recovered"],
                        stats["failed_over"],
                        stats["degraded"],
                        round(float(stats["mttr_ms"]), 2),  # type: ignore[arg-type]
                    ]
                )
        return out

    def render(self) -> str:
        table = render_table(
            "Chaos: reclamation throughput and P99 under injected faults",
            [
                "mode",
                "rate",
                "reclaim_mib_s",
                "p99_ms",
                "invocations",
                "injected",
                "recovered",
                "degraded",
                "unresolved",
                "static",
            ],
            self.rows(),
        )
        recovery = self.recovery_rows()
        if not recovery:
            return table
        summary = render_table(
            "Recovery paths by failure site",
            [
                "mode",
                "rate",
                "site",
                "events",
                "recovered",
                "failed_over",
                "degraded",
                "mttr ms",
            ],
            recovery,
        )
        return table + "\n\n" + summary


def _run_cell(
    config: ChaosConfig, mode: DeploymentBackend, rate: float
) -> ChaosCell:
    """One (mode, rate) point: fresh scenario, fresh simulator."""
    scenario = ServerlessScenario(
        mode=mode,
        loads=(FunctionLoad.for_function(config.function),),
        duration_s=config.duration_s,
        keep_alive_s=config.keep_alive_s,
        recycle_interval_s=config.recycle_interval_s,
        seed=config.seed,
        costs=config.costs,
        faults=config.plan(rate, mode),
        resilience=config.resilience() if rate > 0.0 else None,
    )
    run_result = run_scenario(scenario)
    records = run_result.records_for(config.function)
    recovered = sum(1 for e in run_result.recovery_events if e.recovered)
    log = RecoveryLog()
    log.events.extend(run_result.recovery_events)
    return ChaosCell(
        mode=mode.value,
        rate=rate,
        reclaim_mib_s=run_result.reclaim_mib_per_s,
        p99_ms=p99_ms(records) if records else 0.0,
        invocations=len(records),
        injected=run_result.injected_faults,
        recovered=recovered,
        degraded=len(run_result.recovery_events) - recovered,
        unresolved=run_result.unresolved_faults,
        static_fallback=run_result.degraded,
        recovery_summary=log.summary(),
    )


def _cell(config: ChaosConfig, cell: Cell) -> ChaosCell:
    return _run_cell(config, get_mode(cell["mode"]), cell["rate"])


def _grid(config: ChaosConfig) -> SweepGrid:
    return (
        SweepGrid("chaos")
        .axis("mode", tuple(m.value for m in resolve_modes(config.modes)))
        .axis("rate", config.fault_rates)
    )


def run(config: ChaosConfig = ChaosConfig()) -> ChaosResult:
    """Sweep fault rates for each deployment mode."""
    result = ChaosResult(config)
    for cell_result in run_sweep(_grid(config), _cell, config):
        result.cells.append(cell_result.payload)
    return result


register_experiment(
    "chaos",
    "R1 fault-rate sweep: recovery paths and degradation",
    config=ChaosConfig,
    run=run,
    mode_sweeping=True,
)
