"""M1: host memory stranding across deployment modes (Figure 1's motivation).

The paper motivates HotMem with the N:1 model's rigid resource
allocation: over-provisioned VMs tie down their maximum memory even when
the load is low, exacerbating memory stranding on the host.  This
experiment packs several trace-driven VMs onto one host node, staggers
their load bursts, and samples the node's committed memory over time:

* **overprovisioned** — every VM holds its maximum forever (the Figure 1
  pathology);
* **vanilla** — elastic, but slow/partial reclamation keeps memory
  committed for longer after each scale-down;
* **hotmem** — memory returns to the host within milliseconds of the
  recycler's shrink events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.cluster.provision import Fleet, VmSpec
from repro.faas.agent import FunctionDeployment
from repro.faas.policy import DeploymentMode, KeepAlivePolicy
from repro.faas.runtime import FaasRuntime
from repro.metrics.collector import PeriodicSampler
from repro.metrics.report import render_table
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sim.engine import Simulator
from repro.sweep import Cell, SweepGrid, register_experiment, run_sweep
from repro.units import GIB, SEC
from repro.workloads.azure import AzureTraceGenerator
from repro.workloads.functions import get_function

__all__ = ["StrandingConfig", "StrandingResult", "run"]

MODES = (
    DeploymentMode.OVERPROVISIONED,
    DeploymentMode.VANILLA,
    DeploymentMode.HOTMEM,
)


@dataclass(frozen=True)
class StrandingConfig:
    """Multi-VM packing scenario."""

    functions: Tuple[str, ...] = ("cnn", "bert", "bfs", "html")
    duration_s: int = 120
    keep_alive_s: int = 20
    recycle_interval_s: int = 5
    #: Burst window offset between consecutive VMs (staggered load).
    stagger_s: float = 10.0
    burst_len_s: float = 6.0
    base_rps: float = 1.0
    sample_period_s: int = 1
    seed: int = 0
    costs: CostModel = DEFAULT_COSTS


@dataclass
class StrandingResult:
    """Host-memory commitment per mode."""

    config: StrandingConfig
    #: mode value → [(t_ns, used_bytes)] samples of the host node.
    series: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)
    #: mode value → time-averaged committed GiB.
    avg_gib: Dict[str, float] = field(default_factory=dict)
    #: mode value → peak committed GiB.
    peak_gib: Dict[str, float] = field(default_factory=dict)
    #: mode value → committed GiB averaged over the final quiet quarter.
    tail_gib: Dict[str, float] = field(default_factory=dict)

    def savings_vs_overprovisioned(self, mode: str) -> float:
        """Fraction of host memory freed relative to static provisioning."""
        over = self.avg_gib[DeploymentMode.OVERPROVISIONED.value]
        return 1.0 - self.avg_gib[mode] / over

    def rows(self) -> List[List[object]]:
        out: List[List[object]] = []
        for mode in MODES:
            key = mode.value
            out.append(
                [
                    key,
                    self.avg_gib[key],
                    self.peak_gib[key],
                    self.tail_gib[key],
                    f"{self.savings_vs_overprovisioned(key):.0%}",
                ]
            )
        return out

    def render(self) -> str:
        return render_table(
            "M1: host memory committed by 4 trace-driven VMs (GiB)",
            ["mode", "avg_gib", "peak_gib", "tail_gib", "avg_savings"],
            self.rows(),
        )


def _run_mode(config: StrandingConfig, mode: DeploymentMode) -> List[Tuple[int, float]]:
    sim = Simulator()
    fleet = Fleet(sim)
    node = fleet.hosts[0].node(0)
    runtime = FaasRuntime(sim)
    generator = AzureTraceGenerator(config.seed)
    horizon_ns = config.duration_s * SEC

    for index, name in enumerate(config.functions):
        spec = get_function(name)
        instances = spec.max_instances_for(10)
        handle = fleet.provision(
            VmSpec.for_function(
                f"{name}-vm",
                mode,
                spec.memory_limit_bytes,
                concurrency=instances,
                shared_bytes=spec.shared_deps_bytes,
                costs=config.costs,
                seed=config.seed + index,
            )
        )
        agent = handle.deploy(
            [FunctionDeployment(spec, max_instances=instances)],
            KeepAlivePolicy(
                keep_alive_ns=config.keep_alive_s * SEC,
                recycle_interval_ns=config.recycle_interval_s * SEC,
            ),
        )
        runtime.register_agent(agent)
        burst_start = index * config.stagger_s
        trace = generator.bursty(
            name,
            duration_s=float(config.duration_s),
            burst_rps=instances * 2.0,
            base_rps=config.base_rps,
            bursts=((burst_start, burst_start + config.burst_len_s),),
        )
        runtime.drive(agent, trace)
        agent.start_recycler(until_ns=horizon_ns)

    sampler = PeriodicSampler(
        sim,
        lambda: node.used_bytes,
        period_ns=config.sample_period_s * SEC,
        name=f"host-used-{mode.value}",
    )
    sampler.start(until_ns=horizon_ns)
    runtime.run(until_ns=horizon_ns)
    return sampler.series.samples


def _cell(config: StrandingConfig, cell: Cell) -> List[Tuple[int, float]]:
    return _run_mode(config, DeploymentMode(cell["mode"]))


def _grid(config: StrandingConfig) -> SweepGrid:
    del config
    return SweepGrid("stranding").axis(
        "mode", tuple(m.value for m in MODES)
    )


def run(config: StrandingConfig = StrandingConfig()) -> StrandingResult:
    """Sample host memory commitment for all three deployment modes."""
    result = StrandingResult(config)
    for cell_result in run_sweep(_grid(config), _cell, config):
        samples = cell_result.payload
        values = [v for _, v in samples]
        key = cell_result["mode"]
        result.series[key] = samples
        result.avg_gib[key] = sum(values) / len(values) / GIB
        result.peak_gib[key] = max(values) / GIB
        tail = values[-max(1, len(values) // 4):]
        result.tail_gib[key] = sum(tail) / len(tail) / GIB
    return result


register_experiment(
    "stranding",
    "M1 host memory stranding (Figure 1 motivation)",
    config=StrandingConfig,
    run=run,
    paper_scale_config=False,
)
