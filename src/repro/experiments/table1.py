"""Table 1: the evaluation functions and their assigned resource limits."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.metrics.report import render_table
from repro.sweep import register_experiment
from repro.units import MIB
from repro.workloads.functions import TABLE1_FUNCTIONS

__all__ = ["rows", "render"]

_DESCRIPTIONS = {
    "cnn": "JPEG classification CNN",
    "bert": "BERT-based ML inference",
    "bfs": "Breadth-first search",
    "html": "HTML web service",
}


def rows() -> List[List[object]]:
    """The table's rows exactly as the paper lists them."""
    out: List[List[object]] = []
    for name in ("cnn", "bert", "bfs", "html"):
        spec = TABLE1_FUNCTIONS[name]
        out.append(
            [
                name.capitalize() if name != "html" else "HTML",
                _DESCRIPTIONS[name],
                spec.assigned_vcpus,
                spec.memory_limit_bytes // MIB,
            ]
        )
    return out


def render() -> str:
    """The table, paper-style."""
    return render_table(
        "Table 1: serverless functions and assigned resource limits",
        ["Function", "Description", "Assigned vCPUs", "Assigned Memory (MiB)"],
        rows(),
    )


def _render(paper_scale: bool, modes: Optional[Tuple[str, ...]]) -> str:
    del paper_scale, modes
    return render()


register_experiment("table1", "Function resource limits", render=_render)
