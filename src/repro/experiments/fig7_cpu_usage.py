"""Figure 7: cumulative CPU usage of the unplug vCPU during stepped shrink.

Paper setup: a VM with 16 GiB of hotplugged memory shrinks to 512 MiB in
32 steps of 512 MiB each.  Vanilla keeps the virtio-mem vCPU busy
migrating pages at every step (and takes much longer overall); HotMem
barely touches it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.experiments.microbench import MicrobenchRig, MicrobenchSetup
from repro.metrics.report import format_ratio, render_table
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sim.engine import Timeout
from repro.sweep import Cell, SweepGrid, register_experiment, run_sweep
from repro.units import GIB, MIB, MS, SEC
from repro.virtio.driver import VIRTIO_MEM_LABEL

__all__ = ["Fig7Config", "Fig7Result", "run"]


@dataclass(frozen=True)
class Fig7Config:
    """Stepped-shrink configuration (defaults scaled down for speed)."""

    total_bytes: int = 8 * GIB
    step_bytes: int = 512 * MIB
    steps: int = 15
    idle_gap_ns: int = 1 * SEC
    usage_fraction: float = 0.85
    costs: CostModel = DEFAULT_COSTS
    seed: int = 0

    @classmethod
    def paper_scale(cls) -> "Fig7Config":
        """16 GiB shrinking in 32 steps, as in the paper."""
        return cls(total_bytes=16 * GIB, steps=31)

    def __post_init__(self) -> None:
        if self.steps * self.step_bytes >= self.total_bytes:
            raise ValueError("steps would unplug more than the plugged total")


@dataclass
class Fig7Result:
    """Cumulative CPU samples and totals per mechanism."""

    config: Fig7Config
    #: mode → [(time_s, cumulative_virtio_cpu_s) after each step].
    cpu_series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    #: mode → total experiment duration (s).
    duration_s: Dict[str, float] = field(default_factory=dict)

    def total_cpu_s(self, mode: str) -> float:
        """Total unplug-path CPU seconds consumed in ``mode``."""
        series = self.cpu_series[mode]
        return series[-1][1] if series else 0.0

    def cpu_ratio(self) -> float:
        """Vanilla over HotMem total unplug CPU time."""
        hot = self.total_cpu_s("hotmem")
        return self.total_cpu_s("vanilla") / hot if hot else float("inf")

    def rows(self) -> List[List[object]]:
        out: List[List[object]] = []
        for step in range(len(self.cpu_series["vanilla"])):
            t_v, cpu_v = self.cpu_series["vanilla"][step]
            t_h, cpu_h = self.cpu_series["hotmem"][step]
            out.append([step + 1, t_v, cpu_v, t_h, cpu_h])
        return out

    def render(self) -> str:
        header = render_table(
            "Figure 7: cumulative virtio-mem vCPU time during stepped shrink",
            ["step", "vanilla_t_s", "vanilla_cpu_s", "hotmem_t_s", "hotmem_cpu_s"],
            self.rows(),
        )
        summary = (
            f"\ntotals: vanilla={self.total_cpu_s('vanilla'):.3f}s CPU over "
            f"{self.duration_s['vanilla']:.1f}s, "
            f"hotmem={self.total_cpu_s('hotmem'):.3f}s CPU over "
            f"{self.duration_s['hotmem']:.1f}s "
            f"(CPU ratio {format_ratio(self.total_cpu_s('vanilla'), self.total_cpu_s('hotmem'))})"
        )
        return header + summary


def _run_mode(config: Fig7Config, mode: str) -> Tuple[List[Tuple[float, float]], float]:
    rig = MicrobenchRig(
        MicrobenchSetup(
            mode=mode,
            total_bytes=config.total_bytes,
            partition_bytes=config.step_bytes,
            usage_fraction=config.usage_fraction,
            costs=config.costs,
            seed=config.seed,
        )
    )
    samples: List[Tuple[float, float]] = []

    def scenario():
        yield from rig.plug_all()
        hogs = yield from rig.start_memhogs()
        yield Timeout(200 * MS)
        start_ns = rig.sim.now
        cpu_base = rig.vm.irq_vcpu.busy_ns_for(VIRTIO_MEM_LABEL)
        for step in range(config.steps):
            # Free one step's worth of memory, then shrink by that much.
            yield from rig.stop_memhogs([hogs[-(step + 1)]])
            yield from rig.measure_reclaim(config.step_bytes)
            cpu = rig.vm.irq_vcpu.busy_ns_for(VIRTIO_MEM_LABEL) - cpu_base
            samples.append(((rig.sim.now - start_ns) / SEC, cpu / SEC))
            yield Timeout(config.idle_gap_ns)
        duration = (rig.sim.now - start_ns) / SEC
        yield from rig.stop_all()
        return duration

    duration_s = rig.sim.run_process(scenario(), name=f"fig7-{mode}")
    return samples, duration_s


def _cell(
    config: Fig7Config, cell: Cell
) -> Tuple[List[Tuple[float, float]], float]:
    return _run_mode(config, cell["mode"])


def _grid(config: Fig7Config) -> SweepGrid:
    del config
    return SweepGrid("fig7").axis("mode", ("vanilla", "hotmem"))


def run(config: Fig7Config = Fig7Config()) -> Fig7Result:
    """Run the Figure 7 stepped shrink for both mechanisms."""
    result = Fig7Result(config)
    for cell_result in run_sweep(_grid(config), _cell, config):
        series, duration = cell_result.payload
        result.cpu_series[cell_result["mode"]] = series
        result.duration_s[cell_result["mode"]] = duration
    return result


register_experiment(
    "fig7",
    "Cumulative unplug-vCPU time during stepped shrink",
    config=Fig7Config,
    run=run,
)
