"""A5: HotMem vs every elasticity interface (Sections 2.2 & 7).

One scenario, four mechanisms: a loaded guest frees a fixed amount of
memory and the hypervisor asks for it back via

* **hotmem** — partition-aware virtio-mem (the paper's contribution),
* **virtio-mem** — stock per-block hotplug with migrations (the paper's
  main comparison point),
* **balloon** — virtio-balloon inflation (page-granular, but can only
  take pages the allocator has free),
* **dimm** — ACPI whole-DIMM hotplug (1 GiB atomic units).

Reported per mechanism: reclaim latency, fraction of the request
actually reclaimed, pages migrated (and wasted on aborted DIMMs), and
balloon retries — reproducing the qualitative ranking the paper builds
its motivation on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.baselines.balloon import VirtioBalloon
from repro.baselines.dimm import DimmHotplug
from repro.baselines.fpr import FreePageReporting
from repro.experiments.microbench import MicrobenchRig, MicrobenchSetup
from repro.metrics.report import render_table
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sim.engine import Timeout
from repro.sweep import Cell, SweepGrid, register_experiment, run_sweep
from repro.units import GIB, MIB, MS, format_bytes

__all__ = ["BaselinesConfig", "BaselinesResult", "MechanismRow", "run"]

MECHANISMS = ("hotmem", "virtio-mem", "balloon", "dimm", "fpr")


@dataclass(frozen=True)
class BaselinesConfig:
    """Shared scenario parameters.

    ``total_bytes`` must be a whole number of DIMMs (1 GiB) and of
    ``partition_bytes`` slots; the reclaim request frees that many slots
    first, exactly as in the Figure 5 methodology.
    """

    total_bytes: int = 6 * GIB
    partition_bytes: int = 512 * MIB
    reclaim_bytes: int = 1536 * MIB
    #: Memory actually freed before the request (defaults to the request
    #: size).  Setting it lower creates the over-commit scenario in which
    #: ballooning stalls and the hotplug interfaces go partial.
    freed_bytes: int = -1
    usage_fraction: float = 0.85
    costs: CostModel = DEFAULT_COSTS
    seed: int = 0

    @property
    def effective_freed_bytes(self) -> int:
        return self.reclaim_bytes if self.freed_bytes < 0 else self.freed_bytes

    @classmethod
    def pressure(cls) -> "BaselinesConfig":
        """Ask for 3x what was freed, on a nearly-full guest.

        The unreliability scenario: ballooning stalls and retries once
        the allocator runs dry; DIMM hotplug wastes migrations on
        aborted units; HotMem returns instantly with exactly the freed
        partitions.
        """
        return cls(
            reclaim_bytes=1536 * MIB, freed_bytes=512 * MIB, usage_fraction=0.95
        )


@dataclass
class MechanismRow:
    """One mechanism's measured behaviour."""

    mechanism: str
    latency_ms: float
    reclaimed_bytes: int
    requested_bytes: int
    migrated_pages: int = 0
    wasted_migrated_pages: int = 0
    balloon_retries: int = 0

    @property
    def reclaimed_fraction(self) -> float:
        return self.reclaimed_bytes / self.requested_bytes


@dataclass
class BaselinesResult:
    """All mechanisms side by side."""

    config: BaselinesConfig
    by_mechanism: Dict[str, MechanismRow] = field(default_factory=dict)

    def rows(self) -> List[List[object]]:
        out: List[List[object]] = []
        for name in MECHANISMS:
            row = self.by_mechanism[name]
            out.append(
                [
                    name,
                    row.latency_ms,
                    format_bytes(row.reclaimed_bytes),
                    f"{row.reclaimed_fraction:.0%}",
                    row.migrated_pages,
                    row.wasted_migrated_pages,
                    row.balloon_retries,
                ]
            )
        return out

    def render(self) -> str:
        return render_table(
            f"A5: reclaiming {format_bytes(self.config.reclaim_bytes)} from a "
            f"loaded {format_bytes(self.config.total_bytes)} guest, by interface",
            [
                "mechanism",
                "latency_ms",
                "reclaimed",
                "fraction",
                "migrated",
                "wasted_migr",
                "retries",
            ],
            self.rows(),
        )

    def speedup_over(self, other: str) -> float:
        """HotMem latency advantage over another mechanism."""
        return (
            self.by_mechanism[other].latency_ms
            / self.by_mechanism["hotmem"].latency_ms
        )


def _rig(config: BaselinesConfig, mode: str) -> MicrobenchRig:
    return MicrobenchRig(
        MicrobenchSetup(
            mode=mode,
            total_bytes=config.total_bytes,
            partition_bytes=config.partition_bytes,
            usage_fraction=config.usage_fraction,
            costs=config.costs,
            seed=config.seed,
        )
    )


def _measure_hotplug(config: BaselinesConfig, mode: str) -> MechanismRow:
    rig = _rig(config, mode)
    measurement = rig.run_reclaim_after_freeing(
        config.effective_freed_bytes, config.reclaim_bytes
    )
    return MechanismRow(
        mechanism="hotmem" if mode == "hotmem" else "virtio-mem",
        latency_ms=measurement.latency_ms,
        reclaimed_bytes=measurement.reclaimed_bytes,
        requested_bytes=measurement.requested_bytes,
        migrated_pages=measurement.migrated_pages,
    )


def _measure_balloon(config: BaselinesConfig) -> MechanismRow:
    rig = _rig(config, "vanilla")
    vm = rig.vm
    balloon = VirtioBalloon(
        rig.sim,
        vm.manager,
        config.costs,
        irq_core=vm.irq_vcpu,
        vmm_core=vm.vmm_core,
        host_node=vm.node,
    )
    holders = config.effective_freed_bytes // config.partition_bytes

    def scenario():
        yield from rig.plug_all()
        hogs = yield from rig.start_memhogs()
        yield Timeout(200 * MS)
        yield from rig.stop_memhogs(hogs[-holders:])
        result = yield rig.sim.spawn(balloon.inflate(config.reclaim_bytes))
        yield from rig.stop_all()
        return result

    result = rig.sim.run_process(scenario(), name="balloon-reclaim")
    return MechanismRow(
        mechanism="balloon",
        latency_ms=result.latency_ns / MS,
        reclaimed_bytes=result.reclaimed_bytes,
        requested_bytes=config.reclaim_bytes,
        balloon_retries=result.retries,
    )


def _measure_dimm(config: BaselinesConfig) -> MechanismRow:
    rig = _rig(config, "vanilla")
    vm = rig.vm
    dimm = DimmHotplug(
        rig.sim,
        vm.manager,
        config.costs,
        irq_core=vm.irq_vcpu,
        vmm_core=vm.vmm_core,
        host_node=vm.node,
    )
    holders = config.effective_freed_bytes // config.partition_bytes

    def scenario():
        yield from rig.plug_all()
        hogs = yield from rig.start_memhogs()
        yield Timeout(200 * MS)
        yield from rig.stop_memhogs(hogs[-holders:])
        result = yield rig.sim.spawn(dimm.unplug(config.reclaim_bytes))
        yield from rig.stop_all()
        return result

    result = rig.sim.run_process(scenario(), name="dimm-reclaim")
    return MechanismRow(
        mechanism="dimm",
        latency_ms=result.latency_ns / MS,
        reclaimed_bytes=result.unplugged_bytes,
        requested_bytes=result.requested_dimms * result.dimm_bytes,
        migrated_pages=result.migrated_pages,
        wasted_migrated_pages=result.wasted_migrated_pages,
    )


def _measure_fpr(config: BaselinesConfig) -> MechanismRow:
    """Free page reporting: reclamation happens on the next tick.

    The measured latency runs from the moment the memory was freed until
    the reporting thread had handed at least the freed amount back to the
    host — the mechanism's lazy-but-automatic behaviour.
    """
    rig = _rig(config, "vanilla")
    vm = rig.vm
    fpr = FreePageReporting(
        rig.sim,
        vm.manager,
        config.costs,
        irq_core=vm.irq_vcpu,
        vmm_core=vm.vmm_core,
        host_node=vm.node,
    )
    holders = config.effective_freed_bytes // config.partition_bytes
    # What the release will actually free (the holders only faulted
    # usage_fraction of their slots); aim slightly below it so batching
    # and watermarks cannot leave the wait unsatisfiable.
    actually_freed = int(
        holders * config.partition_bytes * config.usage_fraction
    )
    freed_target = int(min(config.reclaim_bytes, actually_freed) * 0.9)

    def scenario():
        yield from rig.plug_all()
        hogs = yield from rig.start_memhogs()
        yield Timeout(200 * MS)
        fpr.start()
        # Let reporting reach steady state before the release.
        yield Timeout(3 * fpr.report_interval_ns)
        baseline = fpr.reported_bytes
        freed_at = rig.sim.now
        yield from rig.stop_memhogs(hogs[-holders:])
        for _ in range(50):
            if fpr.reported_bytes >= baseline + freed_target:
                break
            yield Timeout(fpr.report_interval_ns // 4)
        latency = rig.sim.now - freed_at
        reclaimed = fpr.reported_bytes - baseline
        fpr.stop()
        yield from rig.stop_all()
        return latency, reclaimed

    latency_ns, reclaimed = rig.sim.run_process(scenario(), name="fpr-reclaim")
    return MechanismRow(
        mechanism="fpr",
        latency_ms=latency_ns / MS,
        reclaimed_bytes=reclaimed,
        requested_bytes=config.reclaim_bytes,
    )


def _cell(config: BaselinesConfig, cell: Cell) -> MechanismRow:
    """Dispatch one mechanism's measurement in a fresh rig."""
    mechanism = cell["mechanism"]
    if mechanism == "hotmem":
        return _measure_hotplug(config, "hotmem")
    if mechanism == "virtio-mem":
        return _measure_hotplug(config, "vanilla")
    if mechanism == "balloon":
        return _measure_balloon(config)
    if mechanism == "dimm":
        return _measure_dimm(config)
    return _measure_fpr(config)


def _grid(config: BaselinesConfig) -> SweepGrid:
    del config
    return SweepGrid("baselines").axis("mechanism", MECHANISMS)


def run(config: BaselinesConfig = BaselinesConfig()) -> BaselinesResult:
    """Measure every mechanism on the shared scenario."""
    result = BaselinesResult(config)
    for cell_result in run_sweep(_grid(config), _cell, config):
        result.by_mechanism[cell_result["mechanism"]] = cell_result.payload
    return result


def _render_both(
    paper_scale: bool, modes: Optional[Tuple[str, ...]]
) -> str:
    del paper_scale, modes
    relaxed = run().render()
    pressure = run(BaselinesConfig.pressure()).render()
    return relaxed + "\n\nUnder pressure:\n" + pressure


register_experiment(
    "baselines",
    "A5 four-interface comparison (incl. balloon, DIMM)",
    render=_render_both,
)
