"""Figure 9: P99 invocation latency across the three configurations.

Paper result: HotMem and vanilla achieve comparable P99 to each other
*and* to statically over-provisioned VMs — elasticity does not penalize
tail latency.  Only Bert is slightly affected because its plug requests
(640 MiB) take ≈30 ms on the cold path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.experiments.serverless import (
    FunctionLoad,
    ServerlessScenario,
    run_scenario,
)
from repro.faas.policy import DeploymentMode
from repro.metrics.latency import p99_ms
from repro.metrics.report import render_table
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sweep import Cell, SweepGrid, register_experiment, run_sweep

__all__ = ["Fig9Config", "Fig9Result", "run", "MODES"]

MODES = (
    DeploymentMode.HOTMEM,
    DeploymentMode.VANILLA,
    DeploymentMode.OVERPROVISIONED,
)


@dataclass(frozen=True)
class Fig9Config:
    """Same trace replay as Figure 8, plus the over-provisioned baseline."""

    functions: Tuple[str, ...] = ("cnn", "bert", "bfs", "html")
    duration_s: int = 150
    keep_alive_s: int = 30
    recycle_interval_s: int = 10
    seed: int = 0
    costs: CostModel = DEFAULT_COSTS

    @classmethod
    def paper_scale(cls) -> "Fig9Config":
        return cls(duration_s=400, keep_alive_s=120, recycle_interval_s=15)


@dataclass
class Fig9Result:
    """P99 per function per configuration, plus plug-latency context."""

    config: Fig9Config
    #: function → mode value → P99 (ms).
    p99: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: function → mode value → mean plug latency (ms), 0 when not elastic.
    plug_ms: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: function → mode value → successful invocation count.
    invocations: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def elasticity_overhead(self, function: str, mode: str) -> float:
        """P99(mode) / P99(overprovisioned): ≈1 means elasticity is free."""
        return (
            self.p99[function][mode]
            / self.p99[function][DeploymentMode.OVERPROVISIONED.value]
        )

    def rows(self) -> List[List[object]]:
        out: List[List[object]] = []
        for fn in self.config.functions:
            out.append(
                [
                    fn,
                    self.p99[fn]["hotmem"],
                    self.p99[fn]["vanilla"],
                    self.p99[fn]["overprovisioned"],
                    self.plug_ms[fn]["hotmem"],
                    self.plug_ms[fn]["vanilla"],
                ]
            )
        return out

    def render(self) -> str:
        return render_table(
            "Figure 9: P99 invocation latency (ms) per configuration",
            [
                "function",
                "hotmem_p99",
                "vanilla_p99",
                "overprov_p99",
                "hotmem_plug_ms",
                "vanilla_plug_ms",
            ],
            self.rows(),
        )


def _cell(config: Fig9Config, cell: Cell) -> Tuple[float, float, int]:
    """One (function, mode) trace replay in a fresh scenario."""
    fn = cell["function"]
    scenario = ServerlessScenario(
        mode=DeploymentMode(cell["mode"]),
        loads=(FunctionLoad.for_function(fn),),
        duration_s=config.duration_s,
        keep_alive_s=config.keep_alive_s,
        recycle_interval_s=config.recycle_interval_s,
        seed=config.seed,
        costs=config.costs,
    )
    run_result = run_scenario(scenario)
    records = run_result.records_for(fn)
    plugs = run_result.plug_latencies_ms()
    return (
        p99_ms(records),
        sum(plugs) / len(plugs) if plugs else 0.0,
        len(records),
    )


def _grid(config: Fig9Config) -> SweepGrid:
    return (
        SweepGrid("fig9")
        .axis("function", config.functions)
        .axis("mode", tuple(m.value for m in MODES))
    )


def run(config: Fig9Config = Fig9Config()) -> Fig9Result:
    """Replay each function's trace under all three configurations."""
    result = Fig9Result(config)
    for cell_result in run_sweep(_grid(config), _cell, config):
        fn, mode = cell_result["function"], cell_result["mode"]
        p99, plug_ms, invocations = cell_result.payload
        result.p99.setdefault(fn, {})[mode] = p99
        result.plug_ms.setdefault(fn, {})[mode] = plug_ms
        result.invocations.setdefault(fn, {})[mode] = invocations
    return result


register_experiment(
    "fig9",
    "P99 latency across deployment modes",
    config=Fig9Config,
    run=run,
)
