"""Figure 6: reclaiming a fixed size as guest memory usage increases.

Paper result (2 GiB out of 64 GiB): vanilla unplug latency trends upward
with guest memory usage — more potentially-busy pages per memory block
mean more migrations — while HotMem stays flat and fast because its
reclamation is decoupled from free-page availability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.experiments.microbench import MicrobenchRig, MicrobenchSetup
from repro.metrics.report import render_table
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sweep import Cell, SweepGrid, register_experiment, run_sweep
from repro.units import GIB, format_bytes

__all__ = ["Fig6Config", "Fig6Result", "run"]


@dataclass(frozen=True)
class Fig6Config:
    """Usage-sweep configuration.

    ``usage_fractions`` is the footprint each resident memhog keeps in
    its slot; the one stopped before the unplug always fills its slot to
    the same fraction, so total guest usage scales with the sweep.
    """

    total_bytes: int = 16 * GIB
    reclaim_bytes: int = 2 * GIB
    partition_bytes: int = 2 * GIB
    usage_fractions: Tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9)
    costs: CostModel = DEFAULT_COSTS
    seed: int = 0

    @classmethod
    def paper_scale(cls) -> "Fig6Config":
        """64 GiB of plugged memory as in the paper."""
        return cls(
            total_bytes=64 * GIB,
            usage_fractions=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
        )


@dataclass
class Fig6Result:
    """Latency per usage point for both mechanisms."""

    config: Fig6Config
    #: usage fraction → mode → latency (ms).
    latency_ms: Dict[float, Dict[str, float]] = field(default_factory=dict)
    #: usage fraction → mode → migrated pages.
    migrated_pages: Dict[float, Dict[str, int]] = field(default_factory=dict)

    def vanilla_trend_ratio(self) -> float:
        """Vanilla latency at the highest usage over the lowest (>1 = rises)."""
        fractions = sorted(self.latency_ms)
        return (
            self.latency_ms[fractions[-1]]["vanilla"]
            / self.latency_ms[fractions[0]]["vanilla"]
        )

    def hotmem_spread_ratio(self) -> float:
        """Max/min HotMem latency across the sweep (≈1 = flat)."""
        values = [v["hotmem"] for v in self.latency_ms.values()]
        return max(values) / min(values)

    def rows(self) -> List[List[object]]:
        out: List[List[object]] = []
        for fraction in self.config.usage_fractions:
            out.append(
                [
                    f"{fraction:.0%}",
                    self.latency_ms[fraction]["vanilla"],
                    self.latency_ms[fraction]["hotmem"],
                    self.migrated_pages[fraction]["vanilla"],
                    self.migrated_pages[fraction]["hotmem"],
                ]
            )
        return out

    def render(self) -> str:
        title = (
            f"Figure 6: reclaim {format_bytes(self.config.reclaim_bytes)} out "
            f"of {format_bytes(self.config.total_bytes)} vs guest memory usage"
        )
        return render_table(
            title,
            ["usage", "vanilla_ms", "hotmem_ms", "vanilla_migrated", "hotmem_migrated"],
            self.rows(),
        )


def _cell(config: Fig6Config, cell: Cell) -> Tuple[float, int]:
    """One (usage fraction, mode) reclaim in a fresh rig."""
    rig = MicrobenchRig(
        MicrobenchSetup(
            mode=cell["mode"],
            total_bytes=config.total_bytes,
            partition_bytes=config.partition_bytes,
            usage_fraction=cell["fraction"],
            costs=config.costs,
            seed=config.seed,
        )
    )
    measurement = rig.run_single_reclaim(config.reclaim_bytes)
    return measurement.latency_ms, measurement.migrated_pages


def _grid(config: Fig6Config) -> SweepGrid:
    return (
        SweepGrid("fig6")
        .axis("fraction", config.usage_fractions)
        .axis("mode", ("vanilla", "hotmem"))
    )


def run(config: Fig6Config = Fig6Config()) -> Fig6Result:
    """Run the Figure 6 usage sweep."""
    result = Fig6Result(config)
    for cell_result in run_sweep(_grid(config), _cell, config):
        fraction, mode = cell_result["fraction"], cell_result["mode"]
        latency_ms, migrated = cell_result.payload
        result.latency_ms.setdefault(fraction, {})[mode] = latency_ms
        result.migrated_pages.setdefault(fraction, {})[mode] = migrated
    return result


register_experiment(
    "fig6",
    "Unplug latency vs guest memory usage",
    config=Fig6Config,
    run=run,
)
