"""Exception hierarchy shared by every layer of the simulator.

Datapath errors (:class:`HotplugError`, :class:`OfflineFailed`,
:class:`PartitionBusy`) carry structured context — which block, which
partition, after how many retries — so chaos reports and sanitizer diffs
can name the failing block instead of parsing prose out of a message.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = [
    "ReproError",
    "SimulationError",
    "GuestMemoryError",
    "MemoryError_",
    "OutOfMemory",
    "OfflineFailed",
    "HotplugError",
    "PartitionError",
    "NoFreePartition",
    "PartitionBusy",
    "FaasError",
    "SpawnFailed",
    "ClusterError",
    "AdmissionRejected",
    "ConfigError",
]


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly."""


class GuestMemoryError(ReproError):
    """Base class for guest memory-management failures."""


#: Historical alias kept for backward compatibility (the class predates
#: the ``GuestMemoryError`` name; the trailing underscore dodged the
#: builtin).  New code should catch/raise :class:`GuestMemoryError`.
MemoryError_ = GuestMemoryError


class _DatapathContext:
    """Mixin carrying structured context about a hotplug-datapath failure.

    All fields are optional keywords: raise sites fill in whatever they
    know (``block_index`` for block-level failures, ``partition_id`` for
    HotMem partition failures, ``retry_count`` once recovery machinery
    has attempted the operation more than once).
    """

    def __init__(
        self,
        message: str = "",
        *,
        block_index: Optional[int] = None,
        partition_id: Optional[int] = None,
        retry_count: Optional[int] = None,
    ):
        super().__init__(message)
        self.block_index = block_index
        self.partition_id = partition_id
        self.retry_count = retry_count

    @property
    def context(self) -> Dict[str, int]:
        """The populated context fields (for reports and fault logs)."""
        fields = (
            ("block_index", self.block_index),
            ("partition_id", self.partition_id),
            ("retry_count", self.retry_count),
        )
        return {name: value for name, value in fields if value is not None}


class OutOfMemory(GuestMemoryError):
    """An allocation could not be satisfied (guest OOM)."""


class OfflineFailed(_DatapathContext, GuestMemoryError):
    """A memory block could not be offlined (e.g. unmovable pages)."""


class HotplugError(_DatapathContext, GuestMemoryError):
    """A hot(un)plug request was malformed or could not be serviced."""


class PartitionError(ReproError):
    """Base class for HotMem partition failures."""


class NoFreePartition(PartitionError):
    """No populated, unassigned HotMem partition is available."""


class PartitionBusy(_DatapathContext, PartitionError):
    """The partition still has users and cannot be unplugged."""


class FaasError(ReproError):
    """The serverless runtime was driven into an invalid state."""


class SpawnFailed(FaasError):
    """A container could not be spawned (infrastructure failure or
    fail-fast in degraded static mode)."""

    def __init__(self, message: str = "", *, reason: str = "spawn-failed"):
        super().__init__(message)
        self.reason = reason


class ClusterError(ReproError):
    """The cluster layer (fleet, placement, routing) was misused."""


class AdmissionRejected(ClusterError):
    """Strict provisioning was refused by density arbitration.

    Raised only by :meth:`~repro.cluster.provision.Fleet.provision`;
    callers that prefer a value over an exception use
    :meth:`~repro.cluster.provision.Fleet.try_provision` and inspect the
    structured :class:`~repro.cluster.admission.AdmissionResult` carried
    here as :attr:`result`.
    """

    def __init__(self, message: str = "", *, result=None):
        super().__init__(message)
        self.result = result


class ConfigError(ReproError):
    """A configuration object is inconsistent."""
