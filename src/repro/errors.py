"""Exception hierarchy shared by every layer of the simulator."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "MemoryError_",
    "OutOfMemory",
    "OfflineFailed",
    "HotplugError",
    "PartitionError",
    "NoFreePartition",
    "PartitionBusy",
    "FaasError",
    "ConfigError",
]


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly."""


class MemoryError_(ReproError):
    """Base class for guest memory-management failures."""


class OutOfMemory(MemoryError_):
    """An allocation could not be satisfied (guest OOM)."""


class OfflineFailed(MemoryError_):
    """A memory block could not be offlined (e.g. unmovable pages)."""


class HotplugError(MemoryError_):
    """A hot(un)plug request was malformed or could not be serviced."""


class PartitionError(ReproError):
    """Base class for HotMem partition failures."""


class NoFreePartition(PartitionError):
    """No populated, unassigned HotMem partition is available."""


class PartitionBusy(PartitionError):
    """The partition still has users and cannot be unplugged."""


class FaasError(ReproError):
    """The serverless runtime was driven into an invalid state."""


class ConfigError(ReproError):
    """A configuration object is inconsistent."""
