"""Physical units used across the simulator.

Memory sizes are expressed in bytes, time in integer nanoseconds.  The
module also pins the two granularities that the whole paper revolves
around: the 4 KiB base page and the 128 MiB Linux memory block (the x86
hot(un)plug granularity, Section 2.2 of the paper).
"""

from __future__ import annotations

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "PAGE_SIZE",
    "MEMORY_BLOCK_SIZE",
    "PAGES_PER_BLOCK",
    "NS",
    "US",
    "MS",
    "SEC",
    "bytes_to_pages",
    "pages_to_bytes",
    "bytes_to_blocks",
    "blocks_to_bytes",
    "format_bytes",
    "format_ns",
]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Base page size managed by the guest OS (4 KiB, Section 2.2).
PAGE_SIZE = 4 * KIB

#: Linux adds and removes memory in 128 MiB blocks on x86 (Section 2.2).
MEMORY_BLOCK_SIZE = 128 * MIB

#: Number of 4 KiB pages per 128 MiB memory block (32768).
PAGES_PER_BLOCK = MEMORY_BLOCK_SIZE // PAGE_SIZE

NS = 1
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000


def bytes_to_pages(size: int) -> int:
    """Number of whole pages needed to hold ``size`` bytes (rounds up)."""
    return -(-size // PAGE_SIZE)


def pages_to_bytes(pages: int) -> int:
    """Byte size of ``pages`` base pages."""
    return pages * PAGE_SIZE


def bytes_to_blocks(size: int) -> int:
    """Number of whole memory blocks needed to hold ``size`` bytes."""
    return -(-size // MEMORY_BLOCK_SIZE)


def blocks_to_bytes(blocks: int) -> int:
    """Byte size of ``blocks`` memory blocks."""
    return blocks * MEMORY_BLOCK_SIZE


def format_bytes(size: int) -> str:
    """Render a byte count with a binary suffix (e.g. ``"384MiB"``)."""
    if size % GIB == 0:
        return f"{size // GIB}GiB"
    if size % MIB == 0:
        return f"{size // MIB}MiB"
    if size % KIB == 0:
        return f"{size // KIB}KiB"
    return f"{size}B"


def format_ns(duration: int) -> str:
    """Render a nanosecond duration at a readable magnitude."""
    if duration >= SEC:
        return f"{duration / SEC:.3f}s"
    if duration >= MS:
        return f"{duration / MS:.3f}ms"
    if duration >= US:
        return f"{duration / US:.3f}us"
    return f"{duration}ns"
