"""Metrics: latency statistics, time series, text reports."""

from repro.metrics.collector import FleetCollector, PeriodicSampler, TimeSeries
from repro.metrics.fragmentation import (
    FragmentationReport,
    fragmentation_report,
    migration_cost_to_reclaim,
    occupancy_histogram,
)
from repro.metrics.latency import (
    mean_ms,
    merged_percentile_ms,
    window_mean_factor,
    p50_ms,
    p99_ms,
    per_second_average_ms,
    percentile,
    spike_factor,
)
from repro.faults.recovery import (
    DEGRADED_PATHS,
    RECOVERED_PATHS,
    RecoveryEvent,
    RecoveryLog,
)
from repro.metrics.report import (
    format_ratio,
    render_fleet_latency,
    render_series,
    render_table,
)

__all__ = [
    "PeriodicSampler",
    "TimeSeries",
    "FleetCollector",
    "FragmentationReport",
    "fragmentation_report",
    "occupancy_histogram",
    "migration_cost_to_reclaim",
    "percentile",
    "p99_ms",
    "p50_ms",
    "mean_ms",
    "merged_percentile_ms",
    "per_second_average_ms",
    "spike_factor",
    "window_mean_factor",
    "render_table",
    "render_series",
    "render_fleet_latency",
    "format_ratio",
    "RecoveryEvent",
    "RecoveryLog",
    "RECOVERED_PATHS",
    "DEGRADED_PATHS",
]
