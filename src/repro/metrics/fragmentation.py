"""Fragmentation and interleaving metrics.

Quantifies the phenomenon of the paper's Figure 2: lazy allocation
scatters process footprints across memory blocks, so when a process
exits its freed pages are interleaved with live ones and almost no block
becomes *fully* free — the precondition for migration-free unplugging.

These metrics measure exactly that, for any set of online blocks:

* how many blocks are completely free (reclaimable with zero work),
* how many distinct owners share each occupied block,
* how many pages would have to migrate to reclaim a given amount.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.mm.block import MemoryBlock
from repro.mm.manager import GuestMemoryManager
from repro.units import MEMORY_BLOCK_SIZE, PAGES_PER_BLOCK

__all__ = [
    "FragmentationReport",
    "fragmentation_report",
    "occupancy_histogram",
    "migration_cost_to_reclaim",
]


@dataclass
class FragmentationReport:
    """Interleaving statistics over a set of online blocks."""

    total_blocks: int
    fully_free_blocks: int
    occupied_blocks: int
    #: Mean number of distinct owners per occupied block.
    mean_owners_per_block: float
    #: Largest owner count observed in a single block.
    max_owners_per_block: int
    #: Mean occupancy fraction of occupied blocks.
    mean_occupancy: float

    @property
    def free_block_fraction(self) -> float:
        """Fraction of blocks reclaimable with zero migrations."""
        if self.total_blocks == 0:
            return 0.0
        return self.fully_free_blocks / self.total_blocks

    @property
    def reclaimable_without_migration_bytes(self) -> int:
        """Memory removable right now without touching a single page."""
        return self.fully_free_blocks * MEMORY_BLOCK_SIZE


def fragmentation_report(blocks: Iterable[MemoryBlock]) -> FragmentationReport:
    """Compute a :class:`FragmentationReport` over ``blocks``."""
    blocks = list(blocks)
    fully_free = sum(1 for b in blocks if b.is_empty)
    occupied = [b for b in blocks if not b.is_empty]
    owners = [len(b.owner_pages) for b in occupied]
    occupancy = [b.occupied_pages / PAGES_PER_BLOCK for b in occupied]
    return FragmentationReport(
        total_blocks=len(blocks),
        fully_free_blocks=fully_free,
        occupied_blocks=len(occupied),
        mean_owners_per_block=(sum(owners) / len(owners)) if owners else 0.0,
        max_owners_per_block=max(owners, default=0),
        mean_occupancy=(sum(occupancy) / len(occupancy)) if occupancy else 0.0,
    )


def occupancy_histogram(
    blocks: Iterable[MemoryBlock], buckets: int = 10
) -> List[int]:
    """Block counts per occupancy decile (0-10 %, 10-20 %, ...)."""
    if buckets <= 0:
        raise ValueError("need at least one bucket")
    histogram = [0] * buckets
    for block in blocks:
        fraction = block.occupied_pages / PAGES_PER_BLOCK
        index = min(buckets - 1, int(fraction * buckets))
        histogram[index] += 1
    return histogram


def migration_cost_to_reclaim(
    manager: GuestMemoryManager, blocks_needed: int
) -> int:
    """Pages that must migrate to free the ``blocks_needed`` cheapest blocks.

    An idealized lower bound: picks the emptiest movable blocks first
    (real virtio-mem scans linearly, so it usually pays more).
    """
    candidates = sorted(
        (
            b
            for b in manager.zone_movable.blocks
            if not b.has_unmovable and not b.isolated
        ),
        key=lambda b: b.occupied_pages,
    )
    return sum(b.occupied_pages for b in candidates[:blocks_needed])
