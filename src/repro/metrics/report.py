"""Plain-text rendering of experiment results.

Every benchmark prints the rows/series the corresponding paper table or
figure reports; these helpers keep the formatting consistent.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "render_series", "format_ratio"]


def render_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Fixed-width text table with a title rule."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(
    title: str, series: Iterable[Sequence[object]], headers: Sequence[str]
) -> str:
    """A (possibly long) series as a compact table."""
    return render_table(title, headers, series)


def format_ratio(numerator: float, denominator: float) -> str:
    """``"12.3x"``-style speedup string (``"inf"``-safe)."""
    if denominator == 0:
        return "inf"
    return f"{numerator / denominator:.1f}x"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
