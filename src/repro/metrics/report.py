"""Plain-text rendering of experiment results.

Every benchmark prints the rows/series the corresponding paper table or
figure reports; these helpers keep the formatting consistent.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = [
    "render_table",
    "render_series",
    "render_fleet_latency",
    "format_ratio",
]


def render_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Fixed-width text table with a title rule."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(
    title: str, series: Iterable[Sequence[object]], headers: Sequence[str]
) -> str:
    """A (possibly long) series as a compact table."""
    return render_table(title, headers, series)


def render_fleet_latency(
    title: str, per_vm_records: Dict[str, Sequence[object]]
) -> str:
    """Per-VM latency rows plus a cross-VM merged rollup row.

    ``per_vm_records`` maps VM name → its invocation records.  The
    rollup's percentiles are computed over the *pooled* latencies (see
    :func:`repro.metrics.latency.merged_percentile_ms`), never by
    averaging per-VM percentiles.
    """
    from repro.metrics.latency import merged_percentile_ms

    rows: List[Sequence[object]] = []
    for name in sorted(per_vm_records):
        records = [r for r in per_vm_records[name] if r.ok]
        if not records:
            rows.append((name, 0, "-", "-"))
            continue
        rows.append(
            (
                name,
                len(records),
                merged_percentile_ms([records], 50),
                merged_percentile_ms([records], 99),
            )
        )
    pooled = [
        [r for r in records if r.ok] for records in per_vm_records.values()
    ]
    pooled = [group for group in pooled if group]
    if pooled:
        rows.append(
            (
                "fleet",
                sum(len(group) for group in pooled),
                merged_percentile_ms(pooled, 50),
                merged_percentile_ms(pooled, 99),
            )
        )
    return render_table(title, ("vm", "ok", "p50 ms", "p99 ms"), rows)


def format_ratio(numerator: float, denominator: float) -> str:
    """``"12.3x"``-style speedup string (``"inf"``-safe)."""
    if denominator == 0:
        return "inf"
    return f"{numerator / denominator:.1f}x"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
