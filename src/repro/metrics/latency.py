"""Latency statistics for invocation records.

The paper reports two views (Section 5.4): the P99 of successful
invocations (Figure 9) and the per-second average end-to-end latency
(Figure 10, which makes shrink-event spikes visible).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

from repro.faas.records import InvocationRecord
from repro.units import MS, SEC

__all__ = [
    "percentile",
    "p99_ms",
    "p50_ms",
    "mean_ms",
    "merged_percentile_ms",
    "per_second_average_ms",
    "spike_factor",
    "window_mean_factor",
]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of a non-empty sample."""
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile {q} out of range")
    ordered = sorted(values)
    if q == 0:
        return ordered[0]
    rank = math.ceil(q / 100 * len(ordered))
    return ordered[rank - 1]


def p99_ms(records: Iterable[InvocationRecord]) -> float:
    """99th-percentile end-to-end latency in milliseconds."""
    latencies = [r.latency_ns for r in records]
    return percentile(latencies, 99) / MS


def p50_ms(records: Iterable[InvocationRecord]) -> float:
    """Median end-to-end latency in milliseconds."""
    latencies = [r.latency_ns for r in records]
    return percentile(latencies, 50) / MS


def merged_percentile_ms(
    record_groups: Iterable[Iterable[InvocationRecord]], q: float
) -> float:
    """One percentile over records merged from several VMs.

    Fleet rollups must pool the raw latencies before ranking — averaging
    per-VM percentiles would understate the tail whenever load (and thus
    queueing) is uneven across VMs.
    """
    latencies = [r.latency_ns for group in record_groups for r in group]
    return percentile(latencies, q) / MS


def mean_ms(records: Iterable[InvocationRecord]) -> float:
    """Mean end-to-end latency in milliseconds."""
    latencies = [r.latency_ns for r in records]
    if not latencies:
        raise ValueError("mean of an empty sample")
    return sum(latencies) / len(latencies) / MS


def per_second_average_ms(
    records: Iterable[InvocationRecord],
    duration_s: int,
) -> List[Tuple[int, float]]:
    """Per-second average latency, bucketed by arrival second.

    Returns ``(second, avg_latency_ms)`` for every second in
    ``[0, duration_s)``; seconds with no arrivals carry ``nan`` so that
    plots and spike detection skip them.
    """
    sums = [0.0] * duration_s
    counts = [0] * duration_s
    for record in records:
        second = record.arrival_ns // SEC
        if 0 <= second < duration_s:
            sums[second] += record.latency_ns / MS
            counts[second] += 1
    series: List[Tuple[int, float]] = []
    for second in range(duration_s):
        if counts[second]:
            series.append((second, sums[second] / counts[second]))
        else:
            series.append((second, math.nan))
    return series


def window_mean_factor(
    series: Sequence[Tuple[int, float]],
    window: Tuple[int, int],
) -> float:
    """Mean-in-window over median-outside-window ratio.

    A noise-robust companion to :func:`spike_factor`: sustained
    interference raises the whole window, not just one second.
    """
    inside = [
        v for s, v in series if window[0] <= s < window[1] and not math.isnan(v)
    ]
    outside = sorted(
        v
        for s, v in series
        if not window[0] <= s < window[1] and not math.isnan(v)
    )
    if not inside or not outside:
        return 1.0
    median_outside = outside[len(outside) // 2]
    if median_outside == 0:
        return 1.0
    return (sum(inside) / len(inside)) / median_outside


def spike_factor(
    series: Sequence[Tuple[int, float]],
    window: Tuple[int, int],
) -> float:
    """Peak-in-window over median-outside-window ratio.

    Used to quantify Figure 10's shrink-event spikes: a value above ~2
    means the per-second latency more than doubled during the window
    (the paper reports a >100 % increase for vanilla).
    """
    inside = [
        v for s, v in series if window[0] <= s < window[1] and not math.isnan(v)
    ]
    outside = sorted(
        v
        for s, v in series
        if not window[0] <= s < window[1] and not math.isnan(v)
    )
    if not inside or not outside:
        return 1.0
    median_outside = outside[len(outside) // 2]
    if median_outside == 0:
        return 1.0
    return max(inside) / median_outside
