"""Generic time-series collection for experiment instrumentation."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.sim.engine import Process, Simulator, Timeout
from repro.units import SEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.provision import Fleet

__all__ = ["TimeSeries", "PeriodicSampler", "FleetCollector"]


class TimeSeries:
    """An append-only ``(time_ns, value)`` series."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: List[Tuple[int, float]] = []

    def record(self, time_ns: int, value: float) -> None:
        """Append one sample (times must be non-decreasing)."""
        if self.samples and time_ns < self.samples[-1][0]:
            raise ValueError(
                f"{self.name}: sample at {time_ns} before {self.samples[-1][0]}"
            )
        self.samples.append((time_ns, value))

    def __len__(self) -> int:
        return len(self.samples)

    def values(self) -> List[float]:
        """Just the sampled values, in time order."""
        return [v for _, v in self.samples]

    def times_s(self) -> List[float]:
        """Sample times in seconds."""
        return [t / SEC for t, _ in self.samples]

    def last(self) -> Tuple[int, float]:
        """The most recent sample."""
        if not self.samples:
            raise ValueError(f"{self.name}: empty series")
        return self.samples[-1]

    def max_value(self) -> float:
        """Largest sampled value."""
        if not self.samples:
            raise ValueError(f"{self.name}: empty series")
        return max(v for _, v in self.samples)

    def delta(self) -> float:
        """Last value minus first value (useful for cumulative series)."""
        if not self.samples:
            return 0.0
        return self.samples[-1][1] - self.samples[0][1]

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of the sampled values (0 <= q <= 100)."""
        if not self.samples:
            raise ValueError(f"{self.name}: empty series")
        # Imported here: repro.metrics.latency sits alongside but pulls
        # in nothing extra; keeps this module dependency-free at import.
        from repro.metrics.latency import percentile

        return percentile(self.values(), q)


class PeriodicSampler:
    """Samples a callable into a :class:`TimeSeries` on a fixed period."""

    def __init__(
        self,
        sim: Simulator,
        probe: Callable[[], float],
        period_ns: int,
        name: str = "sampler",
    ):
        if period_ns <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.probe = probe
        self.period_ns = period_ns
        self.series = TimeSeries(name)
        self._stop = False
        self._process: Optional[Process] = None

    def start(self, until_ns: Optional[int] = None) -> Process:
        """Start sampling (one sample immediately, then every period)."""
        self._process = self.sim.spawn(self._loop(until_ns), name=self.series.name)
        return self._process

    def stop(self) -> None:
        """Stop after the current period elapses."""
        self._stop = True

    def _loop(self, until_ns: Optional[int]):
        while not self._stop:
            if until_ns is not None and self.sim.now > until_ns:
                break
            self.series.record(self.sim.now, float(self.probe()))
            yield Timeout(self.period_ns)
        return self.series


class FleetCollector:
    """Aligned per-node memory timelines for a whole fleet.

    One sampling loop records, for every NUMA node of every host, both
    the *used* bytes (what VMs actually back right now) and the
    *committed* bytes (what admission has promised) at the same instants
    — so per-host rollups are plain pointwise sums, with no
    interpolation between misaligned series.
    """

    def __init__(self, sim: Simulator, fleet: "Fleet", period_ns: int):
        if period_ns <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.fleet = fleet
        self.period_ns = period_ns
        #: (host_index, node_id) → used-bytes series.
        self.used: Dict[Tuple[int, int], TimeSeries] = {}
        #: (host_index, node_id) → committed-bytes series.
        self.committed: Dict[Tuple[int, int], TimeSeries] = {}
        for host_index, host in enumerate(fleet.hosts):
            for node in host.nodes:
                key = (host_index, node.node_id)
                self.used[key] = TimeSeries(f"used-h{host_index}n{node.node_id}")
                self.committed[key] = TimeSeries(
                    f"committed-h{host_index}n{node.node_id}"
                )
        self._stop = False
        self._process: Optional[Process] = None

    def start(self, until_ns: Optional[int] = None) -> Process:
        """Start sampling (one sample immediately, then every period)."""
        self._process = self.sim.spawn(self._loop(until_ns), name="fleet-collector")
        return self._process

    def stop(self) -> None:
        """Stop after the current period elapses."""
        self._stop = True

    def _loop(self, until_ns: Optional[int]):
        while not self._stop:
            if until_ns is not None and self.sim.now > until_ns:
                break
            now = self.sim.now
            for host_index, host in enumerate(self.fleet.hosts):
                for node in host.nodes:
                    key = (host_index, node.node_id)
                    self.used[key].record(now, float(node.used_bytes))
                    self.committed[key].record(
                        now,
                        float(
                            self.fleet.arbiter.committed_bytes(
                                host_index, node.node_id
                            )
                        ),
                    )
            yield Timeout(self.period_ns)
        return None

    # -- rollups -------------------------------------------------------
    def _host_sum(
        self, table: Dict[Tuple[int, int], TimeSeries], host_index: int
    ) -> TimeSeries:
        parts = [
            series
            for (h, _), series in table.items()
            if h == host_index
        ]
        if not parts:
            raise ValueError(f"no series for host {host_index}")
        lengths = {len(p) for p in parts}
        if len(lengths) > 1:
            detail = ", ".join(f"{p.name}={len(p)}" for p in parts)
            raise ValueError(
                f"host {host_index}: misaligned per-node series — a "
                f"pointwise sum needs equal lengths, got {detail}"
            )
        rolled = TimeSeries(f"{parts[0].name.split('-')[0]}-h{host_index}")
        for i, (time_ns, _) in enumerate(parts[0].samples):
            rolled.record(time_ns, sum(p.samples[i][1] for p in parts))
        return rolled

    def host_used_series(self, host_index: int) -> TimeSeries:
        """Pointwise-summed used bytes across one host's nodes."""
        return self._host_sum(self.used, host_index)

    def host_committed_series(self, host_index: int) -> TimeSeries:
        """Pointwise-summed committed bytes across one host's nodes."""
        return self._host_sum(self.committed, host_index)

    def peak_used_bytes(self, host_index: int) -> float:
        """Peak of the host's summed used-bytes timeline."""
        return self.host_used_series(host_index).max_value()
