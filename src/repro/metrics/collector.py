"""Generic time-series collection for experiment instrumentation.

Two storage models live here:

- :class:`TimeSeries` — the exact append-only ``(time_ns, value)`` log.
  Memory grows with samples, so it is reserved for short-horizon rigs
  and the fleet collector's explicit *exact mode*; the
  ``no-unbounded-series`` lint rule flags any new use inside simulator
  loops under ``cluster/``/``metrics/``.
- :class:`~repro.obs.rollup.RollupSeries` — the bounded-memory rollup
  the fleet collector records into by default (``bounded=True``):
  per-bucket aggregates with deterministic compaction, O(buckets)
  resident no matter the horizon.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.obs.rollup import RollupSeries
from repro.obs.session import context_for
from repro.sim.engine import Process, Simulator, Timeout
from repro.units import SEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.provision import Fleet

__all__ = ["TimeSeries", "PeriodicSampler", "FleetCollector"]


class TimeSeries:
    """An append-only ``(time_ns, value)`` series (exact, unbounded).

    ``kind`` names the measured quantity (``used``, ``committed``, ...)
    so rollup consumers never have to parse display names.
    """

    def __init__(self, name: str = "", kind: str = ""):
        self.name = name
        self.kind = kind
        self.samples: List[Tuple[int, float]] = []

    def record(self, time_ns: int, value: float) -> None:
        """Append one sample (times must be non-decreasing, values finite)."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(
                f"{self.name}: non-finite sample {value!r} at {time_ns}"
            )
        if self.samples and time_ns < self.samples[-1][0]:
            raise ValueError(
                f"{self.name}: sample at {time_ns} before {self.samples[-1][0]}"
            )
        self.samples.append((time_ns, value))

    def __len__(self) -> int:
        return len(self.samples)

    def values(self) -> List[float]:
        """Just the sampled values, in time order."""
        return [v for _, v in self.samples]

    def times_s(self) -> List[float]:
        """Sample times in seconds."""
        return [t / SEC for t, _ in self.samples]

    def last(self) -> Tuple[int, float]:
        """The most recent sample."""
        if not self.samples:
            raise ValueError(f"{self.name}: empty series")
        return self.samples[-1]

    def max_value(self) -> float:
        """Largest sampled value."""
        if not self.samples:
            raise ValueError(f"{self.name}: empty series")
        return max(v for _, v in self.samples)

    def delta(self) -> float:
        """Last value minus first value (useful for cumulative series)."""
        if not self.samples:
            return 0.0
        return self.samples[-1][1] - self.samples[0][1]

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of the sampled values (0 <= q <= 100)."""
        if not self.samples:
            raise ValueError(f"{self.name}: empty series")
        # Imported here: repro.metrics.latency sits alongside but pulls
        # in nothing extra; keeps this module dependency-free at import.
        from repro.metrics.latency import percentile

        return percentile(self.values(), q)


class PeriodicSampler:
    """Samples a callable into a :class:`TimeSeries` on a fixed period.

    Exact by design: small rigs want every sample back.  Long-horizon
    collection belongs to :class:`FleetCollector` in bounded mode.
    """

    def __init__(
        self,
        sim: Simulator,
        probe: Callable[[], float],
        period_ns: int,
        name: str = "sampler",
    ):
        if period_ns <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.probe = probe
        self.period_ns = period_ns
        self.series = TimeSeries(name)  # lint: allow[no-unbounded-series] exact-mode rig sampler, horizon-bounded
        self._stop = False
        self._process: Optional[Process] = None

    def start(self, until_ns: Optional[int] = None) -> Process:
        """Start sampling (one sample immediately, then every period)."""
        self._process = self.sim.spawn(self._loop(until_ns), name=self.series.name)
        return self._process

    def stop(self) -> None:
        """Stop after the current period elapses."""
        self._stop = True

    def _loop(self, until_ns: Optional[int]):
        while not self._stop:
            if until_ns is not None and self.sim.now > until_ns:
                break
            self.series.record(self.sim.now, float(self.probe()))  # lint: allow[no-unbounded-series] exact-mode rig sampler, horizon-bounded
            yield Timeout(self.period_ns)
        return self.series


class FleetCollector:
    """Aligned per-node memory timelines for a whole fleet.

    One sampling loop records, for every NUMA node of every host, both
    the *used* bytes (what VMs actually back right now) and the
    *committed* bytes (what admission has promised) at the same
    instants.

    In the default **bounded** mode every series is a
    :class:`~repro.obs.rollup.RollupSeries` capped at ``max_buckets``
    resident buckets, and per-host sums are recorded *at sample time*
    (in the same host→node iteration order an exact pointwise sum
    uses, so ``peak_used_bytes`` is bit-identical to exact mode) —
    resident memory is O(hosts × nodes × buckets), independent of the
    simulated horizon.  All bounded series register with the
    simulator's obs context, so ``--trace`` exports them as ``rollup``
    rows for ``obs-report``.

    ``bounded=False`` keeps the historical exact :class:`TimeSeries`
    log with lazily pointwise-summed host rollups — the golden-test
    mode, and the equivalence oracle for the bounded path.
    """

    def __init__(
        self,
        sim: Simulator,
        fleet: "Fleet",
        period_ns: int,
        bounded: bool = True,
        max_buckets: int = 256,
        labels: Optional[Dict[str, object]] = None,
    ):
        if period_ns <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.fleet = fleet
        self.period_ns = period_ns
        self.bounded = bounded
        self.max_buckets = max_buckets
        self.labels: Dict[str, object] = dict(labels or {})
        #: (host_index, node_id) → used-bytes series.
        self.used: Dict[Tuple[int, int], object] = {}
        #: (host_index, node_id) → committed-bytes series.
        self.committed: Dict[Tuple[int, int], object] = {}
        #: host_index → directly-recorded host-sum series (bounded mode).
        self._host_used: Dict[int, RollupSeries] = {}
        self._host_committed: Dict[int, RollupSeries] = {}
        obs = context_for(sim)
        for host_index, host in enumerate(fleet.hosts):
            for node in host.nodes:
                key = (host_index, node.node_id)
                if bounded:
                    self.used[key] = self._rollup(
                        "used", host_index, node.node_id
                    )
                    self.committed[key] = self._rollup(
                        "committed", host_index, node.node_id
                    )
                    obs.register_rollup(self.used[key])
                    obs.register_rollup(self.committed[key])
                else:
                    self.used[key] = TimeSeries(  # lint: allow[no-unbounded-series] exact mode keeps the full sample log
                        f"used-h{host_index}n{node.node_id}", kind="used"
                    )
                    self.committed[key] = TimeSeries(  # lint: allow[no-unbounded-series] exact mode keeps the full sample log
                        f"committed-h{host_index}n{node.node_id}",
                        kind="committed",
                    )
            if bounded:
                self._host_used[host_index] = self._rollup(
                    "used", host_index, None
                )
                self._host_committed[host_index] = self._rollup(
                    "committed", host_index, None
                )
                obs.register_rollup(self._host_used[host_index])
                obs.register_rollup(self._host_committed[host_index])
        self._stop = False
        self._process: Optional[Process] = None

    def _rollup(
        self, kind: str, host_index: int, node_id: Optional[int]
    ) -> RollupSeries:
        suffix = f"h{host_index}" if node_id is None else f"h{host_index}n{node_id}"
        labels: Dict[str, object] = dict(self.labels)
        labels["host"] = host_index
        if node_id is not None:
            labels["node"] = node_id
        return RollupSeries(
            f"{kind}-{suffix}",
            kind=kind,
            max_buckets=self.max_buckets,
            labels=labels,
        )

    def start(self, until_ns: Optional[int] = None) -> Process:
        """Start sampling (one sample immediately, then every period)."""
        self._process = self.sim.spawn(self._loop(until_ns), name="fleet-collector")
        return self._process

    def stop(self) -> None:
        """Stop after the current period elapses."""
        self._stop = True

    def _loop(self, until_ns: Optional[int]):
        while not self._stop:
            if until_ns is not None and self.sim.now > until_ns:
                break
            self._sample(self.sim.now)
            yield Timeout(self.period_ns)
        return None

    def _sample(self, now: int) -> None:
        """Record one aligned snapshot of every node (and host sums)."""
        for host_index, host in enumerate(self.fleet.hosts):
            used_total = 0.0
            committed_total = 0.0
            for node in host.nodes:
                key = (host_index, node.node_id)
                used = float(node.used_bytes)
                committed = float(
                    self.fleet.arbiter.committed_bytes(
                        host_index, node.node_id
                    )
                )
                self.used[key].record(now, used)  # type: ignore[attr-defined]
                self.committed[key].record(now, committed)  # type: ignore[attr-defined]
                # Summed in node order: identical float accumulation to
                # exact mode's pointwise sum, so peaks agree bit-for-bit.
                used_total += used
                committed_total += committed
            if self.bounded:
                self._host_used[host_index].record(now, used_total)
                self._host_committed[host_index].record(now, committed_total)

    # -- rollups -------------------------------------------------------
    def _host_sum(
        self, table: Dict[Tuple[int, int], object], host_index: int
    ) -> TimeSeries:
        parts: List[TimeSeries] = [
            series  # type: ignore[misc]
            for (h, _), series in table.items()
            if h == host_index
        ]
        if not parts:
            raise ValueError(f"no series for host {host_index}")
        lengths = {len(p) for p in parts}
        if len(lengths) > 1:
            detail = ", ".join(f"{p.name}={len(p)}" for p in parts)
            raise ValueError(
                f"host {host_index}: misaligned per-node series — a "
                f"pointwise sum needs equal lengths, got {detail}"
            )
        rolled = TimeSeries(  # lint: allow[no-unbounded-series] exact-mode rollup, derived once per query
            f"{parts[0].kind}-h{host_index}", kind=parts[0].kind
        )
        for i, (time_ns, _) in enumerate(parts[0].samples):
            rolled.record(time_ns, sum(p.samples[i][1] for p in parts))
        return rolled

    def host_used_series(self, host_index: int):
        """Summed used bytes across one host's nodes.

        Bounded mode returns the directly-recorded
        :class:`~repro.obs.rollup.RollupSeries`; exact mode computes
        the pointwise :class:`TimeSeries` sum on demand.
        """
        if self.bounded:
            if host_index not in self._host_used:
                raise ValueError(f"no series for host {host_index}")
            return self._host_used[host_index]
        return self._host_sum(self.used, host_index)

    def host_committed_series(self, host_index: int):
        """Summed committed bytes across one host's nodes."""
        if self.bounded:
            if host_index not in self._host_committed:
                raise ValueError(f"no series for host {host_index}")
            return self._host_committed[host_index]
        return self._host_sum(self.committed, host_index)

    def peak_used_bytes(self, host_index: int) -> float:
        """Peak of the host's summed used-bytes timeline."""
        return self.host_used_series(host_index).max_value()

    def bucket_count(self) -> int:
        """Total resident rollup buckets (bounded mode memory bound)."""
        if not self.bounded:
            raise ValueError("bucket_count is a bounded-mode invariant")
        series: List[RollupSeries] = [
            s for s in self.used.values() if isinstance(s, RollupSeries)
        ]
        series += [
            s for s in self.committed.values() if isinstance(s, RollupSeries)
        ]
        series += list(self._host_used.values())
        series += list(self._host_committed.values())
        return sum(s.bucket_count() for s in series)
