"""Generic time-series collection for experiment instrumentation."""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.sim.engine import Process, Simulator, Timeout
from repro.units import SEC

__all__ = ["TimeSeries", "PeriodicSampler"]


class TimeSeries:
    """An append-only ``(time_ns, value)`` series."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: List[Tuple[int, float]] = []

    def record(self, time_ns: int, value: float) -> None:
        """Append one sample (times must be non-decreasing)."""
        if self.samples and time_ns < self.samples[-1][0]:
            raise ValueError(
                f"{self.name}: sample at {time_ns} before {self.samples[-1][0]}"
            )
        self.samples.append((time_ns, value))

    def __len__(self) -> int:
        return len(self.samples)

    def values(self) -> List[float]:
        """Just the sampled values, in time order."""
        return [v for _, v in self.samples]

    def times_s(self) -> List[float]:
        """Sample times in seconds."""
        return [t / SEC for t, _ in self.samples]

    def last(self) -> Tuple[int, float]:
        """The most recent sample."""
        if not self.samples:
            raise ValueError(f"{self.name}: empty series")
        return self.samples[-1]

    def max_value(self) -> float:
        """Largest sampled value."""
        if not self.samples:
            raise ValueError(f"{self.name}: empty series")
        return max(v for _, v in self.samples)

    def delta(self) -> float:
        """Last value minus first value (useful for cumulative series)."""
        if not self.samples:
            return 0.0
        return self.samples[-1][1] - self.samples[0][1]


class PeriodicSampler:
    """Samples a callable into a :class:`TimeSeries` on a fixed period."""

    def __init__(
        self,
        sim: Simulator,
        probe: Callable[[], float],
        period_ns: int,
        name: str = "sampler",
    ):
        if period_ns <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.probe = probe
        self.period_ns = period_ns
        self.series = TimeSeries(name)
        self._stop = False
        self._process: Optional[Process] = None

    def start(self, until_ns: Optional[int] = None) -> Process:
        """Start sampling (one sample immediately, then every period)."""
        self._process = self.sim.spawn(self._loop(until_ns), name=self.series.name)
        return self._process

    def stop(self) -> None:
        """Stop after the current period elapses."""
        self._stop = True

    def _loop(self, until_ns: Optional[int]):
        while not self._stop:
            if until_ns is not None and self.sim.now > until_ns:
                break
            self.series.record(self.sim.now, float(self.probe()))
            yield Timeout(self.period_ns)
        return self.series
