"""HotMem partitions.

Each partition is a kernel zone (following ``ZONE_MOVABLE``, Section 4)
that holds the entire footprint of at most one function instance.  A
partition's life cycle::

    EMPTY ──plug──▶ POPULATED ──attach──▶ ASSIGNED
      ▲                │  ▲                  │
      └────unplug──────┘  └──users drop to 0─┘

``EMPTY`` partitions have no backing memory (created at boot, *N* of
them); a plug event populates a partition; the HotMem syscall assigns a
populated partition to a process; when its ``partition_users`` refcount
drops to zero the partition is instantly reusable — or reclaimable with
zero migrations, because nothing else ever allocated from it.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro.errors import PartitionBusy, PartitionError
from repro.mm.zone import Zone, ZoneType
from repro.mm.placement import SequentialPlacement
from repro.units import MEMORY_BLOCK_SIZE, format_bytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mm.mm_struct import MmStruct

__all__ = ["PartitionState", "HotMemPartition"]


class PartitionState(enum.Enum):
    """Where a partition is in its populate/assign cycle."""

    #: No backing memory (all blocks unplugged).
    EMPTY = "empty"
    #: Fully backed by plugged memory, not assigned to any instance.
    POPULATED = "populated"
    #: Backed and serving a function instance's allocations.
    ASSIGNED = "assigned"


class HotMemPartition:
    """One HotMem partition: a zone plus assignment/refcount state."""

    def __init__(self, partition_id: int, size_blocks: int, shared: bool = False):
        if size_blocks <= 0:
            raise PartitionError(f"partition needs at least one block: {size_blocks}")
        self.partition_id = partition_id
        self.size_blocks = size_blocks
        self.shared = shared
        name = f"HotMem{'Shared' if shared else ''}#{partition_id}"
        # Partitions use sequential placement: an instance's pages fill the
        # partition's own blocks; interleaving is impossible by design.
        self.zone = Zone(name, ZoneType.HOTMEM, SequentialPlacement())
        #: Reference count of memory descriptors linked to this partition
        #: (the paper's ``partition_users``).
        self.partition_users = 0
        #: The instance (leader process) currently assigned, if any.
        self.assigned_to: Optional["MmStruct"] = None
        #: Withdrawn from service because a backing block repeatedly
        #: failed to offline (see ``docs/faults.md``).  A quarantined
        #: partition is never assigned, recycled, or repopulated.
        self.quarantined = False

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------
    @property
    def populated_blocks(self) -> int:
        """Blocks currently backing this partition."""
        return len(self.zone.blocks)

    @property
    def is_fully_populated(self) -> bool:
        """Whether the partition has all its backing memory."""
        return self.populated_blocks == self.size_blocks

    @property
    def missing_blocks(self) -> int:
        """Blocks still needed to fully populate the partition."""
        return self.size_blocks - self.populated_blocks

    @property
    def size_bytes(self) -> int:
        """Configured partition size in bytes."""
        return self.size_blocks * MEMORY_BLOCK_SIZE

    @property
    def state(self) -> PartitionState:
        """Current :class:`PartitionState` (derived, never stored)."""
        if self.partition_users > 0:
            return PartitionState.ASSIGNED
        if self.populated_blocks > 0:
            return PartitionState.POPULATED
        return PartitionState.EMPTY

    @property
    def is_reclaimable(self) -> bool:
        """Backed, unassigned, and holding no live data — unplug is free.

        The shared partition is never reclaimable while the VM lives: the
        page cache keeps dependencies warm for future instances.
        """
        return (
            not self.shared
            and not self.quarantined
            and self.partition_users == 0
            and self.populated_blocks > 0
            and self.zone.is_empty
        )

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------
    def quarantine(self) -> None:
        """Withdraw the partition from service (idempotent).

        Only an unassigned partition can be quarantined: the driver
        quarantines blocks on the unplug path, and HotMem only unplugs
        partitions whose refcount already dropped to zero.
        """
        if self.partition_users > 0:
            raise PartitionBusy(
                f"partition {self.partition_id} has "
                f"{self.partition_users} users, cannot quarantine",
                partition_id=self.partition_id,
            )
        self.quarantined = True

    def release_quarantine(self) -> None:
        """Return the partition to service."""
        self.quarantined = False

    # ------------------------------------------------------------------
    # Assignment / refcounting (the paper's ``partition_users``)
    # ------------------------------------------------------------------
    def assign(self, mm: "MmStruct") -> None:
        """Reserve the partition for ``mm`` (the HotMem syscall, Section 4)."""
        if self.shared:
            raise PartitionError("the shared partition cannot be assigned")
        if self.quarantined:
            raise PartitionError(
                f"partition {self.partition_id} is quarantined, cannot assign"
            )
        if self.state is not PartitionState.POPULATED:
            raise PartitionError(
                f"partition {self.partition_id} is {self.state.value}, "
                f"cannot assign"
            )
        if not self.is_fully_populated:
            raise PartitionError(
                f"partition {self.partition_id} only has "
                f"{self.populated_blocks}/{self.size_blocks} blocks"
            )
        self.assigned_to = mm
        self.partition_users = 1
        mm.hotmem_partition = self

    def add_user(self, mm: "MmStruct") -> None:
        """Link a forked child to its parent's partition (Section 4)."""
        if self.partition_users == 0:
            raise PartitionError(
                f"partition {self.partition_id} has no users to fork from"
            )
        self.partition_users += 1
        mm.hotmem_partition = self

    def drop_user(self, mm: "MmStruct") -> bool:
        """Unlink an exiting memory descriptor; True when count hits zero."""
        if self.partition_users <= 0:
            raise PartitionError(f"partition {self.partition_id} has no users")
        if mm.hotmem_partition is not self:
            raise PartitionError(
                f"{mm.owner_id} is not linked to partition {self.partition_id}"
            )
        if self.partition_users == 1 and not self.zone.is_empty:
            raise PartitionBusy(
                f"partition {self.partition_id} would be released with "
                f"{self.zone.occupied_pages} occupied pages; free the "
                f"address space before dropping the last user",
                partition_id=self.partition_id,
            )
        mm.hotmem_partition = None
        self.partition_users -= 1
        if self.partition_users == 0:
            self.assigned_to = None
            return True
        return False

    def __repr__(self) -> str:
        return (
            f"<HotMemPartition {self.partition_id} {self.state.value} "
            f"{format_bytes(self.size_bytes)} users={self.partition_users} "
            f"populated={self.populated_blocks}/{self.size_blocks}>"
        )
