"""The HotMem virtio-mem backend: partition-aware hot(un)plug.

Implements the paper's two driver-side changes (Section 4):

* **plug**: freshly plugged blocks populate HotMem partitions (lowest
  incomplete partition first) instead of ``ZONE_MOVABLE``, and onlining
  skips page zeroing because the host hands over zeroed memory;
* **unplug**: the driver tracks free partitions via their reference
  counters and immediately offlines their blocks — which are guaranteed
  empty — without scanning, migrating, or zeroing anything.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.manager import HotMemManager
from repro.core.partition import HotMemPartition
from repro.errors import HotplugError, OfflineFailed
from repro.mm.block import MemoryBlock
from repro.mm.zone import Zone
from repro.virtio.backend import HotplugBackend, UnplugPlanEntry

__all__ = ["HotMemBackend"]


class HotMemBackend(HotplugBackend):
    """Partition-aware policy plugged into the shared virtio-mem driver."""

    name = "hotmem"

    def __init__(self, hotmem: HotMemManager):
        self.hotmem = hotmem
        #: Blocks currently backing each partition (zone membership is the
        #: source of truth; this maps a block back to its partition).
        self._block_partition: Dict[int, HotMemPartition] = {}

    # ------------------------------------------------------------------
    # Plug: populate partitions, skip zeroing
    # ------------------------------------------------------------------
    def zones_for_plug(self, n_blocks: int) -> List[Tuple[Zone, int]]:
        placement: List[Tuple[Zone, int]] = []
        remaining = n_blocks
        for partition in self.hotmem.partitions_needing_population():
            if remaining == 0:
                break
            take = min(partition.missing_blocks, remaining)
            placement.append((partition.zone, take))
            remaining -= take
        if remaining > 0:
            raise HotplugError(
                f"plug of {n_blocks} blocks exceeds empty partition capacity "
                f"by {remaining} blocks (concurrency limit reached)"
            )
        return placement

    def plug_zero_pages_per_block(self) -> int:
        # HotMem skips zeroing on the plug path regardless of the zeroing
        # mode: the host always hands over zeroed pages (Section 4).
        return 0

    def on_block_plugged(self, block: MemoryBlock) -> None:
        partition = self._partition_for_zone(block.zone)
        self._block_partition[block.index] = partition
        self.hotmem.on_block_plugged(partition)

    # ------------------------------------------------------------------
    # Unplug: empty partitions only, zero migrations
    # ------------------------------------------------------------------
    def plan_unplug(self, n_blocks: int) -> List[UnplugPlanEntry]:
        plan: List[UnplugPlanEntry] = []
        for partition in self.hotmem.reclaimable_partitions():
            for block in sorted(partition.zone.blocks, key=lambda b: b.index):
                if len(plan) == n_blocks:
                    return plan
                # The driver knows free partitions by refcount; there is no
                # scanning (scanned_blocks=0 → no scan cost).
                plan.append(UnplugPlanEntry(block, scanned_blocks=0))
        return plan

    def migrate_for_unplug(self, block: MemoryBlock) -> int:
        if block.occupied_pages:
            partition = self._block_partition.get(block.index)
            raise OfflineFailed(
                f"HotMem invariant violated: block {block.index} of a free "
                f"partition holds {block.occupied_pages} occupied pages",
                block_index=block.index,
                partition_id=(
                    partition.partition_id if partition is not None else None
                ),
            )
        return 0

    def unplug_zero_pages(self, migrated_pages: int) -> int:
        # Nothing is migrated and the host re-zeroes reclaimed memory, so
        # the offline path never zeroes (Section 4).
        return 0

    def on_block_unplugged(self, block: MemoryBlock) -> None:
        self._block_partition.pop(block.index, None)

    def on_block_quarantined(self, block: MemoryBlock) -> None:
        # A poisoned block poisons its whole partition: the partition can
        # never again be fully unplugged, so the recycler must stop
        # proposing it and the attach path must stop assigning it.
        partition = self._block_partition.get(block.index)
        if partition is not None and not partition.quarantined:
            partition.quarantine()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _partition_for_zone(self, zone: Zone) -> HotMemPartition:
        for partition in self.hotmem.partitions:
            if partition.zone is zone:
                return partition
        shared = self.hotmem.shared_partition
        if shared is not None and shared.zone is zone:
            return shared
        raise HotplugError(f"zone {zone.name} is not a HotMem partition")

    def partition_of_block(self, block_index: int) -> HotMemPartition:
        """The partition a plugged block belongs to (diagnostics)."""
        return self._block_partition[block_index]
