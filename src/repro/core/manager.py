"""The HotMem manager: partition table, syscall interface, waitqueue.

This is the guest-kernel extension the paper contributes (Section 4):

* at boot it creates *N* empty private partition zones plus the shared
  partition and registers them with the memory manager (they are excluded
  from the generic allocation path because :meth:`GuestMemoryManager.zonelist`
  never returns ``HOTMEM`` zones);
* the syscall interface assigns populated partitions to processes, parks
  requesters on a waitqueue when none is free, and wakes them on plug or
  release events;
* fork/clone links children to the parent's partition and bumps
  ``partition_users``;
* process exit decrements the refcount and, at zero, makes the partition
  instantly reusable or reclaimable.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.core.config import HotMemBootParams
from repro.core.partition import HotMemPartition, PartitionState
from repro.errors import NoFreePartition, PartitionError
from repro.mm.fault import FaultHandler
from repro.mm.manager import GuestMemoryManager
from repro.mm.mm_struct import MmStruct
from repro.obs.context import NO_SCOPE, ObsScope
from repro.sim.engine import Event, Simulator

__all__ = ["HotMemManager"]


class HotMemManager:
    """Guest-side HotMem state for one VM."""

    def __init__(
        self,
        sim: Simulator,
        manager: GuestMemoryManager,
        params: HotMemBootParams,
        obs: Optional[ObsScope] = None,
    ):
        self.sim = sim
        self.manager = manager
        self.params = params
        #: Tracing scope: partition assign/recycle decisions emit instant
        #: events here (inert :data:`NO_SCOPE` unless ``--trace`` is on).
        self.obs = obs if obs is not None else NO_SCOPE
        #: Private partitions, id 0..N-1 (the boot-time partition table).
        self.partitions: List[HotMemPartition] = [
            HotMemPartition(i, params.partition_blocks)
            for i in range(params.concurrency)
        ]
        #: The shared partition backing file mappings (id N).
        self.shared_partition: Optional[HotMemPartition] = None
        if params.shared_blocks > 0:
            self.shared_partition = HotMemPartition(
                params.concurrency, params.shared_blocks, shared=True
            )
        for partition in self._all_partitions():
            manager.register_zone(partition.zone)
        #: Let consistency checks (manager.check_consistency, the
        #: memory-state sanitizer) see partition state: the HotMem rules
        #: in repro.analysis.invariants need the partition table.
        manager._hotmem_context = self
        #: Processes parked in ``hotmem_attach`` until a partition frees up.
        self._waitqueue: Deque[Event] = deque()

    def _all_partitions(self) -> List[HotMemPartition]:
        parts = list(self.partitions)
        if self.shared_partition is not None:
            parts.append(self.shared_partition)
        return parts

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def populated_unassigned(self) -> List[HotMemPartition]:
        """Partitions ready for immediate assignment."""
        return [
            p
            for p in self.partitions
            if p.state is PartitionState.POPULATED
            and p.is_fully_populated
            and not p.quarantined
        ]

    def reclaimable_partitions(self) -> List[HotMemPartition]:
        """Partitions whose memory can be unplugged with zero migrations."""
        return [p for p in self.partitions if p.is_reclaimable]

    def partitions_needing_population(self) -> List[HotMemPartition]:
        """Private partitions missing backing blocks, lowest id first."""
        return [
            p for p in self.partitions if p.missing_blocks > 0 and not p.quarantined
        ]

    @property
    def waitqueue_depth(self) -> int:
        """Processes currently blocked in ``hotmem_attach``."""
        return len(self._waitqueue)

    # ------------------------------------------------------------------
    # The HotMem syscall interface (Section 4)
    # ------------------------------------------------------------------
    def try_attach(self, mm: MmStruct) -> HotMemPartition:
        """Non-blocking attach: assign the first free populated partition.

        Raises :class:`NoFreePartition` when none is available; the caller
        either propagates the error or parks on the waitqueue via
        :meth:`attach`.
        """
        if mm.hotmem_partition is not None:
            raise PartitionError(f"{mm.owner_id} already has a partition")
        free = self.populated_unassigned()
        if not free:
            raise NoFreePartition(
                f"no free HotMem partition for {mm.owner_id} "
                f"(concurrency={self.params.concurrency})"
            )
        partition = free[0]
        partition.assign(mm)
        self.obs.event(
            "partition.assign", partition=partition.partition_id, owner=mm.owner_id
        )
        self.obs.inc("partition_assigns_total")
        return partition

    def attach(self, mm: MmStruct):
        """Process generator: blocking attach (parks on the waitqueue).

        Mirrors the kernel interface: requesters sleep until either a plug
        populates a partition or a terminating instance releases one.
        Returns the assigned partition.
        """
        while True:
            try:
                return self.try_attach(mm)
            except NoFreePartition:
                gate = self.sim.event()
                self._waitqueue.append(gate)
                yield gate

    def fork(self, parent: MmStruct, child: MmStruct) -> None:
        """clone(): co-locate the child on the parent's partition."""
        partition = parent.hotmem_partition
        if partition is None:
            raise PartitionError(f"{parent.owner_id} is not a HotMem process")
        partition.add_user(child)

    def process_exit(self, fault_handler: FaultHandler, mm: MmStruct):
        """Tear down a HotMem process: free its pages, drop the refcount.

        When the count reaches zero the partition becomes instantly
        reusable (or reclaimable) and the waitqueue is kicked.  Returns
        the teardown :class:`~repro.mm.fault.FaultCharge` so the caller
        can charge the exiting process's vCPU.
        """
        partition = mm.hotmem_partition
        if partition is None:
            raise PartitionError(f"{mm.owner_id} is not a HotMem process")
        charge = fault_handler.release_address_space(mm)
        released = partition.drop_user(mm)
        if released:
            self.obs.event(
                "partition.recycle",
                partition=partition.partition_id,
                owner=mm.owner_id,
            )
            self.obs.inc("partition_recycles_total")
            self._kick_waitqueue()
        return charge

    def _kick_waitqueue(self) -> None:
        """Wake one waiter per available partition."""
        available = len(self.populated_unassigned())
        while available > 0 and self._waitqueue:
            self._waitqueue.popleft().trigger(None)
            available -= 1

    # ------------------------------------------------------------------
    # Plug/unplug integration (called by the HotMem virtio backend)
    # ------------------------------------------------------------------
    def on_block_plugged(self, partition: HotMemPartition) -> None:
        """A block landed in ``partition``; wake waiters if it completed."""
        if partition.is_fully_populated and not partition.shared:
            self._kick_waitqueue()

    def file_mapping_zones(self) -> List:
        """Zonelist for file-backed faults (shared partition, then boot).

        Falling back to ``ZONE_NORMAL`` keeps an undersized shared
        partition from hard-failing file faults; the fallback pages remain
        movable boot memory and never pollute private partitions.
        """
        zones: List = []
        if self.shared_partition is not None:
            zones.append(self.shared_partition.zone)
        zones.append(self.manager.zone_normal)
        return zones
