"""HotMem boot parameters.

A serverless runtime creating a HotMem VM declares three things at guest
boot (Section 4.1): the private partition size (the function's user-set
memory limit), the shared partition size (the function's runtime and
language dependencies), and the concurrency factor *N* (the maximum
number of instances the VM will ever host concurrently).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import MEMORY_BLOCK_SIZE, bytes_to_blocks, format_bytes

__all__ = ["HotMemBootParams"]


@dataclass(frozen=True)
class HotMemBootParams:
    """Boot-time configuration of a HotMem guest.

    Attributes
    ----------
    partition_bytes:
        Size of each private partition.  Must be a whole number of 128 MiB
        memory blocks (use :meth:`for_function` to round a raw limit up).
    concurrency:
        Number of private partitions created at boot (*N*).  Only *N*
        instances can run concurrently; the memory behind the partitions
        is **not** pre-allocated (unlike an over-provisioned VM).
    shared_bytes:
        Size of the shared partition backing file mappings; populated at
        boot.  Must be a whole number of blocks.
    """

    partition_bytes: int
    concurrency: int
    shared_bytes: int

    def __post_init__(self) -> None:
        if self.partition_bytes <= 0 or self.partition_bytes % MEMORY_BLOCK_SIZE:
            raise ConfigError(
                f"partition size must be a positive multiple of 128MiB, got "
                f"{format_bytes(self.partition_bytes)}"
            )
        if self.concurrency <= 0:
            raise ConfigError(f"concurrency must be positive, got {self.concurrency}")
        if self.shared_bytes < 0 or self.shared_bytes % MEMORY_BLOCK_SIZE:
            raise ConfigError(
                f"shared partition size must be a non-negative multiple of "
                f"128MiB, got {format_bytes(self.shared_bytes)}"
            )

    @classmethod
    def for_function(
        cls, memory_limit_bytes: int, concurrency: int, shared_bytes: int
    ) -> "HotMemBootParams":
        """Round a raw function memory limit up to whole memory blocks."""
        blocks = bytes_to_blocks(memory_limit_bytes)
        shared_blocks = bytes_to_blocks(shared_bytes)
        return cls(
            partition_bytes=blocks * MEMORY_BLOCK_SIZE,
            concurrency=concurrency,
            shared_bytes=shared_blocks * MEMORY_BLOCK_SIZE,
        )

    @property
    def partition_blocks(self) -> int:
        """Blocks per private partition."""
        return self.partition_bytes // MEMORY_BLOCK_SIZE

    @property
    def shared_blocks(self) -> int:
        """Blocks in the shared partition."""
        return self.shared_bytes // MEMORY_BLOCK_SIZE

    @property
    def max_hotplug_bytes(self) -> int:
        """Device-region size needed for all partitions fully populated."""
        return self.concurrency * self.partition_bytes + self.shared_bytes
