"""HotMem — the paper's core contribution.

Per-instance guest memory partitions (``ZONE_HotMem``), the syscall
interface that assigns them to function instances, refcounting across
fork/exit, and the partition-aware virtio-mem backend that reclaims the
memory of terminated instances with zero migrations (Sections 3-4).
"""

from repro.core.backend import HotMemBackend
from repro.core.config import HotMemBootParams
from repro.core.manager import HotMemManager
from repro.core.partition import HotMemPartition, PartitionState

__all__ = [
    "HotMemBackend",
    "HotMemBootParams",
    "HotMemManager",
    "HotMemPartition",
    "PartitionState",
]
