"""Hypervisor-side tracing of resize requests.

Stand-in for the Cloud Hypervisor tracing framework the paper instruments
(Section 5.4).  Every plug and unplug request is timestamped from receipt
to completion; the metrics layer derives unplug latency (Figures 5/6) and
reclamation throughput (Figure 8) from these events.

Zero-completed unplugs (every block quarantined, a deferred sub-DIMM
request, a balloon with nothing to inflate) are recorded like any other
request: their latency charges the busy-time denominator of
:meth:`HypervisorTracer.reclaim_throughput_mib_per_sec` while adding no
reclaimed bytes — time spent failing to reclaim is still time the unplug
machinery was busy.

With ``--trace`` installed the tracer doubles as a span consumer
(:meth:`HypervisorTracer.consume_span`): the device closes a
``device.plug``/``device.unplug`` span instead of calling ``record_*``
directly, and the consumer rebuilds the identical :class:`ResizeEvent`
from the span — same timestamps, same byte counts, same order — so the
legacy event API stays intact for every downstream metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.span import Span

__all__ = ["ResizeEvent", "HypervisorTracer"]

#: Span names the tracer consumes (see ``docs/observability.md``).
_RESIZE_SPANS = ("device.plug", "device.unplug")


@dataclass
class ResizeEvent:
    """One completed resize request as the hypervisor saw it."""

    kind: str  # "plug" | "unplug"
    start_ns: int
    end_ns: int
    requested_bytes: int
    completed_bytes: int
    migrated_pages: int = 0
    #: Which VM and deployment mode issued the request (set by the
    #: fleet at provision time; "" for hand-built tracers).
    vm_name: str = ""
    mode: str = ""

    @property
    def latency_ns(self) -> int:
        return self.end_ns - self.start_ns


class HypervisorTracer:
    """Accumulates :class:`ResizeEvent` records for one VM."""

    def __init__(self, vm_name: str = "", mode: str = "") -> None:
        self.events: List[ResizeEvent] = []
        self.vm_name = vm_name
        self.mode = mode

    def record_plug(
        self, start_ns: int, end_ns: int, requested: int, completed: int
    ) -> None:
        """Record a completed plug request."""
        self.events.append(
            ResizeEvent(
                "plug",
                start_ns,
                end_ns,
                requested,
                completed,
                vm_name=self.vm_name,
                mode=self.mode,
            )
        )

    def record_unplug(
        self,
        start_ns: int,
        end_ns: int,
        requested: int,
        completed: int,
        migrated_pages: int,
    ) -> None:
        """Record a completed unplug request (``completed`` may be 0)."""
        self.events.append(
            ResizeEvent(
                "unplug",
                start_ns,
                end_ns,
                requested,
                completed,
                migrated_pages,
                vm_name=self.vm_name,
                mode=self.mode,
            )
        )

    # ------------------------------------------------------------------
    # Span consumption (the --trace feed)
    # ------------------------------------------------------------------
    def consume_span(self, span: "Span") -> None:
        """Rebuild a :class:`ResizeEvent` from a closed resize span.

        Registered on the fleet tracer when tracing is enabled; spans
        from other VMs (the tracer is per-fleet) are filtered by the
        ``vm`` attribute.  The produced events are byte-identical to
        what direct ``record_*`` calls would have appended.
        """
        if span.name not in _RESIZE_SPANS:
            return
        if self.vm_name and span.attrs.get("vm") != self.vm_name:
            return
        requested = int(span.attrs.get("requested_bytes", 0))  # type: ignore[arg-type]
        completed = int(span.attrs.get("completed_bytes", 0))  # type: ignore[arg-type]
        end_ns = span.end_ns if span.end_ns is not None else span.start_ns
        if span.name == "device.plug":
            self.record_plug(span.start_ns, end_ns, requested, completed)
        else:
            migrated = int(span.attrs.get("migrated_pages", 0))  # type: ignore[arg-type]
            self.record_unplug(
                span.start_ns, end_ns, requested, completed, migrated
            )

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def plug_events(self) -> List[ResizeEvent]:
        """All plug events, oldest first."""
        return [e for e in self.events if e.kind == "plug"]

    def unplug_events(self) -> List[ResizeEvent]:
        """All unplug events, oldest first (zero-completed included)."""
        return [e for e in self.events if e.kind == "unplug"]

    def total_unplugged_bytes(self) -> int:
        """Memory reclaimed across all unplug events."""
        return sum(e.completed_bytes for e in self.unplug_events())

    def total_unplug_busy_ns(self) -> int:
        """Wall time spent inside unplug requests (sum of latencies).

        Zero-completed unplugs count: a request that found every block
        quarantined still occupied the unplug machinery for its full
        latency, and dropping it would overstate throughput.
        """
        return sum(e.latency_ns for e in self.unplug_events())

    def reclaim_throughput_mib_per_sec(self) -> float:
        """Reclamation throughput over the busy unplug time (Figure 8).

        MiB reclaimed divided by the time the unplug machinery was busy
        reclaiming — the rate at which shrinking events release memory.
        """
        busy_ns = self.total_unplug_busy_ns()
        if busy_ns == 0:
            return 0.0
        mib = self.total_unplugged_bytes() / (1024 * 1024)
        return mib / (busy_ns / 1e9)
