"""Hypervisor-side tracing of resize requests.

Stand-in for the Cloud Hypervisor tracing framework the paper instruments
(Section 5.4).  Every plug and unplug request is timestamped from receipt
to completion; the metrics layer derives unplug latency (Figures 5/6) and
reclamation throughput (Figure 8) from these events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["ResizeEvent", "HypervisorTracer"]


@dataclass
class ResizeEvent:
    """One completed resize request as the hypervisor saw it."""

    kind: str  # "plug" | "unplug"
    start_ns: int
    end_ns: int
    requested_bytes: int
    completed_bytes: int
    migrated_pages: int = 0

    @property
    def latency_ns(self) -> int:
        return self.end_ns - self.start_ns


class HypervisorTracer:
    """Accumulates :class:`ResizeEvent` records for one VM."""

    def __init__(self) -> None:
        self.events: List[ResizeEvent] = []

    def record_plug(
        self, start_ns: int, end_ns: int, requested: int, completed: int
    ) -> None:
        """Record a completed plug request."""
        self.events.append(
            ResizeEvent("plug", start_ns, end_ns, requested, completed)
        )

    def record_unplug(
        self,
        start_ns: int,
        end_ns: int,
        requested: int,
        completed: int,
        migrated_pages: int,
    ) -> None:
        """Record a completed unplug request."""
        self.events.append(
            ResizeEvent("unplug", start_ns, end_ns, requested, completed, migrated_pages)
        )

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def plug_events(self) -> List[ResizeEvent]:
        """All plug events, oldest first."""
        return [e for e in self.events if e.kind == "plug"]

    def unplug_events(self) -> List[ResizeEvent]:
        """All unplug events, oldest first."""
        return [e for e in self.events if e.kind == "unplug"]

    def total_unplugged_bytes(self) -> int:
        """Memory reclaimed across all unplug events."""
        return sum(e.completed_bytes for e in self.unplug_events())

    def total_unplug_busy_ns(self) -> int:
        """Wall time spent inside unplug requests (sum of latencies)."""
        return sum(e.latency_ns for e in self.unplug_events())

    def reclaim_throughput_mib_per_sec(self) -> float:
        """Reclamation throughput over the busy unplug time (Figure 8).

        MiB reclaimed divided by the time the unplug machinery was busy
        reclaiming — the rate at which shrinking events release memory.
        """
        busy_ns = self.total_unplug_busy_ns()
        if busy_ns == 0:
            return 0.0
        mib = self.total_unplugged_bytes() / (1024 * 1024)
        return mib / (busy_ns / 1e9)
