"""VM configuration.

Mirrors the paper's methodology (Section 5.1): the initial (boot) memory
is sized so it can hold the ``struct page`` metadata for the maximum
hotpluggable size (``initial = max * page_struct_size / page_size``) plus
kernel working space, and the maximum hotplug memory is tied to workload
requirements and maximum concurrency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.units import (
    MEMORY_BLOCK_SIZE,
    MIB,
    bytes_to_blocks,
    format_bytes,
)

__all__ = ["VmConfig", "default_boot_memory_bytes"]


def default_boot_memory_bytes(hotplug_region_bytes: int) -> int:
    """Boot memory sized per the paper's formula plus kernel headroom.

    ``struct page`` metadata is 64 B per 4 KiB page → 1/64 of the maximum
    hotplug size, plus 384 MiB of kernel text/slab/movable-fallback space,
    rounded up to whole 128 MiB blocks (minimum 512 MiB).
    """
    memmap_bytes = hotplug_region_bytes // 64
    raw = memmap_bytes + 384 * MIB
    blocks = max(bytes_to_blocks(raw), bytes_to_blocks(512 * MIB))
    return blocks * MEMORY_BLOCK_SIZE


@dataclass(frozen=True)
class VmConfig:
    """Static configuration of one microVM.

    Attributes
    ----------
    name:
        VM label used in core names and reports.
    hotplug_region_bytes:
        Size of the virtio-mem device region (maximum hotpluggable).
    vcpus:
        Number of vCPUs (the paper uses 10, pinned to one NUMA node).
    boot_memory_bytes:
        Initial memory; ``None`` applies :func:`default_boot_memory_bytes`.
    placement:
        Guest allocator placement policy (``scatter``/``sequential``/``random``).
    virtio_irq_vcpu:
        Index of the vCPU that services virtio-mem interrupts
        (Section 5.4 pins it explicitly).
    node_id:
        NUMA node the VM is pinned to (CPUs and memory).
    """

    name: str
    hotplug_region_bytes: int
    vcpus: int = 10
    boot_memory_bytes: Optional[int] = None
    placement: str = "scatter"
    virtio_irq_vcpu: int = 0
    node_id: int = 0
    #: Enable the batched-unplug optimization (the paper's Section 6.1.1
    #: future work): contiguous block runs are offlined in one operation.
    batch_unplug: bool = False

    def __post_init__(self) -> None:
        if self.vcpus <= 0:
            raise ConfigError(f"vcpus must be positive, got {self.vcpus}")
        if self.hotplug_region_bytes < 0 or (
            self.hotplug_region_bytes % MEMORY_BLOCK_SIZE
        ):
            raise ConfigError(
                f"hotplug region must be a non-negative multiple of 128MiB, "
                f"got {format_bytes(self.hotplug_region_bytes)}"
            )
        if not 0 <= self.virtio_irq_vcpu < self.vcpus:
            raise ConfigError(
                f"virtio_irq_vcpu {self.virtio_irq_vcpu} out of range "
                f"(vcpus={self.vcpus})"
            )

    @property
    def effective_boot_memory_bytes(self) -> int:
        """Boot memory after applying the default-sizing formula."""
        if self.boot_memory_bytes is not None:
            return self.boot_memory_bytes
        return default_boot_memory_bytes(self.hotplug_region_bytes)
