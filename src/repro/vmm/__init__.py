"""The hypervisor layer: microVMs, boot configuration, request tracing.

A Cloud-Hypervisor-shaped VMM model (Section 5.2): each VM gets pinned
vCPU threads, a virtio-mem device with its own VMM thread, and
hypervisor-side tracing of every resize request — the measurement point
for unplug latency in the paper.
"""

from repro.vmm.config import VmConfig, default_boot_memory_bytes
from repro.vmm.tracing import HypervisorTracer, ResizeEvent
from repro.vmm.vm import VirtualMachine

__all__ = [
    "VmConfig",
    "default_boot_memory_bytes",
    "HypervisorTracer",
    "ResizeEvent",
    "VirtualMachine",
]
