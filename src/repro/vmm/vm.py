"""The microVM: guest kernel + vCPUs + virtio-mem wiring.

A :class:`VirtualMachine` assembles the whole guest/host stack for one
VM: the guest memory manager, page cache, fault handler and OOM killer;
the virtio-mem driver bound to the vCPU that serves its interrupts; the
VMM-side device with its own pinned thread; and, for HotMem VMs, the
partition manager and partition-aware backend with the shared partition
populated at boot (Section 4.1's "VM creation").
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.backend import HotMemBackend
from repro.core.config import HotMemBootParams
from repro.core.manager import HotMemManager
from repro.errors import ConfigError
from repro.faults.injector import NO_FAULTS, FaultInjector
from repro.faults.policy import NO_RETRY, RetryPolicy
from repro.host.machine import HostAccount, HostMachine
from repro.faults.recovery import RecoveryLog
from repro.mm.fault import FaultHandler
from repro.mm.manager import GuestMemoryManager
from repro.mm.mm_struct import MmStruct
from repro.mm.oom import OomKiller
from repro.mm.pagecache import PageCache
from repro.modes.base import ReclaimDatapath
from repro.modes.datapaths import VirtioMemDatapath
from repro.obs.context import NO_SCOPE, ObsScope
from repro.obs.span import NULL_SPAN, SpanLike
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sim.cpu import CpuCore
from repro.sim.engine import Process, Simulator
from repro.sim.rng import make_rng
from repro.virtio.backend import VanillaBackend
from repro.virtio.device import VirtioMemDevice
from repro.virtio.driver import VirtioMemDriver
from repro.vmm.config import VmConfig
from repro.vmm.tracing import HypervisorTracer

__all__ = ["VirtualMachine"]


class VirtualMachine:
    """One microVM, vanilla or HotMem, pinned to a NUMA node."""

    def __init__(
        self,
        sim: Simulator,
        host: HostMachine,
        config: VmConfig,
        costs: CostModel = DEFAULT_COSTS,
        hotmem_params: Optional[HotMemBootParams] = None,
        vanilla_unplug_selection: str = "linear",
        seed: int = 0,
        faults: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
        obs: Optional[ObsScope] = None,
    ):
        self.sim = sim
        self.host = host
        self.config = config
        self.costs = costs
        #: The VM's tracing scope (inert :data:`NO_SCOPE` by default):
        #: stamps ``vm``/``mode``/``host`` labels on every span and
        #: metric the datapath emits.  The fleet passes a live scope at
        #: provision time when ``--trace`` is installed.
        self.obs = obs if obs is not None else NO_SCOPE
        #: Attributed host-memory account: every charge this VM makes
        #: (boot, plugs, baseline mechanisms) flows through it, so host
        #: accounting always knows how many bytes this guest backs.
        self.node = HostAccount(host.node(config.node_id))
        #: The fault-injection plane (inert :data:`NO_FAULTS` by default,
        #: which draws no RNG and adds no latency anywhere).
        self.faults = faults if faults is not None else NO_FAULTS
        self.faults.bind_sim(sim)
        self.faults.bind_obs(self.obs)
        self.retry_policy = retry_policy if retry_policy is not None else NO_RETRY
        #: Every recovery/degradation the datapath performs lands here
        #: (span-fed when tracing, direct appends otherwise).
        self.recovery_log = RecoveryLog(obs=self.obs)

        boot_bytes = config.effective_boot_memory_bytes
        if hotmem_params is not None:
            needed = hotmem_params.max_hotplug_bytes
            if config.hotplug_region_bytes < needed:
                raise ConfigError(
                    f"hotplug region too small for HotMem partitions: "
                    f"need {needed}, have {config.hotplug_region_bytes}"
                )

        # vCPU threads, each pinned to its own physical core (Section 5.1),
        # plus the VMM virtio-mem thread on a separate pinned core.
        self.vcpus: List[CpuCore] = [
            CpuCore(sim, name=f"{config.name}-vcpu{i}") for i in range(config.vcpus)
        ]
        self.vmm_core = CpuCore(sim, name=f"{config.name}-vmm")
        self.irq_vcpu = self.vcpus[config.virtio_irq_vcpu]

        # Guest kernel state.
        self.node.charge(boot_bytes)
        self._boot_bytes = boot_bytes
        self.manager = GuestMemoryManager(
            boot_memory_bytes=boot_bytes,
            hotplug_region_bytes=config.hotplug_region_bytes,
            placement=config.placement,
            rng=make_rng(seed, f"placement/{config.name}"),
        )
        self.page_cache = PageCache()
        self.oom_killer = OomKiller()

        # HotMem vs vanilla wiring.
        self.hotmem: Optional[HotMemManager] = None
        if hotmem_params is not None:
            self.hotmem = HotMemManager(
                sim, self.manager, hotmem_params, obs=self.obs
            )
            backend = HotMemBackend(self.hotmem)
            shared_zones = self.hotmem.file_mapping_zones()
        else:
            backend = VanillaBackend(
                self.manager, costs, selection=vanilla_unplug_selection
            )
            shared_zones = None
        self.backend = backend
        self.fault_handler = FaultHandler(
            self.manager,
            costs,
            page_cache=self.page_cache,
            oom_killer=self.oom_killer,
            shared_file_zones=shared_zones,
        )

        # virtio-mem device/driver pair.  When tracing, the tracer joins
        # the fleet tracer's consumers: resize events are rebuilt from
        # closed device spans instead of direct record_* calls.
        self.tracer = HypervisorTracer(
            vm_name=config.name, mode=str(self.obs.attrs.get("mode", ""))
        )
        if self.obs.enabled:
            self.obs.context.tracer.add_consumer(self.tracer.consume_span)
        self.driver = VirtioMemDriver(
            sim,
            self.manager,
            backend,
            costs,
            irq_core=self.irq_vcpu,
            batch_unplug=config.batch_unplug,
            faults=self.faults,
            retry=self.retry_policy,
            recovery=self.recovery_log,
            obs=self.obs,
        )
        self.device = VirtioMemDevice(
            sim,
            self.driver,
            self.manager,
            costs,
            vmm_core=self.vmm_core,
            host_node=self.node,
            tracer=self.tracer,
            faults=self.faults,
            recovery=self.recovery_log,
            obs=self.obs,
        )

        # HotMem populates the shared partition at boot (Section 4.1).
        if self.hotmem is not None and self.hotmem.shared_partition is not None:
            self.device.plug_at_boot(
                hotmem_params.shared_bytes, self.hotmem.shared_partition.zone
            )

        #: The reclamation datapath every resize request flows through.
        #: virtio-mem by default; :meth:`repro.modes.base
        #: .DeploymentBackend.build_datapath` swaps in the mechanism the
        #: VM's deployment mode uses (balloon, DIMM hotplug, ...).
        self.datapath: ReclaimDatapath = VirtioMemDatapath(self)

        #: In-flight plug/unplug/resize processes, so an abrupt kill can
        #: terminate them (finished entries are pruned as new ones start).
        self.inflight: List[Process] = []

        self._alive = True

    # ------------------------------------------------------------------
    # Identity / mode
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The VM's configured name."""
        return self.config.name

    @property
    def is_hotmem(self) -> bool:
        """Whether this VM runs the HotMem guest extension."""
        return self.hotmem is not None

    @property
    def backed_bytes(self) -> int:
        """Host bytes currently backing this VM (boot + plugged + any
        baseline-mechanism charges); 0 once the VM is shut down."""
        return self.node.charged_bytes if self._alive else 0

    @property
    def elastic_bytes(self) -> int:
        """Reclaimable memory the datapath currently holds grown.

        For virtio-mem this is the device's plugged bytes; balloon-mode
        VMs subtract the inflated balloon, DIMM VMs count whole plugged
        DIMMs.  The agent sizes plug/unplug requests from this figure.
        """
        return self.datapath.elastic_bytes

    # ------------------------------------------------------------------
    # Resizing (the hypervisor-facing interface the runtime drives)
    # ------------------------------------------------------------------
    def request_plug(
        self, size_bytes: int, parent: SpanLike = NULL_SPAN
    ) -> Process:
        """Start a plug request; returns the process (value: PlugResult).

        ``parent`` links the datapath's spans into the caller's trace
        (e.g. the agent's ``agent.plug`` span) when tracing is enabled.
        """
        return self._track(
            self.sim.spawn(
                self.datapath.plug(size_bytes, parent=parent),
                name=f"{self.name}-plug",
            )
        )

    def request_unplug(
        self, size_bytes: int, parent: SpanLike = NULL_SPAN
    ) -> Process:
        """Start an unplug request; returns the process (value: UnplugResult)."""
        return self._track(
            self.sim.spawn(
                self.datapath.unplug(size_bytes, parent=parent),
                name=f"{self.name}-unplug",
            )
        )

    def _track(self, process: Process) -> Process:
        self.inflight = [p for p in self.inflight if not p.finished]
        self.inflight.append(process)
        return process

    def request_resize(
        self, target_bytes: int, parent: SpanLike = NULL_SPAN
    ) -> Optional[Process]:
        """Converge the plugged size toward ``target_bytes``.

        This is virtio-mem's actual protocol: the hypervisor sets a
        requested size and the guest plugs or unplugs the difference.
        Returns the in-flight request process, or ``None`` when already
        at the target (after block rounding).
        """
        from repro.units import MEMORY_BLOCK_SIZE, bytes_to_blocks

        target = bytes_to_blocks(target_bytes) * MEMORY_BLOCK_SIZE
        if target > self.config.hotplug_region_bytes:
            raise ConfigError(
                f"resize target exceeds the device region "
                f"({target} > {self.config.hotplug_region_bytes})"
            )
        delta = target - self.elastic_bytes
        if delta > 0:
            return self.request_plug(delta, parent=parent)
        if delta < 0:
            return self.request_unplug(-delta, parent=parent)
        return None

    def plug_all_at_boot(self) -> None:
        """Statically provision the whole device region (Figure 9's
        over-provisioned configuration): everything plugged at boot into
        ``ZONE_MOVABLE``, never resized."""
        remaining = self.config.hotplug_region_bytes - self.device.plugged_bytes
        if remaining > 0:
            self.device.plug_at_boot(remaining, self.manager.zone_movable)

    # ------------------------------------------------------------------
    # Guest processes
    # ------------------------------------------------------------------
    def new_process(self, name: str) -> MmStruct:
        """Create a process address space inside this guest."""
        return MmStruct(name)

    def exit_process(self, mm: MmStruct):
        """Tear a process down (HotMem refcounting included).

        Returns the teardown :class:`~repro.mm.fault.FaultCharge` so the
        caller can charge the CPU time to the right vCPU.
        """
        if mm.hotmem_partition is not None:
            assert self.hotmem is not None
            return self.hotmem.process_exit(self.fault_handler, mm)
        return self.fault_handler.release_address_space(mm)

    # ------------------------------------------------------------------
    # Lifecycle / sanity
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Release the VM's host memory (boot + everything still plugged)."""
        if not self._alive:
            return
        self.node.close()
        self._alive = False

    def kill(self) -> None:
        """Abrupt death (host crash, OOM-kill): no graceful drain.

        In-flight plug/unplug processes are terminated at their current
        yield point (their ``finally`` blocks close spans and unwind
        pending-byte accounting) before the host account closes, so the
        host-conservation invariant holds in the very next probe.
        """
        if not self._alive:
            return
        for process in self.inflight:
            process.kill()
        self.inflight = []
        self.node.close()
        self._alive = False

    def check_consistency(self) -> None:
        """Cross-check guest and datapath state (tests, debugging)."""
        self.manager.check_consistency()
        self.datapath.check_consistency()

    def __repr__(self) -> str:
        mode = "hotmem" if self.is_hotmem else "vanilla"
        return f"<VirtualMachine {self.name} {mode} vcpus={len(self.vcpus)}>"
