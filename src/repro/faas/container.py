"""Function-instance containers.

A container sandboxes one function instance inside a VM (the N:1 model).
Cold start creates the sandbox, attaches to a HotMem partition when the
guest runs HotMem, maps the shared dependencies through the page cache,
and faults the instance's private footprint in.  Warm invocations reuse
all of that and only churn request-scoped memory.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional

from repro.errors import FaasError, OutOfMemory
from repro.mm.mm_struct import MmStruct
from repro.mm.pagecache import CachedFile
from repro.sim.cpu import CpuCore
from repro.vmm.vm import VirtualMachine
from repro.workloads.functions import FunctionSpec

__all__ = ["Container", "ContainerState", "reset_container_ids"]

_container_ids = itertools.count(1)


def reset_container_ids() -> None:
    """Restart container-id allocation at 1 (a fresh simulation run)."""
    global _container_ids
    _container_ids = itertools.count(1)


class ContainerState(enum.Enum):
    """Container life cycle."""

    CREATING = "creating"
    IDLE = "idle"
    BUSY = "busy"
    DEAD = "dead"


class Container:
    """One function instance inside a VM, pinned to a vCPU."""

    def __init__(
        self,
        vm: VirtualMachine,
        spec: FunctionSpec,
        deps_file: CachedFile,
        vcpu_index: int,
    ):
        self.cid = next(_container_ids)
        self.vm = vm
        self.spec = spec
        self.deps_file = deps_file
        self.vcpu_index = vcpu_index
        self.vcpu: CpuCore = vm.vcpus[vcpu_index]
        self.state = ContainerState.CREATING
        self.mm: Optional[MmStruct] = None
        #: Forked worker processes sharing the leader's partition.
        self.worker_mms: list[MmStruct] = []
        self.idle_since_ns: Optional[int] = None
        self.invocations = 0
        #: Birth time — lifecycle policies divide invocations by age to
        #: get an invocation frequency.
        self.created_ns: int = vm.sim.now
        self.label = f"fn:{spec.name}:{self.cid}"

    # ------------------------------------------------------------------
    # Cold start
    # ------------------------------------------------------------------
    def cold_start(self):
        """Process generator: sandbox creation + runtime init + fault-in.

        Raises :class:`OutOfMemory` if the instance cannot fit (the OOM
        killer has already recorded the kill); the agent treats the
        container as dead.
        """
        if self.state is not ContainerState.CREATING:
            raise FaasError(f"container {self.cid} cold-started twice")
        self.mm = self.vm.new_process(f"{self.spec.name}-c{self.cid}")
        if self.vm.is_hotmem:
            # The HotMem syscall: block until a populated partition is free.
            yield from self.vm.hotmem.attach(self.mm)
        # Sandbox creation and runtime initialization burn CPU.
        yield self.vcpu.submit(self.spec.cold_start_cpu_ns, self.label)
        try:
            # Shared dependencies (libraries, models) through the page cache.
            file_charge = self.vm.fault_handler.fault_file(
                self.mm, self.deps_file, self.deps_file.size_pages
            )
            yield self.vcpu.submit(file_charge.cost_ns, self.label)
            # Fork worker processes; under HotMem they share the leader's
            # partition (clone handling, Section 4).
            for worker_index in range(1, self.spec.worker_processes):
                worker = self.vm.new_process(
                    f"{self.spec.name}-c{self.cid}-w{worker_index}"
                )
                if self.vm.is_hotmem:
                    self.vm.hotmem.fork(self.mm, worker)
                self.worker_mms.append(worker)
            # Private footprint, lazily faulted on first run, split across
            # the instance's processes.
            for process_mm, pages in self._footprint_split():
                anon_charge = self.vm.fault_handler.fault_anon(process_mm, pages)
                yield self.vcpu.submit(anon_charge.cost_ns, self.label)
        except OutOfMemory:
            # Release whatever was faulted in (and the partition).
            self.destroy_after_oom()
            raise
        self.state = ContainerState.IDLE
        self.idle_since_ns = self.vm.sim.now
        return self

    def _footprint_split(self):
        """Even split of the anonymous footprint over all processes."""
        processes = [self.mm] + self.worker_mms
        total = self.spec.anon_footprint_pages
        share = total // len(processes)
        splits = []
        for index, process_mm in enumerate(processes):
            pages = share if index else total - share * (len(processes) - 1)
            if pages:
                splits.append((process_mm, pages))
        return splits

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------
    def invoke(self):
        """Process generator: serve one request on the pinned vCPU."""
        if self.state is not ContainerState.IDLE:
            raise FaasError(
                f"container {self.cid} invoked while {self.state.value}"
            )
        self.state = ContainerState.BUSY
        self.idle_since_ns = None
        self.invocations += 1
        yield self.vcpu.submit(
            self.spec.warm_start_cpu_ns + self.spec.exec_cpu_ns, self.label
        )
        churn = self.spec.warm_churn_pages
        if churn:
            try:
                charge = self.vm.fault_handler.fault_anon(self.mm, churn)
            except OutOfMemory:
                self.destroy_after_oom()
                raise
            yield self.vcpu.submit(charge.cost_ns, self.label)
            self.vm.manager.free_pages(self.mm, churn)
        self.state = ContainerState.IDLE
        self.idle_since_ns = self.vm.sim.now
        return self

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def teardown(self):
        """Process generator: recycle the container, freeing its memory.

        Workers exit before the leader, so the partition's refcount
        (``partition_users``) drains to zero exactly once.
        """
        if self.state is ContainerState.DEAD:
            return None
        if self.state is ContainerState.BUSY:
            raise FaasError(f"cannot recycle busy container {self.cid}")
        self.state = ContainerState.DEAD
        for worker in self.worker_mms:
            charge = self.vm.exit_process(worker)
            yield self.vcpu.submit(charge.cost_ns, self.label)
        self.worker_mms = []
        charge = self.vm.exit_process(self.mm)
        yield self.vcpu.submit(charge.cost_ns, self.label)
        return None

    def destroy_after_oom(self) -> None:
        """Reap a container whose process was OOM-killed.

        The OOM killer marked the process dead; this releases whatever
        memory it had faulted in (and its partition, under HotMem).
        """
        self.state = ContainerState.DEAD
        for worker in self.worker_mms:
            if worker.total_pages or worker.hotmem_partition is not None:
                self.vm.exit_process(worker)
        self.worker_mms = []
        if self.mm is not None and (
            self.mm.total_pages or self.mm.hotmem_partition is not None
        ):
            self.vm.exit_process(self.mm)

    @property
    def is_idle(self) -> bool:
        """Whether the container is parked in an idle pool (evictable)."""
        return self.state is ContainerState.IDLE

    def idle_for_ns(self, now_ns: int) -> int:
        """How long the container has been idle (0 if not idle)."""
        if self.state is not ContainerState.IDLE or self.idle_since_ns is None:
            return 0
        return now_ns - self.idle_since_ns

    def __repr__(self) -> str:
        return f"<Container {self.label} {self.state.value} vcpu={self.vcpu_index}>"
