"""The in-VM Agent (Section 4.1 / Figure 4).

The Agent dispatches incoming requests to containers inside one VM:

* it keeps a per-function pool of idle containers (LIFO, so the coldest
  instances age out);
* when no idle container exists and the concurrency limit allows it, it
  scales up — in elastic modes this couples a plug request (sized to the
  function's memory limit) with the container spawn;
* a periodic recycler evicts containers idle past the keep-alive window
  and couples the eviction with an unplug request sized to the memory
  the recycle freed;
* instances are pinned to vCPUs according to the function's assigned
  vCPU weight (or an explicit pin list, as the interference experiment
  requires).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigError, FaasError, OutOfMemory
from repro.faas.container import Container
from repro.faas.policy import DeploymentMode, KeepAlivePolicy
from repro.faas.records import InvocationRecord
from repro.mm.pagecache import CachedFile
from repro.sim.engine import Event, Process, Simulator, Timeout
from repro.units import MEMORY_BLOCK_SIZE, bytes_to_blocks, bytes_to_pages
from repro.vmm.vm import VirtualMachine
from repro.workloads.functions import FunctionSpec

__all__ = ["Agent", "FunctionDeployment", "ShrinkEvent"]


@dataclass(frozen=True)
class FunctionDeployment:
    """How one function is deployed inside a VM.

    ``vcpu_indices`` restricts instances to specific vCPUs (``None`` uses
    every vCPU); instances are pinned round-robin over the allowed set.
    """

    spec: FunctionSpec
    max_instances: int
    vcpu_indices: Optional[Tuple[int, ...]] = None
    #: Idle-pool reuse order: ``"lifo"`` (stack; coldest instances age out
    #: and get recycled, the OpenWhisk default) or ``"fifo"`` (rotate
    #: through every instance, keeping the whole pool warm).
    reuse: str = "lifo"

    def __post_init__(self) -> None:
        if self.max_instances <= 0:
            raise ConfigError(
                f"{self.spec.name}: max_instances must be positive"
            )
        if self.reuse not in ("lifo", "fifo"):
            raise ConfigError(f"{self.spec.name}: unknown reuse {self.reuse!r}")

    @property
    def partition_bytes(self) -> int:
        """The function's memory limit rounded up to whole blocks."""
        return bytes_to_blocks(self.spec.memory_limit_bytes) * MEMORY_BLOCK_SIZE


@dataclass
class ShrinkEvent:
    """One recycle pass that evicted instances and shrank the VM."""

    time_ns: int
    evicted: int
    unplug_requested_bytes: int


@dataclass
class _FunctionState:
    """Mutable per-function bookkeeping."""

    deployment: FunctionDeployment
    deps_file: CachedFile
    idle: List[Container] = field(default_factory=list)
    live: int = 0
    waiters: Deque[Event] = field(default_factory=deque)
    next_pin: int = 0
    cold_starts: int = 0
    oom_failures: int = 0


class Agent:
    """Dispatcher + scaler for one VM."""

    def __init__(
        self,
        sim: Simulator,
        vm: VirtualMachine,
        deployments: List[FunctionDeployment],
        policy: KeepAlivePolicy,
        mode: DeploymentMode,
    ):
        if mode is DeploymentMode.HOTMEM and not vm.is_hotmem:
            raise ConfigError("HOTMEM mode requires a HotMem VM")
        if mode is not DeploymentMode.HOTMEM and vm.is_hotmem:
            raise ConfigError(f"{mode} mode requires a vanilla VM")
        self.sim = sim
        self.vm = vm
        self.policy = policy
        self.mode = mode
        self.functions: Dict[str, _FunctionState] = {}
        for deployment in deployments:
            spec = deployment.spec
            if spec.name in self.functions:
                raise ConfigError(f"function {spec.name} deployed twice")
            deps = vm.page_cache.register(
                CachedFile(
                    f"{spec.name}-deps", bytes_to_pages(spec.shared_deps_bytes)
                )
            )
            self.functions[spec.name] = _FunctionState(deployment, deps)
        self.shrink_events: List[ShrinkEvent] = []
        self._pending_plug_bytes = 0
        self._pending_unplug_bytes = 0
        self._recycler: Optional[Process] = None
        self._stopped = False

    # ------------------------------------------------------------------
    # Sizing targets
    # ------------------------------------------------------------------
    def target_plugged_bytes(self) -> int:
        """Hotplugged memory the current live instances require."""
        total = sum(
            state.live * state.deployment.partition_bytes
            for state in self.functions.values()
        )
        if self.vm.is_hotmem and self.vm.hotmem.shared_partition is not None:
            total += self.vm.hotmem.params.shared_bytes
        return total

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def handle(self, function_name: str, arrival_ns: int):
        """Process generator: serve one request end to end.

        Returns an :class:`InvocationRecord`.  Requests queue when the
        function is at its concurrency limit; a finishing container is
        handed directly to the oldest waiter.
        """
        state = self._state(function_name)
        container: Optional[Container] = None
        cold = False
        while container is None:
            if state.idle:
                if state.deployment.reuse == "fifo":
                    container = state.idle.pop(0)
                else:
                    container = state.idle.pop()
            elif state.live < state.deployment.max_instances:
                state.live += 1
                cold = True
                try:
                    container = yield from self._spawn(state)
                except OutOfMemory:
                    state.live -= 1
                    state.oom_failures += 1
                    self._kick_one_waiter(state)
                    now = self.sim.now
                    return InvocationRecord(
                        function=function_name,
                        arrival_ns=arrival_ns,
                        start_ns=now,
                        end_ns=now,
                        cold=True,
                        ok=False,
                        error="oom",
                    )
            else:
                gate = self.sim.event()
                state.waiters.append(gate)
                handed = yield gate
                if handed is not None:
                    container = handed
        start_ns = self.sim.now
        try:
            yield from container.invoke()
        except OutOfMemory:
            state.live -= 1
            state.oom_failures += 1
            container.destroy_after_oom()
            self._kick_one_waiter(state)
            return InvocationRecord(
                function=function_name,
                arrival_ns=arrival_ns,
                start_ns=start_ns,
                end_ns=self.sim.now,
                cold=cold,
                ok=False,
                error="oom",
            )
        self._release(state, container)
        return InvocationRecord(
            function=function_name,
            arrival_ns=arrival_ns,
            start_ns=start_ns,
            end_ns=self.sim.now,
            cold=cold,
            ok=True,
        )

    def _state(self, function_name: str) -> _FunctionState:
        try:
            return self.functions[function_name]
        except KeyError:
            raise FaasError(
                f"function {function_name!r} not deployed on {self.vm.name}"
            ) from None

    def _release(self, state: _FunctionState, container: Container) -> None:
        if state.waiters:
            state.waiters.popleft().trigger(container)
        else:
            state.idle.append(container)

    def _kick_one_waiter(self, state: _FunctionState) -> None:
        """Wake one queued request so it can retry acquisition."""
        if state.waiters:
            state.waiters.popleft().trigger(None)

    # ------------------------------------------------------------------
    # Scale up (Figure 4, right)
    # ------------------------------------------------------------------
    def _spawn(self, state: _FunctionState):
        deployment = state.deployment
        state.cold_starts += 1
        # Step 2: the runtime asks the hypervisor to plug memory matching
        # the instance's limit (elastic modes only).  The deficit guard
        # avoids over-plugging when earlier unplugs were partial or when a
        # populated partition is waiting for reuse.
        if self.mode.elastic:
            # In-flight unplugs still count as plugged on the device but
            # their memory is about to vanish; without accounting for them
            # a spawn would skip its plug and park on the HotMem attach
            # waitqueue with nothing coming to wake it.
            effective_plugged = (
                self.vm.device.plugged_bytes - self._pending_unplug_bytes
            )
            deficit = (
                self.target_plugged_bytes()
                - effective_plugged
                - self._pending_plug_bytes
            )
            # Normally the deficit is exactly this instance's limit; it can
            # be larger when an earlier unplug overshot or a plug fell
            # short, in which case the request also heals the shortfall.
            request = max(0, deficit)
            if request > 0:
                self._pending_plug_bytes += request
                plug_process = self.vm.request_plug(request)
                yield plug_process
                self._pending_plug_bytes -= request
        # Step 4: spawn the container (HotMem attach happens inside).
        vcpu = self._next_vcpu(state)
        container = Container(self.vm, deployment.spec, state.deps_file, vcpu)
        yield from container.cold_start()
        return container

    def _next_vcpu(self, state: _FunctionState) -> int:
        allowed = state.deployment.vcpu_indices
        if allowed is None:
            allowed = tuple(range(len(self.vm.vcpus)))
        index = allowed[state.next_pin % len(allowed)]
        state.next_pin += 1
        return index

    # ------------------------------------------------------------------
    # Scale down (Figure 4, left)
    # ------------------------------------------------------------------
    def start_recycler(self, until_ns: Optional[int] = None) -> Process:
        """Start the periodic keep-alive recycler."""
        if self._recycler is not None:
            raise FaasError("recycler already started")
        self._recycler = self.sim.spawn(
            self._recycle_loop(until_ns), name=f"{self.vm.name}-recycler"
        )
        return self._recycler

    def stop(self) -> None:
        """Stop the recycler loop after its current pass."""
        self._stopped = True

    def _recycle_loop(self, until_ns: Optional[int]):
        while not self._stopped:
            yield Timeout(self.policy.recycle_interval_ns)
            if until_ns is not None and self.sim.now > until_ns:
                return None
            yield from self.recycle_pass()
        return None

    def recycle_pass(self):
        """Process generator: evict idle-past-keep-alive containers, then
        shrink the VM to its new target size (steps 5-7 of Figure 4)."""
        now = self.sim.now
        evicted = 0
        victims: List[Tuple[_FunctionState, Container]] = []
        # Partition idle pools atomically (no yields) so concurrent request
        # handling never races with the eviction below.
        for state in self.functions.values():
            expired = [
                c
                for c in state.idle
                if c.idle_for_ns(now) >= self.policy.keep_alive_ns
            ]
            state.idle = [c for c in state.idle if c not in expired]
            victims.extend((state, c) for c in expired)
        for state, container in victims:
            yield from container.teardown()
            state.live -= 1
            evicted += 1
        unplug_bytes = 0
        if evicted and self.mode.elastic:
            spare_bytes = self.policy.spare_slots * max(
                state.deployment.partition_bytes
                for state in self.functions.values()
            )
            excess = (
                self.vm.device.plugged_bytes
                - self._pending_unplug_bytes
                - self.target_plugged_bytes()
                - spare_bytes
            )
            if excess > 0:
                unplug_bytes = excess
                # Fire-and-forget: reclamation proceeds in the background
                # while the agent keeps serving requests.
                self.sim.spawn(
                    self._unplug_async(excess), name=f"{self.vm.name}-shrink"
                )
        if evicted:
            self.shrink_events.append(
                ShrinkEvent(
                    time_ns=now, evicted=evicted, unplug_requested_bytes=unplug_bytes
                )
            )
        return evicted

    def _unplug_async(self, size_bytes: int):
        """Issue one unplug and track it until the device completes it."""
        self._pending_unplug_bytes += size_bytes
        try:
            unplug = self.vm.request_unplug(size_bytes)
            yield unplug
        finally:
            self._pending_unplug_bytes -= size_bytes
        return unplug.value

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def live_instances(self, function_name: Optional[str] = None) -> int:
        """Live containers for one function (or all)."""
        if function_name is not None:
            return self._state(function_name).live
        return sum(state.live for state in self.functions.values())

    def idle_instances(self, function_name: str) -> int:
        """Currently idle containers for one function."""
        return len(self._state(function_name).idle)

    def cold_start_count(self, function_name: str) -> int:
        """Cold starts performed for one function."""
        return self._state(function_name).cold_starts
