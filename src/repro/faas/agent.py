"""The in-VM Agent (Section 4.1 / Figure 4).

The Agent dispatches incoming requests to containers inside one VM:

* it keeps a per-function pool of idle containers (LIFO by default, so
  the coldest instances age out; the pool order is a property of the
  agent's :mod:`~repro.faas.lifecycle` eviction policy unless the
  deployment pins its own);
* when no idle container exists and the concurrency limit allows it, it
  scales up — in elastic modes this couples a plug request (sized to the
  function's memory limit) with the container spawn;
* a periodic recycler evicts containers idle past the keep-alive window
  — *which* evictable containers die, and in what order, is delegated
  to the pluggable eviction policy named by
  :attr:`KeepAlivePolicy.eviction` — and couples the eviction with an
  unplug request sized to the memory the recycle freed;
* instances are pinned to vCPUs according to the function's assigned
  vCPU weight (or an explicit pin list, as the interference experiment
  requires).

Resilience (see ``docs/faults.md``): with a
:class:`~repro.faults.ResiliencePolicy` the agent retries refused or
partial plug requests with backoff, falls back to *static* mode (stop
resizing, serve from what is plugged) when the backend stays
unavailable, and re-queues partial-unplug shortfalls through a
deferred-reclamation queue.  Every recovery and degradation lands in the
VM's :class:`~repro.metrics.recovery.RecoveryLog`.  The inert default
(:data:`~repro.faults.NO_RESILIENCE`) reproduces the non-resilient agent
exactly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigError, FaasError, OutOfMemory, SpawnFailed
from repro.faas.container import Container
from repro.faas.lifecycle import ContainerStats, get_policy
from repro.faas.policy import DeploymentMode, KeepAlivePolicy
from repro.faas.records import EvictionRecord, InvocationRecord
from repro.faults.injector import InjectedFault
from repro.faults.policy import NO_RESILIENCE, ResiliencePolicy
from repro.faults.sites import (
    AGENT_RECYCLE_RACE,
    AGENT_SPAWN_FAIL,
    AGENT_SPAWN_OOM,
)
from repro.mm.pagecache import CachedFile
from repro.modes import get_mode
from repro.obs.span import NULL_SPAN, SpanLike
from repro.sim.engine import Event, Process, Simulator, Timeout
from repro.units import MEMORY_BLOCK_SIZE, bytes_to_blocks, bytes_to_pages
from repro.vmm.vm import VirtualMachine
from repro.workloads.functions import FunctionSpec

__all__ = ["Agent", "FunctionDeployment", "ShrinkEvent"]

#: Sentinel handed to a queued request whose queue-wait deadline expired
#: (distinct from ``None``, which means "retry acquisition").
_DEADLINE = object()


@dataclass(frozen=True)
class FunctionDeployment:
    """How one function is deployed inside a VM.

    ``vcpu_indices`` restricts instances to specific vCPUs (``None`` uses
    every vCPU); instances are pinned round-robin over the allowed set.
    """

    spec: FunctionSpec
    max_instances: int
    vcpu_indices: Optional[Tuple[int, ...]] = None
    #: Idle-pool reuse order override: ``"lifo"`` (stack; coldest
    #: instances age out and get recycled, the OpenWhisk default) or
    #: ``"fifo"`` (rotate through every instance, keeping the whole pool
    #: warm).  ``None`` defers to the agent's eviction policy
    #: (:attr:`repro.faas.lifecycle.EvictionPolicy.reuse`).
    reuse: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_instances <= 0:
            raise ConfigError(
                f"{self.spec.name}: max_instances must be positive"
            )
        if self.reuse not in (None, "lifo", "fifo"):
            raise ConfigError(f"{self.spec.name}: unknown reuse {self.reuse!r}")

    @property
    def partition_bytes(self) -> int:
        """The function's memory limit rounded up to whole blocks."""
        return bytes_to_blocks(self.spec.memory_limit_bytes) * MEMORY_BLOCK_SIZE


@dataclass
class ShrinkEvent:
    """One recycle pass that evicted instances and shrank the VM."""

    time_ns: int
    evicted: int
    unplug_requested_bytes: int
    #: Name of the lifecycle policy that ranked this pass's victims.
    policy: str = "ttl"


@dataclass
class _DeferredReclaim:
    """A partial-unplug shortfall queued for a later retry."""

    size_bytes: int
    attempt: int
    queued_ns: int
    #: The originating ``agent.unplug`` span: every deferred retry
    #: parents on it, so a shortfall's whole retry chain shares the
    #: original request's trace id (inert when tracing is off).
    parent: SpanLike = NULL_SPAN


@dataclass
class _FunctionState:
    """Mutable per-function bookkeeping."""

    deployment: FunctionDeployment
    deps_file: CachedFile
    idle: List[Container] = field(default_factory=list)
    live: int = 0
    waiters: Deque[Event] = field(default_factory=deque)
    next_pin: int = 0
    cold_starts: int = 0
    oom_failures: int = 0
    spawn_failures: int = 0


class Agent:
    """Dispatcher + scaler for one VM."""

    def __init__(
        self,
        sim: Simulator,
        vm: VirtualMachine,
        deployments: List[FunctionDeployment],
        policy: KeepAlivePolicy,
        mode: DeploymentMode,
        resilience: Optional[ResiliencePolicy] = None,
    ):
        mode = get_mode(mode)
        mode.validate_vm(vm)
        self.sim = sim
        self.vm = vm
        self.policy = policy
        #: The pluggable eviction engine: a fresh policy instance per
        #: agent (stateful policies like greedy-dual keep a per-agent
        #: clock), resolved from :attr:`KeepAlivePolicy.eviction`.
        self.lifecycle = get_policy(policy.eviction)
        self.mode = mode
        self.resilience = resilience if resilience is not None else NO_RESILIENCE
        self.faults = vm.faults
        self.recovery = vm.recovery_log
        #: The VM's tracing scope (inert unless ``--trace`` is on): the
        #: agent opens the root ``faas.invoke`` span every datapath span
        #: of a request descends from.
        self.obs = vm.obs
        self.functions: Dict[str, _FunctionState] = {}
        for deployment in deployments:
            spec = deployment.spec
            if spec.name in self.functions:
                raise ConfigError(f"function {spec.name} deployed twice")
            deps = vm.page_cache.register(
                CachedFile(
                    f"{spec.name}-deps", bytes_to_pages(spec.shared_deps_bytes)
                )
            )
            self.functions[spec.name] = _FunctionState(deployment, deps)
        self.shrink_events: List[ShrinkEvent] = []
        #: Per-victim eviction log: which policy chose each container,
        #: and at what rank — trace-report joins this against cold
        #: starts to attribute them to eviction decisions.
        self.eviction_records: List[EvictionRecord] = []
        #: True once the agent gave up on the backend and stopped
        #: resizing (graceful degradation to a statically sized VM).
        self.degraded = False
        self._consecutive_plug_failures = 0
        self._plug_failing_since: Optional[int] = None
        self._deferred: List[_DeferredReclaim] = []
        self._pending_plug_bytes = 0
        self._pending_unplug_bytes = 0
        self._recycler: Optional[Process] = None
        self._recycler_until: Optional[int] = None
        self._stopped = False
        self._killed = False
        #: Fleet-pressure reclamation passes performed (see
        #: :meth:`request_reclaim`).
        self.pressure_reclaims = 0
        self._pressure_pass: Optional[Process] = None
        #: Background processes the agent spawned (recycler, pressure and
        #: shrink passes, deferred retries) so :meth:`kill` can end them.
        self._background: List[Process] = []
        #: Injected ``agent.wedge``: the recycler silently stops making
        #: progress (and stops beating) until the watchdog intervenes.
        self._wedged = False
        #: Last time the recycler proved liveness (None until started).
        self.last_heartbeat_ns: Optional[int] = None

    # ------------------------------------------------------------------
    # Sizing targets
    # ------------------------------------------------------------------
    def target_plugged_bytes(self) -> int:
        """Hotplugged memory the current live instances require."""
        total = sum(
            state.live * state.deployment.partition_bytes
            for state in self.functions.values()
        )
        if self.vm.is_hotmem and self.vm.hotmem.shared_partition is not None:
            total += self.vm.hotmem.params.shared_bytes
        return total

    @property
    def elastic(self) -> bool:
        """Whether the agent still resizes the VM (mode minus degradation)."""
        return self.mode.elastic and not self.degraded

    @property
    def max_concurrency(self) -> int:
        """Concurrent instances this VM can ever run (all functions)."""
        return sum(
            state.deployment.max_instances for state in self.functions.values()
        )

    def _unusable_plugged_bytes(self) -> int:
        """Plugged memory held hostage by quarantine.

        Quarantined blocks (and every block of a quarantined HotMem
        partition) stay plugged but can never serve instances or be
        unplugged, so the sizing math must write them off — otherwise the
        deficit guard would skip needed plugs and the recycler would
        chase unreclaimable excess forever.
        """
        indices = {block.index for block in self.vm.manager.quarantined_blocks}
        if self.vm.is_hotmem:
            for partition in self.vm.hotmem.partitions:
                if partition.quarantined:
                    indices.update(b.index for b in partition.zone.blocks)
        return len(indices) * MEMORY_BLOCK_SIZE

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def handle(
        self,
        function_name: str,
        arrival_ns: int,
        deadline_ns: Optional[int] = None,
    ):
        """Process generator: serve one request end to end.

        Returns an :class:`InvocationRecord`.  Requests queue when the
        function is at its concurrency limit; a finishing container is
        handed directly to the oldest waiter.  ``deadline_ns`` bounds the
        queue wait (measured from ``arrival_ns``): a request still queued
        past it fails with ``error="deadline"`` instead of waiting
        forever — the router turns that into a structured
        ``RouteRejection``.  The outer ``finally`` re-closes the root
        span (idempotently), so an invocation killed mid-flight by a
        host crash never leaks an open span.
        """
        state = self._state(function_name)
        span = self.obs.span(
            "faas.invoke", function=function_name, arrival_ns=arrival_ns
        )
        try:
            container: Optional[Container] = None
            cold = False
            while container is None:
                if state.idle:
                    if self._reuse(state) == "fifo":
                        container = state.idle.pop(0)
                    else:
                        container = state.idle.pop()
                elif state.live < state.deployment.max_instances:
                    state.live += 1
                    cold = True
                    try:
                        container = yield from self._spawn(state, parent=span)
                    except (OutOfMemory, SpawnFailed) as exc:
                        state.live -= 1
                        if isinstance(exc, OutOfMemory):
                            state.oom_failures += 1
                            error = "oom"
                        else:
                            state.spawn_failures += 1
                            error = "spawn-failed"
                        self._kick_one_waiter(state)
                        now = self.sim.now
                        return self._finish_invoke(
                            span,
                            InvocationRecord(
                                function=function_name,
                                arrival_ns=arrival_ns,
                                start_ns=now,
                                end_ns=now,
                                cold=True,
                                ok=False,
                                error=error,
                            ),
                        )
                else:
                    timer = None
                    gate = self.sim.event()
                    if deadline_ns is not None:
                        remaining = arrival_ns + deadline_ns - self.sim.now
                        if remaining <= 0:
                            handed = _DEADLINE
                        else:
                            state.waiters.append(gate)
                            timer = self.sim.schedule(
                                remaining, self._expire_waiter, state, gate
                            )
                            handed = yield gate
                            timer.cancel()
                    else:
                        state.waiters.append(gate)
                        handed = yield gate
                    if handed is _DEADLINE:
                        now = self.sim.now
                        return self._finish_invoke(
                            span,
                            InvocationRecord(
                                function=function_name,
                                arrival_ns=arrival_ns,
                                start_ns=now,
                                end_ns=now,
                                cold=False,
                                ok=False,
                                error="deadline",
                            ),
                        )
                    if handed is not None:
                        container = handed
            start_ns = self.sim.now
            try:
                yield from container.invoke()
            except OutOfMemory:
                state.live -= 1
                state.oom_failures += 1
                container.destroy_after_oom()
                self._kick_one_waiter(state)
                return self._finish_invoke(
                    span,
                    InvocationRecord(
                        function=function_name,
                        arrival_ns=arrival_ns,
                        start_ns=start_ns,
                        end_ns=self.sim.now,
                        cold=cold,
                        ok=False,
                        error="oom",
                    ),
                )
            self._release(state, container)
            return self._finish_invoke(
                span,
                InvocationRecord(
                    function=function_name,
                    arrival_ns=arrival_ns,
                    start_ns=start_ns,
                    end_ns=self.sim.now,
                    cold=cold,
                    ok=True,
                ),
            )
        finally:
            span.close()

    def _expire_waiter(self, state: _FunctionState, gate: Event) -> None:
        """Deadline timer callback: shed one still-queued request."""
        if gate.triggered:
            return
        try:
            state.waiters.remove(gate)
        except ValueError:
            pass
        gate.trigger(_DEADLINE)

    def _finish_invoke(
        self, span: SpanLike, record: InvocationRecord
    ) -> InvocationRecord:
        """Close the invocation's root span and count the outcome."""
        span.close(ok=record.ok, cold=record.cold, error=record.error)
        self.obs.inc(
            "invocations_total",
            function=record.function,
            error=record.error or "ok",
        )
        return record

    def _reuse(self, state: _FunctionState) -> str:
        """Effective idle-pool order: deployment override, else policy."""
        return state.deployment.reuse or self.lifecycle.reuse

    def _state(self, function_name: str) -> _FunctionState:
        try:
            return self.functions[function_name]
        except KeyError:
            raise FaasError(
                f"function {function_name!r} not deployed on {self.vm.name}"
            ) from None

    def _release(self, state: _FunctionState, container: Container) -> None:
        if state.waiters:
            state.waiters.popleft().trigger(container)
        else:
            state.idle.append(container)

    def _kick_one_waiter(self, state: _FunctionState) -> None:
        """Wake one queued request so it can retry acquisition."""
        if state.waiters:
            state.waiters.popleft().trigger(None)

    # ------------------------------------------------------------------
    # Scale up (Figure 4, right)
    # ------------------------------------------------------------------
    def _spawn(self, state: _FunctionState, parent: SpanLike = NULL_SPAN):
        deployment = state.deployment
        state.cold_starts += 1
        span = self.obs.span(
            "faas.spawn", parent=parent, function=deployment.spec.name
        )
        self.obs.inc("cold_starts_total", function=deployment.spec.name)
        try:
            fault = self.faults.fire(
                AGENT_SPAWN_OOM, parent=span, function=deployment.spec.name
            )
            if fault is not None:
                # Injected allocation failure during elastic scale-up: fail
                # fast exactly like a guest OOM; the request is re-queued by
                # the caller's OOM handling.
                self._resolve_and_record(fault, "oom-failfast", parent=span)
                raise OutOfMemory(
                    f"injected OOM during scale-up of {deployment.spec.name}"
                )
            fault = self.faults.fire(
                AGENT_SPAWN_FAIL, parent=span, function=deployment.spec.name
            )
            if fault is not None:
                self._resolve_and_record(fault, "invocation-failed", parent=span)
                raise SpawnFailed(
                    f"injected spawn failure for {deployment.spec.name}"
                )
            # Step 2: the runtime asks the hypervisor to plug memory matching
            # the instance's limit (elastic modes only).
            if self.elastic:
                yield from self._plug_for_spawn(parent=span)
            if self.degraded and self.vm.is_hotmem:
                # Static fallback: serve only from already populated
                # partitions — parking on the attach waitqueue would hang
                # forever with nobody plugging memory to wake it.
                if not self.vm.hotmem.populated_unassigned():
                    raise SpawnFailed(
                        "degraded to static mode and no populated partition free"
                    )
            # Step 4: spawn the container (HotMem attach happens inside).
            vcpu = self._next_vcpu(state)
            container = Container(self.vm, deployment.spec, state.deps_file, vcpu)
            yield from container.cold_start()
            return container
        finally:
            span.close()

    def _plug_for_spawn(self, parent: SpanLike = NULL_SPAN):
        """Process generator: grow the VM to cover the new instance.

        The deficit guard avoids over-plugging when earlier unplugs were
        partial or a populated partition awaits reuse; in-flight unplugs
        still count as plugged on the device but their memory is about to
        vanish, so they are subtracted (otherwise a spawn would skip its
        plug and park on the HotMem attach waitqueue with nothing coming
        to wake it).  Refused (NACK) and partial plugs are retried per
        the resilience policy; persistent refusal degrades the agent to
        static mode.
        """
        policy = self.resilience
        attempt = 0
        pending: List[InjectedFault] = []
        detect_ns: Optional[int] = None
        span = self.obs.span("agent.plug", parent=parent)
        try:
            while True:
                effective_plugged = (
                    self.vm.elastic_bytes
                    - self._pending_unplug_bytes
                    - self._unusable_plugged_bytes()
                )
                deficit = (
                    self.target_plugged_bytes()
                    - effective_plugged
                    - self._pending_plug_bytes
                )
                request = max(0, deficit)
                if request == 0:
                    break
                attempt += 1
                self._pending_plug_bytes += request
                plug_process = self.vm.request_plug(request, parent=span)
                yield plug_process
                self._pending_plug_bytes -= request
                result = plug_process.value
                if result.fault is not None:
                    pending.append(result.fault)
                if not result.error:
                    # Success (or a natural partial the device never reports
                    # today): same single-shot behaviour as before faults.
                    break
                if detect_ns is None:
                    detect_ns = self.sim.now
                if result.plugged_bytes == 0:
                    self._consecutive_plug_failures += 1
                    if self._plug_failing_since is None:
                        self._plug_failing_since = self.sim.now
                    self._maybe_degrade()
                else:
                    self._consecutive_plug_failures = 0
                    self._plug_failing_since = None
                if self.degraded or attempt > policy.plug_retries:
                    path = "static-fallback" if self.degraded else "plug-shortfall"
                    self._resolve_all(pending, path, attempt)
                    self.recovery.record(
                        site="agent.plug",
                        path=path,
                        detect_ns=detect_ns,
                        resolve_ns=self.sim.now,
                        attempts=attempt,
                        parent=span,
                    )
                    return None
                yield Timeout(policy.plug_backoff_ns)
            if pending or attempt > 1:
                self._consecutive_plug_failures = 0
                self._plug_failing_since = None
                self._resolve_all(pending, "retried", attempt)
                self.recovery.record(
                    site="agent.plug",
                    path="retried",
                    detect_ns=self.sim.now if detect_ns is None else detect_ns,
                    resolve_ns=self.sim.now,
                    attempts=max(1, attempt),
                    parent=span,
                )
            return None
        finally:
            span.close(attempts=attempt)

    def _maybe_degrade(self) -> None:
        """Fall back to static mode when the backend stays unavailable."""
        policy = self.resilience
        if (
            policy.degrade_after == 0
            or self.degraded
            or self._consecutive_plug_failures < policy.degrade_after
        ):
            return
        self.degraded = True
        self.recovery.record(
            site="agent.backend-unavailable",
            path="static-fallback",
            detect_ns=(
                self._plug_failing_since
                if self._plug_failing_since is not None
                else self.sim.now
            ),
            resolve_ns=self.sim.now,
            attempts=self._consecutive_plug_failures,
        )

    def _next_vcpu(self, state: _FunctionState) -> int:
        allowed = state.deployment.vcpu_indices
        if allowed is None:
            allowed = tuple(range(len(self.vm.vcpus)))
        index = allowed[state.next_pin % len(allowed)]
        state.next_pin += 1
        return index

    # ------------------------------------------------------------------
    # Scale down (Figure 4, left)
    # ------------------------------------------------------------------
    def start_recycler(self, until_ns: Optional[int] = None) -> Process:
        """Start the periodic keep-alive recycler."""
        if self._recycler is not None:
            raise FaasError("recycler already started")
        self._recycler_until = until_ns
        self.last_heartbeat_ns = self.sim.now
        self._recycler = self._spawn_background(
            self._recycle_loop(until_ns), name=f"{self.vm.name}-recycler"
        )
        return self._recycler

    def stop(self) -> None:
        """Stop the recycler loop after its current pass."""
        self._stopped = True

    def kill(self) -> None:
        """Abrupt death (host crash, OOM-kill): end all background work.

        In-flight *request* processes belong to the router, which fails
        them over before the fleet calls this; everything the agent
        itself spawned — recycler, pressure and shrink passes, deferred
        retries — is terminated here, ahead of the VM account closing.
        """
        self._stopped = True
        self._killed = True
        for process in self._background:
            process.kill()
        self._background = []

    def wedge(self) -> None:
        """Injected ``agent.wedge``: the recycler hangs silently.

        The loop parks without recycling or heartbeating; nothing inside
        the VM notices.  Detection is the fleet watchdog's job (stale
        :attr:`last_heartbeat_ns`), remediation is :meth:`force_recycle`.
        """
        self._wedged = True

    @property
    def wedged(self) -> bool:
        return self._wedged

    def force_recycle(self) -> Optional[Process]:
        """Watchdog remediation: replace a wedged recycler.

        Clears the wedge, starts a fresh recycler loop (same horizon as
        the one that hung) and runs one immediate catch-up pass so
        memory idle during the wedge window is reclaimed right away.
        """
        if self._stopped or not self.vm._alive:
            return None
        self._wedged = False
        self._recycler = None
        self.start_recycler(self._recycler_until)
        return self._spawn_background(
            self.recycle_pass(), name=f"{self.vm.name}-force-recycle"
        )

    def _spawn_background(self, generator, name: str) -> Process:
        self._background = [p for p in self._background if not p.finished]
        process = self.sim.spawn(generator, name=name)
        self._background.append(process)
        return process

    def _recycle_loop(self, until_ns: Optional[int]):
        while not self._stopped:
            yield Timeout(self.policy.recycle_interval_ns)
            if self._wedged:
                # Wedged: die silently *before* the heartbeat, so the
                # watchdog sees the staleness.
                return None
            self.last_heartbeat_ns = self.sim.now
            self.obs.event("agent.heartbeat")
            if until_ns is not None and self.sim.now > until_ns:
                return None
            yield from self.recycle_pass()
        return None

    def request_reclaim(
        self, need_bytes: Optional[int] = None
    ) -> Optional[Process]:
        """Fleet-pressure hook: run one immediate reclamation pass.

        Considers *every* idle container (``min_idle_ns=0``) rather than
        only those past the keep-alive window — the host is over its
        pressure watermark, so warmth is traded for memory.
        ``need_bytes`` bounds the shed: the eviction policy's ranking is
        cut to the prefix covering that much memory (``None`` keeps the
        historical evict-everything behaviour).  At most one pressure
        pass runs at a time; overlapping requests coalesce.
        """
        if self._stopped:
            return None
        if self._pressure_pass is not None and not self._pressure_pass.finished:
            return self._pressure_pass
        self.pressure_reclaims += 1
        self._pressure_pass = self._spawn_background(
            self.recycle_pass(min_idle_ns=0, need_bytes=need_bytes),
            name=f"{self.vm.name}-pressure-reclaim",
        )
        return self._pressure_pass

    def _candidate_stats(self, now_ns: int) -> List[ContainerStats]:
        """Snapshot every idle container as an eviction candidate.

        Scan order (function insertion order, then idle-pool position)
        is recorded as ``pool_index`` — the ``ttl`` policy orders by it,
        reproducing the pre-refactor recycler exactly.
        """
        candidates: List[ContainerStats] = []
        for state in self.functions.values():
            deployment = state.deployment
            for container in state.idle:
                candidates.append(
                    ContainerStats(
                        container=container,
                        function=deployment.spec.name,
                        cid=container.cid,
                        idle_ns=container.idle_for_ns(now_ns),
                        invocations=container.invocations,
                        lifetime_ns=now_ns - container.created_ns,
                        memory_bytes=deployment.partition_bytes,
                        spawn_cost_ns=deployment.spec.cold_start_cpu_ns,
                        pool_index=len(candidates),
                    )
                )
        return candidates

    def recycle_pass(
        self,
        min_idle_ns: Optional[int] = None,
        need_bytes: Optional[int] = None,
    ):
        """Process generator: evict idle-past-keep-alive containers, then
        shrink the VM to its new target size (steps 5-7 of Figure 4).

        Candidate *selection and ordering* is delegated to the agent's
        :mod:`~repro.faas.lifecycle` policy; this pass owns the
        mechanics (atomic pool removal, teardown, unplug coupling).
        ``min_idle_ns`` overrides the keep-alive threshold for this pass
        only (the fleet's pressure monitor passes 0 to consider
        everything idle right now); ``need_bytes`` caps the eviction at
        the ranked prefix freeing that much memory (bounded pressure
        shedding).
        """
        pressure = min_idle_ns is not None
        threshold = (
            min_idle_ns if min_idle_ns is not None else self.policy.keep_alive_ns
        )
        now = self.sim.now
        evicted = 0
        unplug_bytes = 0
        span = self.obs.span(
            "agent.recycle", pressure=pressure, policy=self.lifecycle.name
        )
        # Snapshot candidates and pick victims atomically (no yields) so
        # concurrent request handling never races with the eviction
        # below: a chosen victim leaves its pool before the first yield.
        chosen = self.lifecycle.victims(
            self._candidate_stats(now), now, threshold, need_bytes
        )
        victims: List[Tuple[_FunctionState, ContainerStats]] = []
        for stats in chosen:
            state = self.functions[stats.function]
            state.idle.remove(stats.container)
            victims.append((state, stats))
        try:
            for rank, (state, stats) in enumerate(victims):
                yield from stats.container.teardown()
                state.live -= 1
                evicted += 1
                self.lifecycle.note_eviction(stats, now)
                self.eviction_records.append(
                    EvictionRecord(
                        time_ns=now,
                        function=stats.function,
                        cid=stats.cid,
                        policy=self.lifecycle.name,
                        rank=rank,
                        idle_ns=stats.idle_ns,
                        memory_bytes=stats.memory_bytes,
                        pressure=pressure,
                    )
                )
                self.obs.event(
                    "agent.evict",
                    function=stats.function,
                    cid=stats.cid,
                    policy=self.lifecycle.name,
                    rank=rank,
                    idle_ns=stats.idle_ns,
                    pressure=pressure,
                )
                self.obs.inc(
                    "evictions_total",
                    function=stats.function,
                    policy=self.lifecycle.name,
                )
            if evicted and self.elastic:
                spare_bytes = self._spare_bytes()
                pending_unplug = self._pending_unplug_bytes
                race: Optional[InjectedFault] = None
                if pending_unplug > 0:
                    race = self.faults.fire(
                        AGENT_RECYCLE_RACE,
                        parent=span,
                        pending_unplug_bytes=pending_unplug,
                    )
                    if race is not None:
                        # The racing recycler misses the in-flight unplug and
                        # over-requests; the device serializes requests and
                        # clamps to what is actually plugged, and the deficit
                        # guard heals any overshoot on the next spawn.
                        pending_unplug = 0
                excess = (
                    self.vm.elastic_bytes
                    - pending_unplug
                    - self._unusable_plugged_bytes()
                    - self.target_plugged_bytes()
                    - spare_bytes
                )
                if race is not None:
                    self._resolve_and_record(race, "serialized", parent=span)
                if excess > 0:
                    unplug_bytes = excess
                    # Fire-and-forget: reclamation proceeds in the background
                    # while the agent keeps serving requests.
                    self._spawn_background(
                        self._unplug_async(excess, parent=span),
                        name=f"{self.vm.name}-shrink",
                    )
            if evicted:
                self.shrink_events.append(
                    ShrinkEvent(
                        time_ns=now,
                        evicted=evicted,
                        unplug_requested_bytes=unplug_bytes,
                        policy=self.lifecycle.name,
                    )
                )
            return evicted
        finally:
            span.close(evicted=evicted, unplug_requested_bytes=unplug_bytes)

    def _spare_bytes(self) -> int:
        return self.policy.spare_slots * max(
            state.deployment.partition_bytes
            for state in self.functions.values()
        )

    def _unplug_async(
        self,
        size_bytes: int,
        deferred_attempt: int = 0,
        parent: SpanLike = NULL_SPAN,
    ):
        """Issue one unplug and track it until the device completes it.

        A shortfall (partial unplug) is re-queued through the deferred-
        reclamation queue when the resilience policy allows, and dropped
        (with a ``dropped`` recovery record) once the attempt cap is hit.
        """
        start = self.sim.now
        span = self.obs.span(
            "agent.unplug",
            parent=parent,
            requested_bytes=size_bytes,
            deferred_attempt=deferred_attempt,
        )
        self._pending_unplug_bytes += size_bytes
        try:
            unplug = self.vm.request_unplug(size_bytes, parent=span)
            yield unplug
        finally:
            self._pending_unplug_bytes -= size_bytes
        result = unplug.value
        shortfall = result.requested_bytes - result.unplugged_bytes
        span.close(shortfall_bytes=shortfall)
        policy = self.resilience
        if shortfall > 0 and policy.deferred_attempts > 0:
            if deferred_attempt < policy.deferred_attempts:
                self._defer_reclaim(shortfall, deferred_attempt + 1, parent=span)
            else:
                self.recovery.record(
                    site="agent.reclaim",
                    path="dropped",
                    detect_ns=start,
                    resolve_ns=self.sim.now,
                    attempts=deferred_attempt,
                    parent=span,
                )
        elif deferred_attempt > 0 and shortfall == 0:
            self.recovery.record(
                site="agent.reclaim",
                path="deferred-done",
                detect_ns=start,
                resolve_ns=self.sim.now,
                attempts=deferred_attempt,
                parent=span,
            )
        return result

    def _defer_reclaim(
        self, size_bytes: int, attempt: int, parent: SpanLike = NULL_SPAN
    ) -> None:
        entry = _DeferredReclaim(
            size_bytes=size_bytes,
            attempt=attempt,
            queued_ns=self.sim.now,
            parent=parent,
        )
        self._deferred.append(entry)
        self.recovery.record(
            site="agent.reclaim",
            path="deferred",
            detect_ns=entry.queued_ns,
            resolve_ns=entry.queued_ns,
            attempts=attempt,
            parent=parent,
        )
        self._spawn_background(
            self._deferred_retry(entry), name=f"{self.vm.name}-deferred-reclaim"
        )

    def _deferred_retry(self, entry: _DeferredReclaim):
        yield Timeout(self.resilience.deferred_backoff_for(entry.attempt))
        if entry in self._deferred:
            self._deferred.remove(entry)
        if self.degraded:
            return None
        # Recompute how much is still actually excess: demand may have
        # grown (spawns reused the unreclaimed memory) or shrunk further
        # since the shortfall was queued — never unplug past the target.
        excess = (
            self.vm.elastic_bytes
            - self._pending_unplug_bytes
            - self._unusable_plugged_bytes()
            - self.target_plugged_bytes()
            - self._spare_bytes()
        )
        request = min(entry.size_bytes, max(0, excess))
        if request <= 0:
            # Demand came back for the memory; the shortfall healed itself.
            self.recovery.record(
                site="agent.reclaim",
                path="healed",
                detect_ns=entry.queued_ns,
                resolve_ns=self.sim.now,
                attempts=entry.attempt,
                parent=entry.parent,
            )
            return None
        yield from self._unplug_async(
            request, deferred_attempt=entry.attempt, parent=entry.parent
        )
        return None

    # ------------------------------------------------------------------
    # Fault accounting helpers
    # ------------------------------------------------------------------
    def _resolve_and_record(
        self,
        fault: InjectedFault,
        path: str,
        attempts: int = 1,
        parent: SpanLike = NULL_SPAN,
    ) -> None:
        self.faults.resolve(fault, path, attempts=attempts)
        self.recovery.record(
            site=fault.site,
            path=path,
            detect_ns=fault.time_ns,
            resolve_ns=self.sim.now,
            attempts=attempts,
            parent=parent,
        )

    def _resolve_all(
        self, pending: List[InjectedFault], path: str, attempts: int
    ) -> None:
        for fault in pending:
            self.faults.resolve(fault, path, attempts=attempts)
        pending.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def live_instances(self, function_name: Optional[str] = None) -> int:
        """Live containers for one function (or all)."""
        if function_name is not None:
            return self._state(function_name).live
        return sum(state.live for state in self.functions.values())

    def idle_instances(self, function_name: str) -> int:
        """Currently idle containers for one function."""
        return len(self._state(function_name).idle)

    def cold_start_count(self, function_name: str) -> int:
        """Cold starts performed for one function."""
        return self._state(function_name).cold_starts

    def deferred_reclaims(self) -> int:
        """Shortfalls currently queued for deferred reclamation."""
        return len(self._deferred)
