"""Invocation records produced by the runtime (inputs to every latency
metric in the evaluation)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["InvocationRecord"]


@dataclass
class InvocationRecord:
    """The life of one request, timestamped by the runtime.

    ``latency_ns`` is end-to-end: arrival at the runtime to response,
    including queueing, cold-start work and any plug latency on the
    critical path — exactly what Figures 9 and 10 report.
    """

    function: str
    arrival_ns: int
    start_ns: int
    end_ns: int
    cold: bool
    ok: bool
    error: str = ""

    @property
    def latency_ns(self) -> int:
        """End-to-end latency (arrival → completion)."""
        return self.end_ns - self.arrival_ns

    @property
    def queue_ns(self) -> int:
        """Time spent before a container started working on the request."""
        return self.start_ns - self.arrival_ns
