"""Invocation and eviction records produced by the runtime (inputs to
every latency metric in the evaluation, and to trace-report's
cold-start attribution)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["InvocationRecord", "EvictionRecord"]


@dataclass
class InvocationRecord:
    """The life of one request, timestamped by the runtime.

    ``latency_ns`` is end-to-end: arrival at the runtime to response,
    including queueing, cold-start work and any plug latency on the
    critical path — exactly what Figures 9 and 10 report.
    """

    function: str
    arrival_ns: int
    start_ns: int
    end_ns: int
    cold: bool
    ok: bool
    error: str = ""

    @property
    def cold_start(self) -> bool:
        """Whether serving this request required a cold start."""
        return self.cold

    @property
    def latency_ns(self) -> int:
        """End-to-end latency (arrival → completion)."""
        return self.end_ns - self.arrival_ns

    @property
    def queue_ns(self) -> int:
        """Time spent before a container started working on the request."""
        return self.start_ns - self.arrival_ns


@dataclass(frozen=True)
class EvictionRecord:
    """One container eviction, attributed to the policy that chose it.

    ``policy`` and ``rank`` say *which* lifecycle policy picked the
    victim and where in its eviction order the victim sat (0 = most
    evictable), so trace-report can tie later cold starts of
    ``function`` back to the eviction decision that caused them.
    ``pressure`` marks fleet-watermark sheds (as opposed to routine
    keep-alive expiry).
    """

    time_ns: int
    function: str
    cid: int
    policy: str
    rank: int
    idle_ns: int
    memory_bytes: int
    pressure: bool = False
