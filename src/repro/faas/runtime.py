"""The OpenWhisk-based serverless controller (Section 5.5).

The runtime owns one Agent per VM, replays invocation traces against
them, and collects :class:`~repro.faas.records.InvocationRecord`s for
the latency metrics.  It is deliberately thin: scaling decisions live in
the Agent; the runtime's job is dispatch and bookkeeping.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import FaasError
from repro.faas.agent import Agent
from repro.faas.records import InvocationRecord
from repro.sim.engine import Process, Simulator, Timeout
from repro.workloads.traces import InvocationTrace

__all__ = ["FaasRuntime"]


class FaasRuntime:
    """Trace-driven controller over one or more agents."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.agents: Dict[str, Agent] = {}
        self.records: List[InvocationRecord] = []
        self._dispatchers: List[Process] = []

    def register_agent(self, agent: Agent) -> Agent:
        """Attach an agent (one per VM)."""
        name = agent.vm.name
        if name in self.agents:
            raise FaasError(f"agent for VM {name} already registered")
        self.agents[name] = agent
        return agent

    # ------------------------------------------------------------------
    # Trace replay
    # ------------------------------------------------------------------
    def drive(self, agent: Agent, trace: InvocationTrace) -> Process:
        """Replay ``trace`` against ``agent`` (requests run concurrently)."""
        if agent.vm.name not in self.agents:
            self.register_agent(agent)
        dispatcher = self.sim.spawn(
            self._dispatch_loop(agent, trace),
            name=f"dispatch-{trace.function_name}",
        )
        self._dispatchers.append(dispatcher)
        return dispatcher

    def _dispatch_loop(self, agent: Agent, trace: InvocationTrace):
        for arrival_ns in trace:
            delay = arrival_ns - self.sim.now
            if delay > 0:
                yield Timeout(delay)
            self.sim.spawn(
                self._handle_one(agent, trace.function_name, arrival_ns),
                name=f"req-{trace.function_name}",
            )
        return None

    def _handle_one(self, agent: Agent, function_name: str, arrival_ns: int):
        record = yield from agent.handle(function_name, arrival_ns)
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until_ns: Optional[int] = None) -> int:
        """Run the simulation (bounded, because recyclers loop forever)."""
        return self.sim.run(until=until_ns)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def records_for(self, function_name: str) -> List[InvocationRecord]:
        """Completed records for one function, oldest first."""
        return [r for r in self.records if r.function == function_name]

    def successful_records(
        self, function_name: Optional[str] = None
    ) -> List[InvocationRecord]:
        """Successful invocations (the population Figure 9 reports on)."""
        return [
            r
            for r in self.records
            if r.ok and (function_name is None or r.function == function_name)
        ]

    @property
    def failure_count(self) -> int:
        """Failed invocations across every function."""
        return sum(1 for r in self.records if not r.ok)
