"""The serverless runtime: controller, in-VM agent, containers, policy.

Implements the OpenWhisk-based integration of Section 4.1: scale-up
couples container spawn with a plug request sized to the function's
memory limit; scale-down couples keep-alive eviction with an unplug
request for the freed memory.
"""

from repro.faas.agent import Agent, FunctionDeployment, ShrinkEvent
from repro.faas.container import Container, ContainerState
from repro.faas.lifecycle import (
    ContainerStats,
    EvictionPolicy,
    get_policy,
    policy_names,
    register_policy,
    registered_policies,
)
from repro.faas.policy import DeploymentMode, KeepAlivePolicy
from repro.faas.records import EvictionRecord, InvocationRecord
from repro.faas.runtime import FaasRuntime

__all__ = [
    "Agent",
    "FunctionDeployment",
    "ShrinkEvent",
    "Container",
    "ContainerState",
    "ContainerStats",
    "EvictionPolicy",
    "EvictionRecord",
    "DeploymentMode",
    "KeepAlivePolicy",
    "InvocationRecord",
    "FaasRuntime",
    "get_policy",
    "policy_names",
    "register_policy",
    "registered_policies",
]
