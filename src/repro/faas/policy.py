"""Scaling policy knobs plus the deployment-mode re-export.

``DeploymentMode`` lives in :mod:`repro.modes` now (a thin alias over
the string-keyed backend registry); it is re-exported here because the
serverless layer is where most callers historically imported it from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.modes import DeploymentMode
from repro.units import SEC

__all__ = ["KeepAlivePolicy", "DeploymentMode"]


@dataclass(frozen=True)
class KeepAlivePolicy:
    """Idle-container recycling policy (Section 5.5).

    Containers idle longer than ``keep_alive_ns`` are evicted by a
    recycler that runs every ``recycle_interval_ns`` (the paper uses a
    120 s keep-alive for the interference experiment).

    ``spare_slots`` keeps that many instance-slots' worth of memory
    plugged past the target when shrinking — the idle-buffer idea of the
    memory-harvesting line of work the paper cites ([28]): the next cold
    start skips its plug entirely (and, under HotMem, attaches to an
    already-populated partition), trading host memory for cold-start
    latency.

    ``eviction`` names the :mod:`repro.faas.lifecycle` policy that
    orders evictions within a recycle pass (``ttl``, the default, is
    the historical pool-scan order; see ``docs/policies.md``).  The
    keep-alive window decides *when* a container becomes evictable; the
    eviction policy decides *which order* evictable containers die in.
    """

    keep_alive_ns: int = 120 * SEC
    recycle_interval_ns: int = 15 * SEC
    spare_slots: int = 0
    eviction: str = "ttl"

    def __post_init__(self) -> None:
        if self.keep_alive_ns < 0:
            raise ConfigError("keep_alive must be non-negative")
        if self.recycle_interval_ns <= 0:
            raise ConfigError("recycle interval must be positive")
        if self.spare_slots < 0:
            raise ConfigError("spare_slots must be non-negative")
        # Fail fast on unknown policy names (the agent would otherwise
        # only notice at construction time, deep inside a sweep cell).
        from repro.faas.lifecycle import get_policy

        get_policy(self.eviction)
