"""Pluggable container-lifecycle policies: one eviction engine.

Before this module existed, "which idle container dies next" was decided
in three unrelated places: the :class:`~repro.faas.agent.Agent`'s
recycler hard-coded a TTL scan over its idle pools, the fleet pressure
monitor blindly nudged every resident recycler, and
:class:`~repro.faas.policy.KeepAlivePolicy` was only a knob bag.  HotMem
makes reclaiming an idle instance's partition cheap, which turns
keep-alive from a fixed TTL into a real density-vs-cold-start trade-off
— and the container-caching literature (GreedyDual keep-alive, CLOUD'21)
shows frequency/size-aware eviction beats plain TTL.  Neither was
expressible while the decision was scattered.

This module is the one place that decision lives now:

* :class:`ContainerStats` is the structured per-candidate view every
  policy ranks over — idle time, invocation count and frequency, memory
  footprint, spawn cost, and the pool position the historical recycler
  ordered by;
* :class:`EvictionPolicy` is the contract: ``rank(candidates, now_ns)``
  returns the candidates in eviction order (most evictable first), and
  the :meth:`~EvictionPolicy.victims` template method applies the
  keep-alive threshold and an optional byte budget around it;
* a string-keyed registry (mirroring :mod:`repro.modes`) maps policy
  names to classes; :func:`get_policy` hands out a **fresh instance** per
  call so stateful policies (greedy-dual's inflation clock) never share
  state between agents;
* the built-ins: ``ttl`` (the default — byte-identical to the
  pre-refactor recycler, golden-gated), ``rand``, ``least-used``,
  ``max-mem``, and ``greedy-dual`` (CLOUD'21-style priority =
  clock + frequency × cost / size).

Every caller goes through this layer: the agent's routine recycler and
the fleet's pressure evictions rank through the same policy object, so
under-pressure shedding uses the same ordering as routine recycling.
The idle-pool *reuse* order (LIFO vs FIFO) is a policy property too
(:attr:`EvictionPolicy.reuse`); a
:class:`~repro.faas.agent.FunctionDeployment` may still pin its own.

See ``docs/policies.md`` for the contract and an add-a-policy recipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple, Type, Union

from repro.errors import ConfigError, FaasError
from repro.sim.rng import make_rng
from repro.units import SEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faas.container import Container

__all__ = [
    "ContainerStats",
    "EvictionPolicy",
    "TtlPolicy",
    "RandomPolicy",
    "LeastUsedPolicy",
    "MaxMemPolicy",
    "GreedyDualPolicy",
    "register_policy",
    "get_policy",
    "policy_names",
    "registered_policies",
    "resolve_policies",
]


@dataclass(frozen=True)
class ContainerStats:
    """The structured view of one eviction candidate.

    Policies rank over these, never over raw containers: the stats are
    snapshotted atomically (no yields) at the start of a recycle pass,
    so a policy can never observe a container that went busy mid-pass.
    ``pool_index`` is the historical recycler's scan position (function
    insertion order, then idle-list order) — the ``ttl`` policy orders
    by exactly this, which is what makes it byte-identical to the
    pre-refactor recycler.
    """

    #: The live container handle (excluded from equality/ordering).
    container: "Container" = field(compare=False)
    function: str = ""
    cid: int = 0
    #: How long the candidate has been idle at snapshot time.
    idle_ns: int = 0
    #: Completed invocations over the container's whole life.
    invocations: int = 0
    #: Age since cold start (denominator of :attr:`frequency`).
    lifetime_ns: int = 0
    #: Memory recycling this candidate frees (its partition, block-rounded).
    memory_bytes: int = 0
    #: What a replacement cold start costs (CPU; the re-imposed latency).
    spawn_cost_ns: int = 0
    #: Scan position of the pre-refactor recycler (function order, then
    #: idle-pool order).
    pool_index: int = 0

    @property
    def frequency_hz(self) -> float:
        """Invocations per second of lifetime (0 for a newborn)."""
        if self.lifetime_ns <= 0:
            return 0.0
        return self.invocations * SEC / self.lifetime_ns


class EvictionPolicy:
    """Ranks idle containers for eviction.

    Subclasses set :attr:`name` (the registry key), optionally
    :attr:`reuse` (the idle-pool order this policy wants), and implement
    :meth:`rank`.  ``rank`` must return a permutation of its input —
    eligibility (keep-alive threshold, byte budget) is
    :meth:`victims`'s job, ordering is the policy's.
    """

    #: Registry key; subclasses must override with a lowercase string.
    name: str = ""
    #: Idle-pool reuse order: ``"lifo"`` (stack; coldest instances age
    #: out, the OpenWhisk default) or ``"fifo"`` (rotate through every
    #: instance, keeping the whole pool warm).
    reuse: str = "lifo"

    def rank(
        self, candidates: Sequence[ContainerStats], now_ns: int
    ) -> List[ContainerStats]:
        """Candidates in eviction order (most evictable first).

        Must return a permutation of ``candidates``; must not mutate it.
        """
        raise NotImplementedError

    def victims(
        self,
        candidates: Sequence[ContainerStats],
        now_ns: int,
        min_idle_ns: int,
        need_bytes: Optional[int] = None,
    ) -> List[ContainerStats]:
        """The containers this pass evicts, in eviction order.

        Filters to candidates idle at least ``min_idle_ns``, ranks the
        survivors, and — when ``need_bytes`` is given (pressure
        shedding) — stops once the evicted memory covers the budget.
        Validates the policy contract: only idle candidates are ever
        ranked, and ``rank`` returned a permutation of its input.
        """
        for stats in candidates:
            if not stats.container.is_idle:
                raise FaasError(
                    f"policy {self.name!r} offered non-idle container "
                    f"{stats.cid} ({stats.container.state.value})"
                )
        eligible = [s for s in candidates if s.idle_ns >= min_idle_ns]
        if not eligible:
            return []
        ranked = self.rank(eligible, now_ns)
        if len(ranked) != len(eligible) or {id(s) for s in ranked} != {
            id(s) for s in eligible
        }:
            raise FaasError(
                f"policy {self.name!r} rank() did not return a "
                f"permutation of its candidates"
            )
        if need_bytes is None:
            return ranked
        chosen: List[ContainerStats] = []
        freed = 0
        for stats in ranked:
            if freed >= need_bytes:
                break
            chosen.append(stats)
            freed += stats.memory_bytes
        return chosen

    def note_eviction(self, stats: ContainerStats, now_ns: int) -> None:
        """Hook: called once per actually-evicted container.

        Stateless policies ignore it; greedy-dual advances its
        inflation clock here.
        """

    def __repr__(self) -> str:
        return f"<EvictionPolicy {self.name}>"


# ----------------------------------------------------------------------
# Registry (mirrors repro.modes.registry, but keyed to *classes*: every
# get_policy() call returns a fresh instance so stateful policies never
# leak ranking state between agents or sweep cells).
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[EvictionPolicy]] = {}


def register_policy(
    cls: Type[EvictionPolicy], replace: bool = False
) -> Type[EvictionPolicy]:
    """Register a policy class under ``cls.name``.

    Validates the declarative contract; pass ``replace=True`` to
    overwrite an existing registration (tests).  Usable as a decorator.
    """
    name = cls.name
    if not isinstance(name, str) or not name or name != name.lower():
        raise ConfigError(
            f"policy name must be a non-empty lowercase string: {name!r}"
        )
    if cls.reuse not in ("lifo", "fifo"):
        raise ConfigError(f"{name}: unknown reuse order {cls.reuse!r}")
    if name in _REGISTRY and not replace:
        raise ConfigError(f"eviction policy {name!r} already registered")
    _REGISTRY[name] = cls
    return cls


def get_policy(policy: Union[str, EvictionPolicy]) -> EvictionPolicy:
    """Resolve a policy by name (fresh instance); instances pass through."""
    if isinstance(policy, EvictionPolicy):
        return policy
    try:
        return _REGISTRY[policy]()
    except (KeyError, TypeError):
        raise ConfigError(
            f"unknown eviction policy {policy!r} "
            f"(registered: {', '.join(policy_names())})"
        ) from None


def policy_names() -> Tuple[str, ...]:
    """Registered policy names, in registration order."""
    return tuple(_REGISTRY)


def registered_policies() -> Tuple[EvictionPolicy, ...]:
    """One fresh instance per registered policy, in registration order."""
    return tuple(cls() for cls in _REGISTRY.values())


def resolve_policies(
    policies: Iterable[Union[str, EvictionPolicy]],
) -> Tuple[EvictionPolicy, ...]:
    """Resolve a sweep list (config field or CLI flag)."""
    resolved = tuple(get_policy(policy) for policy in policies)
    if not resolved:
        raise ConfigError("empty eviction-policy list")
    return resolved


# ----------------------------------------------------------------------
# Built-ins
# ----------------------------------------------------------------------
@register_policy
class TtlPolicy(EvictionPolicy):
    """The pre-refactor recycler: evict in pool-scan order.

    Ordering is by :attr:`ContainerStats.pool_index` — function
    insertion order, then idle-list position — which reproduces the
    historical ``for state / for container in state.idle`` scan exactly
    (golden-gated in ``tests/faas/test_lifecycle.py``).
    """

    name = "ttl"

    def rank(
        self, candidates: Sequence[ContainerStats], now_ns: int
    ) -> List[ContainerStats]:
        return sorted(candidates, key=lambda s: s.pool_index)


@register_policy
class RandomPolicy(EvictionPolicy):
    """Uniform-random eviction order (the RAND baseline).

    Deterministic for a fixed pass: the shuffle draws from a seeded
    stream keyed by the pass time and candidate set, so reruns and
    worker-sharded sweeps stay byte-identical.
    """

    name = "rand"

    def rank(
        self, candidates: Sequence[ContainerStats], now_ns: int
    ) -> List[ContainerStats]:
        order = list(candidates)
        cids = ",".join(str(s.cid) for s in order)
        rng = make_rng(now_ns, f"lifecycle/rand/{cids}")
        rng.shuffle(order)
        return order


@register_policy
class LeastUsedPolicy(EvictionPolicy):
    """Evict the least-invoked container first (LEAST_USED baseline).

    Ties break by pool position, so equal-use candidates fall back to
    the TTL scan order.
    """

    name = "least-used"

    def rank(
        self, candidates: Sequence[ContainerStats], now_ns: int
    ) -> List[ContainerStats]:
        return sorted(candidates, key=lambda s: (s.invocations, s.pool_index))


@register_policy
class MaxMemPolicy(EvictionPolicy):
    """Evict the largest container first (MAX_MEM baseline).

    Frees the most memory per eviction; ties break by pool position.
    """

    name = "max-mem"

    def rank(
        self, candidates: Sequence[ContainerStats], now_ns: int
    ) -> List[ContainerStats]:
        return sorted(candidates, key=lambda s: (-s.memory_bytes, s.pool_index))


@register_policy
class GreedyDualPolicy(EvictionPolicy):
    """GreedyDual keep-alive (CLOUD'21 container caching).

    Each candidate gets ``priority = clock + frequency × cost / size``:
    frequently-invoked containers whose cold start is expensive relative
    to the memory they hold are kept; cold, large, cheap-to-respawn ones
    go first.  The inflation ``clock`` rises to each victim's priority
    on eviction, so long-idle containers cannot squat on inherited
    priority forever — the classic aging mechanism of the GreedyDual
    family.  Stateful: every agent gets its own instance (and its own
    clock) through :func:`get_policy`.
    """

    name = "greedy-dual"

    def __init__(self) -> None:
        self._clock = 0.0

    def priority(self, stats: ContainerStats) -> float:
        """The keep-priority of one candidate (higher = keep longer)."""
        size = max(1, stats.memory_bytes)
        # Frequency in Hz keeps cost/size dimensionally stable across
        # function mixes; +1 counts the cold start that built the
        # container so a newborn never has priority exactly clock.
        value = (stats.invocations + 1) * stats.frequency_hz
        return self._clock + (1.0 + value) * stats.spawn_cost_ns / size

    def rank(
        self, candidates: Sequence[ContainerStats], now_ns: int
    ) -> List[ContainerStats]:
        return sorted(
            candidates, key=lambda s: (self.priority(s), s.pool_index)
        )

    def note_eviction(self, stats: ContainerStats, now_ns: int) -> None:
        self._clock = max(self._clock, self.priority(stats))
