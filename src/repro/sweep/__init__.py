"""``repro.sweep`` — the declarative sweep engine behind every experiment.

Three layers:

* :mod:`repro.sweep.grid` — axes → frozen :class:`Cell`\\ s with stable
  ids, plus the canonical payload encoding used to prove worker-count
  invariance;
* :mod:`repro.sweep.runner` — the serial and fork-sharded cell runners
  whose merge order (cell index) makes result payloads *and* exported
  trace/metric digests byte-identical for any worker count, and the
  ambient :class:`RunContext`/:class:`SweepReport` that carry the CLI's
  cross-cutting ``--sanitize``/``--trace``/``--workers`` flags;
* :mod:`repro.sweep.cli` — experiment self-registration into the
  declarative dispatch table consumed by ``python -m repro.experiments``.

See ``docs/sweeps.md`` for the grid model, the determinism contract,
and the recipe for adding an experiment.
"""

from repro.sweep.cli import ExperimentSpec, register_experiment, registry
from repro.sweep.grid import (
    Cell,
    CellResult,
    SweepGrid,
    canonical,
    payload_digest,
)
from repro.sweep.runner import (
    CellOutcome,
    RunContext,
    SweepReport,
    ambient_context,
    ambient_report,
    collecting,
    execute_cell,
    run_sweep,
)

__all__ = [
    # grid
    "Cell",
    "CellResult",
    "SweepGrid",
    "canonical",
    "payload_digest",
    # runner
    "CellOutcome",
    "RunContext",
    "SweepReport",
    "ambient_context",
    "ambient_report",
    "collecting",
    "execute_cell",
    "run_sweep",
    # registration
    "ExperimentSpec",
    "register_experiment",
    "registry",
]
