"""Declarative sweep grids: axes → frozen cells with stable ids.

Every experiment in this repository is a sweep: some cross-product of
deployment modes, seeds and scenario parameters, where each point builds
a *fresh* simulator, runs it to completion, and reduces the per-cell
measurements into a result table.  Before :mod:`repro.sweep`, each of
the ~20 experiment modules hand-rolled that loop; now the loop is data.

A :class:`SweepGrid` declares the axes (``grid.axis("mode", names)``)
and materialises the cross-product as a tuple of frozen :class:`Cell`
objects, ordered row-major in declaration order — the *cell order* that
every runner (serial or sharded) merges results back into, which is what
makes output byte-identical for any worker count.  Ragged sweeps whose
points are not a cross-product (density's per-mode ``admitted..1``
ranges) enumerate their cells explicitly via :meth:`SweepGrid.explicit`.

Cells carry only plain, picklable values (strings, numbers, tuples) so
they can cross a process boundary to a shard worker; anything heavier
(mode backends, cost models) is resolved inside the cell function from
the registry or the shared config.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Cell",
    "CellResult",
    "SweepGrid",
    "canonical",
    "payload_digest",
]


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


@dataclass(frozen=True)
class Cell:
    """One point of a sweep: ordered (axis, value) pairs plus identity.

    ``index`` is the cell's position in grid order (the deterministic
    merge key); ``cell_id`` is a stable human-readable id derived only
    from the axis values, so the same logical cell keeps the same id
    across code revisions that do not change the grid.
    """

    index: int
    cell_id: str
    params: Tuple[Tuple[str, Any], ...]

    def __getitem__(self, name: str) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        raise KeyError(f"cell {self.cell_id!r} has no axis {name!r}")

    def get(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def as_dict(self) -> Dict[str, Any]:
        """The cell's parameters as a plain dict (axis order preserved)."""
        return dict(self.params)

    def __repr__(self) -> str:
        return f"Cell({self.index}, {self.cell_id!r})"


@dataclass(frozen=True)
class CellResult:
    """One executed cell: its identity plus the cell function's payload.

    The payload is whatever the cell function returned — by contract a
    plain picklable value.  Reduction semantics are deterministic by
    construction: runners hand experiments the ``CellResult`` list in
    cell order regardless of execution order, so any fold over it is
    worker-count invariant.
    """

    index: int
    cell_id: str
    params: Tuple[Tuple[str, Any], ...]
    payload: Any

    @classmethod
    def of(cls, cell: Cell, payload: Any) -> "CellResult":
        return cls(cell.index, cell.cell_id, cell.params, payload)

    def __getitem__(self, name: str) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        raise KeyError(f"cell {self.cell_id!r} has no axis {name!r}")


class SweepGrid:
    """Declarative mode × seed × parameter grid.

    >>> grid = SweepGrid("chaos").axis("mode", ("vanilla", "hotmem")) \\
    ...                          .axis("rate", (0.0, 0.2))
    >>> [c.cell_id for c in grid.cells()]
    ['mode=vanilla/rate=0.0', 'mode=vanilla/rate=0.2', \
'mode=hotmem/rate=0.0', 'mode=hotmem/rate=0.2']

    Axes cross in declaration order (later axes vary fastest), matching
    the nesting order of the hand-rolled loops the grids replaced — so
    ported experiments keep their historical cell order, trace context
    order and rendered row order.
    """

    def __init__(self, name: str = "sweep") -> None:
        self.name = name
        self._axes: List[Tuple[str, Tuple[Any, ...]]] = []
        self._rows: Optional[Tuple[Tuple[Tuple[str, Any], ...], ...]] = None
        self._cells: Optional[Tuple[Cell, ...]] = None

    def axis(self, name: str, values: Sequence[Any]) -> "SweepGrid":
        """Add one axis; returns ``self`` for chaining."""
        if self._rows is not None:
            raise ValueError("cannot add axes to an explicit grid")
        if any(existing == name for existing, _ in self._axes):
            raise ValueError(f"duplicate axis {name!r}")
        values = tuple(values)
        if not values:
            raise ValueError(f"axis {name!r} has no values")
        self._axes.append((name, values))
        self._cells = None
        return self

    @classmethod
    def explicit(
        cls,
        axis_names: Sequence[str],
        rows: Sequence[Mapping[str, Any]],
        name: str = "sweep",
    ) -> "SweepGrid":
        """A ragged grid from explicit parameter rows (cell order = row
        order).  Every row must bind exactly ``axis_names``."""
        grid = cls(name)
        built: List[Tuple[Tuple[str, Any], ...]] = []
        names = tuple(axis_names)
        for row in rows:
            if set(row) != set(names):
                raise ValueError(
                    f"row keys {sorted(row)} do not match axes {list(names)}"
                )
            built.append(tuple((axis, row[axis]) for axis in names))
        grid._rows = tuple(built)
        return grid

    def axes(self) -> Tuple[str, ...]:
        """The axis names, in declaration order."""
        if self._rows is not None:
            return tuple(self._rows[0][i][0] for i in range(len(self._rows[0]))) if self._rows else ()
        return tuple(name for name, _ in self._axes)

    def _param_rows(self) -> Tuple[Tuple[Tuple[str, Any], ...], ...]:
        if self._rows is not None:
            return self._rows
        rows: List[Tuple[Tuple[str, Any], ...]] = [()]
        for axis_name, values in self._axes:
            rows = [
                row + ((axis_name, value),)
                for row in rows
                for value in values
            ]
        return tuple(rows)

    def cells(self) -> Tuple[Cell, ...]:
        """The grid's cells, frozen, in deterministic grid order."""
        if self._cells is None:
            built: List[Cell] = []
            for index, params in enumerate(self._param_rows()):
                cell_id = (
                    "/".join(
                        f"{axis}={_format_value(value)}"
                        for axis, value in params
                    )
                    or f"{self.name}"
                )
                built.append(Cell(index, cell_id, params))
            self._cells = tuple(built)
        return self._cells

    def __len__(self) -> int:
        return len(self.cells())

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells())

    def __repr__(self) -> str:
        return f"<SweepGrid {self.name} cells={len(self)}>"


# ----------------------------------------------------------------------
# Canonical payload encoding (worker-count invariance proofs)
# ----------------------------------------------------------------------
def canonical(value: Any) -> Any:
    """A JSON-encodable canonical form of an experiment payload.

    Dataclasses become dicts, mode backends and enums collapse to their
    ``.value``, dict keys are stringified, and floats keep full ``repr``
    precision — so two payloads are equal iff their canonical forms are,
    regardless of which process produced them (unpickled backend copies
    and registry singletons canonicalise identically).
    """
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return repr(value)
    if is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonical(getattr(value, f.name)) for f in fields(value)
        }
    if isinstance(value, Mapping):
        return {
            str(canonical(key)): canonical(item)
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(str(canonical(item)) for item in value)
    inner = getattr(value, "value", None)
    if isinstance(inner, (str, int, float)):
        return canonical(inner)
    return str(value)


def payload_digest(value: Any) -> str:
    """SHA-256 over the canonical JSON encoding of ``value``."""
    encoded = json.dumps(
        canonical(value), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(encoded.encode()).hexdigest()
