"""Self-registration of experiments into one declarative dispatch table.

Each experiment module ends with a :func:`register_experiment` call
naming itself, its one-line description, and either its ``(Config,
run)`` pair — from which the standard CLI runner (``--paper-scale`` /
``--modes`` handling, ``.render()``) is derived — or a custom ``render``
callable for the few non-standard entries (table1, ablations,
baselines).  ``python -m repro.experiments`` then builds its dispatch
table by importing the modules in canonical order and reading
:func:`registry`; the cross-cutting flags (``--modes``, ``--sanitize``,
``--trace``, ``--workers``) are applied uniformly by the CLI through
:func:`repro.sweep.runner.collecting` instead of being re-parsed per
experiment.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

__all__ = ["ExperimentSpec", "register_experiment", "registry"]

#: runner(paper_scale, modes) -> rendered output
RunnerFn = Callable[[bool, Optional[Tuple[str, ...]]], str]


@dataclass(frozen=True)
class ExperimentSpec:
    """One dispatch-table entry."""

    name: str
    description: str
    runner: RunnerFn
    #: Accepts ``--modes`` (its config sweeps deployment modes).
    mode_sweeping: bool = False


_REGISTRY: Dict[str, ExperimentSpec] = {}


def _config_runner(
    name: str,
    config_cls: type,
    run_fn: Callable[..., object],
    paper_scale_config: bool,
) -> RunnerFn:
    def runner(paper_scale: bool, modes: Optional[Tuple[str, ...]]) -> str:
        config = (
            config_cls.paper_scale()  # type: ignore[attr-defined]
            if paper_scale and paper_scale_config
            else config_cls()
        )
        if modes is not None:
            field_names = {f.name for f in dataclasses.fields(config_cls)}
            if "modes" not in field_names:
                raise SystemExit(
                    f"{name} does not sweep deployment modes "
                    f"(--modes not applicable)"
                )
            config = dataclasses.replace(config, modes=modes)
        result = run_fn(config)
        return result.render() if hasattr(result, "render") else str(result)

    return runner


def register_experiment(
    name: str,
    description: str,
    *,
    config: Optional[type] = None,
    run: Optional[Callable[..., object]] = None,
    render: Optional[RunnerFn] = None,
    mode_sweeping: bool = False,
    paper_scale_config: bool = True,
) -> None:
    """Register one experiment (idempotent per name: latest wins, so
    module re-imports under test harnesses stay harmless).

    Standard experiments pass ``config=`` and ``run=``; bespoke ones
    pass ``render=`` taking ``(paper_scale, modes)`` directly.
    """
    if render is not None:
        runner = render
    elif config is not None and run is not None:
        runner = _config_runner(name, config, run, paper_scale_config)
    else:
        raise ValueError(
            f"experiment {name!r} needs either render= or config=+run="
        )
    _REGISTRY[name] = ExperimentSpec(
        name=name,
        description=description,
        runner=runner,
        mode_sweeping=mode_sweeping,
    )


def registry() -> Dict[str, ExperimentSpec]:
    """The registered experiments, in registration order."""
    return dict(_REGISTRY)
