"""Serial and sharded cell runners with deterministic merge semantics.

:func:`run_sweep` executes every cell of a :class:`~repro.sweep.grid.SweepGrid`
through one cell function ``fn(config, cell) -> payload`` and returns
:class:`~repro.sweep.grid.CellResult` objects **in grid order**, no
matter how the cells were scheduled.  With ``workers > 1`` the cells are
partitioned across forked worker processes (each cell still runs in a
fresh simulator — experiments build their rigs inside the cell
function), and the parent merges outcomes back by cell index.  The
determinism contract, verified by ``tests/sweep/test_shard_invariance.py``:

* the result payloads are byte-identical for any worker count, and
* so are the exported trace/metrics digests, because each cell captures
  its trace in an isolated :func:`~repro.obs.session.scoped_session`
  whose contexts the parent renumbers into one global stream in cell
  order — exactly the stream a single serial session would have
  produced.

Cross-cutting CLI concerns ride along per cell: ``--sanitize`` attaches
the memory-state sanitizer inside each cell (and accounts its sweeps
deterministically), ``--trace`` captures per-cell spans/metrics.  The
experiments CLI wraps a whole invocation in :func:`collecting`, which
installs an ambient :class:`RunContext` plus a :class:`SweepReport`
accumulator; experiment ``run()`` functions stay context-free and the
flags are inherited uniformly.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.sweep.grid import Cell, CellResult, SweepGrid

__all__ = [
    "CellOutcome",
    "RunContext",
    "SweepReport",
    "ambient_context",
    "ambient_report",
    "collecting",
    "execute_cell",
    "run_sweep",
]

#: Cell function contract: ``fn(config, cell) -> picklable payload``.
CellFn = Callable[[Any, Cell], Any]


@dataclass(frozen=True)
class RunContext:
    """How a sweep invocation executes its cells.

    One frozen context serves a whole CLI invocation; experiments never
    see it — :func:`run_sweep` resolves the ambient one installed by
    :func:`collecting` (tests may also pass one explicitly).
    """

    #: Worker processes; <= 1 runs serially in-process.
    workers: int = 1
    #: Attach the memory-state sanitizer inside every cell.
    sanitize: bool = False
    #: Periodic sanitizer sweep interval (mm mutations).
    sanitize_every: int = 256
    #: Capture per-cell spans/metrics for a merged deterministic export.
    trace: bool = False


@dataclass
class CellOutcome:
    """Everything one executed cell sends back across a process boundary.

    Plain data only: the payload plus the cell's trace rows (context
    indices local to the cell, renumbered by the merger) and sanitizer
    accounting — so an 8-worker run carries exactly the same information
    home as a serial run.
    """

    index: int
    cell_id: str
    payload: Any
    #: Export records with cell-local ``context`` indices.
    trace_rows: List[Dict[str, object]] = field(default_factory=list)
    trace_contexts: int = 0
    trace_open_spans: int = 0
    sanitizer_sweeps: int = 0
    sanitizer_managers: int = 0


def _sanitizer_totals() -> Tuple[int, int]:
    from repro.analysis.sanitizer import installed_sanitizers

    sanitizers = installed_sanitizers()
    return sum(s.checks_run for s in sanitizers), len(sanitizers)


def _reset_run_ids() -> None:
    """Restart the process-global id allocators (pids, file ids,
    container ids) so every cell labels its entities exactly as a fresh
    process would.  Without this, a cell's labels depend on how many
    cells ran before it in the same process — which would make serial
    and sharded trace exports differ."""
    from repro.faas.container import reset_container_ids
    from repro.mm.mm_struct import reset_pid_counter
    from repro.mm.pagecache import reset_file_ids

    reset_pid_counter()
    reset_file_ids()
    reset_container_ids()


def execute_cell(
    fn: CellFn, config: Any, cell: Cell, context: RunContext
) -> CellOutcome:
    """Run one cell under the context's cross-cutting concerns.

    Sanitizer sweeps are counted as the delta this cell contributed
    (against the ambient installation when one is active — e.g. under
    ``pytest --sanitize`` — or a per-cell installation otherwise), so
    the aggregate is identical however cells are partitioned.
    """
    from repro.analysis import sanitizer as san

    install_state = None
    sweeps_before = managers_before = 0
    if context.sanitize:
        if san.is_installed():
            sweeps_before, managers_before = _sanitizer_totals()
        else:
            install_state = san.install(
                san.SanitizerConfig(every_n_events=context.sanitize_every)
            )
    outcome = CellOutcome(index=cell.index, cell_id=cell.cell_id, payload=None)
    _reset_run_ids()
    try:
        if context.trace:
            from repro.obs.export import context_rows
            from repro.obs.session import scoped_session

            with scoped_session() as session:
                outcome.payload = fn(config, cell)
                session.finalize()
                for obs_context in session.contexts:
                    outcome.trace_rows.extend(context_rows(obs_context))
                outcome.trace_contexts = len(session.contexts)
                outcome.trace_open_spans = session.open_spans()
        else:
            outcome.payload = fn(config, cell)
        if context.sanitize:
            sweeps_after, managers_after = _sanitizer_totals()
            outcome.sanitizer_sweeps = sweeps_after - sweeps_before
            outcome.sanitizer_managers = managers_after - managers_before
    finally:
        if install_state is not None:
            san.uninstall()
    return outcome


@dataclass
class SweepReport:
    """Cross-sweep accumulator for one CLI invocation.

    Absorbs cell outcomes in cell order (the runner guarantees the
    order), renumbering each cell's trace contexts into one global
    stream, and renders the same sanitizer/trace summaries the CLI
    printed before the sweep engine existed.
    """

    cells_run: int = 0
    sweeps_run: int = 0
    trace_rows: List[Dict[str, object]] = field(default_factory=list)
    trace_contexts: int = 0
    trace_open_spans: int = 0
    sanitizer_sweeps: int = 0
    sanitizer_managers: int = 0

    def absorb(self, outcome: CellOutcome) -> None:
        offset = self.trace_contexts
        for row in outcome.trace_rows:
            row["context"] = int(row["context"]) + offset  # type: ignore[arg-type]
        self.trace_rows.extend(outcome.trace_rows)
        self.trace_contexts += outcome.trace_contexts
        self.trace_open_spans += outcome.trace_open_spans
        self.sanitizer_sweeps += outcome.sanitizer_sweeps
        self.sanitizer_managers += outcome.sanitizer_managers
        self.cells_run += 1

    def sanitizer_line(self) -> str:
        """The CLI's post-run sanitizer summary (format is load-bearing:
        tests grep for the ``no violations`` suffix)."""
        return (
            f"[sanitizer: {self.sanitizer_sweeps} sweeps across "
            f"{self.sanitizer_managers} guest memory manager(s), "
            f"no violations]"
        )

    def write_trace(self, path: str) -> "Any":
        """Write the merged trace export; returns a
        :class:`~repro.obs.export.TraceExportSummary`."""
        from repro.obs.export import write_rows

        return write_rows(
            self.trace_rows,
            path,
            contexts=self.trace_contexts,
            open_spans=self.trace_open_spans,
        )


_ambient_context: Optional[RunContext] = None
_ambient_report: Optional[SweepReport] = None


def ambient_context() -> RunContext:
    """The invocation-wide context, or serial defaults outside one."""
    return _ambient_context if _ambient_context is not None else RunContext()


def ambient_report() -> Optional[SweepReport]:
    """The active accumulator, if a :func:`collecting` block is open."""
    return _ambient_report


@contextmanager
def collecting(context: RunContext) -> Iterator[SweepReport]:
    """Install ``context`` as the ambient one and accumulate outcomes.

    The experiments CLI wraps each invocation in this; every
    :func:`run_sweep` under it inherits the flags and feeds the yielded
    :class:`SweepReport`.
    """
    global _ambient_context, _ambient_report
    prior = (_ambient_context, _ambient_report)
    _ambient_context = context
    _ambient_report = SweepReport()
    try:
        yield _ambient_report
    finally:
        _ambient_context, _ambient_report = prior


# ----------------------------------------------------------------------
# Shard workers (fork-based)
# ----------------------------------------------------------------------
#: Work table inherited by forked workers; only indices cross the pipe.
_WORK: Optional[Tuple[CellFn, Any, Sequence[Cell], RunContext]] = None


def _run_index(index: int) -> CellOutcome:
    assert _WORK is not None
    fn, config, cells, context = _WORK
    return execute_cell(fn, config, cells[index], context)


def _fork_pool_available() -> bool:
    import multiprocessing

    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return False
    return True


def _run_sharded(
    fn: CellFn, config: Any, cells: Sequence[Cell], context: RunContext
) -> List[CellOutcome]:
    import multiprocessing

    global _WORK
    mp = multiprocessing.get_context("fork")
    workers = min(context.workers, len(cells))
    # Workers execute cells one at a time; their own context is serial.
    cell_context = RunContext(
        workers=1,
        sanitize=context.sanitize,
        sanitize_every=context.sanitize_every,
        trace=context.trace,
    )
    _WORK = (fn, config, cells, cell_context)
    try:
        with mp.Pool(processes=workers) as pool:
            # chunksize=1 interleaves cells across workers; merge order
            # is by index regardless (map preserves input order).
            return pool.map(_run_index, range(len(cells)), chunksize=1)
    finally:
        _WORK = None


def run_sweep(
    grid: SweepGrid,
    fn: CellFn,
    config: Any,
    context: Optional[RunContext] = None,
) -> List[CellResult]:
    """Execute every cell of ``grid``; results come back in grid order.

    ``context`` falls back to the ambient one (see :func:`collecting`).
    Sharding is skipped when it could not be faithful: a single cell,
    no fork support, or an ambient tracing/sanitizer installation that
    only per-cell capture (``context.trace`` / ``context.sanitize``)
    would carry across a process boundary.
    """
    if context is None:
        context = ambient_context()
    cells = grid.cells()
    serial = context.workers <= 1 or len(cells) <= 1
    if not serial and not _fork_pool_available():  # pragma: no cover
        serial = True
    if not serial and not context.trace:
        from repro.obs.session import is_installed as obs_installed

        if obs_installed():
            # An ambient traced() session cannot see forked children;
            # run serially so its capture stays complete.
            serial = True
    if serial:
        outcomes = [
            execute_cell(fn, config, cell, context) for cell in cells
        ]
    else:
        outcomes = _run_sharded(fn, config, cells, context)
    report = ambient_report()
    if report is not None:
        for outcome in outcomes:
            report.absorb(outcome)
    return [
        CellResult(outcome.index, outcome.cell_id, cell.params, outcome.payload)
        for outcome, cell in zip(outcomes, cells)
    ]
