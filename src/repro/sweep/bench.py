"""Microbenchmarks over the sweep hot paths.

Each job times one layer the sweep engine leans on per cell — the
discrete-event loop, the untraced observability path, per-block
occupancy accounting, and the sweep runner itself (serial and sharded)
— and reports a throughput plus, for the untraced obs path, the *net*
bytes retained per operation (which must stay at zero: ``NO_OBS`` /
``NO_SCOPE`` / ``NULL_SPAN`` may not accumulate label dicts or span
objects when ``--trace`` is off).

The committed snapshot lives in ``BENCH_sweep.json`` at the repo root
(schema in ``docs/sweeps.md``); ``tools/bench.py`` regenerates it
(``--update``) and gates regressions against it (``--check``).
Wall-clock numbers are hardware-dependent, so the gate is soft — a job
fails only when it drops below ``min_ratio`` of the committed value —
while the bytes-per-op job is an absolute invariant and gates exactly.
"""

from __future__ import annotations

import gc
import json
import os
import platform
import sys
import time
import tracemalloc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.mm.block import BlockState, MemoryBlock
from repro.mm.owner import PageOwner
from repro.mm.zone import Zone, ZoneType
from repro.obs import NO_OBS
from repro.sim.engine import Simulator, Timeout
from repro.sweep.grid import SweepGrid
from repro.sweep.runner import RunContext, run_sweep
from repro.units import PAGES_PER_BLOCK

__all__ = [
    "BenchResult",
    "bench_engine",
    "bench_obs_untraced",
    "bench_mm_occupancy",
    "bench_policy_rank",
    "bench_rollup",
    "bench_sweep_runner",
    "run_all",
    "snapshot",
    "render_snapshot",
    "compare",
    "load_snapshot",
]

#: Schema version of ``BENCH_sweep.json``.
SNAPSHOT_VERSION = 1
#: Absolute ceiling for the untraced-obs retained-bytes job: the path
#: is allocation-free, so anything above rounding noise is a leak into
#: a tracer buffer or metrics registry.
MAX_UNTRACED_BYTES_PER_OP = 1.0
#: Absolute ceiling for rollup resident memory after 10**6 samples:
#: a 256-bucket series holds ~256 slotted bucket objects regardless of
#: sample count, so a quarter MiB is generous headroom — anything above
#: it means compaction stopped bounding the series.
MAX_ROLLUP_RESIDENT_BYTES = 256 * 1024


@dataclass(frozen=True)
class BenchResult:
    """One measured job: a value with a unit (``.../s`` or ``bytes/op``)."""

    name: str
    value: float
    unit: str


def _timed(fn: Callable[[], int]) -> float:
    """Run ``fn`` and return its reported op count per wall second."""
    gc.collect()
    started = time.perf_counter()
    ops = fn()
    elapsed = time.perf_counter() - started
    return ops / elapsed if elapsed > 0 else float(ops)


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------
def bench_engine(events: int = 100_000) -> BenchResult:
    """Events/sec through the calendar queue (the hottest repo loop)."""

    def job() -> int:
        sim = Simulator()

        def ticker():
            timeout = Timeout(10)
            for _ in range(events):
                yield timeout

        sim.run_process(ticker(), name="bench-ticker")
        return events

    return BenchResult("engine_events_per_s", _timed(job), "events/s")


def _obs_untraced_loop(ops: int) -> int:
    """The per-op bundle every traced call site pays when tracing is off."""
    scope = NO_OBS.scope(vm="vm-0", mode="hotmem", host="host-0")
    for index in range(ops):
        span = scope.span("driver.unplug_block", block=index)
        scope.inc("mm.blocks_unplugged")
        scope.observe("mm.unplug_latency_ns", 1_000)
        span.close()
    return ops


def bench_obs_untraced(
    ops: int = 200_000,
) -> Tuple[BenchResult, BenchResult]:
    """Untraced obs bundles/sec, plus net bytes *retained* per bundle.

    The retained-bytes figure is the satellite invariant: with tracing
    off the scope/span singletons must not hold onto anything, so the
    traced-memory delta across the loop divides out to ~0 bytes per op.
    """
    throughput = BenchResult(
        "obs_untraced_ops_per_s", _timed(lambda: _obs_untraced_loop(ops)), "ops/s"
    )
    gc.collect()
    tracemalloc.start()
    try:
        before, _ = tracemalloc.get_traced_memory()
        _obs_untraced_loop(ops)
        gc.collect()
        after, _ = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    net_per_op = max(0, after - before) / ops
    retained = BenchResult("obs_untraced_bytes_per_op", net_per_op, "bytes/op")
    return throughput, retained


def bench_mm_occupancy(
    rounds: int = 2_000, blocks: int = 16, chunk_pages: int = 4_096
) -> BenchResult:
    """Pages/sec through zone charge/uncharge (per-block accounting)."""

    def job() -> int:
        zone = Zone("bench", ZoneType.HOTMEM)
        for index in range(blocks):
            block = MemoryBlock(index)
            block.state = BlockState.ONLINE
            # The bench isolates the zone accounting layer, so blocks
            # are onlined by hand instead of through a manager.
            block.free_pages = PAGES_PER_BLOCK  # lint: allow[mm-encapsulation] bench rig setup
            zone.add_block(block)
        owner = PageOwner("bench-fn")
        pages = 0
        for _ in range(rounds):
            plan = zone.allocate(owner, chunk_pages)
            for block, count in plan.items():
                zone.release(owner, block, count)
            pages += 2 * chunk_pages
        return pages

    return BenchResult("mm_occupancy_pages_per_s", _timed(job), "pages/s")


def bench_policy_rank(
    rounds: int = 2_000, candidates: int = 64
) -> BenchResult:
    """``rank()`` calls/sec across every registered eviction policy.

    The recycler ranks its full idle pool on every pass (and on every
    fleet pressure tick), so ranking sits on the keepalive sweep's per-
    cell hot path.  The pool is synthetic but shaped like the keepalive
    experiment's (mixed sizes, frequencies and spawn costs).
    """
    from repro.faas.lifecycle import ContainerStats, registered_policies
    from repro.units import MIB, SEC

    class _IdleStub:
        is_idle = True

    stub = _IdleStub()
    pool = [
        ContainerStats(
            container=stub,  # type: ignore[arg-type]  (rank never touches it)
            function=f"f{index % 4}",
            cid=index,
            idle_ns=(index + 1) * SEC,
            invocations=(7 * index) % 23,
            lifetime_ns=(index + 2) * 3 * SEC,
            memory_bytes=(128 + 128 * (index % 5)) * MIB,
            spawn_cost_ns=(40 + 30 * (index % 7)) * 10**6,
            pool_index=index,
        )
        for index in range(candidates)
    ]

    def job() -> int:
        policies = registered_policies()
        ops = 0
        for round_index in range(rounds):
            now_ns = (round_index + 1) * SEC
            for policy in policies:
                policy.rank(pool, now_ns)
                ops += 1
        return ops

    return BenchResult("policy_rank_ops_per_s", _timed(job), "ops/s")


def _rollup_loop(samples: int, max_buckets: int):
    from repro.obs.rollup import RollupSeries

    series = RollupSeries("bench", kind="bench", max_buckets=max_buckets)
    for index in range(samples):
        series.record(index * 1_000, float(index & 1023))
    return series


def bench_rollup(
    samples: int = 1_000_000, max_buckets: int = 256
) -> Tuple[BenchResult, BenchResult]:
    """Rollup samples/sec, plus resident bytes after 10**6 samples.

    The resident-bytes figure is the streaming-telemetry invariant:
    compaction keeps a :class:`~repro.obs.rollup.RollupSeries` at
    O(buckets) memory no matter how many samples fold in, so the series
    retained after a million records must fit under an absolute ceiling
    (``MAX_ROLLUP_RESIDENT_BYTES``) that no sample-proportional
    representation could meet.
    """
    throughput = BenchResult(
        "rollup_samples_per_s",
        _timed(lambda: len(_rollup_loop(samples, max_buckets))),
        "samples/s",
    )
    gc.collect()
    tracemalloc.start()
    try:
        before, _ = tracemalloc.get_traced_memory()
        series = _rollup_loop(samples, max_buckets)
        gc.collect()
        after, _ = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    del series
    resident = BenchResult(
        "rollup_resident_bytes", float(max(0, after - before)), "bytes"
    )
    return throughput, resident


def _bench_cell(config: int, cell) -> int:
    """One sweep cell: a small simulator run (picklable for sharding)."""
    sim = Simulator()

    def ticker():
        timeout = Timeout(10)
        for _ in range(config):
            yield timeout
        return cell["index"]

    return sim.run_process(ticker(), name="bench-cell")


def bench_sweep_runner(
    cells: int = 8, events_per_cell: int = 5_000, workers: int = 1
) -> BenchResult:
    """Cells/sec through :func:`repro.sweep.run_sweep` end to end."""
    grid = SweepGrid("bench").axis("index", tuple(range(cells)))
    context = RunContext(workers=workers)

    def job() -> int:
        run_sweep(grid, _bench_cell, events_per_cell, context=context)
        return cells

    suffix = "serial" if workers <= 1 else "sharded"
    return BenchResult(f"sweep_cells_per_s_{suffix}", _timed(job), "cells/s")


def run_all() -> List[BenchResult]:
    """Run every job at its default size, in snapshot order."""
    obs_throughput, obs_retained = bench_obs_untraced()
    rollup_throughput, rollup_resident = bench_rollup()
    return [
        bench_engine(),
        obs_throughput,
        obs_retained,
        bench_mm_occupancy(),
        bench_policy_rank(),
        rollup_throughput,
        rollup_resident,
        bench_sweep_runner(workers=1),
        bench_sweep_runner(workers=2),
    ]


# ----------------------------------------------------------------------
# Snapshot + regression gate
# ----------------------------------------------------------------------
def snapshot(results: List[BenchResult]) -> Dict[str, object]:
    """The ``BENCH_sweep.json`` document for ``results``."""
    return {
        "version": SNAPSHOT_VERSION,
        "host": {
            "python": platform.python_version(),
            "platform": sys.platform,
            "cpus": os.cpu_count() or 1,
        },
        "jobs": {
            result.name: {"value": round(result.value, 2), "unit": result.unit}
            for result in results
        },
    }


def render_snapshot(doc: Dict[str, object]) -> str:
    """Deterministic serialization of a snapshot document."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def compare(
    current: List[BenchResult],
    committed: Dict[str, object],
    min_ratio: float = 0.5,
    max_bytes_per_op: float = MAX_UNTRACED_BYTES_PER_OP,
) -> List[str]:
    """Regressions of ``current`` against a committed snapshot.

    Returns one human-readable line per failure (empty list = pass).
    Throughput jobs (``.../s``) gate softly: a failure means dropping
    below ``min_ratio`` of the committed value, absorbing host-to-host
    variance.  Memory jobs (any non-throughput unit) gate *absolutely*
    against a per-job ceiling — ``bytes/op`` against
    ``max_bytes_per_op``, ``rollup_resident_bytes`` against
    ``MAX_ROLLUP_RESIDENT_BYTES`` — because boundedness invariants do
    not depend on hardware.
    """
    failures: List[str] = []
    jobs = committed.get("jobs")
    if not isinstance(jobs, dict):
        return ["snapshot has no 'jobs' table; regenerate with --update"]
    current_names = {result.name for result in current}
    for name in jobs:
        if name not in current_names:
            failures.append(
                f"{name}: in snapshot but not measured; regenerate with --update"
            )
    absolute_ceilings = {
        "obs_untraced_bytes_per_op": max_bytes_per_op,
        "rollup_resident_bytes": MAX_ROLLUP_RESIDENT_BYTES,
    }
    for result in current:
        entry = jobs.get(result.name)
        if not result.unit.endswith("/s"):
            ceiling = absolute_ceilings.get(result.name)
            if ceiling is None:
                failures.append(
                    f"{result.name}: absolute-gated unit "
                    f"{result.unit!r} has no registered ceiling; add one "
                    f"to compare()"
                )
            elif result.value > ceiling:
                failures.append(
                    f"{result.name}: {result.value:.2f} {result.unit} "
                    f"exceeds the absolute ceiling {ceiling:g} — the "
                    f"bounded-memory invariant broke"
                )
            continue
        if entry is None:
            failures.append(
                f"{result.name}: not in snapshot; regenerate with --update"
            )
            continue
        committed_value = float(entry["value"])
        if committed_value > 0 and result.value < committed_value * min_ratio:
            failures.append(
                f"{result.name}: {result.value:.0f} {result.unit} is below "
                f"{min_ratio:.0%} of the committed {committed_value:.0f}"
            )
    return failures


def load_snapshot(path: str) -> Optional[Dict[str, object]]:
    """Parse a committed snapshot; ``None`` when the file is absent."""
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
