"""HotMem/Squeezy reproduction: rapid VM memory reclamation for serverless.

A full-stack discrete-event simulation of the paper "Fast and Efficient
Memory Reclamation For Serverless MicroVMs" (HotMem): a Linux-shaped
guest memory manager, virtio-mem hot(un)plug, a Cloud-Hypervisor-shaped
VMM, the HotMem partition mechanism, and an OpenWhisk-shaped serverless
runtime — plus harnesses regenerating every table and figure of the
paper's evaluation.

Quick start::

    from repro import MicrobenchRig, MicrobenchSetup
    from repro.units import MIB

    rig = MicrobenchRig(MicrobenchSetup(mode="hotmem",
                                        total_bytes=3072 * MIB,
                                        partition_bytes=384 * MIB))
    print(rig.run_single_reclaim(768 * MIB).latency_ms, "ms")

See ``examples/`` for runnable end-to-end scenarios and ``benchmarks/``
for the per-figure reproduction harnesses.
"""

from repro.cluster import (
    AdmissionResult,
    ArbitrationPolicy,
    DensityArbiter,
    Fleet,
    TraceRouter,
    VmHandle,
    VmSpec,
)
from repro.core import (
    HotMemBackend,
    HotMemBootParams,
    HotMemManager,
    HotMemPartition,
    PartitionState,
)
from repro.experiments import (
    FunctionLoad,
    MicrobenchRig,
    MicrobenchSetup,
    ReclaimMeasurement,
    ServerlessRun,
    ServerlessScenario,
    run_scenario,
)
from repro.faas import (
    Agent,
    ContainerStats,
    DeploymentMode,
    EvictionPolicy,
    EvictionRecord,
    FaasRuntime,
    FunctionDeployment,
    InvocationRecord,
    KeepAlivePolicy,
    get_policy,
    policy_names,
    register_policy,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.faults.recovery import RecoveryEvent, RecoveryLog
from repro.host import HostMachine
from repro.modes import (
    DeploymentBackend,
    ReclaimDatapath,
    get_mode,
    register_mode,
    registered_modes,
    resolve_modes,
)
from repro.obs import (
    MetricsRegistry,
    ObsContext,
    ObsScope,
    ObsSession,
    Span,
    TraceReport,
    Tracer,
    build_report,
    export_session,
    load_report,
    read_trace,
    traced,
)
from repro.sim import CostModel, CpuCore, Event, Process, Simulator, Timeout
from repro.vmm import VirtualMachine, VmConfig
from repro.workloads import (
    TABLE1_FUNCTIONS,
    AzureTraceGenerator,
    FunctionSpec,
    InvocationTrace,
    Memhog,
    bursty_trace,
    get_function,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core (the paper's contribution)
    "HotMemBackend",
    "HotMemBootParams",
    "HotMemManager",
    "HotMemPartition",
    "PartitionState",
    # simulation substrate
    "Simulator",
    "Event",
    "Process",
    "Timeout",
    "CpuCore",
    "CostModel",
    # host + VMM
    "HostMachine",
    "VirtualMachine",
    "VmConfig",
    # cluster layer (provisioning, routing, density arbitration)
    "Fleet",
    "VmSpec",
    "VmHandle",
    "TraceRouter",
    "DensityArbiter",
    "ArbitrationPolicy",
    "AdmissionResult",
    # deployment-mode registry
    "DeploymentBackend",
    "ReclaimDatapath",
    "get_mode",
    "register_mode",
    "registered_modes",
    "resolve_modes",
    # serverless runtime
    "Agent",
    "ContainerStats",
    "DeploymentMode",
    "EvictionPolicy",
    "EvictionRecord",
    "FaasRuntime",
    "FunctionDeployment",
    "InvocationRecord",
    "KeepAlivePolicy",
    "get_policy",
    "policy_names",
    "register_policy",
    # workloads
    "TABLE1_FUNCTIONS",
    "FunctionSpec",
    "get_function",
    "Memhog",
    "AzureTraceGenerator",
    "InvocationTrace",
    "bursty_trace",
    # observability (spans, metrics, trace export + attribution)
    "Span",
    "Tracer",
    "MetricsRegistry",
    "ObsContext",
    "ObsScope",
    "ObsSession",
    "traced",
    "export_session",
    "read_trace",
    "TraceReport",
    "build_report",
    "load_report",
    # fault injection + recovery
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "ResiliencePolicy",
    "RecoveryEvent",
    "RecoveryLog",
    # experiment harnesses
    "MicrobenchRig",
    "MicrobenchSetup",
    "ReclaimMeasurement",
    "FunctionLoad",
    "ServerlessScenario",
    "ServerlessRun",
    "run_scenario",
]
