"""Invocation trace containers and summary statistics."""

from __future__ import annotations

from typing import Iterable, List

from repro.errors import ConfigError
from repro.units import SEC

__all__ = ["InvocationTrace"]


class InvocationTrace:
    """A sorted sequence of invocation arrival times for one function."""

    def __init__(self, function_name: str, arrivals_ns: Iterable[int]):
        self.function_name = function_name
        self.arrivals_ns: List[int] = sorted(int(t) for t in arrivals_ns)
        if self.arrivals_ns and self.arrivals_ns[0] < 0:
            raise ConfigError("trace contains negative arrival times")

    def __len__(self) -> int:
        return len(self.arrivals_ns)

    def __iter__(self):
        return iter(self.arrivals_ns)

    @property
    def duration_ns(self) -> int:
        """Time of the last arrival (0 for an empty trace)."""
        return self.arrivals_ns[-1] if self.arrivals_ns else 0

    def mean_rps(self) -> float:
        """Average request rate over the trace duration."""
        if not self.arrivals_ns or self.duration_ns == 0:
            return 0.0
        return len(self.arrivals_ns) / (self.duration_ns / SEC)

    def arrivals_in_window(self, start_ns: int, end_ns: int) -> int:
        """Number of arrivals in ``[start_ns, end_ns)``."""
        import bisect

        lo = bisect.bisect_left(self.arrivals_ns, start_ns)
        hi = bisect.bisect_left(self.arrivals_ns, end_ns)
        return hi - lo

    def peak_rps(self, window_s: float = 1.0) -> float:
        """Maximum request rate over any aligned window of ``window_s``."""
        if not self.arrivals_ns:
            return 0.0
        window_ns = int(window_s * SEC)
        counts = {}
        for t in self.arrivals_ns:
            counts[t // window_ns] = counts.get(t // window_ns, 0) + 1
        return max(counts.values()) / window_s

    def __repr__(self) -> str:
        return (
            f"<InvocationTrace {self.function_name} n={len(self)} "
            f"mean={self.mean_rps():.1f}rps peak={self.peak_rps():.0f}rps>"
        )
