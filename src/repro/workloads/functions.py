"""Serverless function models (Table 1 of the paper).

The evaluation uses four functions from FunctionBench and FaaSMem —
``Cnn`` (JPEG classification), ``Bert`` (ML inference), ``BFS`` (graph
breadth-first search) and ``HTML`` (a web service) — with user-assigned
vCPU and memory limits.  Those limits are reproduced verbatim; execution
times, footprints and cold-start costs are calibrated to typical values
for these workloads (the paper reports only the limits, not the raw
service times; see DESIGN.md on substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigError
from repro.units import MIB, MS, bytes_to_pages

__all__ = ["FunctionSpec", "TABLE1_FUNCTIONS", "get_function"]


@dataclass(frozen=True)
class FunctionSpec:
    """Static description of one serverless function.

    Attributes
    ----------
    name:
        Function identifier (lower-case).
    assigned_vcpus:
        vCPU weight from Table 1 (0.2–1.0); the agent derives the maximum
        instances per VM from it (``vm_vcpus / assigned_vcpus``).
    memory_limit_bytes:
        User-declared memory limit from Table 1; the HotMem partition
        size is this limit rounded up to whole memory blocks.
    exec_cpu_ns:
        CPU time one invocation consumes on its pinned vCPU.
    anon_footprint_bytes:
        Private (anonymous) memory an instance touches while serving.
    shared_deps_bytes:
        File-backed runtime/library dependencies (shared across
        instances through the page cache / shared partition).
    cold_start_cpu_ns:
        Container creation plus runtime initialization CPU cost.
    warm_start_cpu_ns:
        Dispatch overhead when reusing an idle container.
    warm_churn_bytes:
        Memory allocated and freed per warm invocation (request-scoped
        garbage).
    worker_processes:
        Processes per instance (a leader plus forked workers).  Serverless
        functions do not fork to *scale* (Section 4), but runtimes do fork
        helper processes; all of them share the instance's partition.
    """

    name: str
    assigned_vcpus: float
    memory_limit_bytes: int
    exec_cpu_ns: int
    anon_footprint_bytes: int
    shared_deps_bytes: int
    cold_start_cpu_ns: int
    warm_start_cpu_ns: int
    warm_churn_bytes: int
    worker_processes: int = 1

    def __post_init__(self) -> None:
        if self.assigned_vcpus <= 0:
            raise ConfigError(f"{self.name}: assigned_vcpus must be positive")
        if self.anon_footprint_bytes > self.memory_limit_bytes:
            raise ConfigError(
                f"{self.name}: anonymous footprint exceeds the memory limit"
            )
        if self.worker_processes < 1:
            raise ConfigError(f"{self.name}: needs at least one process")

    def with_workers(self, workers: int) -> "FunctionSpec":
        """A copy of this spec running ``workers`` processes per instance."""
        import dataclasses

        return dataclasses.replace(self, worker_processes=workers)

    @property
    def anon_footprint_pages(self) -> int:
        """Anonymous footprint in pages."""
        return bytes_to_pages(self.anon_footprint_bytes)

    @property
    def warm_churn_pages(self) -> int:
        """Per-invocation churn in pages."""
        return bytes_to_pages(self.warm_churn_bytes)

    def max_instances_for(self, vm_vcpus: int) -> int:
        """Maximum concurrent instances for a VM (Table 1 rule)."""
        return max(1, int(vm_vcpus / self.assigned_vcpus))


#: The four evaluation functions with their Table 1 resource limits.
TABLE1_FUNCTIONS: Dict[str, FunctionSpec] = {
    "cnn": FunctionSpec(
        name="cnn",
        assigned_vcpus=0.5,
        memory_limit_bytes=384 * MIB,
        exec_cpu_ns=250 * MS,
        anon_footprint_bytes=260 * MIB,
        shared_deps_bytes=120 * MIB,
        cold_start_cpu_ns=220 * MS,
        warm_start_cpu_ns=1 * MS,
        warm_churn_bytes=8 * MIB,
    ),
    "bert": FunctionSpec(
        name="bert",
        assigned_vcpus=1.0,
        memory_limit_bytes=640 * MIB,
        exec_cpu_ns=420 * MS,
        anon_footprint_bytes=460 * MIB,
        shared_deps_bytes=220 * MIB,
        cold_start_cpu_ns=350 * MS,
        warm_start_cpu_ns=1 * MS,
        warm_churn_bytes=16 * MIB,
    ),
    "bfs": FunctionSpec(
        name="bfs",
        assigned_vcpus=0.5,
        memory_limit_bytes=384 * MIB,
        exec_cpu_ns=160 * MS,
        anon_footprint_bytes=230 * MIB,
        shared_deps_bytes=60 * MIB,
        cold_start_cpu_ns=140 * MS,
        warm_start_cpu_ns=1 * MS,
        warm_churn_bytes=12 * MIB,
    ),
    "html": FunctionSpec(
        name="html",
        assigned_vcpus=0.2,
        memory_limit_bytes=384 * MIB,
        exec_cpu_ns=15 * MS,
        anon_footprint_bytes=180 * MIB,
        shared_deps_bytes=40 * MIB,
        cold_start_cpu_ns=160 * MS,
        warm_start_cpu_ns=500_000,
        warm_churn_bytes=2 * MIB,
    ),
}


def get_function(name: str) -> FunctionSpec:
    """Look up one of the Table 1 functions by name."""
    try:
        return TABLE1_FUNCTIONS[name.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown function {name!r}; available: {sorted(TABLE1_FUNCTIONS)}"
        ) from None
