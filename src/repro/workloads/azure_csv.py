"""Loader for the Azure Functions 2019 trace format (Shahrad et al.).

The production traces the paper uses are distributed as CSV files
(``invocations_per_function_md.anon.dXX.csv``) with one row per function:

    HashOwner,HashApp,HashFunction,Trigger,1,2,...,1440

where columns ``1..1440`` are invocation counts per minute of the day.
The dataset itself is not redistributable, so the rest of this repository
generates synthetic traces with the same structure — but anyone holding
the real files can load them here and drive every experiment with
production load.

Counts are turned into arrival timestamps by spreading each minute's
invocations uniformly at random within that minute (seeded), optionally
compressing time so a full day fits a short simulation.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ConfigError
from repro.sim.rng import make_rng
from repro.units import SEC
from repro.workloads.traces import InvocationTrace

__all__ = [
    "AzureCsvRow",
    "load_invocation_rows",
    "trace_from_minute_counts",
    "load_azure_trace",
]

#: Minutes in one trace day.
DAY_MINUTES = 1440


class AzureCsvRow:
    """One function's row: identity hashes plus per-minute counts."""

    __slots__ = ("owner", "app", "function", "trigger", "minute_counts")

    def __init__(
        self,
        owner: str,
        app: str,
        function: str,
        trigger: str,
        minute_counts: List[int],
    ):
        self.owner = owner
        self.app = app
        self.function = function
        self.trigger = trigger
        self.minute_counts = minute_counts

    @property
    def total_invocations(self) -> int:
        """Invocations across the whole day."""
        return sum(self.minute_counts)

    def __repr__(self) -> str:
        return (
            f"<AzureCsvRow fn={self.function[:8]}… trigger={self.trigger} "
            f"total={self.total_invocations}>"
        )


def load_invocation_rows(
    path: Union[str, Path],
    function_hash: Optional[str] = None,
    min_total: int = 0,
    limit: Optional[int] = None,
) -> List[AzureCsvRow]:
    """Parse an ``invocations_per_function_md`` CSV.

    ``function_hash`` filters to one function; ``min_total`` drops
    near-idle functions; ``limit`` caps the number of rows returned.
    """
    rows: List[AzureCsvRow] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or len(header) < 4 + DAY_MINUTES:
            raise ConfigError(
                f"{path}: expected the Azure invocations format "
                f"(4 id columns + {DAY_MINUTES} minute columns)"
            )
        for record in reader:
            if len(record) < 4 + DAY_MINUTES:
                raise ConfigError(f"{path}: truncated row for {record[:3]}")
            owner, app, function, trigger = record[:4]
            if function_hash is not None and function != function_hash:
                continue
            counts = [int(value) for value in record[4 : 4 + DAY_MINUTES]]
            row = AzureCsvRow(owner, app, function, trigger, counts)
            if row.total_invocations < min_total:
                continue
            rows.append(row)
            if limit is not None and len(rows) >= limit:
                break
    return rows


def trace_from_minute_counts(
    function_name: str,
    minute_counts: Sequence[int],
    seed: int = 0,
    time_scale: float = 1.0,
) -> InvocationTrace:
    """Spread per-minute counts into arrival timestamps.

    Each minute's invocations land uniformly at random within that minute
    (seeded by ``(seed, function_name)``).  ``time_scale`` compresses the
    clock: 0.1 squeezes a day into 2.4 simulated hours.
    """
    if time_scale <= 0:
        raise ConfigError(f"time_scale must be positive, got {time_scale}")
    rng = make_rng(seed, f"azure-csv/{function_name}")
    minute_ns = int(60 * SEC * time_scale)
    arrivals: List[int] = []
    for minute, count in enumerate(minute_counts):
        if count < 0:
            raise ConfigError(f"negative count at minute {minute}")
        base = minute * minute_ns
        arrivals.extend(
            base + int(rng.random() * minute_ns) for _ in range(count)
        )
    return InvocationTrace(function_name, arrivals)


def load_azure_trace(
    path: Union[str, Path],
    function_hash: str,
    seed: int = 0,
    time_scale: float = 1.0,
    minutes: Optional[slice] = None,
) -> InvocationTrace:
    """One-call loader: CSV row → :class:`InvocationTrace`.

    ``minutes`` selects a window of the day (e.g. ``slice(480, 540)`` for
    08:00-09:00) before conversion.
    """
    rows = load_invocation_rows(path, function_hash=function_hash, limit=1)
    if not rows:
        raise ConfigError(f"function {function_hash!r} not found in {path}")
    counts = rows[0].minute_counts
    if minutes is not None:
        counts = counts[minutes]
    return trace_from_minute_counts(
        function_hash, counts, seed=seed, time_scale=time_scale
    )
