"""The memhog microbenchmark (Section 5.5).

``memhog`` repeatedly allocates and deallocates a specified amount of
memory and, as a side effect, keeps CPUs busy.  The paper uses fleets of
memhog processes to fill a guest before measuring raw unplug speed
(Figures 5-7): the CPU load contends with the unplug path on the
virtio-mem vCPU and the allocation churn randomizes page placement.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import OutOfMemory
from repro.mm.mm_struct import MmStruct
from repro.sim.cpu import CpuCore
from repro.sim.engine import Process
from repro.units import MS, bytes_to_pages
from repro.vmm.vm import VirtualMachine

__all__ = ["Memhog"]

#: CPU burned per spin iteration while resident (10 ms keeps the vCPU
#: saturated without flooding the event queue).
SPIN_SLICE_NS = 10 * MS


class Memhog:
    """One memhog process inside a VM.

    Parameters
    ----------
    vm:
        The guest to run in.
    size_bytes:
        Memory the process allocates (faulted in on start).
    vcpu_index:
        The vCPU this instance is pinned to.
    use_hotmem:
        Attach to a HotMem partition before allocating (requires a
        HotMem VM); otherwise allocate from the generic zones.
    churn_fraction:
        Fraction of the footprint freed and re-faulted on each loop
        iteration (memhog's allocate/deallocate cycle); 0 disables churn.
    """

    def __init__(
        self,
        vm: VirtualMachine,
        size_bytes: int,
        vcpu_index: int = 0,
        use_hotmem: bool = False,
        churn_fraction: float = 0.0,
        name: str = "memhog",
    ):
        if not 0.0 <= churn_fraction <= 1.0:
            raise ValueError(f"churn_fraction out of range: {churn_fraction}")
        self.vm = vm
        self.size_pages = bytes_to_pages(size_bytes)
        self.vcpu: CpuCore = vm.vcpus[vcpu_index]
        self.use_hotmem = use_hotmem
        self.churn_fraction = churn_fraction
        self.name = name
        self.mm: Optional[MmStruct] = None
        self._stop_requested = False
        self._process: Optional[Process] = None
        self.resident = False
        #: Triggered once the initial footprint is fully faulted in.
        self.ready = vm.sim.event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Process:
        """Spawn the memhog process; returns the simulation process."""
        if self._process is not None:
            raise RuntimeError(f"{self.name} already started")
        self._process = self.vm.sim.spawn(self._run(), name=self.name)
        return self._process

    def stop(self) -> None:
        """Ask the process to exit (memory is freed on its next loop)."""
        self._stop_requested = True

    @property
    def stopped(self) -> bool:
        """Whether the process has exited and freed its memory."""
        return self._process is not None and self._process.finished

    # ------------------------------------------------------------------
    # The process body
    # ------------------------------------------------------------------
    def _run(self):
        self.mm = self.vm.new_process(self.name)
        if self.use_hotmem:
            assert self.vm.hotmem is not None, "HotMem VM required"
            yield from self.vm.hotmem.attach(self.mm)
        # Fault the whole footprint in (lazy allocation, charged to our vCPU).
        charge = self.vm.fault_handler.fault_anon(self.mm, self.size_pages)
        yield self.vcpu.submit(charge.cost_ns, f"memhog:{self.name}")
        self.resident = True
        self.ready.trigger(self)

        churn_pages = int(self.size_pages * self.churn_fraction)
        while not self._stop_requested:
            # memhog's busy loop: stress the CPU ...
            yield self.vcpu.submit(SPIN_SLICE_NS, f"memhog:{self.name}")
            # ... and optionally cycle part of the allocation.
            if churn_pages and not self._stop_requested:
                self.vm.manager.free_pages(self.mm, churn_pages)
                try:
                    charge = self.vm.fault_handler.fault_anon(self.mm, churn_pages)
                except OutOfMemory:
                    break
                yield self.vcpu.submit(charge.cost_ns, f"memhog:{self.name}")

        self.resident = False
        exit_charge = self.vm.exit_process(self.mm)
        yield self.vcpu.submit(exit_charge.cost_ns, f"memhog:{self.name}")
        return self.mm

    # ------------------------------------------------------------------
    # Synchronous helpers for state-only experiments
    # ------------------------------------------------------------------
    def materialize(self) -> MmStruct:
        """State-only variant: allocate instantly, without running.

        Useful for setting up large resident sets in microbenchmark
        experiments where only the unplug path is being timed.
        """
        if self.mm is not None:
            raise RuntimeError(f"{self.name} already materialized")
        self.mm = self.vm.new_process(self.name)
        if self.use_hotmem:
            assert self.vm.hotmem is not None, "HotMem VM required"
            partition = self.vm.hotmem.try_attach(self.mm)
            assert partition is not None
        self.vm.fault_handler.fault_anon(self.mm, self.size_pages)
        self.resident = True
        return self.mm

    def release(self) -> None:
        """State-only teardown matching :meth:`materialize`."""
        if self.mm is None:
            raise RuntimeError(f"{self.name} was never materialized")
        self.vm.exit_process(self.mm)
        self.resident = False
