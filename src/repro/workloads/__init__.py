"""Workloads: the Table 1 functions, memhog, and Azure-like traces."""

from repro.workloads.azure import (
    AzureTraceGenerator,
    RatePhase,
    bursty_trace,
    diurnal_phases,
)
from repro.workloads.azure_csv import (
    AzureCsvRow,
    load_azure_trace,
    load_invocation_rows,
    trace_from_minute_counts,
)
from repro.workloads.functions import TABLE1_FUNCTIONS, FunctionSpec, get_function
from repro.workloads.memhog import Memhog
from repro.workloads.traces import InvocationTrace

__all__ = [
    "AzureTraceGenerator",
    "RatePhase",
    "bursty_trace",
    "diurnal_phases",
    "AzureCsvRow",
    "load_azure_trace",
    "load_invocation_rows",
    "trace_from_minute_counts",
    "TABLE1_FUNCTIONS",
    "FunctionSpec",
    "get_function",
    "Memhog",
    "InvocationTrace",
]
